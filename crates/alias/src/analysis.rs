//! Constraint generation and alias queries over the core IR.

use std::collections::HashMap;

use kiss_lang::hir::{
    CallTarget, Const, FuncId, GlobalId, LocalId, Operand, Place, Program, Rvalue, Stmt, StmtKind,
    StructId, VarRef,
};

use crate::unify::{NodeId, PtGraph};

/// An abstract memory location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbsLoc {
    /// A global variable's cell.
    Global(GlobalId),
    /// A local variable's cell (per function).
    Local(FuncId, LocalId),
    /// All `(struct, field)` cells (object-insensitive).
    Field(StructId, u32),
    /// All heap objects of a struct, as a whole (used for `malloc`
    /// pointees; field cells refine this).
    Heap(StructId),
    /// The return-value channel of a function.
    Ret(FuncId),
}

/// The computed analysis.
#[derive(Debug, Clone)]
pub struct AliasAnalysis {
    graph: PtGraph,
    nodes: HashMap<AbsLoc, NodeId>,
}

impl AliasAnalysis {
    /// Runs the analysis over a whole program.
    pub fn run(program: &Program) -> AliasAnalysis {
        let mut cx = Cx {
            graph: PtGraph::new(),
            nodes: HashMap::new(),
            program,
            address_taken_funcs: Vec::new(),
        };
        // Collect functions used as values (targets of indirect calls).
        for (i, f) in program.funcs.iter().enumerate() {
            let _ = f;
            if program_mentions_fn(program, FuncId(i as u32)) {
                cx.address_taken_funcs.push(FuncId(i as u32));
            }
        }
        // Global initializers that store function references.
        for f in 0..program.funcs.len() {
            let fid = FuncId(f as u32);
            cx.walk_stmt(fid, &program.funcs[f].body);
        }
        AliasAnalysis { graph: cx.graph, nodes: cx.nodes }
    }

    fn node(&mut self, loc: AbsLoc) -> NodeId {
        match self.nodes.get(&loc) {
            Some(&n) => n,
            None => {
                let n = self.graph.fresh();
                self.nodes.insert(loc, n);
                n
            }
        }
    }

    /// Whether the cells denoted by two abstract locations may be the
    /// same cell.
    pub fn may_alias(&mut self, a: AbsLoc, b: AbsLoc) -> bool {
        let na = self.node(a);
        let nb = self.node(b);
        self.graph.same(na, nb)
    }

    /// Whether dereferencing `var` (in `func`) may touch `target`.
    pub fn deref_may_touch(&mut self, func: FuncId, var: VarRef, target: AbsLoc) -> bool {
        let v = self.node(var_loc(func, var));
        let p = self.graph.pointee(v);
        let t = self.node(target);
        self.graph.same(p, t)
    }

    /// Whether the *variable cell* `var` itself may be `target` (exact
    /// for globals/locals: cells are distinct unless identical).
    pub fn var_cell_is(&mut self, func: FuncId, var: VarRef, target: AbsLoc) -> bool {
        var_loc(func, var) == target
    }

    /// Whether the field cell `(sid, field)` may be `target`.
    pub fn field_may_touch(&mut self, sid: StructId, field: u32, target: AbsLoc) -> bool {
        let f = self.node(AbsLoc::Field(sid, field));
        let t = self.node(target);
        self.graph.same(f, t)
    }

    /// Number of distinct abstract locations tracked.
    pub fn location_count(&self) -> usize {
        self.nodes.len()
    }
}

/// The abstract location of a variable's own cell.
pub fn var_loc(func: FuncId, var: VarRef) -> AbsLoc {
    match var {
        VarRef::Global(g) => AbsLoc::Global(g),
        VarRef::Local(l) => AbsLoc::Local(func, l),
    }
}

fn program_mentions_fn(program: &Program, f: FuncId) -> bool {
    fn stmt_mentions(s: &Stmt, f: FuncId) -> bool {
        match &s.kind {
            StmtKind::Assign(_, Rvalue::Operand(Operand::Const(Const::Fn(g)))) => *g == f,
            StmtKind::Seq(ss) | StmtKind::Choice(ss) => ss.iter().any(|s| stmt_mentions(s, f)),
            StmtKind::Atomic(b) | StmtKind::Iter(b) => stmt_mentions(b, f),
            StmtKind::Call { args, .. } | StmtKind::Async { args, .. } => {
                args.iter().any(|a| matches!(a, Operand::Const(Const::Fn(g)) if *g == f))
            }
            _ => false,
        }
    }
    program.globals.iter().any(|g| matches!(g.init, Some(Const::Fn(x)) if x == f))
        || program.funcs.iter().any(|fd| stmt_mentions(&fd.body, f))
}

struct Cx<'a> {
    graph: PtGraph,
    nodes: HashMap<AbsLoc, NodeId>,
    program: &'a Program,
    address_taken_funcs: Vec<FuncId>,
}

impl Cx<'_> {
    fn node(&mut self, loc: AbsLoc) -> NodeId {
        match self.nodes.get(&loc) {
            Some(&n) => n,
            None => {
                let n = self.graph.fresh();
                self.nodes.insert(loc, n);
                n
            }
        }
    }

    fn var_node(&mut self, func: FuncId, var: VarRef) -> NodeId {
        self.node(var_loc(func, var))
    }

    /// Node denoting the *cell written by* a place.
    fn place_cell(&mut self, func: FuncId, place: &Place) -> NodeId {
        match place {
            Place::Var(v) => self.var_node(func, *v),
            Place::Deref(v) => {
                let n = self.var_node(func, *v);
                self.graph.pointee(n)
            }
            Place::Field(_, sid, fidx) => self.node(AbsLoc::Field(*sid, *fidx)),
        }
    }

    /// Node whose *pointee class* describes the value of an operand
    /// (only pointer-valued operands matter; scalars get harmless fresh
    /// nodes).
    fn operand_value(&mut self, func: FuncId, op: &Operand) -> NodeId {
        match op {
            Operand::Var(v) => self.var_node(func, *v),
            Operand::Const(_) => self.graph.fresh(),
        }
    }

    fn walk_stmt(&mut self, func: FuncId, s: &Stmt) {
        match &s.kind {
            StmtKind::Seq(ss) | StmtKind::Choice(ss) => {
                for inner in ss {
                    self.walk_stmt(func, inner);
                }
            }
            StmtKind::Atomic(b) | StmtKind::Iter(b) => self.walk_stmt(func, b),
            StmtKind::Assign(place, rv) => self.assign(func, place, rv),
            StmtKind::Call { dest, target, args } => self.call(func, dest.as_ref(), *target, args),
            StmtKind::Async { target, args } => self.call(func, None, *target, args),
            StmtKind::Return(Some(op)) => {
                let v = self.operand_value(func, op);
                let r = self.node(AbsLoc::Ret(func));
                self.graph.unify(v, r);
            }
            _ => {}
        }
    }

    fn assign(&mut self, func: FuncId, place: &Place, rv: &Rvalue) {
        let lhs = self.place_cell(func, place);
        match rv {
            Rvalue::Operand(op) => {
                // lhs = op: the stored value's pointee class merges.
                let v = self.operand_value(func, op);
                let (pl, pv) = (self.graph.pointee(lhs), self.graph.pointee(v));
                self.graph.unify(pl, pv);
            }
            Rvalue::Load(src) => {
                let cell = self.place_cell(func, src);
                let (pl, pc) = (self.graph.pointee(lhs), self.graph.pointee(cell));
                self.graph.unify(pl, pc);
            }
            Rvalue::AddrOf(v) => {
                // lhs = &v: pointee of lhs is v's cell.
                let target = self.var_node(func, *v);
                let pl = self.graph.pointee(lhs);
                self.graph.unify(pl, target);
            }
            Rvalue::AddrOfField(_, sid, fidx) => {
                let target = self.node(AbsLoc::Field(*sid, *fidx));
                let pl = self.graph.pointee(lhs);
                self.graph.unify(pl, target);
            }
            Rvalue::Malloc(sid) => {
                // lhs points to the heap node of the struct; field
                // addresses of that struct also live in its field
                // nodes, which AddrOfField/Place::Field reference
                // directly. Unify the heap node with field 0 so that a
                // pointer to the object aliases its first field (our
                // Addr::Heap{obj, field:0} representation).
                let heap = self.node(AbsLoc::Heap(*sid));
                let f0 = self.node(AbsLoc::Field(*sid, 0));
                self.graph.unify(heap, f0);
                let pl = self.graph.pointee(lhs);
                self.graph.unify(pl, heap);
            }
            Rvalue::BinOp(..) | Rvalue::UnOp(..) => {}
        }
    }

    fn call(&mut self, func: FuncId, dest: Option<&Place>, target: CallTarget, args: &[Operand]) {
        let callees: Vec<FuncId> = match target {
            CallTarget::Direct(f) => vec![f],
            CallTarget::Indirect(_) => self
                .address_taken_funcs
                .iter()
                .copied()
                .filter(|f| self.program.func(*f).param_count as usize == args.len())
                .collect(),
        };
        for callee in callees {
            for (i, arg) in args.iter().enumerate() {
                let a = self.operand_value(func, arg);
                let p = self.var_node(callee, VarRef::Local(LocalId(i as u32)));
                let (pa, pp) = (self.graph.pointee(a), self.graph.pointee(p));
                self.graph.unify(pa, pp);
            }
            if let Some(dest) = dest {
                let d = self.place_cell(func, dest);
                let r = self.node(AbsLoc::Ret(callee));
                let (pd, pr) = (self.graph.pointee(d), self.graph.pointee(r));
                self.graph.unify(pd, pr);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kiss_lang::parse_and_lower;

    fn analyze(src: &str) -> (AliasAnalysis, Program) {
        let p = parse_and_lower(src).unwrap();
        (AliasAnalysis::run(&p), p)
    }

    #[test]
    fn distinct_globals_do_not_alias() {
        let (mut a, p) = analyze("int x; int y; void main() { x = 1; y = 2; }");
        let gx = AbsLoc::Global(p.global_by_name("x").unwrap());
        let gy = AbsLoc::Global(p.global_by_name("y").unwrap());
        assert!(!a.may_alias(gx, gy));
        assert!(a.may_alias(gx, gx));
    }

    #[test]
    fn pointer_to_global_is_tracked() {
        let (mut a, p) = analyze(
            "int x; int y; int *p;
             void main() { p = &x; *p = 3; }",
        );
        let f = p.main;
        let pvar = VarRef::Global(p.global_by_name("p").unwrap());
        assert!(a.deref_may_touch(f, pvar, AbsLoc::Global(p.global_by_name("x").unwrap())));
        assert!(!a.deref_may_touch(f, pvar, AbsLoc::Global(p.global_by_name("y").unwrap())));
    }

    #[test]
    fn copies_merge_points_to_sets() {
        let (mut a, p) = analyze(
            "int x; int *p; int *q;
             void main() { p = &x; q = p; *q = 1; }",
        );
        let f = p.main;
        let q = VarRef::Global(p.global_by_name("q").unwrap());
        assert!(a.deref_may_touch(f, q, AbsLoc::Global(p.global_by_name("x").unwrap())));
    }

    #[test]
    fn field_cells_are_field_sensitive() {
        let (mut a, p) = analyze(
            "struct D { int f; int g; }
             D *e;
             void main() { e = malloc(D); e->f = 1; e->g = 2; }",
        );
        let sid = p.struct_by_name("D").unwrap();
        assert!(!a.may_alias(AbsLoc::Field(sid, 0), AbsLoc::Field(sid, 1)));
        assert!(a.field_may_touch(sid, 0, AbsLoc::Field(sid, 0)));
        assert!(!a.field_may_touch(sid, 0, AbsLoc::Field(sid, 1)));
    }

    #[test]
    fn address_of_field_flows_through_calls() {
        let (mut a, p) = analyze(
            "struct D { int f; int g; }
             D *e;
             void use(int *q) { *q = 1; }
             void main() { int *r; e = malloc(D); r = &e->g; use(r); }",
        );
        let sid = p.struct_by_name("D").unwrap();
        let use_f = p.func_by_name("use").unwrap();
        let q = VarRef::Local(LocalId(0));
        assert!(a.deref_may_touch(use_f, q, AbsLoc::Field(sid, 1)));
        assert!(!a.deref_may_touch(use_f, q, AbsLoc::Field(sid, 0)));
    }

    #[test]
    fn locals_of_different_functions_are_distinct_cells() {
        let (mut a, p) = analyze(
            "void f() { int x; x = 1; }
             void main() { int x; x = 2; }",
        );
        let f = p.func_by_name("f").unwrap();
        let m = p.main;
        assert!(!a.may_alias(AbsLoc::Local(f, LocalId(0)), AbsLoc::Local(m, LocalId(0))));
        // var_cell_is is exact equality on cells.
        assert!(a.var_cell_is(f, VarRef::Local(LocalId(0)), AbsLoc::Local(f, LocalId(0))));
        assert!(!a.var_cell_is(f, VarRef::Local(LocalId(0)), AbsLoc::Local(m, LocalId(0))));
    }

    #[test]
    fn indirect_calls_conservatively_bind_address_taken_functions() {
        let (mut a, p) = analyze(
            "struct D { int f; }
             D *e;
             void h(D *x) { x->f = 1; }
             void main() { fn g; e = malloc(D); g = h; g(e); }",
        );
        // Parameter x of h may point to the heap of D (via e).
        let h = p.func_by_name("h").unwrap();
        let sid = p.struct_by_name("D").unwrap();
        assert!(a.deref_may_touch(h, VarRef::Local(LocalId(0)), AbsLoc::Field(sid, 0)));
    }

    #[test]
    fn return_values_flow_to_destinations() {
        let (mut a, p) = analyze(
            "int x;
             int *mk() { int *r; r = &x; return r; }
             void main() { int *q; q = mk(); *q = 5; }",
        );
        let m = p.main;
        let q = VarRef::Local(LocalId(0));
        assert!(a.deref_may_touch(m, q, AbsLoc::Global(p.global_by_name("x").unwrap())));
    }

    #[test]
    fn unrelated_pointers_stay_unrelated() {
        let (mut a, p) = analyze(
            "int x; int y; int *p; int *q;
             void main() { p = &x; q = &y; *p = 1; *q = 2; }",
        );
        let f = p.main;
        let pv = VarRef::Global(p.global_by_name("p").unwrap());
        let qv = VarRef::Global(p.global_by_name("q").unwrap());
        assert!(!a.deref_may_touch(f, pv, AbsLoc::Global(p.global_by_name("y").unwrap())));
        assert!(!a.deref_may_touch(f, qv, AbsLoc::Global(p.global_by_name("x").unwrap())));
    }

    #[test]
    fn location_count_reflects_tracked_cells() {
        let (a, _) = analyze("int x; void main() { x = 1; }");
        assert!(a.location_count() >= 1);
    }
}
