//! # kiss-alias
//!
//! A unification-based (Steensgaard-style) flow-insensitive points-to
//! analysis over the core IR — the stand-in for the "static alias
//! analysis \[12\]" (Das, PLDI 2000) that KISS uses "to optimize away
//! most of the calls to check_r and check_w" (paper Section 5).
//!
//! The analysis assigns every abstract memory cell a node in a
//! union-find structure; each node has at most one pointee node, and
//! assignments unify pointees. Field cells are field-sensitive but
//! object-insensitive (one node per `(struct, field)` pair), heap
//! allocations are merged per struct — standard unification-analysis
//! granularity, conservative in the right direction for pruning: a
//! check may be removed only if the accessed cell **cannot** be the
//! distinguished race location.

pub mod analysis;
pub mod unify;

pub use analysis::{AbsLoc, AliasAnalysis};
