//! Union-find with pointee merging.
//!
//! Each node optionally points to another node. Unifying two nodes
//! also unifies their pointees, transitively — the defining operation
//! of Steensgaard's analysis. The pointee cascade is processed with an
//! explicit worklist so deeply nested pointer types cannot overflow the
//! stack.

/// A node index.
pub type NodeId = u32;

/// Union-find over points-to nodes.
#[derive(Debug, Clone, Default)]
pub struct PtGraph {
    parent: Vec<NodeId>,
    /// Pointee of each representative (looked up post-`find`).
    pt: Vec<Option<NodeId>>,
}

impl PtGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a fresh node.
    pub fn fresh(&mut self) -> NodeId {
        let id = self.parent.len() as NodeId;
        self.parent.push(id);
        self.pt.push(None);
        id
    }

    /// The number of allocated nodes.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`, with path compression.
    pub fn find(&mut self, x: NodeId) -> NodeId {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    /// The pointee node of `x`, creating a fresh one if absent.
    pub fn pointee(&mut self, x: NodeId) -> NodeId {
        let r = self.find(x);
        match self.pt[r as usize] {
            Some(p) => self.find(p),
            None => {
                let p = self.fresh();
                self.pt[r as usize] = Some(p);
                p
            }
        }
    }

    /// Unifies two nodes (and, cascading, their pointees).
    pub fn unify(&mut self, a: NodeId, b: NodeId) {
        let mut work = vec![(a, b)];
        while let Some((a, b)) = work.pop() {
            let ra = self.find(a);
            let rb = self.find(b);
            if ra == rb {
                continue;
            }
            self.parent[rb as usize] = ra;
            match (self.pt[ra as usize], self.pt[rb as usize]) {
                (Some(pa), Some(pb)) => work.push((pa, pb)),
                (None, Some(pb)) => self.pt[ra as usize] = Some(pb),
                _ => {}
            }
        }
    }

    /// Whether two nodes are in the same class.
    pub fn same(&mut self, a: NodeId, b: NodeId) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_nodes_are_distinct() {
        let mut g = PtGraph::new();
        let a = g.fresh();
        let b = g.fresh();
        assert!(!g.same(a, b));
        assert_eq!(g.len(), 2);
        assert!(!g.is_empty());
    }

    #[test]
    fn unify_merges_classes() {
        let mut g = PtGraph::new();
        let a = g.fresh();
        let b = g.fresh();
        let c = g.fresh();
        g.unify(a, b);
        assert!(g.same(a, b));
        assert!(!g.same(a, c));
        g.unify(b, c);
        assert!(g.same(a, c));
    }

    #[test]
    fn pointees_merge_transitively() {
        let mut g = PtGraph::new();
        let p = g.fresh();
        let q = g.fresh();
        let x = g.fresh();
        let y = g.fresh();
        // p -> x, q -> y; unify(p, q) must unify x and y.
        let pp = g.pointee(p);
        g.unify(pp, x);
        let qq = g.pointee(q);
        g.unify(qq, y);
        assert!(!g.same(x, y));
        g.unify(p, q);
        assert!(g.same(x, y));
    }

    #[test]
    fn pointee_is_created_lazily_and_stable() {
        let mut g = PtGraph::new();
        let a = g.fresh();
        let p1 = g.pointee(a);
        let p2 = g.pointee(a);
        assert!(g.same(p1, p2));
    }

    #[test]
    fn deep_pointee_chains_unify_without_recursion() {
        // Build two chains of depth 10_000 and unify the heads.
        let mut g = PtGraph::new();
        let a = g.fresh();
        let b = g.fresh();
        let mut ca = a;
        let mut cb = b;
        for _ in 0..10_000 {
            ca = g.pointee(ca);
            cb = g.pointee(cb);
        }
        g.unify(a, b);
        assert!(g.same(ca, cb));
    }
}
