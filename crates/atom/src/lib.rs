//! # kiss-atom
//!
//! A Lipton-reduction atomicity analysis in the style of Flanagan and
//! Qadeer's *type and effect system for atomicity* (PLDI 2003) — the
//! paper's reference \[20\], which KISS names as the planned mechanism
//! "to automatically prune benign race conditions".
//!
//! Per Lipton's theory of reduction, each action is classified as a
//! **mover**:
//!
//! * lock acquires are *right movers* (R) — they commute later past
//!   other threads' actions;
//! * lock releases are *left movers* (L);
//! * accesses to thread-local data, and to shared data *consistently
//!   protected* by some lock, are *both movers* (B);
//! * everything else (unprotected shared accesses, forks, atomic
//!   read-modify-writes) is a *non-mover* (N).
//!
//! A code path is (reducibly) **atomic** if its mover sequence matches
//! `(R|B)* N? (L|B)*`: any interleaved execution of the block is then
//! equivalent to an uninterrupted one. [`analyze`] computes, for every
//! function: its per-instruction movers, whether every path through it
//! is atomic, and whether it is a pure both-mover.
//!
//! The "consistently protected" judgement is a static guarded-by
//! inference: a forward lock-held dataflow (locks recognized from the
//! paper's `atomic { assume l == 0; l = 1 }` encoding) intersected over
//! every access to each shared cell.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use kiss_exec::{Instr, Module};
use kiss_lang::hir::{Const, FuncId, Operand, Place, Rvalue, StructId, VarRef};

/// An abstract shared cell (locals are always thread-local).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Cell {
    /// A global variable.
    Global(u32),
    /// Any `(struct, field)` cell, object-insensitively.
    Field(StructId, u32),
}

/// Lipton's classification of one action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mover {
    /// Commutes to the right (lock acquire).
    Right,
    /// Commutes to the left (lock release).
    Left,
    /// Commutes both ways (local or consistently protected access).
    Both,
    /// Does not commute (unprotected shared access, fork, atomic RMW).
    NonMover,
}

/// Atomicity verdict for a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Atomicity {
    /// Every instruction is a both mover: the function commutes freely.
    BothMover,
    /// Every path matches `(R|B)* N? (L|B)*`: reducible to one atomic
    /// action.
    Atomic,
    /// Some path has an irreducible mover sequence.
    NotAtomic,
}

/// Analysis results for a whole module.
#[derive(Debug, Clone)]
pub struct AtomicityReport {
    /// Per-function verdicts, indexed by [`FuncId`].
    pub functions: Vec<Atomicity>,
    /// The guarded-by map: for each shared cell accessed anywhere, the
    /// locks held at *every* access (empty set = unprotected).
    pub guarded_by: BTreeMap<Cell, BTreeSet<Cell>>,
}

impl AtomicityReport {
    /// The verdict for a function.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn of(&self, f: FuncId) -> Atomicity {
        self.functions[f.0 as usize]
    }

    /// Whether a shared cell is consistently lock-protected.
    pub fn is_protected(&self, cell: Cell) -> bool {
        self.guarded_by.get(&cell).map(|s| !s.is_empty()).unwrap_or(false)
    }
}

/// Runs the analysis on a lowered module.
pub fn analyze(module: &Module) -> AtomicityReport {
    let regions = classify_lock_regions(module);
    let held = lock_held_dataflow(module, &regions);
    let guarded_by = infer_guarded_by(module, &regions, &held);

    // Function summaries, iterated to a fixpoint (calls use callee
    // summaries; recursion starts from the optimistic BothMover and
    // descends).
    let n = module.bodies.len();
    let mut summaries = vec![Atomicity::BothMover; n];
    loop {
        let mut changed = false;
        for f in 0..n {
            let v = analyze_func(module, FuncId(f as u32), &regions, &held, &guarded_by, &summaries);
            if v != summaries[f] {
                summaries[f] = v;
                changed = true;
            }
        }
        if !changed {
            return AtomicityReport { functions: summaries, guarded_by };
        }
    }
}

/// Structural classification of atomic regions, keyed by the pc of
/// `AtomicBegin`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Region {
    Acquire(Cell),
    Release(Cell),
    Other,
}

fn place_cell(place: &Place) -> Option<Cell> {
    match place {
        Place::Var(VarRef::Global(g)) => Some(Cell::Global(g.0)),
        Place::Var(VarRef::Local(_)) => None,
        // A deref may touch anything; callers treat `None` from a
        // Deref place as "unknown shared".
        Place::Deref(_) => None,
        Place::Field(_, sid, f) => Some(Cell::Field(*sid, *f)),
    }
}

fn classify_lock_regions(module: &Module) -> HashMap<(FuncId, usize), Region> {
    let mut out = HashMap::new();
    for body in &module.bodies {
        let mut i = 0;
        while i < body.instrs.len() {
            if matches!(body.instrs[i], Instr::AtomicBegin) {
                let mut j = i + 1;
                let mut stores: Vec<(Option<Cell>, Const)> = Vec::new();
                let mut has_assume = false;
                let mut reads: Vec<Option<Cell>> = Vec::new();
                while j < body.instrs.len() && !matches!(body.instrs[j], Instr::AtomicEnd) {
                    match &body.instrs[j] {
                        Instr::Assume(_) => has_assume = true,
                        Instr::Assign(place, rv) => {
                            match rv {
                                Rvalue::Operand(Operand::Const(c))
                                    if !matches!(place, Place::Var(VarRef::Local(_))) =>
                                {
                                    stores.push((place_cell(place), *c));
                                }
                                Rvalue::Load(p) => reads.push(place_cell(p)),
                                Rvalue::BinOp(_, a, b) => {
                                    for op in [a, b] {
                                        if let Operand::Var(VarRef::Global(g)) = op {
                                            reads.push(Some(Cell::Global(g.0)));
                                        }
                                    }
                                }
                                _ => {}
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                let region = match (&stores[..], has_assume) {
                    ([(Some(cell), c)], true)
                        if one(c) && reads.contains(&Some(*cell)) =>
                    {
                        Region::Acquire(*cell)
                    }
                    ([(Some(cell), c)], false) if zero(c) => Region::Release(*cell),
                    _ => Region::Other,
                };
                out.insert((body.func, i), region);
                i = j;
            }
            i += 1;
        }
    }
    out
}

fn one(c: &Const) -> bool {
    matches!(c, Const::Int(1) | Const::Bool(true))
}

fn zero(c: &Const) -> bool {
    matches!(c, Const::Int(0) | Const::Bool(false))
}

/// Forward dataflow: the set of locks definitely held before each
/// instruction (intra-procedural; calls conservatively clear the set,
/// since the callee may release).
fn lock_held_dataflow(
    module: &Module,
    regions: &HashMap<(FuncId, usize), Region>,
) -> HashMap<(FuncId, usize), BTreeSet<Cell>> {
    let mut out = HashMap::new();
    for body in &module.bodies {
        let n = body.instrs.len();
        // `None` = unreached; join = intersection.
        let mut held: Vec<Option<BTreeSet<Cell>>> = vec![None; n];
        held[0] = Some(BTreeSet::new());
        let mut work: Vec<usize> = vec![0];
        while let Some(pc) = work.pop() {
            let cur = held[pc].clone().expect("queued pcs are reached");
            let (succs, next_set): (Vec<usize>, BTreeSet<Cell>) = match &body.instrs[pc] {
                Instr::Jump(t) => (vec![*t], cur.clone()),
                Instr::NondetJump(ts) => (ts.clone(), cur.clone()),
                Instr::Return(_) => (vec![], cur.clone()),
                Instr::AtomicBegin => {
                    let mut next = cur.clone();
                    match regions.get(&(body.func, pc)) {
                        Some(Region::Acquire(l)) => {
                            next.insert(*l);
                        }
                        Some(Region::Release(l)) => {
                            next.remove(l);
                        }
                        _ => {}
                    }
                    // Jump to after the matching AtomicEnd.
                    let mut j = pc + 1;
                    while j < n && !matches!(body.instrs[j], Instr::AtomicEnd) {
                        j += 1;
                    }
                    (vec![(j + 1).min(n - 1)], next)
                }
                Instr::Call { .. } => (vec![pc + 1], BTreeSet::new()),
                _ => (vec![pc + 1], cur.clone()),
            };
            for s in succs {
                let joined = match &held[s] {
                    None => next_set.clone(),
                    Some(old) => old.intersection(&next_set).cloned().collect(),
                };
                if held[s].as_ref() != Some(&joined) {
                    held[s] = Some(joined);
                    work.push(s);
                }
            }
        }
        for (pc, h) in held.into_iter().enumerate() {
            out.insert((body.func, pc), h.unwrap_or_default());
        }
    }
    out
}

/// The shared cells an instruction accesses (statically).
fn shared_cells(instr: &Instr) -> Vec<(Cell, bool)> {
    let mut out = Vec::new();
    let place = |p: &Place, w: bool, out: &mut Vec<(Cell, bool)>| {
        if let Some(c) = place_cell(p) {
            out.push((c, w));
        }
    };
    let operand = |op: &Operand, out: &mut Vec<(Cell, bool)>| {
        if let Operand::Var(VarRef::Global(g)) = op {
            out.push((Cell::Global(g.0), false));
        }
    };
    match instr {
        Instr::Assign(pl, rv) => {
            match rv {
                Rvalue::Operand(op) => operand(op, &mut out),
                Rvalue::Load(p) => place(p, false, &mut out),
                Rvalue::BinOp(_, a, b) => {
                    operand(a, &mut out);
                    operand(b, &mut out);
                }
                Rvalue::UnOp(_, a) => operand(a, &mut out),
                _ => {}
            }
            place(pl, true, &mut out);
        }
        Instr::Assert(c) | Instr::Assume(c) => {
            if let VarRef::Global(g) = c.var {
                out.push((Cell::Global(g.0), false));
            }
        }
        Instr::Call { args, .. } | Instr::Async { args, .. } => {
            for a in args {
                operand(a, &mut out);
            }
        }
        Instr::Return(Some(op)) => operand(op, &mut out),
        _ => {}
    }
    out
}

/// Guarded-by inference: intersect the held-lock sets over every access
/// of each cell (lock cells themselves are exempt — they are accessed
/// by the lock operations).
fn infer_guarded_by(
    module: &Module,
    regions: &HashMap<(FuncId, usize), Region>,
    held: &HashMap<(FuncId, usize), BTreeSet<Cell>>,
) -> BTreeMap<Cell, BTreeSet<Cell>> {
    let lock_cells: BTreeSet<Cell> = regions
        .values()
        .filter_map(|r| match r {
            Region::Acquire(c) | Region::Release(c) => Some(*c),
            Region::Other => None,
        })
        .collect();
    let mut out: BTreeMap<Cell, Option<BTreeSet<Cell>>> = BTreeMap::new();
    for body in &module.bodies {
        let mut pc = 0;
        while pc < body.instrs.len() {
            // Skip lock-region interiors.
            if matches!(body.instrs[pc], Instr::AtomicBegin)
                && !matches!(regions.get(&(body.func, pc)), Some(Region::Other) | None)
            {
                while pc < body.instrs.len() && !matches!(body.instrs[pc], Instr::AtomicEnd) {
                    pc += 1;
                }
                pc += 1;
                continue;
            }
            let locks = held.get(&(body.func, pc)).cloned().unwrap_or_default();
            for (cell, _) in shared_cells(&body.instrs[pc]) {
                if lock_cells.contains(&cell) {
                    continue;
                }
                match out.entry(cell).or_insert(None) {
                    slot @ None => *slot = Some(locks.clone()),
                    Some(prev) => *prev = prev.intersection(&locks).cloned().collect(),
                }
            }
            pc += 1;
        }
    }
    out.into_iter().map(|(c, s)| (c, s.unwrap_or_default())).collect()
}

/// The `(R|B)* N? (L|B)*` path automaton, as a dataflow over phases.
fn analyze_func(
    module: &Module,
    f: FuncId,
    regions: &HashMap<(FuncId, usize), Region>,
    held: &HashMap<(FuncId, usize), BTreeSet<Cell>>,
    guarded_by: &BTreeMap<Cell, BTreeSet<Cell>>,
    summaries: &[Atomicity],
) -> Atomicity {
    let body = module.body(f);
    let n = body.instrs.len();
    let lock_cells: BTreeSet<Cell> = regions
        .values()
        .filter_map(|r| match r {
            Region::Acquire(c) | Region::Release(c) => Some(*c),
            Region::Other => None,
        })
        .collect();

    let mover_of = |pc: usize| -> Mover {
        match &body.instrs[pc] {
            Instr::AtomicBegin => match regions.get(&(f, pc)) {
                Some(Region::Acquire(_)) => Mover::Right,
                Some(Region::Release(_)) => Mover::Left,
                _ => Mover::NonMover, // interlocked-style RMW
            },
            Instr::Async { .. } => Mover::NonMover,
            Instr::Call { target, .. } => match target {
                kiss_lang::hir::CallTarget::Direct(callee) => {
                    match summaries[callee.0 as usize] {
                        Atomicity::BothMover => Mover::Both,
                        Atomicity::Atomic => Mover::NonMover,
                        Atomicity::NotAtomic => Mover::NonMover, // handled below
                    }
                }
                kiss_lang::hir::CallTarget::Indirect(_) => Mover::NonMover,
            },
            instr => {
                let cells = shared_cells(instr);
                if cells.is_empty() {
                    return Mover::Both;
                }
                let locks = held.get(&(f, pc)).cloned().unwrap_or_default();
                let all_protected = cells.iter().all(|(c, _)| {
                    if lock_cells.contains(c) {
                        return false; // raw lock-cell access outside a region
                    }
                    match guarded_by.get(c) {
                        Some(g) => !g.is_empty() && !g.is_disjoint(&locks),
                        None => false,
                    }
                });
                if all_protected {
                    Mover::Both
                } else {
                    Mover::NonMover
                }
            }
        }
    };

    // A call to a NotAtomic callee poisons the caller outright.
    for pc in 0..n {
        if let Instr::Call { target: kiss_lang::hir::CallTarget::Direct(callee), .. } =
            &body.instrs[pc]
        {
            if summaries[callee.0 as usize] == Atomicity::NotAtomic {
                return Atomicity::NotAtomic;
            }
        }
    }

    // Phases: bit 0 = "pre" (still in the R/B prefix), bit 1 = "post"
    // (committed the non-mover / entered the L suffix).
    let mut phase: Vec<u8> = vec![0; n];
    phase[0] = 0b01;
    let mut work = vec![0usize];
    let mut all_both = true;
    let mut atomic_ok = true;
    while let Some(pc) = work.pop() {
        let cur = phase[pc];
        let (step_phase, succs): (u8, Vec<usize>) = match &body.instrs[pc] {
            Instr::Jump(t) => (cur, vec![*t]),
            Instr::NondetJump(ts) => (cur, ts.clone()),
            Instr::Return(_) => {
                let m = mover_of(pc);
                if m != Mover::Both {
                    all_both = false;
                }
                (apply_mover(cur, m, &mut atomic_ok), vec![])
            }
            Instr::AtomicBegin => {
                let m = mover_of(pc);
                if m != Mover::Both {
                    all_both = false;
                }
                let mut j = pc + 1;
                while j < n && !matches!(body.instrs[j], Instr::AtomicEnd) {
                    j += 1;
                }
                (apply_mover(cur, m, &mut atomic_ok), vec![(j + 1).min(n - 1)])
            }
            _ => {
                let m = mover_of(pc);
                if m != Mover::Both {
                    all_both = false;
                }
                (apply_mover(cur, m, &mut atomic_ok), vec![pc + 1])
            }
        };
        if !atomic_ok {
            return Atomicity::NotAtomic;
        }
        for s in succs {
            let joined = phase[s] | step_phase;
            if joined != phase[s] {
                phase[s] = joined;
                work.push(s);
            }
        }
    }
    if all_both {
        Atomicity::BothMover
    } else {
        Atomicity::Atomic
    }
}

/// Applies one mover to a phase set; flags a violation when a right
/// mover or non-mover occurs after the commit point.
fn apply_mover(phases: u8, m: Mover, ok: &mut bool) -> u8 {
    let mut out = 0u8;
    if phases & 0b01 != 0 {
        // Pre phase.
        match m {
            Mover::Both => out |= 0b01,
            Mover::Right => out |= 0b01,
            Mover::NonMover | Mover::Left => out |= 0b10,
        }
    }
    if phases & 0b10 != 0 {
        // Post phase: only left/both movers remain legal.
        match m {
            Mover::Both | Mover::Left => out |= 0b10,
            Mover::Right | Mover::NonMover => *ok = false,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(src: &str) -> (AtomicityReport, Module) {
        let module = Module::lower(kiss_lang::parse_and_lower(src).unwrap());
        (analyze(&module), module)
    }

    fn verdict(src: &str, func: &str) -> Atomicity {
        let (r, m) = report(src);
        r.of(m.program.func_by_name(func).unwrap())
    }

    const LOCKED: &str = "
        int l;
        int g;
        void good() {
            atomic { assume l == 0; l = 1; }
            g = g + 1;
            atomic { l = 0; }
        }
        void double_section() {
            atomic { assume l == 0; l = 1; }
            g = g + 1;
            atomic { l = 0; }
            atomic { assume l == 0; l = 1; }
            g = g + 2;
            atomic { l = 0; }
        }
        void main() { good(); double_section(); }
    ";

    #[test]
    fn single_critical_section_is_atomic() {
        assert_eq!(verdict(LOCKED, "good"), Atomicity::Atomic);
    }

    #[test]
    fn two_critical_sections_are_not_atomic() {
        // The classic Flanagan–Qadeer example: R B L R B L does not
        // reduce.
        assert_eq!(verdict(LOCKED, "double_section"), Atomicity::NotAtomic);
    }

    #[test]
    fn guarded_by_inference_finds_the_lock() {
        let (r, m) = report(LOCKED);
        let g = Cell::Global(m.program.global_by_name("g").unwrap().0);
        let l = Cell::Global(m.program.global_by_name("l").unwrap().0);
        assert!(r.is_protected(g));
        assert_eq!(r.guarded_by[&g], BTreeSet::from([l]));
    }

    #[test]
    fn purely_local_function_is_a_both_mover() {
        let src = "
            void calc() { int a; int b; a = 1; b = a + 2; a = b * b; }
            void main() { calc(); }
        ";
        assert_eq!(verdict(src, "calc"), Atomicity::BothMover);
    }

    #[test]
    fn single_unprotected_access_is_atomic_but_not_both() {
        let src = "
            int g;
            void read_once() { int t; t = g; }
            void main() { read_once(); }
        ";
        assert_eq!(verdict(src, "read_once"), Atomicity::Atomic);
    }

    #[test]
    fn two_unprotected_accesses_are_not_atomic() {
        let src = "
            int g;
            int h;
            void stale() { int t; t = g; h = t; }
            void main() { stale(); }
        ";
        // Both g and h are unprotected shared cells: two non-movers.
        assert_eq!(verdict(src, "stale"), Atomicity::NotAtomic);
    }

    #[test]
    fn mixed_protected_and_one_unprotected_is_atomic() {
        let src = "
            int l;
            int g;
            int flag;
            void w() {
                atomic { assume l == 0; l = 1; }
                g = g + 1;
                atomic { l = 0; }
            }
            void observer() {
                int t;
                atomic { assume l == 0; l = 1; }
                t = g;
                atomic { l = 0; }
                flag = t;
            }
            void main() { w(); observer(); }
        ";
        // observer: R B L N — one non-mover after the release... which
        // violates the pattern: N after L. Not atomic.
        assert_eq!(verdict(src, "observer"), Atomicity::NotAtomic);
        assert_eq!(verdict(src, "w"), Atomicity::Atomic);
    }

    #[test]
    fn calls_compose_atomicity() {
        let src = "
            int l;
            int g;
            void acquire() { atomic { assume l == 0; l = 1; } }
            void release() { atomic { l = 0; } }
            void locked_bump() { acquire(); g = g + 1; release(); }
            void main() { locked_bump(); }
        ";
        // acquire/release are single-mover functions summarized as
        // Atomic → calls become non-movers → R-as-N B L-as-N: the
        // caller sees N B N, which is not reducible. This conservatism
        // (losing the R/L flavour through summaries) is exactly what
        // Flanagan–Qadeer's effect system refines; our analysis stays
        // sound and reports NotAtomic.
        assert_eq!(verdict(src, "locked_bump"), Atomicity::NotAtomic);
    }

    #[test]
    fn interlocked_rmw_is_a_single_non_mover() {
        let src = "
            int c;
            int InterlockedIncrement(int *p) { int v; atomic { *p = *p + 1; v = *p; } return v; }
            void bump() { int v; v = InterlockedIncrement(&c); }
            void main() { bump(); }
        ";
        // The interlocked body: one Other-atomic (N) plus local moves —
        // atomic. The caller: one call to an Atomic function (N) —
        // atomic as well.
        assert_eq!(verdict(src, "InterlockedIncrement"), Atomicity::Atomic);
        assert_eq!(verdict(src, "bump"), Atomicity::Atomic);
    }

    #[test]
    fn fork_is_a_non_mover() {
        let src = "
            int g;
            void w() { int a; a = 1; }
            void spawn_two() { async w(); async w(); }
            void main() { spawn_two(); g = 1; }
        ";
        assert_eq!(verdict(src, "spawn_two"), Atomicity::NotAtomic);
    }
}
