//! Criterion benchmarks for the KISS pipeline components.
//!
//! * `transform` — the sequentialization itself (Figures 4/5), on the
//!   Bluetooth model and a mid-size corpus driver;
//! * `explicit_vs_summary` — the two sequential engines on the same
//!   transformed program;
//! * `kiss_vs_exhaustive` — end-to-end KISS check vs. exhaustive
//!   interleaving exploration on a 3-thread workload (the paper's
//!   complexity argument, as wall-clock);
//! * `table_row` — one full per-field Table 1 row (toastmon);
//! * `alias_pruning` — race transformation with and without the alias
//!   analysis;
//! * `ltl_product` — the liveness pipeline (negated-formula tableau +
//!   Büchi product BFS) on a violated and a held spinlock property.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use kiss_conc::Explorer;
use kiss_core::checker::Kiss;
use kiss_core::transform::{transform, RaceTarget, TransformConfig};
use kiss_exec::Module;
use kiss_lang::Program;
use kiss_seq::{ExplicitChecker, SummaryChecker};

fn bluetooth() -> Program {
    kiss_lang::parse_and_lower(kiss_drivers::bluetooth::BLUETOOTH_BUGGY).expect("valid")
}

fn three_thread_workload() -> Program {
    let src = "
        int g_lock;
        int counter;
        void acquire() { atomic { assume g_lock == 0; g_lock = 1; } }
        void release() { atomic { g_lock = 0; } }
        void worker() { int t; acquire(); t = counter; counter = t + 1; release(); }
        void main() { async worker(); async worker(); assert counter >= 0; }
    ";
    kiss_lang::parse_and_lower(src).expect("valid")
}

fn bench_transform(c: &mut Criterion) {
    let program = bluetooth();
    let toastmon = kiss_drivers::generate_driver(&kiss_drivers::paper_table()[5]);
    let toastmon_p = kiss_lang::parse_and_lower(&toastmon.source).expect("valid");
    let race = RaceTarget::resolve(&program, "DEVICE_EXTENSION.stoppingFlag").expect("resolves");

    let mut g = c.benchmark_group("transform");
    g.bench_function("bluetooth_assertion_max1", |b| {
        b.iter(|| {
            transform(black_box(&program), &TransformConfig { max_ts: 1, ..Default::default() })
                .expect("ok")
        })
    });
    g.bench_function("bluetooth_race_max0", |b| {
        b.iter(|| {
            transform(
                black_box(&program),
                &TransformConfig { max_ts: 0, race: Some(race), alias_prune: true },
            )
            .expect("ok")
        })
    });
    g.bench_function("toastmon_assertion_max0", |b| {
        b.iter(|| {
            transform(black_box(&toastmon_p), &TransformConfig::default()).expect("ok")
        })
    });
    g.finish();
}

fn bench_engines(c: &mut Criterion) {
    let program = bluetooth();
    let t = transform(&program, &TransformConfig { max_ts: 1, ..Default::default() }).expect("ok");
    let module = Module::lower(t.program);

    let mut g = c.benchmark_group("explicit_vs_summary");
    g.bench_function("explicit_bluetooth_max1", |b| {
        b.iter(|| ExplicitChecker::new(black_box(&module)).check())
    });
    g.bench_function("summary_bluetooth_max1", |b| {
        b.iter(|| SummaryChecker::new(black_box(&module)).check())
    });
    g.finish();
}

fn bench_kiss_vs_exhaustive(c: &mut Criterion) {
    let program = three_thread_workload();
    let module = Module::lower(program.clone());

    let mut g = c.benchmark_group("kiss_vs_exhaustive");
    g.bench_function("exhaustive_3_threads", |b| {
        b.iter(|| Explorer::new(black_box(&module)).check())
    });
    g.bench_function("kiss_max1_3_threads", |b| {
        b.iter(|| {
            Kiss::new().with_max_ts(1).with_validation(false).check_assertions(black_box(&program))
        })
    });
    g.finish();
}

fn bench_table_row(c: &mut Criterion) {
    let model = kiss_drivers::generate_driver(&kiss_drivers::paper_table()[5]); // toastmon
    c.bench_function("table1_row_toastmon", |b| {
        b.iter(|| {
            kiss_drivers::check_driver(
                black_box(&model),
                false,
                kiss_drivers::table::default_budget(),
            )
        })
    });
}

fn bench_opt_ablation(c: &mut Criterion) {
    // A padded program in the driver-corpus shape: the optimizer prunes
    // the padding before transformation.
    let pads: String = (0..60)
        .map(|i| format!("int pad_{i}(int a) {{ int c; c = a + {i}; return c; }}\n"))
        .collect();
    let src = format!(
        "{pads}int g; void w() {{ g = 1; }} void main() {{ async w(); assert g <= 1; }}"
    );
    let program = kiss_lang::parse_and_lower(&src).expect("valid");
    let mut g = c.benchmark_group("opt_ablation");
    g.bench_function("padded_check_plain", |b| {
        b.iter(|| Kiss::new().with_validation(false).check_assertions(black_box(&program)))
    });
    g.bench_function("padded_check_optimized", |b| {
        b.iter(|| {
            Kiss::new()
                .with_validation(false)
                .with_optimize(true)
                .check_assertions(black_box(&program))
        })
    });
    g.finish();
}

fn bench_alias_pruning(c: &mut Criterion) {
    let model = kiss_drivers::generate_driver(&kiss_drivers::paper_table()[9]); // fakemodem
    let program = kiss_lang::parse_and_lower(&model.source).expect("valid");
    let spec = model.race_spec(model.spec.spurious()); // a Real-class field
    let target = RaceTarget::resolve(&program, &spec).expect("resolves");

    let mut g = c.benchmark_group("alias_pruning");
    g.bench_function("race_transform_pruned", |b| {
        b.iter(|| {
            transform(
                black_box(&program),
                &TransformConfig { max_ts: 0, race: Some(target), alias_prune: true },
            )
            .expect("ok")
        })
    });
    g.bench_function("race_transform_unpruned", |b| {
        b.iter(|| {
            transform(
                black_box(&program),
                &TransformConfig { max_ts: 0, race: Some(target), alias_prune: false },
            )
            .expect("ok")
        })
    });
    g.finish();
}

fn bench_ltl_product(c: &mut Criterion) {
    // The liveness pipeline end-to-end: negated-formula tableau, then
    // the Büchi product of a spinlock that never releases (a real
    // accepting cycle) vs one that does (full exploration, no lasso).
    let stuck = kiss_lang::parse_and_lower(
        "int locked;
         void worker() { skip; }
         void main() { locked = 1; async worker(); while (locked == 1) { skip; } }",
    )
    .expect("valid");
    let released = kiss_lang::parse_and_lower(
        "int locked;
         void worker() { locked = 0; }
         void main() { locked = 1; async worker(); while (locked == 1) { skip; } }",
    )
    .expect("valid");
    let formula = kiss_ltl::parse("G (locked -> F !locked)").expect("valid formula");

    let mut g = c.benchmark_group("ltl_product");
    g.bench_function("spinlock_violated", |b| {
        b.iter(|| Kiss::new().check_ltl(black_box(&stuck), &formula).expect("resolves"))
    });
    g.bench_function("spinlock_holds", |b| {
        b.iter(|| Kiss::new().check_ltl(black_box(&released), &formula).expect("resolves"))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets =
        bench_transform,
        bench_engines,
        bench_kiss_vs_exhaustive,
        bench_table_row,
        bench_alias_pruning,
        bench_opt_ablation,
        bench_ltl_product
}
criterion_main!(benches);
