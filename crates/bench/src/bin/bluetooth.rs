//! Regenerates the paper's Bluetooth-driver case studies:
//!
//! * §2.2 — the race on `stoppingFlag`, found with `MAX = 0`;
//! * §2.3 — the `assert !stopped` reference-counting violation,
//!   missed at `MAX = 0` and found at `MAX = 1`;
//! * §6  — the fixed driver and the fakemodem-style refcounting pass.
//!
//! ```text
//! cargo run --release -p kiss-bench --bin bluetooth
//! ```

use kiss_core::checker::{Kiss, KissOutcome};
use kiss_drivers::bluetooth;

fn describe(outcome: &KissOutcome) -> String {
    match outcome {
        KissOutcome::NoErrorFound(stats) => {
            format!("no error found ({} steps, {} states)", stats.steps(), stats.states())
        }
        KissOutcome::AssertionViolation(r) => format!(
            "ASSERTION VIOLATION — {} threads, schedule pattern {:?}, {} context switches, replay-validated: {:?}",
            r.mapped.thread_count, r.mapped.pattern, r.mapped.context_switches, r.validated
        ),
        KissOutcome::RaceDetected(r) => format!(
            "RACE — {} at {} vs {} at {} (threads: {}, pattern {:?})",
            if r.first.is_write { "write" } else { "read" },
            r.first.span,
            if r.second.is_write { "write" } else { "read" },
            r.second.span,
            r.mapped.thread_count,
            r.mapped.pattern,
        ),
        other => format!("{other:?}"),
    }
}

fn main() {
    let buggy = bluetooth::buggy();
    let fixed = bluetooth::fixed();
    let fakemodem = bluetooth::fakemodem();

    println!("== §2.2 race detection on DEVICE_EXTENSION.stoppingFlag (MAX = 0) ==");
    let outcome =
        Kiss::new().with_max_ts(0).check_race_spec(&buggy, "DEVICE_EXTENSION.stoppingFlag").unwrap();
    println!("  {}", describe(&outcome));
    println!("  paper: race found at ts size 0  -> {}", verdictify(matches!(outcome, KissOutcome::RaceDetected(_))));

    println!("== §2.3 assertion checking, MAX = 0 ==");
    let outcome = Kiss::new().with_max_ts(0).check_assertions(&buggy);
    println!("  {}", describe(&outcome));
    println!("  paper: cannot be simulated with ts size 0 -> {}", verdictify(outcome.is_clean()));

    println!("== §2.3 assertion checking, MAX = 1 ==");
    let outcome = Kiss::new().with_max_ts(1).check_assertions(&buggy);
    println!("  {}", describe(&outcome));
    println!("  paper: violation found at ts size 1 -> {}", verdictify(outcome.found_error()));

    println!("== §6 fixed BCSP_IoIncrement, MAX = 1 ==");
    let outcome = Kiss::new().with_max_ts(1).check_assertions(&fixed);
    println!("  {}", describe(&outcome));
    println!("  paper: no errors after the fix -> {}", verdictify(outcome.is_clean()));

    println!("== §6 fakemodem-style reference counting, MAX = 1 ==");
    let outcome = Kiss::new().with_max_ts(1).check_assertions(&fakemodem);
    println!("  {}", describe(&outcome));
    println!("  paper: no errors in fakemodem -> {}", verdictify(outcome.is_clean()));
}

fn verdictify(ok: bool) -> &'static str {
    if ok {
        "REPRODUCED"
    } else {
        "DIVERGES"
    }
}
