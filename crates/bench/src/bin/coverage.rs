//! Coverage analysis (paper §4.1 and the §2 closing remark: the
//! simulated executions "are still varied enough to catch a variety of
//! common concurrency errors").
//!
//! Generates a deterministic family of small buggy concurrent programs
//! and measures which methods find each bug:
//!
//! * KISS at `MAX ∈ {0, 1, 2}` (balanced coverage, increasing with the
//!   knob),
//! * exhaustive exploration restricted to balanced schedules (the
//!   theoretical ceiling for KISS with unbounded `ts`),
//! * context-bounded exploration with 2 switches (the research line
//!   this paper seeded),
//! * free exhaustive exploration (ground truth),
//! * the random-schedule dynamic checker (100 trials).
//!
//! ```text
//! cargo run --release -p kiss-bench --bin coverage
//! ```

use kiss_conc::{DynamicChecker, Explorer, ScheduleMode};
use kiss_core::checker::Kiss;
use kiss_exec::Module;

/// A deterministic family of two-thread programs with a reachable
/// assertion failure (verified against ground truth below).
fn programs() -> Vec<(String, String)> {
    let mut out = Vec::new();
    // 1. Fork-then-observe bugs at varying distances.
    for dist in [0, 1, 2] {
        let pad: String = (0..dist).map(|i| format!("pad{i} = {i};\n")).collect();
        let decls: String = (0..dist).map(|i| format!("int pad{i};\n")).collect();
        out.push((
            format!("fork-observe (pad {dist})"),
            format!(
                "int g;\n{decls}void w() {{ g = 1; }}\nvoid main() {{ async w(); {pad}assert g == 0; }}"
            ),
        ));
    }
    // 2. Suspend/resume bug (needs MAX >= 1).
    out.push((
        "mid-call interleaving".into(),
        "int x;
         void stopper() { x = 1; }
         void worker() { int t; t = x; assert t == x; }
         void main() { async stopper(); worker(); }"
            .into(),
    ));
    // 3. Ping-pong handshake (unbalanced: KISS must miss it).
    out.push((
        "ping-pong handshake".into(),
        "int phase;
         void other() { assume phase == 1; phase = 2; assume phase == 3; phase = 4; }
         void main() { async other(); phase = 1; assume phase == 2; phase = 3; assume phase == 4; assert false; }"
            .into(),
    ));
    // 4. Torn read-modify-write.
    out.push((
        "torn increment".into(),
        "int g; bool done;
         void bump() { int t; t = g; g = t + 1; done = true; }
         void main() { int t; async bump(); t = g; g = t + 1; if (done) { assert g == 2; } }"
            .into(),
    ));
    out
}

fn main() {
    println!(
        "{:<26} {:>6} {:>6} {:>6} {:>9} {:>6} {:>6} {:>8}",
        "bug", "KISS0", "KISS1", "KISS2", "balanced", "CB(2)", "free", "dyn(100)"
    );
    let mut finds = [0usize; 7];
    let mut total = 0usize;
    for (name, src) in programs() {
        let program = kiss_lang::parse_and_lower(&src).expect("program is valid");
        let module = Module::lower(program.clone());

        let kiss: Vec<bool> = (0..3)
            .map(|max_ts| {
                Kiss::new().with_max_ts(max_ts).with_validation(false).check_assertions(&program).found_error()
            })
            .collect();
        let balanced =
            Explorer::new(&module).with_mode(ScheduleMode::Balanced).check().is_fail();
        let cb2 =
            Explorer::new(&module).with_mode(ScheduleMode::ContextBound(2)).check().is_fail();
        let free = Explorer::new(&module).check().is_fail();
        let dynamic = DynamicChecker::new(&module).with_trials(100).with_seed(5).run().found_bug();

        assert!(free, "family invariant: every program has a reachable bug: {name}");
        let row = [kiss[0], kiss[1], kiss[2], balanced, cb2, free, dynamic];
        for (i, &b) in row.iter().enumerate() {
            finds[i] += b as usize;
        }
        total += 1;
        let mark = |b: bool| if b { "yes" } else { "-" };
        println!(
            "{:<26} {:>6} {:>6} {:>6} {:>9} {:>6} {:>6} {:>8}",
            name,
            mark(kiss[0]),
            mark(kiss[1]),
            mark(kiss[2]),
            mark(balanced),
            mark(cb2),
            mark(free),
            mark(dynamic)
        );
    }
    println!(
        "{:<26} {:>6} {:>6} {:>6} {:>9} {:>6} {:>6} {:>8}",
        format!("found / {total}"),
        finds[0],
        finds[1],
        finds[2],
        finds[3],
        finds[4],
        finds[5],
        finds[6]
    );
    println!();
    println!("expected shape: KISS coverage grows with MAX toward the balanced ceiling;");
    println!("only unbalanced bugs (the handshake) separate balanced from free exploration;");
    println!("the dynamic checker's coverage depends on schedule luck.");
}
