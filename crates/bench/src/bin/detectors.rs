//! Detector comparison — the paper's §6.1/§7 discussion, measured.
//!
//! Compares four approaches on characteristic concurrency scenarios:
//!
//! * **KISS** (race mode, `MAX = 0`) — static, never reports false
//!   errors, handles any synchronization expressible in the language;
//! * **lockset** (Eraser-style, 100 random runs) — "can handle only the
//!   simplest synchronization mechanism of locks";
//! * **happens-before** (vector clocks, 100 random runs) — precise per
//!   execution but coverage-limited;
//! * **exhaustive** — the ground-truth interleaving explorer (with an
//!   observer assertion where applicable).
//!
//! ```text
//! cargo run --release -p kiss-bench --bin detectors
//! ```

use kiss_conc::{hb_check, lockset_check};
use kiss_core::checker::{Kiss, KissOutcome};
use kiss_exec::Module;

struct Scenario {
    name: &'static str,
    src: &'static str,
    target: &'static str,
    /// Is there a real race on the target (ground truth)?
    real_race: bool,
}

const SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "plain write/write race",
        src: "int r; void w() { r = 1; } void main() { async w(); r = 2; }",
        target: "r",
        real_race: true,
    },
    Scenario {
        name: "lock-protected counter",
        src: "int l; int r;
              void w() { atomic { assume l == 0; l = 1; } r = r + 1; atomic { l = 0; } }
              void main() { async w(); atomic { assume l == 0; l = 1; } r = r + 1; atomic { l = 0; } }",
        target: "r",
        real_race: false,
    },
    Scenario {
        name: "event-ordered handoff",
        src: "bool ev; int r;
              void consumer() { assume ev; r = r + 1; }
              void main() { async consumer(); r = 1; ev = true; }",
        target: "r",
        // The write and the consumer's access are strictly ordered by
        // the event: not a race.
        real_race: false,
    },
    Scenario {
        name: "benign counter read (unannotated)",
        src: "int l; int r; int d;
              void c() { atomic { assume l == 0; l = 1; } r = r + 1; atomic { l = 0; } }
              void main() { int t; async c(); t = r; if (t == 0) { d = 1; } }",
        target: "r",
        // Technically a race (unsynchronized read vs locked write).
        real_race: true,
    },
];

fn main() {
    println!(
        "{:<32} {:>6} | {:>6} {:>8} {:>6} | notes",
        "scenario", "truth", "KISS", "lockset", "HB"
    );
    for sc in SCENARIOS {
        let program = kiss_lang::parse_and_lower(sc.src).expect("scenario parses");
        let module = Module::lower(program.clone());

        let kiss = match Kiss::new().check_race_spec(&program, sc.target).expect("target resolves") {
            KissOutcome::RaceDetected(_) => true,
            KissOutcome::NoErrorFound(_) => false,
            other => panic!("unexpected: {other:?}"),
        };
        let ls = lockset_check(&module, 100, 11).has_warnings();
        let hb = hb_check(&module, 100, 11).has_races();

        let mark = |b: bool| if b { "race" } else { "-" };
        let mut notes = Vec::new();
        if kiss == sc.real_race && ls != sc.real_race {
            notes.push("lockset wrong, KISS right");
        }
        if ls && !sc.real_race {
            notes.push("lockset false positive");
        }
        if !kiss && sc.real_race {
            notes.push("KISS missed (coverage)");
        }
        println!(
            "{:<32} {:>6} | {:>6} {:>8} {:>6} | {}",
            sc.name,
            mark(sc.real_race),
            mark(kiss),
            mark(ls),
            mark(hb),
            notes.join("; ")
        );
    }
    println!();
    println!("expected shape (paper §6.1/§7): KISS matches ground truth on all four.");
    println!("The dynamic detectors only understand lock and fork edges, so both");
    println!("misjudge the event-ordered handoff (lockset and vector clocks cannot");
    println!("see `assume`-based ordering) — the paper's point that modeling diverse");
    println!("synchronization is what makes KISS practical for systems code. The");
    println!("lockset detector also misses the write-then-read benign-counter race");
    println!("when the sampled order leaves the cell in the non-reporting Shared");
    println!("state — the coverage limitation of dynamic tools.");
}
