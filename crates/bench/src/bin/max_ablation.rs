//! The `MAX` coverage/cost knob (paper §2: "The set ts provides a
//! tuning knob to trade off coverage for computational cost of
//! analysis. Increasing the size of ts increases the number of
//! simulated behaviors at the cost of increasing the global state
//! space...").
//!
//! For a family of handshake-depth bugs (a bug at depth `d` needs `d`
//! suspend/resume rounds, hence `ts` capacity), reports for each `MAX`
//! which depths are caught and what the search costs.
//!
//! ```text
//! cargo run --release -p kiss-bench --bin max_ablation
//! ```

use kiss_core::checker::{Kiss, KissOutcome};

/// A bug that requires `depth` nested suspensions to expose: main
/// forks `depth` stagers; each stager bumps the phase once; worker
/// watches the phase between its statements. Exposing the assert
/// needs every stager to run *between* worker statements, so `ts`
/// must hold them all.
fn workload(depth: usize) -> String {
    let mut src = String::from("int phase;\n");
    for d in 0..depth {
        src.push_str(&format!("void stager{d}() {{ phase = phase + 1; }}\n"));
    }
    let spawns: String = (0..depth).map(|d| format!("    async stager{d}();\n")).collect();
    // worker observes the phase advance step by step.
    let mut observes = String::new();
    for d in 1..=depth {
        observes.push_str(&format!("    t = phase;\n    if (t == {d}) {{ c = c + 1; }}\n"));
    }
    src.push_str(&format!(
        "void worker() {{\n    int t;\n    int c;\n    c = 0;\n{observes}    assert c < {depth};\n}}\n"
    ));
    src.push_str(&format!("void main() {{\n{spawns}    worker();\n}}\n"));
    src
}

fn main() {
    let max_depth = 4;
    println!("{:>6} | per-depth verdict (a depth-d bug needs MAX >= d-1) | steps at deepest", "MAX");
    for max_ts in 0..=max_depth {
        let mut row = String::new();
        let mut last_steps = 0u64;
        for depth in 1..=max_depth {
            let program = kiss_lang::parse_and_lower(&workload(depth)).expect("workload is valid");
            let outcome =
                Kiss::new().with_max_ts(max_ts).with_validation(false).check_assertions(&program);
            let (mark, steps) = match outcome {
                KissOutcome::AssertionViolation(r) => ("FOUND ", r.stats.steps()),
                KissOutcome::NoErrorFound(s) => ("miss  ", s.steps()),
                other => panic!("unexpected: {other:?}"),
            };
            row.push_str(&format!("d{depth}:{mark} "));
            last_steps = steps;
        }
        println!("{max_ts:>6} | {row} | {last_steps}");
    }
    println!();
    println!("expected shape: MAX = k catches exactly the bugs of depth <= k+1,");
    println!("and the step count (cost) grows with MAX.");
}
