//! Consistency checker for observability artifacts: validates that a
//! JSONL event trace (from `--trace-out`) parses and is internally
//! consistent, and that the `--metrics` report agrees with the trace's
//! final `run_summary` event.
//!
//! ```text
//! cargo run -p kiss-bench --bin obs_verify -- <trace.jsonl> [metrics.json]
//! ```
//!
//! Checks performed:
//!
//! * every line is a JSON object whose `event` field is a known kind;
//! * every check label is started exactly once and finished exactly
//!   once, and every per-check event names a started check;
//! * the sum of per-check `retries` equals the number of
//!   `retry_escalated` events;
//! * serve-mode accounting balances: every `cache_hit`, `cache_miss`,
//!   `request_shed`, and `request_done` names a received request id,
//!   each received request is answered exactly once (`request_done`
//!   count equals `request_received` — shed requests are answered with
//!   a typed `overloaded` response), and
//!   requests = cache hits + cache misses + requests shed;
//! * spans balance: every `span_open` is matched by exactly one
//!   `span_close` with the same (trace, span) identity and no span
//!   closes twice or without opening; root `recv` spans name the
//!   request they trace and no two requests share a trace id;
//! * the summary report's serving counters satisfy the same balance,
//!   agree with the trace when the report covers exactly this trace,
//!   and its latency histogram holds one sample per request (so the
//!   per-request percentiles are well-defined);
//! * exactly one `run_summary` event exists, it is the last line, and
//!   its report covers at least every non-cancelled finished check
//!   (more only when the report merges resumed sessions);
//! * when the report covers exactly the trace's checks (no merged
//!   sessions), each engine's summed `store_bytes` in the report equals
//!   the sum over that engine's `check_finished` events;
//! * the metrics file, when given, parses as a `RunReport` whose
//!   deterministic counts match the trace's summary report.
//!
//! Exits 0 when consistent, 1 on any inconsistency, 2 on usage or I/O
//! problems.

use std::collections::BTreeMap;
use std::process::ExitCode;

use kiss_obs::json::Json;
use kiss_obs::RunReport;

const KINDS: [&str; 15] = [
    "check_started",
    "engine_tick",
    "retry_escalated",
    "budget_violated",
    "check_finished",
    "request_received",
    "cache_hit",
    "cache_miss",
    "request_done",
    "request_shed",
    "fault_injected",
    "client_retry",
    "span_open",
    "span_close",
    "run_summary",
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (trace_path, metrics_path) = match args.as_slice() {
        [t] => (t.as_str(), None),
        [t, m] => (t.as_str(), Some(m.as_str())),
        _ => {
            eprintln!("usage: obs_verify <trace.jsonl> [metrics.json]");
            return ExitCode::from(2);
        }
    };
    let trace = match std::fs::read_to_string(trace_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("obs_verify: cannot read `{trace_path}`: {e}");
            return ExitCode::from(2);
        }
    };
    let metrics = match metrics_path.map(std::fs::read_to_string) {
        None => None,
        Some(Ok(s)) => Some(s),
        Some(Err(e)) => {
            eprintln!("obs_verify: cannot read metrics file: {e}");
            return ExitCode::from(2);
        }
    };

    match verify(&trace, metrics.as_deref()) {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("obs_verify: INCONSISTENT: {msg}");
            ExitCode::from(1)
        }
    }
}

fn verify(trace: &str, metrics: Option<&str>) -> Result<String, String> {
    let mut kind_counts: BTreeMap<String, u64> = BTreeMap::new();
    let mut started: BTreeMap<String, u64> = BTreeMap::new();
    let mut finished: BTreeMap<String, u64> = BTreeMap::new();
    let mut finished_retries = 0u64;
    let mut cancelled = 0u64;
    let mut store_by_engine: BTreeMap<String, u64> = BTreeMap::new();
    let mut received: BTreeMap<String, u64> = BTreeMap::new();
    let mut hits = 0u64;
    let mut misses = 0u64;
    let mut shed = 0u64;
    let mut done = 0u64;
    // Span balance: (trace, span) -> (opens, closes, name). Workers
    // close spans opened by the reader thread, so an open and its
    // close may land in either order in the file; only the final
    // counts are constrained.
    let mut spans: BTreeMap<(String, u64), (u64, u64, String)> = BTreeMap::new();
    // Root `recv` spans: trace id -> request id, for uniqueness.
    let mut recv_traces: BTreeMap<String, String> = BTreeMap::new();
    let mut summary: Option<(usize, RunReport)> = None;
    let mut lines = 0usize;

    for (i, line) in trace.lines().enumerate() {
        let n = i + 1;
        lines = n;
        let v = Json::parse(line).ok_or(format!("line {n}: not valid JSON"))?;
        let kind = v
            .get("event")
            .and_then(Json::as_str)
            .ok_or(format!("line {n}: missing `event` field"))?;
        if !KINDS.contains(&kind) {
            return Err(format!("line {n}: unknown event kind `{kind}`"));
        }
        *kind_counts.entry(kind.to_string()).or_insert(0) += 1;
        let check = v.get("check").and_then(Json::as_str);
        match kind {
            "check_started" => {
                let check = check.ok_or(format!("line {n}: check_started without check"))?;
                *started.entry(check.to_string()).or_insert(0) += 1;
            }
            "check_finished" => {
                let check = check.ok_or(format!("line {n}: check_finished without check"))?;
                if !started.contains_key(check) {
                    return Err(format!("line {n}: `{check}` finished but never started"));
                }
                *finished.entry(check.to_string()).or_insert(0) += 1;
                finished_retries += v
                    .get("retries")
                    .and_then(Json::as_u64)
                    .ok_or(format!("line {n}: check_finished without retries"))?;
                if v.get("bound_reason").and_then(Json::as_str) == Some("cancelled") {
                    cancelled += 1;
                }
                // Pre-gauge traces lack the field; they sum to 0 and the
                // summary comparison below is skipped for merged reports.
                let bytes = v.get("store_bytes").and_then(Json::as_u64).unwrap_or(0);
                if let Some(engine) = v.get("engine").and_then(Json::as_str) {
                    *store_by_engine.entry(engine.to_string()).or_insert(0) += bytes;
                }
            }
            "engine_tick" | "budget_violated" | "retry_escalated" => {
                let check = check.ok_or(format!("line {n}: {kind} without check"))?;
                if !started.contains_key(check) {
                    return Err(format!("line {n}: {kind} for unstarted check `{check}`"));
                }
            }
            "request_received" => {
                let request = v
                    .get("request")
                    .and_then(Json::as_str)
                    .ok_or(format!("line {n}: request_received without request id"))?;
                *received.entry(request.to_string()).or_insert(0) += 1;
            }
            "cache_hit" | "cache_miss" | "request_shed" | "request_done" => {
                let request = v
                    .get("request")
                    .and_then(Json::as_str)
                    .ok_or(format!("line {n}: {kind} without request id"))?;
                if !received.contains_key(request) {
                    return Err(format!("line {n}: {kind} for unreceived request `{request}`"));
                }
                match kind {
                    "cache_hit" => hits += 1,
                    "cache_miss" => misses += 1,
                    "request_shed" => shed += 1,
                    _ => {
                        done += 1;
                        if v.get("wall_ms").and_then(Json::as_u64).is_none() {
                            return Err(format!("line {n}: request_done without wall_ms"));
                        }
                    }
                }
            }
            // Client-side and injection events have no pairing
            // constraints; the counts still land in the summary checks.
            "fault_injected" | "client_retry" => {}
            "span_open" | "span_close" => {
                let trace = v
                    .get("trace")
                    .and_then(Json::as_str)
                    .ok_or(format!("line {n}: {kind} without trace id"))?;
                let span = v
                    .get("span")
                    .and_then(Json::as_u64)
                    .ok_or(format!("line {n}: {kind} without span id"))?;
                let name = v
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or(format!("line {n}: {kind} without name"))?;
                let entry = spans
                    .entry((trace.to_string(), span))
                    .or_insert((0, 0, name.to_string()));
                if entry.2 != name {
                    return Err(format!(
                        "line {n}: span {span} of trace {trace} is named `{name}` here \
                         but `{}` elsewhere",
                        entry.2
                    ));
                }
                if kind == "span_open" {
                    entry.0 += 1;
                    if name == "recv" {
                        let request = v
                            .get("request")
                            .and_then(Json::as_str)
                            .ok_or(format!("line {n}: recv span without request id"))?;
                        if let Some(prior) =
                            recv_traces.insert(trace.to_string(), request.to_string())
                        {
                            return Err(format!(
                                "line {n}: trace {trace} roots request `{request}` but \
                                 already rooted `{prior}`; trace ids must be unique \
                                 per request"
                            ));
                        }
                    }
                } else {
                    entry.1 += 1;
                    if v.get("wall_ms").and_then(Json::as_u64).is_none() {
                        return Err(format!("line {n}: span_close without wall_ms"));
                    }
                }
            }
            "run_summary" => {
                if summary.is_some() {
                    return Err(format!("line {n}: second run_summary"));
                }
                let report = v
                    .get("report")
                    .and_then(RunReport::from_value)
                    .ok_or(format!("line {n}: run_summary report does not parse"))?;
                summary = Some((n, report));
            }
            _ => unreachable!("kind was validated against KINDS"),
        }
    }

    if let Some((check, count)) = started.iter().find(|(_, c)| **c != 1) {
        return Err(format!("`{check}` started {count} times"));
    }
    if let Some((check, count)) = finished.iter().find(|(_, c)| **c != 1) {
        return Err(format!("`{check}` finished {count} times"));
    }
    if started.len() != finished.len() {
        let open: Vec<&str> = started
            .keys()
            .filter(|c| !finished.contains_key(*c))
            .map(String::as_str)
            .collect();
        return Err(format!("{} check(s) never finished: {}", open.len(), open.join(", ")));
    }
    let escalations = kind_counts.get("retry_escalated").copied().unwrap_or(0);
    if finished_retries != escalations {
        return Err(format!(
            "finished checks report {finished_retries} retries but the trace has \
             {escalations} retry_escalated event(s)"
        ));
    }
    for ((trace, span), (opens, closes, name)) in &spans {
        if *opens == 0 {
            return Err(format!(
                "span {span} (`{name}`) of trace {trace} closed but never opened"
            ));
        }
        if *opens > 1 {
            return Err(format!(
                "span {span} (`{name}`) of trace {trace} opened {opens} times"
            ));
        }
        if *closes != 1 {
            return Err(format!(
                "span {span} (`{name}`) of trace {trace} opened once but closed \
                 {closes} time(s)"
            ));
        }
    }
    let requests: u64 = received.values().sum();
    if hits + misses + shed != requests {
        return Err(format!(
            "trace received {requests} request(s) but resolved {hits} cache hit(s) \
             + {misses} cache miss(es) + {shed} shed"
        ));
    }
    if done != requests {
        return Err(format!(
            "trace received {requests} request(s) but has {done} request_done event(s)"
        ));
    }
    let (summary_line, report) =
        summary.ok_or("no run_summary event".to_string())?;
    if summary_line != lines {
        return Err(format!("run_summary at line {summary_line} is not the last line ({lines})"));
    }
    let counted = finished.len() as u64 - cancelled;
    if report.checks < counted {
        return Err(format!(
            "summary report covers {} checks but the trace finished {counted} \
             (excluding {cancelled} cancelled)",
            report.checks
        ));
    }
    let histogram: u64 = report.outcomes.values().sum();
    if histogram != report.checks {
        return Err(format!(
            "summary outcome histogram sums to {histogram} but reports {} checks",
            report.checks
        ));
    }
    // The store gauges are additive, so when the report covers exactly
    // this trace's checks, each engine's total must equal the sum over
    // its check_finished events. A merged or resumable report covers a
    // different check set, so the equality does not apply there.
    if report.checks == finished.len() as u64 {
        for (engine, totals) in &report.engines {
            let traced = store_by_engine.get(engine).copied().unwrap_or(0);
            if totals.store_bytes != traced {
                return Err(format!(
                    "engine {engine}: summary reports {} store bytes but the trace's \
                     check_finished events sum to {traced}",
                    totals.store_bytes
                ));
            }
        }
    }

    if report.cache_hits + report.cache_misses + report.requests_shed != report.requests {
        return Err(format!(
            "summary reports {} request(s) but {} cache hit(s) + {} cache miss(es) \
             + {} shed",
            report.requests, report.cache_hits, report.cache_misses, report.requests_shed
        ));
    }
    if report.request_latency.count() != report.requests {
        return Err(format!(
            "summary reports {} request(s) but its latency histogram holds {} \
             sample(s); per-request percentiles need one sample per request",
            report.requests,
            report.request_latency.count()
        ));
    }
    if report.requests < requests {
        return Err(format!(
            "summary report covers {} request(s) but the trace received {requests}",
            report.requests
        ));
    }
    // As with store gauges: when the report covers exactly this trace's
    // requests, the hit/miss/shed split must match the traced events.
    if report.requests == requests
        && (report.cache_hits, report.cache_misses, report.requests_shed)
            != (hits, misses, shed)
    {
        return Err(format!(
            "summary reports {} hit(s) / {} miss(es) / {} shed but the trace has \
             {hits} / {misses} / {shed}",
            report.cache_hits, report.cache_misses, report.requests_shed
        ));
    }

    if let Some(text) = metrics {
        let from_file = RunReport::from_json(text.trim())
            .ok_or("metrics file does not parse as a RunReport".to_string())?;
        if !from_file.counts_match(&report) {
            return Err("metrics file disagrees with the trace's run_summary".to_string());
        }
    }

    let counts: Vec<String> =
        kind_counts.iter().map(|(k, v)| format!("{k}={v}")).collect();
    let serving = if requests > 0 {
        let shed_note = if shed > 0 { format!(" / {shed} shed") } else { String::new() };
        format!(", {requests} request(s) ({hits} hit / {misses} miss{shed_note})")
    } else {
        String::new()
    };
    let spanning = if spans.is_empty() {
        String::new()
    } else {
        let traces: std::collections::BTreeSet<&str> =
            spans.keys().map(|(t, _)| t.as_str()).collect();
        format!(", {} span(s) balanced across {} trace(s)", spans.len(), traces.len())
    };
    Ok(format!(
        "trace OK: {lines} events ({}), {} check(s){serving}{spanning}, \
         summary covers {} check(s){}",
        counts.join(" "),
        finished.len(),
        report.checks,
        if metrics.is_some() { ", metrics file matches" } else { "" },
    ))
}

#[cfg(test)]
mod tests {
    use super::verify;
    use kiss_obs::{Aggregator, CheckMetrics, Event, Obs};

    fn trace_of(events: &[Event]) -> (String, String) {
        let agg = Aggregator::new();
        let obs = Obs::new(agg.clone());
        for e in events {
            obs.emit(|_| e.clone());
        }
        let report = agg.report();
        let mut trace: String =
            events.iter().map(|e| format!("{}\n", e.to_json())).collect();
        trace.push_str(&format!(
            "{}\n",
            Event::RunSummary { report: report.clone() }.to_json()
        ));
        (trace, format!("{}\n", report.to_json()))
    }

    fn lifecycle(check: &str, verdict: &str) -> [Event; 2] {
        [
            Event::CheckStarted { check: check.to_string() },
            Event::CheckFinished {
                metrics: CheckMetrics {
                    check: check.to_string(),
                    verdict: verdict.to_string(),
                    ..CheckMetrics::default()
                },
            },
        ]
    }

    #[test]
    fn a_consistent_trace_verifies() {
        let mut events = lifecycle("a/0", "pass").to_vec();
        events.extend(lifecycle("a/1", "race"));
        let (trace, metrics) = trace_of(&events);
        verify(&trace, Some(&metrics)).unwrap();
    }

    #[test]
    fn store_gauges_must_sum_across_the_trace() {
        let mut m = CheckMetrics {
            check: "a/0".to_string(),
            engine: "bfs".to_string(),
            verdict: "pass".to_string(),
            store_bytes: 64,
            ..CheckMetrics::default()
        };
        // Consistent: the summary observed exactly the traced check.
        let (trace, _) = trace_of(&[
            Event::CheckStarted { check: "a/0".to_string() },
            Event::CheckFinished { metrics: m.clone() },
        ]);
        verify(&trace, None).unwrap();
        // Tampered: the summary claims double the traced store bytes.
        let mut report = kiss_obs::RunReport::default();
        m.store_bytes = 128;
        report.observe(&m);
        m.store_bytes = 64;
        let trace = format!(
            "{}\n{}\n{}\n",
            Event::CheckStarted { check: "a/0".to_string() }.to_json(),
            Event::CheckFinished { metrics: m }.to_json(),
            Event::RunSummary { report }.to_json(),
        );
        assert!(verify(&trace, None).unwrap_err().contains("store bytes"));
    }

    fn request_lifecycle(id: &str, hit: bool) -> [Event; 3] {
        let request = id.to_string();
        [
            Event::RequestReceived { request: request.clone(), queue_depth: 0 },
            if hit {
                Event::CacheHit { request: request.clone() }
            } else {
                Event::CacheMiss { request: request.clone() }
            },
            Event::RequestDone { request, verdict: "pass".to_string(), wall_ms: 3, queue_depth: 0 },
        ]
    }

    #[test]
    fn a_serving_trace_verifies_and_balances() {
        let mut events = request_lifecycle("q0", false).to_vec();
        events.extend(request_lifecycle("q1", true));
        let (trace, metrics) = trace_of(&events);
        let summary = verify(&trace, Some(&metrics)).unwrap();
        assert!(summary.contains("2 request(s) (1 hit / 1 miss)"), "{summary}");
    }

    #[test]
    fn serving_imbalances_are_reported() {
        // A hit for a request the server never received.
        let (trace, _) = trace_of(&[Event::CacheHit { request: "ghost".to_string() }]);
        assert!(verify(&trace, None).unwrap_err().contains("unreceived"));
        // A request classified miss but never answered.
        let [recv, miss, _] = request_lifecycle("q0", false);
        let (trace, _) = trace_of(&[recv.clone(), miss]);
        assert!(verify(&trace, None).unwrap_err().contains("request_done"));
        // A request answered without a hit/miss classification.
        let [_, _, done] = request_lifecycle("q0", false);
        let (trace, _) = trace_of(&[recv, done]);
        assert!(verify(&trace, None).unwrap_err().contains("cache hit(s)"));
    }

    fn shed_lifecycle(id: &str) -> [Event; 3] {
        let request = id.to_string();
        [
            Event::RequestReceived { request: request.clone(), queue_depth: 8 },
            Event::RequestShed { request: request.clone(), queue_depth: 8 },
            Event::RequestDone {
                request,
                verdict: "overloaded".to_string(),
                wall_ms: 5,
                queue_depth: 8,
            },
        ]
    }

    #[test]
    fn a_trace_with_shed_requests_and_faults_balances() {
        let mut events = request_lifecycle("q0", false).to_vec();
        events.extend(shed_lifecycle("q1"));
        events.push(Event::FaultInjected {
            point: "serve.enqueue".to_string(),
            action: "error".to_string(),
        });
        events.push(Event::ClientRetry {
            attempt: 2,
            wait_ms: 12,
            reason: "overloaded".to_string(),
        });
        let (trace, metrics) = trace_of(&events);
        let summary = verify(&trace, Some(&metrics)).unwrap();
        assert!(summary.contains("2 request(s) (0 hit / 1 miss / 1 shed)"), "{summary}");
    }

    #[test]
    fn shed_imbalances_are_reported() {
        // A shed for a request the server never received.
        let (trace, _) = trace_of(&[Event::RequestShed {
            request: "ghost".to_string(),
            queue_depth: 1,
        }]);
        assert!(verify(&trace, None).unwrap_err().contains("unreceived"));
        // A shed request must still be answered (typed overloaded).
        let [recv, shed, _] = shed_lifecycle("q0");
        let (trace, _) = trace_of(&[recv, shed]);
        assert!(verify(&trace, None).unwrap_err().contains("request_done"));
    }

    fn span_pair(trace: &str, span: u64, name: &str, request: Option<&str>) -> [Event; 2] {
        [
            Event::SpanOpen {
                trace: trace.to_string(),
                span,
                parent: 0,
                name: name.to_string(),
                request: request.map(str::to_string),
            },
            Event::SpanClose {
                trace: trace.to_string(),
                span,
                name: name.to_string(),
                wall_ms: 1,
            },
        ]
    }

    #[test]
    fn balanced_spans_verify_even_out_of_order() {
        // One close lands before its open: a worker's close can beat
        // the reader's open into the shared sink, so only the final
        // counts are constrained, not the order.
        let mut events = request_lifecycle("q0", false).to_vec();
        let [recv_open, recv_close] = span_pair("00000000000000ab", 1, "recv", Some("q0"));
        let [queued_open, queued_close] = span_pair("00000000000000ab", 2, "queued", None);
        events.extend([recv_open, queued_close, queued_open, recv_close]);
        let (trace, _) = trace_of(&events);
        let summary = verify(&trace, None).unwrap();
        assert!(summary.contains("2 span(s) balanced across 1 trace(s)"), "{summary}");
    }

    #[test]
    fn span_imbalances_and_trace_reuse_are_reported() {
        // Opened but never closed.
        let [open, _] = span_pair("00000000000000ab", 1, "check", None);
        let (trace, _) = trace_of(&[open]);
        assert!(verify(&trace, None).unwrap_err().contains("closed 0 time(s)"));
        // Closed but never opened.
        let [_, close] = span_pair("00000000000000ab", 1, "check", None);
        let (trace, _) = trace_of(&[close]);
        assert!(verify(&trace, None).unwrap_err().contains("never opened"));
        // Two requests rooted under the same trace id.
        let [r0, c0] = span_pair("00000000000000ab", 1, "recv", Some("q0"));
        let [r1, c1] = span_pair("00000000000000ab", 2, "recv", Some("q1"));
        let (trace, _) = trace_of(&[r0, c0, r1, c1]);
        assert!(verify(&trace, None).unwrap_err().contains("unique"));
    }

    #[test]
    fn summary_serving_counters_must_match_the_trace() {
        // Hand-build a summary whose hit/miss split disagrees with the
        // traced events (report claims a hit, trace shows a miss).
        let events = request_lifecycle("q0", false);
        let agg = Aggregator::new();
        let obs = Obs::new(agg.clone());
        for e in &request_lifecycle("q0", true) {
            obs.emit(|_| e.clone());
        }
        let tampered = agg.report();
        let mut trace: String =
            events.iter().map(|e| format!("{}\n", e.to_json())).collect();
        trace.push_str(&format!("{}\n", Event::RunSummary { report: tampered }.to_json()));
        let err = verify(&trace, None).unwrap_err();
        assert!(err.contains("but the trace has"), "{err}");
    }

    #[test]
    fn inconsistencies_are_reported() {
        assert!(verify("not json\n", None).is_err());
        // Finished without started.
        let [_, finish] = lifecycle("a/0", "pass");
        let (trace, _) = trace_of(&[finish]);
        assert!(verify(&trace, None).unwrap_err().contains("never started"));
        // Started without finished.
        let [start, _] = lifecycle("a/0", "pass");
        let (trace, _) = trace_of(&[start]);
        assert!(verify(&trace, None).unwrap_err().contains("never finished"));
        // Metrics file disagreeing with the summary.
        let (trace, _) = trace_of(&lifecycle("a/0", "pass"));
        let (_, other) = trace_of(&lifecycle("b/0", "race"));
        assert!(verify(&trace, Some(&other)).unwrap_err().contains("disagrees"));
    }
}
