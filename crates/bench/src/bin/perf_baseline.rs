//! Performance baseline for the sequential engines and the end-to-end
//! table run — the perf trajectory's fixed measuring stick.
//!
//! ```text
//! cargo run --release -p kiss-bench --bin perf_baseline -- \
//!     [--quick] [--iters <n>] [--jobs <n>] [--out <path>] [--compare <path>]
//! ```
//!
//! Four measurements, written as one JSON object (default
//! `BENCH_seq.json`, the checked-in baseline):
//!
//! * **engines** — each sequential engine (`explicit`, `bfs`,
//!   `summary`) checks the whole `kiss-samples` suite through the KISS
//!   pipeline (the suite is parsed once, outside the timed region);
//!   wall-clock is the median of `--iters` iterations and steps/sec
//!   divides the (deterministic) step total by it.
//! * **table1** — an end-to-end corpus run at a reduced per-field
//!   budget, once with `jobs = 1` and once with `--jobs` workers, so
//!   the serial/parallel ratio is recorded alongside the raw numbers.
//! * **memory** — one BFS pass over the samples recording the state
//!   store's gauges: states stored, store bytes, and the peak frontier.
//! * **parallel_explore** — one wide-layer BFS workload explored with
//!   1, 2, and 4 workers inside a *single* check (`--explore-jobs`).
//!   Steps, stored states, and the frontier peak must be identical at
//!   every worker count — the run aborts if they diverge — and the
//!   recorded `hardware_threads` says how much parallelism the
//!   measuring machine could actually express: on fewer cores than
//!   workers the extra legs measure overhead, not speedup, so consumers
//!   (and the `--compare` gate) only read the legs the machine covers.
//!
//! `--quick` shrinks the iteration count and the table budget for CI
//! smoke use. `--compare <path>` reads a previously written baseline
//! and exits 1 if any engine's steps/sec regressed more than 30%
//! against it, if the BFS store-bytes footprint grew more than 50%, or
//! if a parallel-exploration leg the machine can express regressed
//! more than 30% (each gate only when the baseline records its
//! section) — engine throughput and store footprint are
//! workload-independent across modes, so a `--quick` run may be
//! compared against a full baseline (the table numbers are
//! informational and never gated).

use std::time::Instant;

use kiss_bench::runner::default_jobs;
use kiss_core::checker::{Engine, Kiss};
use kiss_core::StoreKind;
use kiss_drivers::table::check_corpus_parallel;
use kiss_core::supervisor::Supervisor;
use kiss_obs::json::Json;
use kiss_seq::Budget;

const USAGE: &str =
    "options: --quick --iters <n> --jobs <n> --store legacy|cow --out <path> --compare <path>";

struct Options {
    quick: bool,
    iters: usize,
    jobs: usize,
    store: StoreKind,
    out: String,
    compare: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        quick: false,
        iters: 0,
        jobs: default_jobs(),
        store: StoreKind::default(),
        out: "BENCH_seq.json".to_string(),
        compare: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--store" => {
                let v = args.next().ok_or_else(|| format!("{arg} needs a value\n{USAGE}"))?;
                opts.store =
                    StoreKind::parse(&v).ok_or_else(|| format!("unknown store `{v}`\n{USAGE}"))?;
            }
            "--iters" => {
                let v = args.next().ok_or_else(|| format!("{arg} needs a value\n{USAGE}"))?;
                opts.iters = v.parse().map_err(|_| format!("{arg}: cannot parse `{v}`"))?;
            }
            "--jobs" => {
                let v = args.next().ok_or_else(|| format!("{arg} needs a value\n{USAGE}"))?;
                opts.jobs = v.parse().map_err(|_| format!("{arg}: cannot parse `{v}`"))?;
                if opts.jobs == 0 {
                    return Err(format!("--jobs needs at least 1\n{USAGE}"));
                }
            }
            "--out" => {
                opts.out = args.next().ok_or_else(|| format!("{arg} needs a path\n{USAGE}"))?;
            }
            "--compare" => {
                opts.compare =
                    Some(args.next().ok_or_else(|| format!("{arg} needs a path\n{USAGE}"))?);
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    if opts.iters == 0 {
        opts.iters = if opts.quick { 3 } else { 5 };
    }
    Ok(opts)
}

/// `reps` engine passes over the whole samples suite; returns the
/// summed step count (deterministic across iterations). One suite pass
/// is under two milliseconds, so repetitions stretch each timed
/// iteration far enough above scheduler noise for a ±30% gate. The
/// suite is parsed once, outside the timed region: the measurement
/// tracks the checking pipeline (transform, lowering, search), not the
/// front end.
fn run_suite(
    engine: Engine,
    store: StoreKind,
    programs: &[kiss_lang::hir::Program],
    reps: usize,
) -> u64 {
    let mut steps = 0u64;
    for _ in 0..reps {
        for p in programs {
            let outcome = Kiss::new()
                .with_engine(engine)
                .with_store(store)
                .with_validation(false)
                .with_budget(Budget::steps_states(2_000_000, 60_000))
                .check_assertions(p);
            steps += outcome.stats().map_or(0, |st| st.steps());
        }
    }
    steps
}

fn median(mut xs: Vec<u64>) -> u64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

/// One BFS pass over the samples suite collecting the state-store
/// gauges: total entries stored, total store bytes, and the largest
/// frontier any sample reached. The counts are deterministic, so one
/// pass suffices.
fn measure_memory(programs: &[kiss_lang::hir::Program]) -> (u64, u64, u64) {
    let (mut stored, mut bytes, mut frontier) = (0u64, 0u64, 0u64);
    for p in programs {
        let outcome = Kiss::new()
            .with_engine(Engine::Bfs)
            .with_validation(false)
            .with_budget(Budget::steps_states(2_000_000, 60_000))
            .check_assertions(p);
        if let Some(st) = outcome.stats() {
            stored += st.seq.states_stored as u64;
            bytes += st.seq.store_bytes as u64;
            frontier = frontier.max(st.seq.frontier_peak as u64);
        }
    }
    (stored, bytes, frontier)
}

/// The parallel-exploration workload: three independent 6-way choice
/// layers fan the BFS frontier out to hundreds of distinct states, and
/// the trailing counter loop gives every branch a long chain of
/// single-successor segments — wide enough to keep several workers
/// busy, deep enough that per-layer coordination cost cannot dominate.
fn parallel_workload() -> kiss_lang::hir::Program {
    let source = "
        int a; int b; int c; int w;
        void main() {
            choice { a = 1; [] a = 2; [] a = 3; [] a = 4; [] a = 5; [] a = 6; }
            choice { b = 1; [] b = 2; [] b = 3; [] b = 4; [] b = 5; [] b = 6; }
            choice { c = 1; [] c = 2; [] c = 3; [] c = 4; [] c = 5; [] c = 6; }
            iter { w = w + a + b + c; assume w <= 150; }
            assert w + a + b + c > 0;
        }";
    kiss_lang::parse_and_lower(source).expect("workload parses")
}

/// One parallel-exploration pass; returns the deterministic gauges
/// `(steps, states_stored, frontier_peak)`.
fn run_parallel_explore(
    workload: &kiss_lang::hir::Program,
    jobs: usize,
) -> (u64, u64, u64) {
    let outcome = Kiss::new()
        .with_engine(Engine::Bfs)
        .with_store(StoreKind::Cow)
        .with_explore_jobs(jobs)
        .with_validation(false)
        .with_budget(Budget::steps_states(10_000_000, 200_000))
        .check_assertions(workload);
    let st = outcome.stats().expect("workload runs under every engine");
    (st.steps(), st.seq.states_stored as u64, st.seq.frontier_peak as u64)
}

/// End-to-end corpus run at `budget`, returning wall-clock
/// microseconds.
fn run_table1(budget: Budget, jobs: usize) -> u64 {
    let corpus = kiss_drivers::generate_corpus();
    let supervisor = Supervisor::new(budget).with_retries(0);
    let t0 = Instant::now();
    let rows = check_corpus_parallel(&corpus, false, &supervisor, None, jobs, |_| {});
    assert_eq!(rows.len(), corpus.len());
    t0.elapsed().as_micros() as u64
}

fn steps_per_sec(steps: u64, wall_us: u64) -> u64 {
    (steps as f64 * 1_000_000.0 / wall_us.max(1) as f64) as u64
}

/// Returns the gates that failed vs `baseline`: any engine that
/// regressed >30% in steps/sec, and — when the baseline records a
/// memory section — a BFS store-bytes footprint that grew >50%.
fn regressions(current: &str, baseline: &str) -> Result<Vec<String>, String> {
    let cur = Json::parse(current).ok_or("current result does not parse")?;
    let base = Json::parse(baseline).ok_or("baseline does not parse")?;
    let mut failed = Vec::new();
    let engines = base.get("engines").and_then(Json::as_obj).ok_or("baseline has no engines")?;
    for (name, b) in engines {
        let b_rate = b.get("steps_per_sec").and_then(Json::as_u64).ok_or("bad baseline rate")?;
        let c_rate = cur
            .get("engines")
            .and_then(|e| e.get(name))
            .and_then(|e| e.get("steps_per_sec"))
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("current run has no rate for engine {name}"))?;
        let floor = (b_rate as f64) * 0.70;
        println!(
            "compare {name}: current {c_rate} steps/s vs baseline {b_rate} (floor {})",
            floor as u64
        );
        if (c_rate as f64) < floor {
            failed.push(name.clone());
        }
    }
    // Older baselines predate the memory section; the gate only arms
    // once a baseline carrying it is checked in.
    let base_bytes = base.get("memory").and_then(|m| m.get("bfs_store_bytes")).and_then(Json::as_u64);
    if let Some(b_bytes) = base_bytes {
        let c_bytes = cur
            .get("memory")
            .and_then(|m| m.get("bfs_store_bytes"))
            .and_then(Json::as_u64)
            .ok_or("current run has no memory section")?;
        let ceiling = (b_bytes as f64) * 1.50;
        println!(
            "compare memory: current {c_bytes} bfs store bytes vs baseline {b_bytes} \
             (ceiling {})",
            ceiling as u64
        );
        if (c_bytes as f64) > ceiling {
            failed.push("bfs store bytes".to_string());
        }
    }
    // Parallel-exploration legs gate like engines (30% floor), but a
    // leg only arms when the measuring machine has at least as many
    // hardware threads as the leg has workers: with fewer cores the
    // leg measures thread-coordination overhead on a saturated
    // machine, which is real but not a throughput promise this repo
    // can hold. Baselines predating the section never gate.
    if let Some(base_jobs) =
        base.get("parallel_explore").and_then(|p| p.get("jobs")).and_then(Json::as_obj)
    {
        let cur_pe = cur
            .get("parallel_explore")
            .ok_or("current run has no parallel_explore section")?;
        let threads =
            cur_pe.get("hardware_threads").and_then(Json::as_u64).unwrap_or(1);
        for (jobs, b) in base_jobs {
            let workers: u64 = jobs.parse().map_err(|_| "bad baseline jobs key")?;
            if threads < workers {
                println!(
                    "compare parallel explore jobs={jobs}: skipped \
                     ({threads} hardware threads cannot express {workers} workers)"
                );
                continue;
            }
            let b_rate =
                b.get("steps_per_sec").and_then(Json::as_u64).ok_or("bad baseline rate")?;
            let c_rate = cur_pe
                .get("jobs")
                .and_then(|j| j.get(jobs))
                .and_then(|j| j.get("steps_per_sec"))
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("current run has no parallel leg at jobs={jobs}"))?;
            let floor = (b_rate as f64) * 0.70;
            println!(
                "compare parallel explore jobs={jobs}: current {c_rate} steps/s vs \
                 baseline {b_rate} (floor {})",
                floor as u64
            );
            if (c_rate as f64) < floor {
                failed.push(format!("parallel explore jobs={jobs}"));
            }
        }
    }
    Ok(failed)
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("perf_baseline: {msg}");
            std::process::exit(2);
        }
    };
    let samples = kiss_samples::all();
    let programs: Vec<_> = samples.iter().map(|s| s.program()).collect();
    let reps = if opts.quick { 8 } else { 20 };

    let mut engine_json = Vec::new();
    for engine in [Engine::Explicit, Engine::Bfs, Engine::Summary] {
        let name = engine.name();
        let mut walls = Vec::with_capacity(opts.iters);
        let mut steps = 0u64;
        for _ in 0..opts.iters {
            let t0 = Instant::now();
            steps = run_suite(engine, opts.store, &programs, reps);
            walls.push(t0.elapsed().as_micros() as u64);
        }
        let wall_us = median(walls);
        let rate = steps_per_sec(steps, wall_us);
        println!("{name}: {steps} steps, median {wall_us} us, {rate} steps/s");
        engine_json.push(format!(
            "\"{name}\":{{\"steps\":{steps},\"wall_us_median\":{wall_us},\"steps_per_sec\":{rate}}}"
        ));
    }

    // A reduced per-field budget keeps the end-to-end leg tractable;
    // the serial/parallel ratio is what the baseline tracks.
    let budget = if opts.quick {
        Budget::steps_states(50_000, 8_000)
    } else {
        Budget::steps_states(200_000, 20_000)
    };
    let serial_us = run_table1(budget, 1);
    let parallel_us = run_table1(budget, opts.jobs);
    println!(
        "table1 (max_steps={}, max_states={}): serial {serial_us} us, \
         parallel {parallel_us} us with {} jobs",
        budget.max_steps, budget.max_states, opts.jobs
    );

    let (stored, store_bytes, frontier_peak) = measure_memory(&programs);
    println!(
        "memory (bfs over samples): {stored} states stored, {store_bytes} store bytes, \
         frontier peak {frontier_peak}"
    );

    // Parallel exploration: the same wide-layer workload at 1, 2, and
    // 4 workers inside one check. The gauges are the determinism gate:
    // any divergence from the serial leg means the parallel engine
    // explored a different state space, which is a bug, not a perf
    // result.
    let workload = parallel_workload();
    let hardware_threads = default_jobs() as u64;
    let (serial_steps, serial_stored, serial_frontier) = run_parallel_explore(&workload, 1);
    let mut explore_json = Vec::new();
    let mut serial_wall = 0u64;
    for jobs in [1usize, 2, 4] {
        let mut walls = Vec::with_capacity(opts.iters);
        let mut gauges = (0u64, 0u64, 0u64);
        for _ in 0..opts.iters {
            let t0 = Instant::now();
            gauges = run_parallel_explore(&workload, jobs);
            walls.push(t0.elapsed().as_micros() as u64);
        }
        if gauges != (serial_steps, serial_stored, serial_frontier) {
            eprintln!(
                "perf_baseline: parallel exploration diverged at jobs={jobs}: \
                 (steps, stored, frontier) {gauges:?} vs serial \
                 {:?}",
                (serial_steps, serial_stored, serial_frontier)
            );
            std::process::exit(1);
        }
        let wall_us = median(walls);
        if jobs == 1 {
            serial_wall = wall_us;
        }
        let rate = steps_per_sec(serial_steps, wall_us);
        let speedup = serial_wall as f64 / wall_us.max(1) as f64;
        println!(
            "parallel explore jobs={jobs}: median {wall_us} us, {rate} steps/s \
             (speedup {speedup:.2}x over serial)"
        );
        explore_json.push(format!(
            "\"{jobs}\":{{\"wall_us_median\":{wall_us},\"steps_per_sec\":{rate}}}"
        ));
    }
    println!(
        "parallel explore gauges: {serial_steps} steps, {serial_stored} states stored, \
         frontier peak {serial_frontier}, {hardware_threads} hardware threads \
         (legs beyond the thread count measure overhead, not speedup)"
    );

    let json = format!(
        "{{\"version\":2,\"quick\":{},\"iters\":{},\"engines\":{{{}}},\
         \"table1\":{{\"budget_max_steps\":{},\"budget_max_states\":{},\
         \"serial_wall_us\":{serial_us},\"parallel_wall_us\":{parallel_us},\"jobs\":{}}},\
         \"memory\":{{\"bfs_states_stored\":{stored},\"bfs_store_bytes\":{store_bytes},\
         \"bfs_frontier_peak\":{frontier_peak}}},\
         \"parallel_explore\":{{\"hardware_threads\":{hardware_threads},\
         \"steps\":{serial_steps},\"states_stored\":{serial_stored},\
         \"frontier_peak\":{serial_frontier},\"jobs\":{{{}}}}}}}\n",
        opts.quick,
        opts.iters,
        engine_json.join(","),
        budget.max_steps,
        budget.max_states,
        opts.jobs,
        explore_json.join(","),
    );
    if let Err(e) = std::fs::write(&opts.out, &json) {
        eprintln!("perf_baseline: cannot write {}: {e}", opts.out);
        std::process::exit(2);
    }
    println!("wrote {}", opts.out);

    if let Some(path) = &opts.compare {
        let baseline = match std::fs::read_to_string(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("perf_baseline: cannot read baseline {path}: {e}");
                std::process::exit(2);
            }
        };
        match regressions(&json, &baseline) {
            Ok(failed) if failed.is_empty() => println!("no engine regressed >30%"),
            Ok(failed) => {
                eprintln!("perf_baseline: steps/sec regressed >30% on: {}", failed.join(", "));
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("perf_baseline: {e}");
                std::process::exit(2);
            }
        }
    }
}
