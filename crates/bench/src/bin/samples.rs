//! Runs the classic-concurrency sample suite (`kiss-samples`) through
//! KISS and the exploration baselines, printing which method catches
//! which bug — the suite-level counterpart of the `coverage` binary.
//!
//! ```text
//! cargo run --release -p kiss-bench --bin samples
//! ```

use kiss_conc::{Explorer, ScheduleMode};
use kiss_core::checker::Kiss;
use kiss_exec::Module;

fn main() {
    println!(
        "{:<20} {:>6} | {:>6} {:>6} {:>9} {:>6}",
        "sample", "buggy", "KISS0", "KISS2", "balanced", "free"
    );
    for s in kiss_samples::all() {
        let program = s.program();
        let module = Module::lower(program.clone());
        let k0 = Kiss::new().with_validation(false).check_assertions(&program).found_error();
        let k2 = Kiss::new()
            .with_max_ts(2)
            .with_validation(false)
            .check_assertions(&program)
            .found_error();
        let bal = Explorer::new(&module)
            .with_mode(ScheduleMode::Balanced)
            .with_budget(30_000_000, 3_000_000)
            .check()
            .is_fail();
        let free = Explorer::new(&module).with_budget(30_000_000, 3_000_000).check().is_fail();
        let mark = |b: bool| if b { "yes" } else { "-" };
        println!(
            "{:<20} {:>6} | {:>6} {:>6} {:>9} {:>6}",
            s.name,
            mark(s.buggy),
            mark(k0),
            mark(k2),
            mark(bal),
            mark(free)
        );
        assert_eq!(free, s.buggy, "ground truth regression on {}", s.name);
    }
    println!();
    println!("KISS2 equals the balanced column on every sample (Theorem 1 in action);");
    println!("the free column is ground truth.");
}
