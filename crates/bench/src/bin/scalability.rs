//! The complexity claim of the paper's introduction and Section 4:
//! exhaustive interleaving exploration grows **exponentially** with
//! the number of threads, while KISS's cost is that of a sequential
//! analysis of a program of about the same size (the instrumentation
//! adds a small constant CFG blowup and a constant number of globals).
//!
//! This binary sweeps the thread count on a lock-protected-counter
//! workload and reports, per thread count:
//!
//! * states explored by the exhaustive concurrent explorer
//!   (`kiss-conc`), and
//! * states + steps used by KISS (transform + sequential check), plus
//!   the CFG blowup factor of the transformation.
//!
//! ```text
//! cargo run --release -p kiss-bench --bin scalability
//! ```

use kiss_conc::Explorer;
use kiss_core::checker::{Kiss, KissOutcome};
use kiss_core::transform::{transform, TransformConfig};
use kiss_exec::Module;

/// `n` forked workers each do a locked increment; main asserts a
/// trivial invariant. No bug: both tools must explore everything.
fn workload(n: usize) -> String {
    let spawns: String = (0..n).map(|_| "    async worker();\n".to_string()).collect();
    format!(
        "int g_lock;\nint counter;\n\
         void acquire() {{ atomic {{ assume g_lock == 0; g_lock = 1; }} }}\n\
         void release() {{ atomic {{ g_lock = 0; }} }}\n\
         void worker() {{\n    int t;\n    acquire();\n    t = counter;\n    counter = t + 1;\n    release();\n}}\n\
         void main() {{\n{spawns}    assert counter >= 0;\n}}"
    )
}

fn main() {
    println!(
        "{:>8} {:>16} {:>14} {:>12} {:>10} {:>12}",
        "threads", "explorer-states", "kiss-states", "kiss-steps", "blowup", "globals +g"
    );
    let mut prev_explorer = 0usize;
    for n in 1..=6 {
        let src = workload(n);
        let program = kiss_lang::parse_and_lower(&src).expect("workload is valid");

        // Exhaustive interleaving exploration (all schedules).
        let module = Module::lower(program.clone());
        let (cv, cstats) = Explorer::new(&module)
            .with_max_threads(n + 2)
            .with_budget(50_000_000, 5_000_000)
            .check_with_stats();
        let explorer_states = match cv {
            v if v.is_pass() => cstats.states.to_string(),
            kiss_conc::ConcVerdict::ResourceBound { states, .. } => format!(">{states}"),
            other => panic!("workload has no bug: {other:?}"),
        };

        // KISS with the paper's practical setting MAX = 1: cost stays
        // that of a sequential analysis while the explorer pays for
        // every interleaving. (Coverage is bounded — that is the KISS
        // trade; the max_ablation binary measures it.)
        let outcome = Kiss::new().with_max_ts(1).with_validation(false).check_assertions(&program);
        let KissOutcome::NoErrorFound(kstats) = outcome else {
            panic!("workload has no bug: {outcome:?}")
        };

        // CFG blowup of the transformation.
        let before = Module::lower(program.clone()).instr_count();
        let globals_before = program.globals.len();
        let t = transform(&program, &TransformConfig { max_ts: 1, ..Default::default() })
            .expect("transform succeeds");
        let extra_globals = t.program.globals.len() - globals_before;
        let after = Module::lower(t.program).instr_count();

        let growth = if prev_explorer > 0 {
            format!("  (x{:.1})", cstats.states as f64 / prev_explorer as f64)
        } else {
            String::new()
        };
        println!(
            "{:>8} {:>16} {:>14} {:>12} {:>9.1}x {:>12}{growth}",
            n + 1, // including main
            explorer_states,
            kstats.states(),
            kstats.steps(),
            after as f64 / before as f64,
            format!("+{extra_globals}"),
        );
        prev_explorer = cstats.states;
    }
    println!();
    println!("expected shape: explorer states grow exponentially in the thread count;");
    println!("KISS (at the paper's practical MAX = 1) stays near-flat; the CFG blowup");
    println!("and the number of added globals stay small constants — the paper's §4");
    println!("complexity claim O(|C| * 2^(g+l)) with |C| scaled by a constant and g");
    println!("by a constant number of fresh variables.");
}
