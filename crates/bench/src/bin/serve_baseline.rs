//! Serving baseline: throughput and cache hit-rate of `kiss-serve`
//! answering the generated driver corpus, cold and then warm.
//!
//! ```text
//! cargo run --release -p kiss-bench --bin serve_baseline -- \
//!     [--quick] [--limit <n>] [--jobs <n>] [--out <path>]
//! ```
//!
//! Boots a server in-process (unix-domain socket where available, a
//! loopback TCP port otherwise), converts the driver corpus into a
//! batch of race checks with [`kiss_drivers::corpus_batch`], and
//! submits the same batch twice:
//!
//! * **cold** — an empty cache; every unique request is checked.
//! * **warm** — the same batch again; every unique request should be a
//!   cache hit, so the measured requests/s is the service overhead
//!   (framing, hashing, queueing) without any checking.
//!
//! A third leg measures observability overhead: the same warm-hit
//! traffic against one server with event emission off and one writing
//! a full JSONL trace (request lifecycle plus spans). Both legs take
//! the best of several repetitions; the acceptance bar is an events-on
//! throughput cost of at most 5%.
//!
//! One JSON object is written (default `BENCH_serve.json`, the
//! checked-in baseline, `"version":3`) recording wall-clock,
//! requests/s, and hit-rate for both passes, the server's own
//! counters, and the overhead leg. The warm pass is the headline: the
//! acceptance bar is a ≥ 90% hit-rate with more requests/s than the
//! cold pass.
//!
//! `--quick` truncates the batch for CI smoke use. The verdicts are
//! deterministic, so one pass per temperature suffices.

use std::time::Instant;

use kiss_obs::{JsonlSink, Obs};
use kiss_seq::{Budget, CancelToken};
use kiss_serve::{
    submit_batch, BatchOutcome, Endpoint, Request, ServeConfig, ServeStats, Server,
};

const USAGE: &str = "options: --quick --limit <n> --jobs <n> --out <path>";

struct Options {
    quick: bool,
    limit: usize,
    jobs: usize,
    out: String,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        quick: false,
        limit: 0,
        jobs: std::thread::available_parallelism().map_or(2, usize::from),
        out: "BENCH_serve.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--limit" => {
                let v = args.next().ok_or_else(|| format!("{arg} needs a value\n{USAGE}"))?;
                opts.limit = v.parse().map_err(|_| format!("{arg}: cannot parse `{v}`"))?;
            }
            "--jobs" => {
                let v = args.next().ok_or_else(|| format!("{arg} needs a value\n{USAGE}"))?;
                opts.jobs = v.parse().map_err(|_| format!("{arg}: cannot parse `{v}`"))?;
                if opts.jobs == 0 {
                    return Err(format!("--jobs needs at least 1\n{USAGE}"));
                }
            }
            "--out" => {
                opts.out = args.next().ok_or_else(|| format!("{arg} needs a path\n{USAGE}"))?;
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    if opts.limit == 0 && opts.quick {
        opts.limit = 12;
    }
    Ok(opts)
}

/// The corpus as a request batch: one race check per (driver, field)
/// entry, labelled like the local corpus runner.
fn corpus_requests(limit: usize) -> Vec<Request> {
    let mut requests: Vec<Request> = kiss_drivers::corpus_batch(false)
        .into_iter()
        .map(|e| Request::race(&e.label, &e.source, &e.race_spec))
        .collect();
    if limit > 0 {
        requests.truncate(limit);
    }
    requests
}

fn requests_per_sec(unique: usize, wall_us: u64) -> u64 {
    (unique as f64 * 1_000_000.0 / wall_us.max(1) as f64) as u64
}

fn pass_json(name: &str, outcome: &BatchOutcome, wall_us: u64) -> String {
    let answered = outcome.hits + outcome.misses;
    let hit_rate = outcome.hits as f64 * 100.0 / answered.max(1) as f64;
    format!(
        "\"{name}\":{{\"wall_us\":{wall_us},\"requests_per_sec\":{},\
         \"hits\":{},\"misses\":{},\"hit_rate_pct\":{hit_rate:.1}}}",
        requests_per_sec(outcome.unique, wall_us),
        outcome.hits,
        outcome.misses,
    )
}

/// Boots a server in-process: unix socket where the platform has one,
/// loopback TCP everywhere else. An OS-assigned port (0) keeps
/// parallel runs from colliding; `tag` keeps socket paths distinct
/// across the servers one run boots.
#[allow(clippy::type_complexity)]
fn boot(
    jobs: usize,
    obs: Obs,
    tag: &str,
) -> (Endpoint, CancelToken, std::thread::JoinHandle<std::io::Result<ServeStats>>) {
    #[cfg(unix)]
    let socket = Some(
        std::env::temp_dir().join(format!("kiss-serve-bench-{}-{tag}.sock", std::process::id())),
    );
    #[cfg(not(unix))]
    let socket: Option<std::path::PathBuf> = None;
    let port = if socket.is_some() { None } else { Some(0) };
    let cfg = ServeConfig {
        socket: socket.clone(),
        port,
        jobs,
        budget: Budget::steps_states(50_000, 8_000),
        obs,
        ..ServeConfig::default()
    };
    let server = match Server::bind(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve_baseline: cannot bind: {e}");
            std::process::exit(2);
        }
    };
    let endpoint = match (socket, server.local_port()) {
        #[cfg(unix)]
        (Some(path), _) => Endpoint::Unix(path),
        (_, Some(port)) => Endpoint::Tcp(format!("127.0.0.1:{port}")),
        _ => {
            eprintln!("serve_baseline: server has no reachable endpoint");
            std::process::exit(2);
        }
    };
    let shutdown = CancelToken::new();
    let token = shutdown.clone();
    let handle = std::thread::spawn(move || server.run(&token));
    (endpoint, shutdown, handle)
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("serve_baseline: {msg}");
            std::process::exit(2);
        }
    };

    let requests = corpus_requests(opts.limit);
    if requests.is_empty() {
        eprintln!("serve_baseline: the corpus produced no entries");
        std::process::exit(2);
    }

    let (endpoint, shutdown, handle) = boot(opts.jobs, Obs::off(), "main");

    let submit = |tag: &str| -> (BatchOutcome, u64) {
        let t0 = Instant::now();
        let outcome = match submit_batch(&endpoint, &requests) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("serve_baseline: {tag} submit failed: {e}");
                std::process::exit(2);
            }
        };
        (outcome, t0.elapsed().as_micros() as u64)
    };

    let (cold, cold_us) = submit("cold");
    let (warm, warm_us) = submit("warm");
    shutdown.cancel();
    let stats = match handle.join().expect("server thread") {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve_baseline: server failed: {e}");
            std::process::exit(2);
        }
    };

    let entries = requests.len();
    println!(
        "cold: {entries} entries ({} unique) in {cold_us} us — {} req/s, \
         {} hit(s) / {} miss(es)",
        cold.unique,
        requests_per_sec(cold.unique, cold_us),
        cold.hits,
        cold.misses
    );
    println!(
        "warm: {entries} entries ({} unique) in {warm_us} us — {} req/s, \
         {} hit(s) / {} miss(es)",
        warm.unique,
        requests_per_sec(warm.unique, warm_us),
        warm.hits,
        warm.misses
    );
    println!(
        "server: {} request(s), {} cache hit(s), {} miss(es), {} shed",
        stats.requests, stats.cache_hits, stats.cache_misses, stats.shed
    );

    // Obs-overhead leg: the same warm-hit traffic against a server
    // with events off and against one writing a full JSONL trace
    // (request lifecycle plus spans). Each leg submits the batch
    // several times per timed repetition and keeps the best
    // repetition, so the comparison is of steady-state service
    // overhead, not scheduler noise.
    let reps = if opts.quick { 2 } else { 3 };
    let per_leg = if opts.quick { 3 } else { 8 };
    let measure = |obs: Obs, tag: &str| -> u64 {
        let (endpoint, shutdown, handle) = boot(opts.jobs, obs, tag);
        let mut best = u64::MAX;
        // One untimed pass warms the cache; every timed pass is hits.
        for rep in 0..=reps {
            let t0 = Instant::now();
            for _ in 0..per_leg {
                if let Err(e) = submit_batch(&endpoint, &requests) {
                    eprintln!("serve_baseline: overhead leg `{tag}` failed: {e}");
                    std::process::exit(2);
                }
            }
            if rep > 0 {
                best = best.min(t0.elapsed().as_micros() as u64);
            }
        }
        shutdown.cancel();
        let _ = handle.join();
        best
    };
    let trace_path = std::env::temp_dir()
        .join(format!("kiss-serve-bench-{}-overhead.jsonl", std::process::id()));
    let off_us = measure(Obs::off(), "obs-off");
    let sink = match JsonlSink::create(&trace_path.to_string_lossy()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve_baseline: cannot create overhead trace: {e}");
            std::process::exit(2);
        }
    };
    let on_us = measure(Obs::new(sink), "obs-on");
    let _ = std::fs::remove_file(&trace_path);
    let overhead_pct = (on_us as f64 / off_us.max(1) as f64 - 1.0) * 100.0;
    println!(
        "obs overhead: events-off {off_us} us, events-on {on_us} us over \
         {per_leg} warm submits (best of {reps}) — {overhead_pct:+.1}%"
    );

    let json = format!(
        "{{\"version\":3,\"quick\":{},\"entries\":{entries},\"unique\":{},\"jobs\":{},\
         {},{},\
         \"server\":{{\"requests\":{},\"cache_hits\":{},\"cache_misses\":{},\
         \"requests_shed\":{}}},\
         \"obs_overhead\":{{\"submits_per_leg\":{per_leg},\"reps\":{reps},\
         \"off_wall_us\":{off_us},\"on_wall_us\":{on_us},\
         \"overhead_pct\":{overhead_pct:.1}}}}}\n",
        opts.quick,
        cold.unique,
        opts.jobs,
        pass_json("cold", &cold, cold_us),
        pass_json("warm", &warm, warm_us),
        stats.requests,
        stats.cache_hits,
        stats.cache_misses,
        stats.shed,
    );
    if let Err(e) = std::fs::write(&opts.out, &json) {
        eprintln!("serve_baseline: cannot write {}: {e}", opts.out);
        std::process::exit(2);
    }
    println!("wrote {}", opts.out);

    // The point of the cache: a warm pass must be near-total hits and
    // strictly faster than checking.
    if warm.hits * 10 < (warm.hits + warm.misses) * 9 {
        eprintln!("serve_baseline: warm hit-rate below 90%");
        std::process::exit(1);
    }
    if warm_us >= cold_us {
        eprintln!("serve_baseline: warm pass was not faster than cold");
        std::process::exit(1);
    }
    // With no faults armed and a generous admission wait, the baseline
    // must not shed — and the tally must balance exactly.
    if stats.shed != 0 {
        eprintln!("serve_baseline: a fault-free baseline run shed {} request(s)", stats.shed);
        std::process::exit(1);
    }
    if stats.requests != stats.cache_hits + stats.cache_misses + stats.shed {
        eprintln!("serve_baseline: request accounting does not balance: {stats:?}");
        std::process::exit(1);
    }
    // Observability must be near-free: a full event trace may cost at
    // most 5% of warm throughput.
    if overhead_pct > 5.0 {
        eprintln!(
            "serve_baseline: events-on overhead {overhead_pct:.1}% exceeds the 5% bar"
        );
        std::process::exit(1);
    }
}
