//! Serving baseline: throughput and cache hit-rate of `kiss-serve`
//! answering the generated driver corpus, cold and then warm.
//!
//! ```text
//! cargo run --release -p kiss-bench --bin serve_baseline -- \
//!     [--quick] [--limit <n>] [--jobs <n>] [--out <path>]
//! ```
//!
//! Boots a server in-process (unix-domain socket where available, a
//! loopback TCP port otherwise), converts the driver corpus into a
//! batch of race checks with [`kiss_drivers::corpus_batch`], and
//! submits the same batch twice:
//!
//! * **cold** — an empty cache; every unique request is checked.
//! * **warm** — the same batch again; every unique request should be a
//!   cache hit, so the measured requests/s is the service overhead
//!   (framing, hashing, queueing) without any checking.
//!
//! One JSON object is written (default `BENCH_serve.json`, the
//! checked-in baseline) recording wall-clock, requests/s, and hit-rate
//! for both passes plus the server's own counters. The warm pass is
//! the headline: the acceptance bar is a ≥ 90% hit-rate with more
//! requests/s than the cold pass.
//!
//! `--quick` truncates the batch for CI smoke use. The verdicts are
//! deterministic, so one pass per temperature suffices.

use std::time::Instant;

use kiss_seq::{Budget, CancelToken};
use kiss_serve::{submit_batch, BatchOutcome, Endpoint, Request, ServeConfig, Server};

const USAGE: &str = "options: --quick --limit <n> --jobs <n> --out <path>";

struct Options {
    quick: bool,
    limit: usize,
    jobs: usize,
    out: String,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        quick: false,
        limit: 0,
        jobs: std::thread::available_parallelism().map_or(2, usize::from),
        out: "BENCH_serve.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--limit" => {
                let v = args.next().ok_or_else(|| format!("{arg} needs a value\n{USAGE}"))?;
                opts.limit = v.parse().map_err(|_| format!("{arg}: cannot parse `{v}`"))?;
            }
            "--jobs" => {
                let v = args.next().ok_or_else(|| format!("{arg} needs a value\n{USAGE}"))?;
                opts.jobs = v.parse().map_err(|_| format!("{arg}: cannot parse `{v}`"))?;
                if opts.jobs == 0 {
                    return Err(format!("--jobs needs at least 1\n{USAGE}"));
                }
            }
            "--out" => {
                opts.out = args.next().ok_or_else(|| format!("{arg} needs a path\n{USAGE}"))?;
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    if opts.limit == 0 && opts.quick {
        opts.limit = 12;
    }
    Ok(opts)
}

/// The corpus as a request batch: one race check per (driver, field)
/// entry, labelled like the local corpus runner.
fn corpus_requests(limit: usize) -> Vec<Request> {
    let mut requests: Vec<Request> = kiss_drivers::corpus_batch(false)
        .into_iter()
        .map(|e| Request::race(&e.label, &e.source, &e.race_spec))
        .collect();
    if limit > 0 {
        requests.truncate(limit);
    }
    requests
}

fn requests_per_sec(unique: usize, wall_us: u64) -> u64 {
    (unique as f64 * 1_000_000.0 / wall_us.max(1) as f64) as u64
}

fn pass_json(name: &str, outcome: &BatchOutcome, wall_us: u64) -> String {
    let answered = outcome.hits + outcome.misses;
    let hit_rate = outcome.hits as f64 * 100.0 / answered.max(1) as f64;
    format!(
        "\"{name}\":{{\"wall_us\":{wall_us},\"requests_per_sec\":{},\
         \"hits\":{},\"misses\":{},\"hit_rate_pct\":{hit_rate:.1}}}",
        requests_per_sec(outcome.unique, wall_us),
        outcome.hits,
        outcome.misses,
    )
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("serve_baseline: {msg}");
            std::process::exit(2);
        }
    };

    let requests = corpus_requests(opts.limit);
    if requests.is_empty() {
        eprintln!("serve_baseline: the corpus produced no entries");
        std::process::exit(2);
    }

    // Boot the server in-process: unix socket where the platform has
    // one, loopback TCP everywhere else. An OS-assigned port (0) keeps
    // parallel runs from colliding.
    #[cfg(unix)]
    let (cfg_endpoint, socket_path) = {
        let path = std::env::temp_dir()
            .join(format!("kiss-serve-bench-{}.sock", std::process::id()));
        ((Some(path.clone()), None), Some(path))
    };
    #[cfg(not(unix))]
    let (cfg_endpoint, socket_path): ((Option<std::path::PathBuf>, Option<u16>), Option<std::path::PathBuf>) =
        ((None, Some(0)), None);

    let cfg = ServeConfig {
        socket: cfg_endpoint.0,
        port: cfg_endpoint.1,
        jobs: opts.jobs,
        budget: Budget::steps_states(50_000, 8_000),
        ..ServeConfig::default()
    };
    let server = match Server::bind(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve_baseline: cannot bind: {e}");
            std::process::exit(2);
        }
    };
    let endpoint = match (&socket_path, server.local_port()) {
        #[cfg(unix)]
        (Some(path), _) => Endpoint::Unix(path.clone()),
        (_, Some(port)) => Endpoint::Tcp(format!("127.0.0.1:{port}")),
        _ => {
            eprintln!("serve_baseline: server has no reachable endpoint");
            std::process::exit(2);
        }
    };
    let shutdown = CancelToken::new();
    let token = shutdown.clone();
    let handle = std::thread::spawn(move || server.run(&token));

    let submit = |tag: &str| -> (BatchOutcome, u64) {
        let t0 = Instant::now();
        let outcome = match submit_batch(&endpoint, &requests) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("serve_baseline: {tag} submit failed: {e}");
                std::process::exit(2);
            }
        };
        (outcome, t0.elapsed().as_micros() as u64)
    };

    let (cold, cold_us) = submit("cold");
    let (warm, warm_us) = submit("warm");
    shutdown.cancel();
    let stats = match handle.join().expect("server thread") {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve_baseline: server failed: {e}");
            std::process::exit(2);
        }
    };

    let entries = requests.len();
    println!(
        "cold: {entries} entries ({} unique) in {cold_us} us — {} req/s, \
         {} hit(s) / {} miss(es)",
        cold.unique,
        requests_per_sec(cold.unique, cold_us),
        cold.hits,
        cold.misses
    );
    println!(
        "warm: {entries} entries ({} unique) in {warm_us} us — {} req/s, \
         {} hit(s) / {} miss(es)",
        warm.unique,
        requests_per_sec(warm.unique, warm_us),
        warm.hits,
        warm.misses
    );
    println!(
        "server: {} request(s), {} cache hit(s), {} miss(es), {} shed",
        stats.requests, stats.cache_hits, stats.cache_misses, stats.shed
    );

    let json = format!(
        "{{\"version\":2,\"quick\":{},\"entries\":{entries},\"unique\":{},\"jobs\":{},\
         {},{},\
         \"server\":{{\"requests\":{},\"cache_hits\":{},\"cache_misses\":{},\
         \"requests_shed\":{}}}}}\n",
        opts.quick,
        cold.unique,
        opts.jobs,
        pass_json("cold", &cold, cold_us),
        pass_json("warm", &warm, warm_us),
        stats.requests,
        stats.cache_hits,
        stats.cache_misses,
        stats.shed,
    );
    if let Err(e) = std::fs::write(&opts.out, &json) {
        eprintln!("serve_baseline: cannot write {}: {e}", opts.out);
        std::process::exit(2);
    }
    println!("wrote {}", opts.out);

    // The point of the cache: a warm pass must be near-total hits and
    // strictly faster than checking.
    if warm.hits * 10 < (warm.hits + warm.misses) * 9 {
        eprintln!("serve_baseline: warm hit-rate below 90%");
        std::process::exit(1);
    }
    if warm_us >= cold_us {
        eprintln!("serve_baseline: warm pass was not faster than cold");
        std::process::exit(1);
    }
    // With no faults armed and a generous admission wait, the baseline
    // must not shed — and the tally must balance exactly.
    if stats.shed != 0 {
        eprintln!("serve_baseline: a fault-free baseline run shed {} request(s)", stats.shed);
        std::process::exit(1);
    }
    if stats.requests != stats.cache_hits + stats.cache_misses + stats.shed {
        eprintln!("serve_baseline: request accounting does not balance: {stats:?}");
        std::process::exit(1);
    }
}
