//! Serving load harness: throughput, latency quantiles, and shed
//! behaviour of `kiss-serve` under concurrent closed-loop clients.
//!
//! ```text
//! cargo run --release -p kiss-bench --bin serve_load -- \
//!     [--quick] [--limit <n>] [--jobs <n>] [--io-threads <n>] \
//!     [--levels <a,b,c>] [--out <path>] [--compare <path>] \
//!     [--trace-out <path>]
//! ```
//!
//! Boots one server in-process listening on a unix-domain socket *and*
//! a loopback TCP port (TCP only on platforms without unix sockets),
//! then measures four things:
//!
//! * **cold** — the driver corpus submitted once as pipelined batch
//!   frames against an empty cache; every unique request is checked.
//! * **warm** — the same batch again; every unique request is a cache
//!   hit, so the measured requests/s is pure service overhead.
//! * **load sweep** — for each `--levels` concurrency level, that many
//!   closed-loop clients (one persistent connection each, one request
//!   in flight each) hammer the warm server over the unix socket,
//!   plus one TCP leg; every leg records requests/s and exact p50/p99
//!   latency from the sorted per-request microsecond samples, and the
//!   server must shed nothing at default queue bounds.
//! * **obs overhead** — the warm batch against a server with events
//!   off and one writing a full JSONL trace, best-of-`reps` each. The
//!   off-leg spread across repetitions is reported as a noise band and
//!   the gate is symmetric: an apparent speedup from tracing beyond
//!   both the 5% bar and the noise band fails the run just like a
//!   slowdown would, because it means the measurement (not the server)
//!   is broken.
//!
//! One JSON object is written (default `BENCH_serve.json`, the
//! checked-in baseline, `"version":4`) with the cold/warm passes, a
//! `load` array (one element per transport × concurrency leg), the
//! server's own counters (including connection peaks, batch frames,
//! and cache-shard lock statistics), and the overhead leg.
//! `--compare <path>` reads a previous baseline (v3 or v4) and fails
//! if cold or warm requests/s regressed more than 30%.
//!
//! `--quick` truncates the corpus and shrinks the sweep for CI smoke
//! use; `--trace-out` makes the main server write a JSONL event trace
//! suitable for `obs_verify`.

use std::io::{self, BufRead, BufReader, Write};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use kiss_obs::json::Json;
use kiss_obs::{Aggregator, Event, JsonlSink, Obs, Observer};
use kiss_seq::{Budget, CancelToken};
use kiss_serve::{
    decode_response, fetch_metrics, submit_batch, BatchOutcome, Endpoint, Request, ServeConfig,
    ServeSnapshot, ServeStats, Server,
};

const USAGE: &str = "options: --quick --limit <n> --jobs <n> --io-threads <n> \
                     --levels <a,b,c> --out <path> --compare <path> --trace-out <path>";

/// Total requests one sweep leg spreads across its clients.
const LEG_REQUESTS: usize = 2000;
const LEG_REQUESTS_QUICK: usize = 240;

/// How much cold/warm requests/s may regress vs `--compare` (fraction).
const COMPARE_TOLERANCE: f64 = 0.30;

struct Options {
    quick: bool,
    limit: usize,
    jobs: usize,
    io_threads: usize,
    levels: Vec<usize>,
    out: String,
    compare: Option<String>,
    trace_out: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        quick: false,
        limit: 0,
        jobs: std::thread::available_parallelism().map_or(2, usize::from),
        io_threads: ServeConfig::default().io_threads,
        levels: vec![1, 16, 64],
        out: "BENCH_serve.json".to_string(),
        compare: None,
        trace_out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--limit" => {
                let v = value("--limit")?;
                opts.limit = v.parse().map_err(|_| format!("--limit: cannot parse `{v}`"))?;
            }
            "--jobs" => {
                let v = value("--jobs")?;
                opts.jobs = v.parse().map_err(|_| format!("--jobs: cannot parse `{v}`"))?;
                if opts.jobs == 0 {
                    return Err(format!("--jobs needs at least 1\n{USAGE}"));
                }
            }
            "--io-threads" => {
                let v = value("--io-threads")?;
                opts.io_threads =
                    v.parse().map_err(|_| format!("--io-threads: cannot parse `{v}`"))?;
                if opts.io_threads == 0 {
                    return Err(format!("--io-threads needs at least 1\n{USAGE}"));
                }
            }
            "--levels" => {
                let v = value("--levels")?;
                let parsed: Result<Vec<usize>, _> =
                    v.split(',').map(|part| part.trim().parse::<usize>()).collect();
                opts.levels = parsed.map_err(|_| format!("--levels: cannot parse `{v}`"))?;
                if opts.levels.is_empty() || opts.levels.contains(&0) {
                    return Err(format!("--levels needs positive counts\n{USAGE}"));
                }
            }
            "--out" => opts.out = value("--out")?,
            "--compare" => opts.compare = Some(value("--compare")?),
            "--trace-out" => opts.trace_out = Some(value("--trace-out")?),
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    if opts.limit == 0 && opts.quick {
        opts.limit = 12;
    }
    Ok(opts)
}

fn die(msg: &str) -> ! {
    eprintln!("serve_load: {msg}");
    std::process::exit(2);
}

/// The corpus as a request batch: one race check per (driver, field)
/// entry, labelled like the local corpus runner.
fn corpus_requests(limit: usize) -> Vec<Request> {
    let mut requests: Vec<Request> = kiss_drivers::corpus_batch(false)
        .into_iter()
        .map(|e| Request::race(&e.label, &e.source, &e.race_spec))
        .collect();
    if limit > 0 {
        requests.truncate(limit);
    }
    requests
}

fn requests_per_sec(count: usize, wall_us: u64) -> u64 {
    (count as f64 * 1_000_000.0 / wall_us.max(1) as f64) as u64
}

fn pass_json(name: &str, outcome: &BatchOutcome, wall_us: u64) -> String {
    let answered = outcome.hits + outcome.misses;
    let hit_rate = outcome.hits as f64 * 100.0 / answered.max(1) as f64;
    format!(
        "\"{name}\":{{\"wall_us\":{wall_us},\"requests_per_sec\":{},\
         \"hits\":{},\"misses\":{},\"hit_rate_pct\":{hit_rate:.1}}}",
        requests_per_sec(outcome.unique, wall_us),
        outcome.hits,
        outcome.misses,
    )
}

/// Where one booted server can be reached.
struct Endpoints {
    unix: Option<Endpoint>,
    tcp: Endpoint,
}

impl Endpoints {
    /// The endpoint the single-connection legs use: unix where
    /// available (comparable with the v3 baseline), TCP otherwise.
    fn primary(&self) -> &Endpoint {
        self.unix.as_ref().unwrap_or(&self.tcp)
    }
}

/// Boots a server in-process listening on TCP port 0 plus, where the
/// platform has them, a unix socket. `tag` keeps socket paths distinct
/// across the servers one run boots.
#[allow(clippy::type_complexity)]
fn boot(
    opts: &Options,
    obs: Obs,
    tag: &str,
) -> (Endpoints, CancelToken, std::thread::JoinHandle<io::Result<ServeStats>>) {
    #[cfg(unix)]
    let socket = Some(
        std::env::temp_dir().join(format!("kiss-serve-load-{}-{tag}.sock", std::process::id())),
    );
    #[cfg(not(unix))]
    let socket: Option<std::path::PathBuf> = None;
    let cfg = ServeConfig {
        socket: socket.clone(),
        port: Some(0),
        jobs: opts.jobs,
        io_threads: opts.io_threads,
        budget: Budget::steps_states(50_000, 8_000),
        obs,
        ..ServeConfig::default()
    };
    let server = match Server::bind(cfg) {
        Ok(s) => s,
        Err(e) => die(&format!("cannot bind: {e}")),
    };
    let port = server.local_port().unwrap_or_else(|| die("server has no TCP port"));
    let endpoints = Endpoints {
        unix: socket.map(Endpoint::Unix),
        tcp: Endpoint::Tcp(format!("127.0.0.1:{port}")),
    };
    let shutdown = CancelToken::new();
    let token = shutdown.clone();
    let handle = std::thread::spawn(move || server.run(&token));
    (endpoints, shutdown, handle)
}

/// One transport × concurrency leg of the sweep.
struct LevelResult {
    transport: &'static str,
    clients: usize,
    requests: usize,
    wall_us: u64,
    p50_us: u64,
    p99_us: u64,
    shed: u64,
}

impl LevelResult {
    fn to_json(&self) -> String {
        format!(
            "{{\"transport\":\"{}\",\"clients\":{},\"requests\":{},\"wall_us\":{},\
             \"requests_per_sec\":{},\"p50_us\":{},\"p99_us\":{},\"shed\":{}}}",
            self.transport,
            self.clients,
            self.requests,
            self.wall_us,
            requests_per_sec(self.requests, self.wall_us),
            self.p50_us,
            self.p99_us,
            self.shed,
        )
    }
}

/// One closed-loop client: a persistent connection sending one request
/// at a time and timing each round trip.
fn client_loop(
    endpoint: &Endpoint,
    requests: &[Request],
    barrier: &Barrier,
) -> io::Result<Vec<u64>> {
    let (reader, mut writer) = endpoint.connect()?;
    let mut lines = BufReader::new(reader);
    let mut line = String::new();
    let mut latencies = Vec::with_capacity(requests.len());
    barrier.wait();
    for request in requests {
        let t0 = Instant::now();
        writeln!(writer, "{}", request.to_json())?;
        writer.flush()?;
        line.clear();
        loop {
            match lines.read_line(&mut line) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed mid-leg",
                    ))
                }
                Ok(_) => break,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock
                            | io::ErrorKind::TimedOut
                            | io::ErrorKind::Interrupted
                    ) => {}
                Err(e) => return Err(e),
            }
        }
        let response = decode_response(line.trim_end()).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, e.message().to_string())
        })?;
        if response.verdict == "error" {
            return Err(io::Error::other(format!("server error: {}", response.detail)));
        }
        latencies.push(t0.elapsed().as_micros() as u64);
    }
    Ok(latencies)
}

/// Runs one sweep leg: `clients` threads in lockstep start, each
/// working through its slice of the warm corpus. Shed is measured as
/// the server-side counter delta across the leg (an `overloaded`
/// verdict also lands here), so nothing the server dropped can hide.
fn run_level(
    endpoints: &Endpoints,
    endpoint: &Endpoint,
    transport: &'static str,
    requests: &[Request],
    clients: usize,
    total: usize,
) -> LevelResult {
    let before = scrape(endpoints);
    let per_client = total.div_ceil(clients).max(1);
    let barrier = Arc::new(Barrier::new(clients + 1));
    let mut handles = Vec::with_capacity(clients);
    for c in 0..clients {
        let barrier = Arc::clone(&barrier);
        let endpoint = endpoint.clone();
        // Interleave the corpus across clients so concurrent lookups
        // spread over the cache shards instead of marching in step.
        let mine: Vec<Request> = (0..per_client)
            .map(|i| {
                let mut request = requests[(c + i * clients) % requests.len()].clone();
                request.id = format!("c{c}-{i}");
                request
            })
            .collect();
        handles.push(std::thread::spawn(move || client_loop(&endpoint, &mine, &barrier)));
    }
    barrier.wait();
    let t0 = Instant::now();
    let mut latencies: Vec<u64> = Vec::with_capacity(clients * per_client);
    for handle in handles {
        match handle.join().expect("client thread") {
            Ok(samples) => latencies.extend(samples),
            Err(e) => die(&format!("{transport} x{clients} client failed: {e}")),
        }
    }
    let wall_us = t0.elapsed().as_micros() as u64;
    let after = scrape(endpoints);
    latencies.sort_unstable();
    let quantile = |q: f64| latencies[((latencies.len() - 1) as f64 * q) as usize];
    LevelResult {
        transport,
        clients,
        requests: latencies.len(),
        wall_us,
        p50_us: quantile(0.50),
        p99_us: quantile(0.99),
        shed: after.shed.saturating_sub(before.shed),
    }
}

/// Scrapes the main server's metrics snapshot (control plane; does not
/// touch the request tally).
fn scrape(endpoints: &Endpoints) -> ServeSnapshot {
    match fetch_metrics(endpoints.primary(), Duration::from_secs(10)) {
        Ok(snap) => snap,
        Err(e) => die(&format!("metrics scrape failed: {e}")),
    }
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => die(&msg),
    };

    let requests = corpus_requests(opts.limit);
    if requests.is_empty() {
        die("the corpus produced no entries");
    }

    // With --trace-out an aggregator rides along so the trace can end
    // with the `run_summary` event `obs_verify` requires.
    let (obs, agg) = match &opts.trace_out {
        Some(path) => match JsonlSink::create(path) {
            Ok(sink) => {
                let agg = Aggregator::new();
                let sinks: Vec<Box<dyn Observer>> =
                    vec![Box::new(sink), Box::new(agg.clone())];
                (Obs::multi(sinks), Some(agg))
            }
            Err(e) => die(&format!("cannot create {path}: {e}")),
        },
        None => (Obs::off(), None),
    };
    let trace_obs = obs.clone();
    let (endpoints, shutdown, handle) = boot(&opts, obs, "main");

    // Cold and warm single-connection passes, comparable with the v3
    // serve_baseline numbers. A hypervisor neighbor can steal a
    // double-digit slice of this box for seconds at a time, so both
    // legs keep the best of several repetitions: extra cold reps each
    // boot a throwaway server (a cold cache is unrepeatable on a live
    // one), warm reps resubmit against the main server.
    let bench_reps = if opts.quick { 1 } else { 3 };
    let submit = |endpoint: &Endpoint, tag: &str| -> (BatchOutcome, u64) {
        let t0 = Instant::now();
        match submit_batch(endpoint, &requests) {
            Ok(outcome) => (outcome, t0.elapsed().as_micros() as u64),
            Err(e) => die(&format!("{tag} submit failed: {e}")),
        }
    };
    let mut cold = None;
    let mut cold_us = u64::MAX;
    for rep in 1..bench_reps {
        let (eps, stop, h) = boot(&opts, Obs::off(), &format!("cold{rep}"));
        let (outcome, us) = submit(eps.primary(), "cold");
        stop.cancel();
        let _ = h.join();
        if us < cold_us {
            (cold, cold_us) = (Some(outcome), us);
        }
    }
    let (outcome, us) = submit(endpoints.primary(), "cold");
    if us < cold_us {
        (cold, cold_us) = (Some(outcome), us);
    }
    let cold = cold.expect("cold rep");
    let mut warm = None;
    let mut warm_us = u64::MAX;
    for _ in 0..bench_reps {
        let (outcome, us) = submit(endpoints.primary(), "warm");
        if us < warm_us {
            (warm, warm_us) = (Some(outcome), us);
        }
    }
    let warm = warm.expect("warm rep");
    let entries = requests.len();
    println!(
        "cold: {entries} entries ({} unique) in {cold_us} us — {} req/s, \
         {} hit(s) / {} miss(es), best of {bench_reps}",
        cold.unique,
        requests_per_sec(cold.unique, cold_us),
        cold.hits,
        cold.misses
    );
    println!(
        "warm: {entries} entries ({} unique) in {warm_us} us — {} req/s, \
         {} hit(s) / {} miss(es), best of {bench_reps}",
        warm.unique,
        requests_per_sec(warm.unique, warm_us),
        warm.hits,
        warm.misses
    );

    // The load sweep: every level over the unix socket (TCP where the
    // platform has no unix sockets), plus one TCP leg so both
    // transports are exercised against the same live server.
    let total = if opts.quick { LEG_REQUESTS_QUICK } else { LEG_REQUESTS };
    let mut legs: Vec<LevelResult> = Vec::new();
    let (sweep_endpoint, sweep_transport): (&Endpoint, &'static str) = match &endpoints.unix {
        Some(unix) => (unix, "unix"),
        None => (&endpoints.tcp, "tcp"),
    };
    for &clients in &opts.levels {
        let leg = run_level(&endpoints, sweep_endpoint, sweep_transport, &requests, clients, total);
        println!(
            "{} x{:<3}: {} requests in {} us — {} req/s, p50 {} us, p99 {} us, {} shed",
            leg.transport,
            leg.clients,
            leg.requests,
            leg.wall_us,
            requests_per_sec(leg.requests, leg.wall_us),
            leg.p50_us,
            leg.p99_us,
            leg.shed
        );
        legs.push(leg);
    }
    if endpoints.unix.is_some() {
        let clients = opts.levels.iter().copied().max().unwrap_or(1).min(16);
        let leg = run_level(&endpoints, &endpoints.tcp, "tcp", &requests, clients, total);
        println!(
            "{} x{:<3}: {} requests in {} us — {} req/s, p50 {} us, p99 {} us, {} shed",
            leg.transport,
            leg.clients,
            leg.requests,
            leg.wall_us,
            requests_per_sec(leg.requests, leg.wall_us),
            leg.p50_us,
            leg.p99_us,
            leg.shed
        );
        legs.push(leg);
    }

    let snap = scrape(&endpoints);
    println!(
        "server: conns peak {}, accepted {}, batch frames {}, \
         shard locks {} ({} contended)",
        snap.conns_peak, snap.accepted, snap.batches, snap.shard_acquires, snap.shard_contended
    );

    shutdown.cancel();
    let stats = match handle.join().expect("server thread") {
        Ok(s) => s,
        Err(e) => die(&format!("server failed: {e}")),
    };
    println!(
        "server: {} request(s), {} cache hit(s), {} miss(es), {} shed",
        stats.requests, stats.cache_hits, stats.cache_misses, stats.shed
    );
    if let Some(agg) = &agg {
        let report = agg.report();
        trace_obs.emit(|_| Event::RunSummary { report: report.clone() });
    }

    // Obs-overhead leg: the same warm-hit traffic against a server
    // with events off and against one writing a full JSONL trace
    // (request lifecycle plus spans). Both servers boot up front and
    // timed repetitions alternate between them, so slow drift in the
    // machine lands on both legs equally instead of masquerading as
    // tracing overhead (or, just as misleading, tracing speedup). Each
    // leg keeps its best repetition; the wider of the two legs'
    // spreads is the noise band the verdict is read against.
    let reps = if opts.quick { 2 } else { 5 };
    let per_leg = if opts.quick { 3 } else { 8 };
    let trace_path = std::env::temp_dir()
        .join(format!("kiss-serve-load-{}-overhead.jsonl", std::process::id()));
    let sink = match JsonlSink::create(&trace_path.to_string_lossy()) {
        Ok(s) => s,
        Err(e) => die(&format!("cannot create overhead trace: {e}")),
    };
    let (off_eps, off_shutdown, off_handle) = boot(&opts, Obs::off(), "obs-off");
    let (on_eps, on_shutdown, on_handle) = boot(&opts, Obs::new(sink), "obs-on");
    let pass = |endpoints: &Endpoints, tag: &str| -> u64 {
        let t0 = Instant::now();
        for _ in 0..per_leg {
            if let Err(e) = submit_batch(endpoints.primary(), &requests) {
                die(&format!("overhead leg `{tag}` failed: {e}"));
            }
        }
        t0.elapsed().as_micros() as u64
    };
    // One untimed pass each warms the caches; every timed pass is hits.
    pass(&off_eps, "obs-off");
    pass(&on_eps, "obs-on");
    let mut off_walls = Vec::with_capacity(reps);
    let mut on_walls = Vec::with_capacity(reps);
    for _ in 0..reps {
        off_walls.push(pass(&off_eps, "obs-off"));
        on_walls.push(pass(&on_eps, "obs-on"));
    }
    off_shutdown.cancel();
    on_shutdown.cancel();
    let _ = off_handle.join();
    let _ = on_handle.join();
    let _ = std::fs::remove_file(&trace_path);
    let off_us = *off_walls.iter().min().expect("off reps");
    let on_us = *on_walls.iter().min().expect("on reps");
    let spread_pct = |walls: &[u64]| {
        let min = *walls.iter().min().expect("reps");
        let max = *walls.iter().max().expect("reps");
        (max as f64 / min.max(1) as f64 - 1.0) * 100.0
    };
    let noise_band_pct = spread_pct(&off_walls).max(spread_pct(&on_walls));
    let overhead_pct = (on_us as f64 / off_us.max(1) as f64 - 1.0) * 100.0;
    println!(
        "obs overhead: events-off {off_us} us, events-on {on_us} us over \
         {per_leg} warm submits (best of {reps} interleaved, noise band {noise_band_pct:.1}%) \
         — {overhead_pct:+.1}%"
    );

    let load_json: Vec<String> = legs.iter().map(LevelResult::to_json).collect();
    let json = format!(
        "{{\"version\":4,\"quick\":{},\"entries\":{entries},\"unique\":{},\
         \"jobs\":{},\"io_threads\":{},\
         {},{},\
         \"load\":[{}],\
         \"server\":{{\"requests\":{},\"cache_hits\":{},\"cache_misses\":{},\
         \"requests_shed\":{},\"conns_peak\":{},\"accepted\":{},\"batches\":{},\
         \"shard_acquires\":{},\"shard_contended\":{}}},\
         \"obs_overhead\":{{\"submits_per_leg\":{per_leg},\"reps\":{reps},\
         \"off_wall_us\":{off_us},\"on_wall_us\":{on_us},\
         \"noise_band_pct\":{noise_band_pct:.1},\"overhead_pct\":{overhead_pct:.1}}}}}\n",
        opts.quick,
        cold.unique,
        opts.jobs,
        opts.io_threads,
        pass_json("cold", &cold, cold_us),
        pass_json("warm", &warm, warm_us),
        load_json.join(","),
        stats.requests,
        stats.cache_hits,
        stats.cache_misses,
        stats.shed,
        snap.conns_peak,
        snap.accepted,
        snap.batches,
        snap.shard_acquires,
        snap.shard_contended,
    );
    if let Err(e) = std::fs::write(&opts.out, &json) {
        die(&format!("cannot write {}: {e}", opts.out));
    }
    println!("wrote {}", opts.out);

    let mut failed = false;
    let mut gate = |ok: bool, msg: String| {
        if !ok {
            eprintln!("serve_load: {msg}");
            failed = true;
        }
    };

    // The point of the cache: a warm pass must be near-total hits and
    // strictly faster than checking. The speed half only gates the
    // full corpus — a --quick run's dozen entries answer in less time
    // than one driver poll interval, so cold vs warm is coin-flip
    // scheduler noise there.
    gate(
        warm.hits * 10 >= (warm.hits + warm.misses) * 9,
        "warm hit-rate below 90%".to_string(),
    );
    gate(
        opts.quick || warm_us < cold_us,
        "warm pass was not faster than cold".to_string(),
    );
    // With no faults armed and default queue bounds, nothing may be
    // shed — per sweep leg and in total — and the tally must balance.
    for leg in &legs {
        gate(
            leg.shed == 0,
            format!("{} x{} shed {} request(s) at default queue bounds", leg.transport,
                leg.clients, leg.shed),
        );
    }
    gate(
        stats.shed == 0,
        format!("a fault-free run shed {} request(s)", stats.shed),
    );
    gate(
        stats.requests == stats.cache_hits + stats.cache_misses + stats.shed,
        format!("request accounting does not balance: {stats:?}"),
    );
    // Observability must be near-free — and the comparison must be
    // sane: a tracing "speedup" past both the bar and the off-leg
    // noise means the measurement is broken, not the server fast.
    // Only gated on the full corpus: a --quick leg is a few dozen
    // milliseconds, where one scheduler hiccup reads as ±30%.
    gate(
        opts.quick || overhead_pct.abs() <= 5.0 || overhead_pct.abs() <= noise_band_pct,
        format!(
            "events-on overhead {overhead_pct:+.1}% is outside the symmetric 5% bar \
             and the {noise_band_pct:.1}% noise band"
        ),
    );
    // No-regression gate against a previous baseline.
    if let Some(path) = &opts.compare {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
        let prior = Json::parse(text.trim())
            .unwrap_or_else(|| die(&format!("{path} is not a JSON baseline")));
        let prior_rps = |leg: &str| {
            prior
                .get(leg)
                .and_then(|p| p.get("requests_per_sec"))
                .and_then(Json::as_u64)
                .unwrap_or_else(|| die(&format!("{path} has no {leg} requests_per_sec")))
        };
        for (leg, now_us, outcome) in [("cold", cold_us, &cold), ("warm", warm_us, &warm)] {
            let old = prior_rps(leg);
            let now = requests_per_sec(outcome.unique, now_us);
            let floor = (old as f64 * (1.0 - COMPARE_TOLERANCE)) as u64;
            println!("compare {leg}: {now} req/s vs baseline {old} (floor {floor})");
            gate(
                now >= floor,
                format!("{leg} throughput regressed: {now} req/s vs baseline {old}"),
            );
        }
    }
    if failed {
        std::process::exit(1);
    }
}
