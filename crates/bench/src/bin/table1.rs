//! Regenerates the paper's **Table 1**: per-driver race detection over
//! the 18-driver corpus with the *naive* harness (any pair of dispatch
//! routines may run concurrently), `MAX = 0`, one check per
//! device-extension field, under a per-field resource bound.
//!
//! ```text
//! cargo run --release -p kiss-bench --bin table1 -- \
//!     [--timeout <secs>] [--max-steps <n>] [--max-states <n>] \
//!     [--mem-limit <mb>] [--retries <n>] [--jobs <n>] [--journal <path>]
//!     [--resume] [--trace-out <path>] [--metrics <path>] [--progress]
//! ```
//!
//! With `--journal`, every completed `(driver, field)` check is
//! checkpointed; a killed run restarted with `--resume` skips the
//! completed checks and reproduces the same totals. `--jobs N` checks
//! each driver's fields on N worker threads (default: all cores) with
//! byte-identical output.

use std::collections::HashMap;

use kiss_bench::runner::RunOptions;
use kiss_drivers::table::check_corpus_parallel;
use kiss_drivers::{generate_corpus, paper_table};

fn main() {
    let opts = match RunOptions::parse(std::env::args().skip(1), "table1.journal") {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("table1: {msg}");
            std::process::exit(2);
        }
    };
    let mut journal = match opts.open_journal() {
        Ok(j) => j,
        Err(e) => {
            eprintln!("table1: cannot open journal: {e}");
            std::process::exit(2);
        }
    };
    let (obs, agg) = match opts.build_obs() {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("table1: cannot set up observability: {e}");
            std::process::exit(2);
        }
    };
    let supervisor = opts.supervisor(obs.clone());

    let specs = paper_table();
    // One spec lookup table for the whole run; the progress callback
    // fires per driver and must not rebuild the paper table each time.
    let by_name: HashMap<&str, _> = specs.iter().map(|s| (s.name, s)).collect();
    let corpus = generate_corpus();
    println!("Table 1: race detection with the naive harness (MAX = 0)");
    println!(
        "{:<18} {:>7} {:>7} {:>6} {:>9} | paper: {:>6} {:>9}",
        "Driver", "LOC", "Fields", "Races", "No Races", "Races", "No Races"
    );
    let t0 = std::time::Instant::now();
    let results = check_corpus_parallel(&corpus, false, &supervisor, journal.as_mut(), opts.jobs, |r| {
        let spec = by_name[r.name.as_str()];
        println!(
            "{:<18} {:>7} {:>7} {:>6} {:>9} | paper: {:>6} {:>9}{}",
            r.name,
            r.loc,
            r.fields,
            r.races,
            r.no_races,
            spec.races_naive,
            spec.no_races,
            if r.races == spec.races_naive && r.no_races == spec.no_races { "  ok" } else { "  MISMATCH" }
        );
    });
    let total_loc: usize = results.iter().map(|r| r.loc).sum();
    let total_fields: usize = results.iter().map(|r| r.fields).sum();
    let total_races: usize = results.iter().map(|r| r.races).sum();
    let total_no: usize = results.iter().map(|r| r.no_races).sum();
    let total_inc: usize = results.iter().map(|r| r.inconclusive).sum();
    let total_crashed: usize = results.iter().map(|r| r.crashed).sum();
    let total_failed: usize = results.iter().map(|r| r.failed).sum();
    println!(
        "{:<18} {:>7} {:>7} {:>6} {:>9} | paper: {:>6} {:>9}",
        "Total", total_loc, total_fields, total_races, total_no, 71, 346
    );
    println!("(inconclusive within resource bound: {total_inc}; paper: 64)");
    if total_crashed + total_failed > 0 {
        println!("(crashed: {total_crashed}, failed: {total_failed} — isolated, run continued)");
    }
    println!("elapsed: {:?}", t0.elapsed());
    match opts.finish_observed(&obs, agg.as_ref(), journal.as_mut()) {
        Ok(Some(report)) => print!("{}", report.render()),
        Ok(None) => {}
        Err(e) => eprintln!("table1: cannot record metrics: {e}"),
    }
    let specs_ok = results.len() == specs.len()
        && results.iter().zip(&specs).all(|(r, s)| {
            r.races == s.races_naive && r.no_races == s.no_races && r.inconclusive == s.inconclusive()
        });
    println!("shape match vs paper: {}", if specs_ok { "EXACT" } else { "DIVERGES (see rows)" });
}
