//! Regenerates the paper's **Table 1**: per-driver race detection over
//! the 18-driver corpus with the *naive* harness (any pair of dispatch
//! routines may run concurrently), `MAX = 0`, one check per
//! device-extension field, under a per-field resource bound.
//!
//! ```text
//! cargo run --release -p kiss-bench --bin table1
//! ```

use kiss_drivers::table::{check_corpus, default_budget};
use kiss_drivers::{generate_corpus, paper_table};

fn main() {
    let specs = paper_table();
    let corpus = generate_corpus();
    println!("Table 1: race detection with the naive harness (MAX = 0)");
    println!(
        "{:<18} {:>7} {:>7} {:>6} {:>9} | paper: {:>6} {:>9}",
        "Driver", "LOC", "Fields", "Races", "No Races", "Races", "No Races"
    );
    let t0 = std::time::Instant::now();
    let results = check_corpus(&corpus, false, default_budget(), |r| {
        let spec = paper_table().into_iter().find(|s| s.name == r.name).expect("spec exists");
        println!(
            "{:<18} {:>7} {:>7} {:>6} {:>9} | paper: {:>6} {:>9}{}",
            r.name,
            r.loc,
            r.fields,
            r.races,
            r.no_races,
            spec.races_naive,
            spec.no_races,
            if r.races == spec.races_naive && r.no_races == spec.no_races { "  ok" } else { "  MISMATCH" }
        );
    });
    let total_loc: usize = results.iter().map(|r| r.loc).sum();
    let total_fields: usize = results.iter().map(|r| r.fields).sum();
    let total_races: usize = results.iter().map(|r| r.races).sum();
    let total_no: usize = results.iter().map(|r| r.no_races).sum();
    let total_inc: usize = results.iter().map(|r| r.inconclusive).sum();
    println!(
        "{:<18} {:>7} {:>7} {:>6} {:>9} | paper: {:>6} {:>9}",
        "Total", total_loc, total_fields, total_races, total_no, 71, 346
    );
    println!("(inconclusive within resource bound: {total_inc}; paper: 64)");
    println!("elapsed: {:?}", t0.elapsed());
    let specs_ok = results.iter().zip(&specs).all(|(r, s)| {
        r.races == s.races_naive && r.no_races == s.no_races && r.inconclusive == s.inconclusive()
    });
    println!("shape match vs paper: {}", if specs_ok { "EXACT" } else { "DIVERGES (see rows)" });
}
