//! Regenerates the paper's **Table 2**: the drivers that reported
//! races in Table 1, re-checked under the *refined* harness encoding
//! the OS concurrency rules:
//!
//! * A1 — two Pnp IRPs are never sent concurrently;
//! * A2 — no IRP runs concurrently with a Pnp start/remove IRP;
//! * A3 — two concurrent Power IRPs belong to different categories;
//! * kbfiltr/moufiltr — never two concurrent Ioctl IRPs.
//!
//! ```text
//! cargo run --release -p kiss-bench --bin table2 -- \
//!     [--timeout <secs>] [--max-steps <n>] [--max-states <n>] \
//!     [--mem-limit <mb>] [--retries <n>] [--jobs <n>] [--journal <path>]
//!     [--resume] [--trace-out <path>] [--metrics <path>] [--progress]
//! ```

use kiss_bench::runner::RunOptions;
use kiss_drivers::table::check_driver_jobs;
use kiss_drivers::{generate_corpus, paper_table};

fn main() {
    let opts = match RunOptions::parse(std::env::args().skip(1), "table2.journal") {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("table2: {msg}");
            std::process::exit(2);
        }
    };
    let mut journal = match opts.open_journal() {
        Ok(j) => j,
        Err(e) => {
            eprintln!("table2: cannot open journal: {e}");
            std::process::exit(2);
        }
    };
    let (obs, agg) = match opts.build_obs() {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("table2: cannot set up observability: {e}");
            std::process::exit(2);
        }
    };
    let supervisor = opts.supervisor(obs.clone());

    let specs = paper_table();
    let corpus = generate_corpus();
    println!("Table 2: races remaining under the refined harness");
    println!("{:<18} {:>6} | paper: {:>6}", "Driver", "Races", "Races");
    let t0 = std::time::Instant::now();
    let mut total = 0usize;
    let mut faults = 0usize;
    let mut all_ok = true;
    for (model, spec) in corpus.iter().zip(&specs) {
        // The paper re-ran only the drivers that reported races.
        if spec.races_naive == 0 {
            continue;
        }
        if supervisor.cancel_token().is_cancelled() {
            break;
        }
        let r = check_driver_jobs(model, true, &supervisor, journal.as_mut(), opts.jobs);
        total += r.races;
        faults += r.crashed + r.failed;
        let ok = r.races == spec.races_refined;
        all_ok &= ok;
        println!(
            "{:<18} {:>6} | paper: {:>6}{}",
            r.name,
            r.races,
            spec.races_refined,
            if ok { "  ok" } else { "  MISMATCH" }
        );
    }
    println!("{:<18} {:>6} | paper: {:>6}", "Total", total, 30);
    if faults > 0 {
        println!("(crashed or failed field checks: {faults} — isolated, run continued)");
    }
    println!("elapsed: {:?}", t0.elapsed());
    match opts.finish_observed(&obs, agg.as_ref(), journal.as_mut()) {
        Ok(Some(report)) => print!("{}", report.render()),
        Ok(None) => {}
        Err(e) => eprintln!("table2: cannot record metrics: {e}"),
    }
    println!("shape match vs paper: {}", if all_ok && total == 30 { "EXACT" } else { "DIVERGES" });
}
