//! kiss-bench: benchmark harnesses (see bin/ and benches/).

pub mod runner;
