//! Shared command-line handling for the table experiment binaries.
//!
//! `table1` and `table2` accept the same resource-bound and resumption
//! knobs, mirroring the paper's per-check bound (20 minutes of CPU /
//! 800 MB of memory, §6):
//!
//! ```text
//! --timeout <secs>     wall-clock deadline per field check
//! --max-steps <n>      step budget per field check
//! --max-states <n>     state budget per field check
//! --mem-limit <mb>     approximate memory cap per field check
//! --retries <n>        escalating retries for inconclusive checks
//! --jobs <n>           worker threads for field checks (default: all cores)
//! --explore-jobs <n>   worker threads inside each BFS check (default 1)
//! --journal <path>     journal completed (driver, field) checks here
//! --resume             reuse the journal from a killed run
//! --trace-out <path>   write a JSONL event trace of the whole run
//! --metrics <path>     write the aggregated run report as JSON
//! --progress           render a throttled heartbeat on stderr
//! ```
//!
//! `--resume` without `--journal` uses the binary's default journal
//! path. `--journal` without `--resume` starts fresh, truncating any
//! stale journal at that path first so old outcomes cannot leak into a
//! new run. With both `--journal` and `--metrics`, each session's
//! report is appended to the journal and the metrics file holds the
//! *merged* report, so a `--resume`d run reports whole-corpus totals.

use std::time::Duration;

use kiss_core::sigint::install_sigint_cancel;
use kiss_core::supervisor::Supervisor;
use kiss_drivers::table::default_budget;
use kiss_drivers::Journal;
use kiss_obs::{Aggregator, Event, Heartbeat, JsonlSink, Obs, Observer, RunReport};
use kiss_seq::{Budget, CancelToken};

/// Parsed experiment options.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Per-field base budget after all flags are applied.
    pub budget: Budget,
    /// Escalating retries for inconclusive checks (0 = off).
    pub retries: u32,
    /// Worker threads for field checks (1 = serial).
    pub jobs: usize,
    /// Worker threads inside each single BFS check (1 = serial). A
    /// throughput knob, never a semantics knob: results stay
    /// byte-identical to a serial run.
    pub explore_jobs: usize,
    /// Journal path, if journaling was requested.
    pub journal: Option<String>,
    /// Whether to reuse an existing journal instead of truncating it.
    pub resume: bool,
    /// JSONL event-trace path, if requested.
    pub trace_out: Option<String>,
    /// Run-report path, if requested.
    pub metrics: Option<String>,
    /// Whether to render a heartbeat on stderr.
    pub progress: bool,
}

impl RunOptions {
    /// Parses `args` (without the program name). `default_journal` is
    /// the path `--resume` uses when `--journal` is absent. Returns a
    /// usage message on malformed input.
    pub fn parse(
        args: impl IntoIterator<Item = String>,
        default_journal: &str,
    ) -> Result<RunOptions, String> {
        let mut budget = default_budget();
        let mut retries = 0u32;
        let mut jobs = default_jobs();
        let mut explore_jobs = 1usize;
        let mut journal: Option<String> = None;
        let mut resume = false;
        let mut trace_out: Option<String> = None;
        let mut metrics: Option<String> = None;
        let mut progress = false;
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--timeout" => {
                    let secs: u64 = parse_value(&arg, args.next())?;
                    budget = budget.with_deadline(Duration::from_secs(secs));
                }
                "--max-steps" => budget.max_steps = parse_value(&arg, args.next())?,
                "--max-states" => budget.max_states = parse_value(&arg, args.next())?,
                "--mem-limit" => {
                    let mb: usize = parse_value(&arg, args.next())?;
                    budget = budget.with_mem_limit(mb.saturating_mul(1 << 20));
                }
                "--retries" => retries = parse_value(&arg, args.next())?,
                "--jobs" => {
                    jobs = parse_value(&arg, args.next())?;
                    if jobs == 0 {
                        return Err(format!("--jobs needs at least 1\n{USAGE}"));
                    }
                }
                "--explore-jobs" => {
                    explore_jobs = parse_value(&arg, args.next())?;
                    if explore_jobs == 0 {
                        return Err(format!("--explore-jobs needs at least 1\n{USAGE}"));
                    }
                }
                "--journal" => {
                    journal =
                        Some(args.next().ok_or_else(|| format!("{arg} needs a path"))?)
                }
                "--resume" => resume = true,
                "--trace-out" => {
                    trace_out =
                        Some(args.next().ok_or_else(|| format!("{arg} needs a path"))?)
                }
                "--metrics" => {
                    metrics =
                        Some(args.next().ok_or_else(|| format!("{arg} needs a path"))?)
                }
                "--progress" => progress = true,
                other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
            }
        }
        if resume && journal.is_none() {
            journal = Some(default_journal.to_string());
        }
        Ok(RunOptions {
            budget,
            retries,
            jobs,
            explore_jobs,
            journal,
            resume,
            trace_out,
            metrics,
            progress,
        })
    }

    /// Builds the supervisor these options describe: SIGINT is wired to
    /// its cancellation token (so ^C finishes the current field check,
    /// then winds down through the journal/report paths) and `obs`
    /// receives the per-check lifecycle events.
    pub fn supervisor(&self, obs: Obs) -> Supervisor {
        let cancel = CancelToken::new();
        install_sigint_cancel(cancel.clone());
        Supervisor::new(self.budget)
            .with_retries(self.retries)
            .with_cancel(cancel)
            .with_observer(obs)
            .with_explore_jobs(self.explore_jobs)
    }

    /// Builds the observer pipeline these options describe. Returns
    /// `Obs::off()` (engine hooks compile to no-ops) when no
    /// observability flag was given; otherwise an [`Aggregator`] always
    /// rides along so the run can be summarised.
    pub fn build_obs(&self) -> std::io::Result<(Obs, Option<Aggregator>)> {
        if self.trace_out.is_none() && self.metrics.is_none() && !self.progress {
            return Ok((Obs::off(), None));
        }
        let mut sinks: Vec<Box<dyn Observer>> = Vec::new();
        if let Some(path) = &self.trace_out {
            sinks.push(Box::new(JsonlSink::create(path)?));
        }
        let agg = Aggregator::new();
        sinks.push(Box::new(agg.clone()));
        if self.progress {
            sinks.push(Box::new(Heartbeat::stderr()));
        }
        Ok((Obs::multi(sinks), Some(agg)))
    }

    /// Finishes an observed run: merges this session's report with any
    /// earlier sessions stored in the journal, appends this session's
    /// report to the journal (cancelled checks are excluded, so a
    /// `--resume`d run counts them exactly once), writes the merged
    /// report to `--metrics`, and emits the final `RunSummary` event.
    /// Returns the merged report, or `None` when observability is off.
    pub fn finish_observed(
        &self,
        obs: &Obs,
        agg: Option<&Aggregator>,
        journal: Option<&mut Journal>,
    ) -> std::io::Result<Option<RunReport>> {
        let Some(agg) = agg else { return Ok(None) };
        let session = agg.resumable_report();
        let merged = match &journal {
            Some(j) => j.merged_report(&session),
            None => session.clone(),
        };
        if let Some(j) = journal {
            j.record_report(&session)?;
        }
        if let Some(path) = &self.metrics {
            std::fs::write(path, format!("{}\n", merged.to_json()))?;
        }
        obs.emit(|_| Event::RunSummary { report: merged.clone() });
        Ok(Some(merged))
    }

    /// Opens the journal these options describe, truncating a stale one
    /// unless `--resume` asked to keep it. `None` when journaling is
    /// off.
    pub fn open_journal(&self) -> std::io::Result<Option<Journal>> {
        let Some(path) = &self.journal else { return Ok(None) };
        if !self.resume && std::path::Path::new(path).exists() {
            std::fs::remove_file(path)?;
        }
        let journal = Journal::open(path)?;
        if self.resume && !journal.is_empty() {
            eprintln!("resuming: {} completed field checks found in {path}", journal.len());
        }
        Ok(Some(journal))
    }
}

const USAGE: &str = "options: --timeout <secs> --max-steps <n> --max-states <n> \
                     --mem-limit <mb> --retries <n> --jobs <n> --explore-jobs <n> \
                     --journal <path> --resume --trace-out <path> --metrics <path> \
                     --progress";

/// The default for `--jobs`: every available core.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

fn parse_value<T: std::str::FromStr>(flag: &str, value: Option<String>) -> Result<T, String> {
    let value = value.ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))?;
    value.parse().map_err(|_| format!("{flag}: cannot parse `{value}`\n{USAGE}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<RunOptions, String> {
        RunOptions::parse(args.iter().map(|s| s.to_string()), "default.journal")
    }

    #[test]
    fn defaults_match_the_experiment_budget() {
        let opts = parse(&[]).unwrap();
        assert_eq!(opts.budget, default_budget());
        assert_eq!(opts.retries, 0);
        assert!(opts.journal.is_none());
        assert!(!opts.resume);
    }

    #[test]
    fn flags_shape_the_budget() {
        let opts = parse(&[
            "--timeout", "1200", "--max-steps", "42", "--max-states", "7", "--mem-limit", "800",
            "--retries", "3",
        ])
        .unwrap();
        assert_eq!(opts.budget.max_wall, Some(Duration::from_secs(1200)));
        assert_eq!(opts.budget.max_steps, 42);
        assert_eq!(opts.budget.max_states, 7);
        assert_eq!(opts.budget.max_mem_bytes, Some(800 << 20));
        assert_eq!(opts.retries, 3);
    }

    #[test]
    fn resume_defaults_the_journal_path() {
        let opts = parse(&["--resume"]).unwrap();
        assert_eq!(opts.journal.as_deref(), Some("default.journal"));
        assert!(opts.resume);
        let opts = parse(&["--resume", "--journal", "mine.log"]).unwrap();
        assert_eq!(opts.journal.as_deref(), Some("mine.log"));
    }

    #[test]
    fn observability_flags_parse_and_default_off() {
        let off = parse(&[]).unwrap();
        assert!(off.trace_out.is_none() && off.metrics.is_none() && !off.progress);
        let (obs, agg) = off.build_obs().unwrap();
        assert!(!obs.is_enabled() && agg.is_none());

        let on = parse(&["--trace-out", "t.jsonl", "--metrics", "m.json", "--progress"]).unwrap();
        assert_eq!(on.trace_out.as_deref(), Some("t.jsonl"));
        assert_eq!(on.metrics.as_deref(), Some("m.json"));
        assert!(on.progress);
    }

    #[test]
    fn malformed_input_is_a_usage_error() {
        assert!(parse(&["--timeout"]).is_err());
        assert!(parse(&["--max-steps", "many"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
    }

    #[test]
    fn jobs_defaults_to_available_parallelism_and_rejects_zero() {
        assert_eq!(parse(&[]).unwrap().jobs, default_jobs());
        assert!(default_jobs() >= 1);
        assert_eq!(parse(&["--jobs", "4"]).unwrap().jobs, 4);
        assert!(parse(&["--jobs", "0"]).is_err());
        assert!(parse(&["--jobs"]).is_err());
        assert!(parse(&["--jobs", "several"]).is_err());
    }

    #[test]
    fn explore_jobs_defaults_to_serial_and_rejects_zero() {
        assert_eq!(parse(&[]).unwrap().explore_jobs, 1);
        assert_eq!(parse(&["--explore-jobs", "4"]).unwrap().explore_jobs, 4);
        assert!(parse(&["--explore-jobs", "0"]).is_err());
        assert!(parse(&["--explore-jobs"]).is_err());
        assert!(parse(&["--explore-jobs", "several"]).is_err());
    }

    #[test]
    fn fresh_journal_truncates_stale_records() {
        let mut path = std::env::temp_dir();
        path.push(format!("kiss-runner-test-{}.log", std::process::id()));
        let path_str = path.to_str().unwrap().to_string();
        std::fs::write(&path, "v1\tdrv\t0\trace\n").unwrap();

        let stale = RunOptions::parse(
            ["--resume".to_string(), "--journal".to_string(), path_str.clone()],
            "unused",
        )
        .unwrap();
        assert_eq!(stale.open_journal().unwrap().unwrap().len(), 1);

        let fresh =
            RunOptions::parse(["--journal".to_string(), path_str], "unused").unwrap();
        assert_eq!(fresh.open_journal().unwrap().unwrap().len(), 0);
        std::fs::remove_file(&path).unwrap();
    }
}
