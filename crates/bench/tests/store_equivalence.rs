//! Legacy-vs-cow state-store equivalence over the full sample corpus,
//! and serial-vs-parallel exploration equivalence on top of it.
//!
//! The copy-on-write store changes *how* states are remembered, never
//! *which* states the engines visit: for every sample and every engine,
//! both store modes must produce the same verdict, execute the same
//! number of steps, record the same number of states, and reconstruct
//! the same error trace. Store *byte* gauges are the one legitimate
//! difference between modes, so whole outcomes are compared field by
//! field rather than with one `assert_eq!`.
//!
//! Parallel BFS exploration makes the same promise on a second axis:
//! the worker count changes *when* states are speculated, never which
//! states are committed or in what order, so a `jobs > 1` run must be
//! indistinguishable from serial on every compared field.

use kiss_core::checker::{Engine, Kiss, KissOutcome};
use kiss_core::StoreKind;
use kiss_seq::Budget;

fn outcome(sample: &kiss_samples::Sample, engine: Engine, store: StoreKind) -> KissOutcome {
    outcome_jobs(sample, engine, store, 1)
}

fn outcome_jobs(
    sample: &kiss_samples::Sample,
    engine: Engine,
    store: StoreKind,
    jobs: usize,
) -> KissOutcome {
    Kiss::new()
        .with_engine(engine)
        .with_store(store)
        .with_explore_jobs(jobs)
        .with_validation(false)
        .with_budget(Budget::steps_states(2_000_000, 60_000))
        .check_assertions(&sample.program())
}

/// The error trace, when the outcome carries one, as comparable
/// `(thread, func, pc)` triples.
fn trace_of(outcome: &KissOutcome) -> Option<Vec<String>> {
    match outcome {
        KissOutcome::AssertionViolation(report) => Some(
            report
                .mapped
                .steps
                .iter()
                .map(|s| format!("{s:?}"))
                .collect(),
        ),
        _ => None,
    }
}

#[test]
fn every_engine_explores_identically_under_both_stores() {
    for sample in kiss_samples::all() {
        for engine in [Engine::Explicit, Engine::Bfs, Engine::Summary] {
            let legacy = outcome(&sample, engine, StoreKind::Legacy);
            let cow = outcome(&sample, engine, StoreKind::Cow);
            let label = format!("{} under {}", sample.name, engine.name());
            assert_eq!(
                legacy.verdict_str(),
                cow.verdict_str(),
                "verdicts diverge for {label}"
            );
            let (ls, cs) = (legacy.stats(), cow.stats());
            assert_eq!(
                ls.map(|s| s.steps()),
                cs.map(|s| s.steps()),
                "steps diverge for {label}"
            );
            assert_eq!(
                ls.map(|s| s.states()),
                cs.map(|s| s.states()),
                "states diverge for {label}"
            );
            assert_eq!(
                ls.map(|s| s.seq.paths),
                cs.map(|s| s.seq.paths),
                "paths diverge for {label}"
            );
            assert_eq!(trace_of(&legacy), trace_of(&cow), "traces diverge for {label}");
        }
    }
}

#[test]
fn parallel_bfs_explores_identically_to_serial() {
    // The serial|parallel axis of the same equivalence: a multi-worker
    // BFS run commits the same states in the same order as a serial
    // one, so every compared field — verdict, steps, states, paths,
    // trace — must be byte-identical. Speculative-step gauges are the
    // one legitimate difference, exactly as store bytes are above.
    for sample in kiss_samples::all() {
        let serial = outcome_jobs(&sample, Engine::Bfs, StoreKind::Cow, 1);
        for jobs in [2, 4] {
            let parallel = outcome_jobs(&sample, Engine::Bfs, StoreKind::Cow, jobs);
            let label = format!("{} at jobs={jobs}", sample.name);
            assert_eq!(
                serial.verdict_str(),
                parallel.verdict_str(),
                "verdicts diverge for {label}"
            );
            let (ss, ps) = (serial.stats(), parallel.stats());
            assert_eq!(
                ss.map(|s| s.steps()),
                ps.map(|s| s.steps()),
                "steps diverge for {label}"
            );
            assert_eq!(
                ss.map(|s| s.states()),
                ps.map(|s| s.states()),
                "states diverge for {label}"
            );
            assert_eq!(
                ss.map(|s| s.seq.paths),
                ps.map(|s| s.seq.paths),
                "paths diverge for {label}"
            );
            assert_eq!(
                ss.map(|s| s.seq.states_stored),
                ps.map(|s| s.seq.states_stored),
                "stored-state counts diverge for {label}"
            );
            assert_eq!(
                trace_of(&serial),
                trace_of(&parallel),
                "traces diverge for {label}"
            );
        }
    }
}

#[test]
fn cow_is_the_default_store() {
    // A sample checked with an explicit `cow` store matches the
    // builder's default, so existing callers get the new store.
    let sample = kiss_samples::all().into_iter().next().expect("non-empty suite");
    let default = Kiss::new()
        .with_validation(false)
        .with_budget(Budget::steps_states(2_000_000, 60_000))
        .check_assertions(&sample.program());
    let cow = outcome(&sample, Engine::Explicit, StoreKind::Cow);
    assert_eq!(default, cow);
}
