//! `kissc` — the KISS checker as a command-line tool.
//!
//! ```text
//! kissc check <file.kc> [--max-ts N] [--engine explicit|summary|bfs] [--no-validate]
//!                       [--store legacy|cow] [--explore-jobs N]
//!                       [--timeout S] [--max-steps N] [--max-states N] [--retries N]
//!                       [--stats] [--trace-out PATH] [--metrics PATH] [--progress]
//! kissc race <file.kc> <target> [--max-ts N] [--no-prune] [--store legacy|cow]
//!                       [--explore-jobs N]
//!                       [--timeout S] [--max-steps N] [--max-states N] [--retries N]
//!                       [--stats] [--trace-out PATH] [--metrics PATH] [--progress]
//! kissc transform <file.kc> [--max-ts N] [--race <target>]
//! kissc explore <file.kc> [--balanced] [--context-bound K]
//! kissc detectors <file.kc> <target> [--runs N]
//! kissc serve [--socket PATH] [--port N] [--jobs N] [--io-threads N]
//!             [--cache-dir DIR] [--max-queue N]
//! kissc submit <file.kc>... | --corpus  (--socket PATH | --port N)
//! kissc ping (--socket PATH | --port N)
//! kissc metrics [--json] (--socket PATH | --port N)
//! kissc top [--interval MS] [--count N] (--socket PATH | --port N)
//! ```
//!
//! `<target>` is a global name or `Struct.field`. Exit code 0 means no
//! error was found, 1 means an error was reported, 2 means usage or
//! input problems, 3 means the check was inconclusive (budget, deadline,
//! or ^C), 4 means the check itself crashed (and was isolated), and 5
//! means an `--ltl` liveness property was violated.
//!
//! Robustness: `serve` drains on SIGTERM exactly as on ^C (exit 0), can
//! shed load with typed `overloaded` responses when the queue stays
//! full past `--admission-wait`, closes dead-idle connections after
//! `--idle-timeout`, and accepts deterministic fault injection via
//! `--fault SPEC` or the `KISS_FAULT` environment variable. `submit`
//! retries idempotent work over fresh connections (`--retry`) with
//! capped exponential backoff and jitter.
//!
//! `check` and `race` run under the supervisor: `--timeout` adds a
//! wall-clock deadline the engines poll cooperatively, `--retries`
//! re-runs an inconclusive check under a doubled-then-quadrupled
//! budget, a panic in the checker is reported as a crash instead of a
//! backtrace, and SIGINT cancels the search cleanly.
//!
//! Observability: `--stats` prints an engine-statistics line after the
//! verdict, `--trace-out` writes a JSONL event trace, `--metrics`
//! writes the aggregated `RunReport` as JSON, and `--progress` renders
//! a throttled heartbeat on stderr. Against a live server, `kissc
//! metrics` scrapes one snapshot (histograms, queue, cache, faults)
//! over the wire `metrics` op, and `kissc top` polls the same snapshot
//! into a refreshing terminal view.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use kiss_core::checker::{Engine, Kiss, KissOutcome};
use kiss_core::report::{render_liveness, render_trace};
use kiss_core::StoreKind;
use kiss_core::sigint::{install_sigint_cancel, install_sigterm_cancel, restore_sigpipe_default};
use kiss_core::supervisor::{Supervised, SupervisedRun, Supervisor};
use kiss_core::transform::{transform, RaceTarget, TransformConfig};
use kiss_exec::Module;
use kiss_lang::Program;
use kiss_obs::{Aggregator, Event, Heartbeat, JsonlSink, Obs, Observer};
use kiss_seq::{BoundReason, Budget, CancelToken};
use kiss_serve::{submit_batch_with, Endpoint, Request, ServeConfig, Server, SubmitOptions};

fn main() -> ExitCode {
    restore_sigpipe_default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  kissc check <file.kc> [--max-ts N] [--engine explicit|summary|bfs] [--no-validate]
                        [--ltl FORMULA] [--store legacy|cow] [--explore-jobs N]
                        [--timeout S] [--max-steps N] [--max-states N] [--retries N]
                        [--stats] [--trace-out PATH] [--metrics PATH] [--progress]
  kissc race <file.kc> <target> [--max-ts N] [--no-prune] [--store legacy|cow]
                        [--explore-jobs N]
                        [--timeout S] [--max-steps N] [--max-states N] [--retries N]
                        [--stats] [--trace-out PATH] [--metrics PATH] [--progress]
  kissc transform <file.kc> [--max-ts N] [--race <target>]
  kissc explore <file.kc> [--balanced] [--context-bound K]
  kissc detectors <file.kc> <target> [--runs N]
  kissc serve [--socket PATH] [--port N] [--jobs N] [--io-threads N]
              [--cache-dir DIR] [--max-queue N]
              [--admission-wait S] [--idle-timeout S] [--fault SPEC]
              [--timeout S] [--max-steps N] [--max-states N] [--retries N]
              [--trace-out PATH] [--metrics PATH] [--progress]
  kissc submit <file.kc>... [--race <target> | --ltl FORMULA] (--socket PATH | --port N)
  kissc submit --corpus [--refined] [--limit N] (--socket PATH | --port N)
              [--engine explicit|summary|bfs] [--store legacy|cow] [--max-ts N]
              [--timeout S] [--max-steps N] [--max-states N] [--no-cache]
              [--no-batch] [--retry N] [--retry-backoff MS] [--request-timeout S]
  kissc ping (--socket PATH | --port N) [--request-timeout S]
  kissc metrics [--json] (--socket PATH | --port N) [--request-timeout S]
  kissc top [--interval MS] [--count N] (--socket PATH | --port N)
            [--request-timeout S]

serving (serve, submit, ping, metrics, top):
  --socket PATH     unix socket to listen/connect on
  --port N          loopback TCP port to listen/connect on (serve: 0 picks one)
  --jobs N          worker threads executing checks (default: CPU count)
  --io-threads N    driver threads multiplexing connections (default 2);
                    accepted connections round-robin across them
  --cache-dir DIR   persist the result cache journal here (survives restarts)
  --max-queue N     bounded job-queue depth; full = backpressure (default 64)
  --admission-wait S  shed with a typed `overloaded` response after the queue
                      stays full this long (default 10)
  --idle-timeout S  close connections idle with no in-flight work this long
  --fault SPEC      arm deterministic failpoints, e.g.
                    `seed=7;serve.journal.append=error*1`; the KISS_FAULT
                    environment variable is read when the flag is absent
  --corpus          submit the 18-driver evaluation corpus (deduplicated)
  --refined         corpus under the refined OS model
  --limit N         submit only the first N corpus entries
  --no-cache        ask the server to skip its cache lookup
  --no-batch        send one frame per request instead of pipelined batch
                    frames (what pre-batch clients did)
  --retry N         reconnect and re-send unanswered idempotent work up to
                    N times (exponential backoff, deterministic jitter)
  --retry-backoff MS  initial backoff before the first retry (default 100)
  --request-timeout S give up on a silent connection after this long
  --json            print the raw metrics snapshot JSON (metrics)
  --interval MS     refresh period for `top` (default 1000)
  --count N         render N frames then exit; 0 polls until ^C (default 0)
  ^C or SIGTERM drains in-flight requests before the server exits

liveness (check, submit):
  --ltl FORMULA     check an LTL formula over the program's globals
                    instead of its assertions, e.g. 'G(locked -> F !locked)'
                    (propositions: `name` or `name OP INT`; operators
                    G F X U R ! && || -> <->). A violation prints the
                    stem and repeating cycle of a concrete lasso and
                    exits 5; the exploration honours --explore-jobs
                    with byte-identical results at any worker count

state store (check, race):
  --store legacy|cow  visited-state representation: `cow` (default) is the
                      interned fingerprint table with copy-on-write memory
                      snapshots; `legacy` is the original hash-set store
  --explore-jobs N    worker threads exploring a single check (default 1);
                      BFS engine + cow store only, results are byte-identical
                      to a serial run (also accepted by submit)

observability (check, race):
  --stats           print an engine-statistics line after the verdict
  --trace-out PATH  write a JSONL event trace (one event per line)
  --metrics PATH    write the aggregated run report as JSON
  --progress        render a throttled progress heartbeat on stderr

exit codes:
  0  no error found
  1  an error was reported (assertion violation, race, runtime error)
  2  usage or input problem
  3  inconclusive (budget, deadline, or ^C)
  4  the check itself crashed (isolated by the supervisor)
  5  a liveness property was violated (--ltl)";

/// Minimal flag scanner: `--name value` and boolean `--name`.
struct Flags<'a> {
    rest: Vec<&'a str>,
}

impl<'a> Flags<'a> {
    fn new(args: &'a [String]) -> Self {
        Flags { rest: args.iter().map(String::as_str).collect() }
    }

    fn positional(&mut self) -> Option<&'a str> {
        let idx = self.rest.iter().position(|a| !a.starts_with("--"))?;
        Some(self.rest.remove(idx))
    }

    fn flag(&mut self, name: &str) -> bool {
        match self.rest.iter().position(|a| *a == name) {
            Some(i) => {
                self.rest.remove(i);
                true
            }
            None => false,
        }
    }

    fn value(&mut self, name: &str) -> Result<Option<&'a str>, String> {
        match self.rest.iter().position(|a| *a == name) {
            Some(i) if i + 1 < self.rest.len() => {
                self.rest.remove(i);
                Ok(Some(self.rest.remove(i)))
            }
            Some(_) => Err(format!("{name} needs a value")),
            None => Ok(None),
        }
    }

    fn finish(self) -> Result<(), String> {
        if self.rest.is_empty() {
            return Ok(());
        }
        // Name the offending flag so a typo like `--max-step` is
        // diagnosed directly instead of dumped in a pile.
        match self.rest.iter().find(|a| a.starts_with("--")) {
            Some(flag) => Err(format!("unrecognized flag `{flag}`")),
            None => Err(format!("unexpected argument `{}`", self.rest[0])),
        }
    }
}

fn load(path: &str) -> Result<Program, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    kiss_lang::parse_and_lower(&src).map_err(|e| format!("{path}: {e}"))
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(cmd) = args.first() else {
        return Err("missing subcommand".into());
    };
    if matches!(cmd.as_str(), "--help" | "-h" | "help") {
        println!("{USAGE}");
        return Ok(ExitCode::SUCCESS);
    }
    let mut flags = Flags::new(&args[1..]);
    match cmd.as_str() {
        "check" => {
            let file = flags.positional().ok_or("missing <file>")?;
            let max_ts: usize = parse_num(flags.value("--max-ts")?.unwrap_or("0"))?;
            let engine = match flags.value("--engine")?.unwrap_or("explicit") {
                "explicit" => Engine::Explicit,
                "summary" => Engine::Summary,
                "bfs" => Engine::Bfs,
                other => return Err(format!("unknown engine `{other}`")),
            };
            let store = store_flag(&mut flags)?;
            let explore_jobs = explore_jobs_flag(&mut flags)?;
            let validate = !flags.flag("--no-validate");
            let ltl = ltl_flag(&mut flags)?;
            let (budget, retries) = bound_flags(&mut flags)?;
            let obs_opts = obs_flags(&mut flags)?;
            flags.finish()?;
            let program = load(file)?;
            // Resolve the propositions before supervising so a typo is
            // a usage error (exit 2), not a supervised failure — the
            // same treatment `race` gives an unknown target.
            if let Some(formula) = &ltl {
                kiss_ltl::resolve_atoms(&program, &formula.atoms())
                    .map_err(|name| format!("--ltl: proposition `{name}` names no global"))?;
            }
            let (obs, agg) = build_obs(&obs_opts)?;
            let supervisor = supervisor_with_sigint(budget, retries).with_observer(obs.clone());
            let run = supervisor.run_scoped(file, |b, token, check_obs| {
                let kiss = Kiss::new()
                    .with_max_ts(max_ts)
                    .with_engine(engine)
                    .with_store(store)
                    .with_explore_jobs(explore_jobs)
                    .with_validation(validate)
                    .with_budget(b)
                    .with_cancel(token)
                    .with_observer(check_obs.clone());
                match &ltl {
                    Some(formula) => {
                        kiss.check_ltl(&program, formula).expect("propositions pre-resolved")
                    }
                    None => kiss.check_assertions(&program),
                }
            });
            finish_observed(&obs, agg.as_ref(), &obs_opts)?;
            report_supervised(&program, run, obs_opts.stats)
        }
        "race" => {
            let file = flags.positional().ok_or("missing <file>")?;
            let target = flags.positional().ok_or("missing <target>")?;
            let max_ts: usize = parse_num(flags.value("--max-ts")?.unwrap_or("0"))?;
            let prune = !flags.flag("--no-prune");
            let store = store_flag(&mut flags)?;
            let explore_jobs = explore_jobs_flag(&mut flags)?;
            let (budget, retries) = bound_flags(&mut flags)?;
            let obs_opts = obs_flags(&mut flags)?;
            flags.finish()?;
            let program = load(file)?;
            // Resolve the spec before supervising so a typo is a usage
            // error (exit 2), not a supervised failure.
            let resolved = RaceTarget::resolve(&program, target)
                .ok_or_else(|| format!("unknown race target `{target}`"))?;
            let (obs, agg) = build_obs(&obs_opts)?;
            let supervisor = supervisor_with_sigint(budget, retries).with_observer(obs.clone());
            let label = format!("{file}:{target}");
            let run = supervisor.run_scoped(&label, |b, token, check_obs| {
                Kiss::new()
                    .with_max_ts(max_ts)
                    .with_alias_prune(prune)
                    .with_store(store)
                    .with_explore_jobs(explore_jobs)
                    .with_budget(b)
                    .with_cancel(token)
                    .with_observer(check_obs.clone())
                    .check_race(&program, resolved)
            });
            finish_observed(&obs, agg.as_ref(), &obs_opts)?;
            report_supervised(&program, run, obs_opts.stats)
        }
        "transform" => {
            let file = flags.positional().ok_or("missing <file>")?;
            let max_ts: usize = parse_num(flags.value("--max-ts")?.unwrap_or("0"))?;
            let race = flags.value("--race")?;
            flags.finish()?;
            let program = load(file)?;
            let race = match race {
                Some(spec) => Some(
                    RaceTarget::resolve(&program, spec)
                        .ok_or_else(|| format!("unknown race target `{spec}`"))?,
                ),
                None => None,
            };
            let t = transform(&program, &TransformConfig { max_ts, race, alias_prune: true })
                .map_err(|e| e.to_string())?;
            print!("{}", kiss_lang::pretty::print_program(&t.program));
            Ok(ExitCode::SUCCESS)
        }
        "explore" => {
            let file = flags.positional().ok_or("missing <file>")?;
            let balanced = flags.flag("--balanced");
            let cb = flags.value("--context-bound")?;
            flags.finish()?;
            let program = load(file)?;
            let module = Module::lower(program);
            let mut explorer = kiss_conc::Explorer::new(&module);
            if balanced {
                explorer = explorer.with_mode(kiss_conc::ScheduleMode::Balanced);
            } else if let Some(k) = cb {
                explorer =
                    explorer.with_mode(kiss_conc::ScheduleMode::ContextBound(parse_num(k)? as u32));
            }
            let (verdict, stats) = explorer.check_with_stats();
            println!(
                "explored {} states, {} transitions, up to {} threads, {} deadlocked path(s)",
                stats.states, stats.transitions, stats.max_threads, stats.deadlocks
            );
            match verdict {
                kiss_conc::ConcVerdict::Pass => {
                    println!("no assertion failure reachable");
                    Ok(ExitCode::SUCCESS)
                }
                kiss_conc::ConcVerdict::Fail(trace) => {
                    println!(
                        "assertion failure; schedule pattern {:?}",
                        trace.collapsed_schedule()
                    );
                    Ok(ExitCode::from(1))
                }
                kiss_conc::ConcVerdict::RuntimeError(e, _) => {
                    println!("runtime error: {e}");
                    Ok(ExitCode::from(1))
                }
                kiss_conc::ConcVerdict::ResourceBound { steps, states } => {
                    println!("inconclusive: budget exceeded ({steps} steps, {states} states)");
                    Ok(ExitCode::from(3))
                }
            }
        }
        "detectors" => {
            let file = flags.positional().ok_or("missing <file>")?;
            let target = flags.positional().ok_or("missing <target>")?;
            let runs: u32 = parse_num(flags.value("--runs")?.unwrap_or("100"))? as u32;
            flags.finish()?;
            let program = load(file)?;
            let module = Module::lower(program.clone());
            let kiss = Kiss::new()
                .check_race_spec(&program, target)
                .ok_or_else(|| format!("unknown race target `{target}`"))?;
            let ls = kiss_conc::lockset_check(&module, runs, 11);
            let hb = kiss_conc::hb_check(&module, runs, 11);
            println!("KISS      : {}", if kiss.found_error() { "race" } else { "no race" });
            println!("lockset   : {} warning(s) over {runs} runs", ls.warnings.len());
            println!("happens-b.: {} race(s) over {runs} runs", hb.races.len());
            Ok(ExitCode::SUCCESS)
        }
        "serve" => {
            let socket = flags.value("--socket")?.map(PathBuf::from);
            let port = match flags.value("--port")? {
                Some(s) => Some(parse_num(s)? as u16),
                None => None,
            };
            let jobs = match flags.value("--jobs")? {
                Some(s) => parse_num(s)?,
                None => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2),
            };
            let io_threads = match flags.value("--io-threads")? {
                Some(s) => {
                    let n: usize = parse_num(s)?;
                    if n == 0 {
                        return Err("--io-threads needs at least 1".into());
                    }
                    n
                }
                None => ServeConfig::default().io_threads,
            };
            let max_queue = match flags.value("--max-queue")? {
                Some(s) => parse_num(s)?,
                None => 64,
            };
            let cache_dir = flags.value("--cache-dir")?.map(PathBuf::from);
            let admission_wait = match flags.value("--admission-wait")? {
                Some(s) => Duration::from_secs(parse_num(s)? as u64),
                None => Duration::from_secs(10),
            };
            let idle_timeout = flags
                .value("--idle-timeout")?
                .map(|s| parse_num(s).map(|secs| Duration::from_secs(secs as u64)))
                .transpose()?;
            let fault = flags.value("--fault")?;
            let (budget, retries) = bound_flags(&mut flags)?;
            let obs_opts = obs_flags(&mut flags)?;
            flags.finish()?;
            match fault {
                Some(spec) => {
                    kiss_fault::configure(spec).map_err(|e| format!("--fault: {e}"))?;
                    eprintln!("fault injection armed: {spec}");
                }
                None => {
                    if let Some(spec) =
                        kiss_fault::configure_from_env().map_err(|e| format!("KISS_FAULT: {e}"))?
                    {
                        eprintln!("fault injection armed from KISS_FAULT: {spec}");
                    }
                }
            }
            let (obs, agg) = build_obs(&obs_opts)?;
            let shutdown = CancelToken::new();
            install_sigint_cancel(shutdown.clone());
            install_sigterm_cancel(shutdown.clone());
            let cfg = ServeConfig {
                socket: socket.clone(),
                port,
                jobs,
                io_threads,
                max_queue,
                admission_wait,
                idle_timeout,
                cache_dir,
                budget,
                retries,
                obs: obs.clone(),
            };
            let server = Server::bind(cfg).map_err(|e| e.to_string())?;
            if let Some(path) = &socket {
                println!("listening on {}", path.display());
            }
            if let Some(port) = server.local_port() {
                println!("listening on 127.0.0.1:{port}");
            }
            println!("serving with {jobs} worker(s); ^C or SIGTERM drains and exits");
            let stats = server.run(&shutdown).map_err(|e| format!("serve failed: {e}"))?;
            finish_observed(&obs, agg.as_ref(), &obs_opts)?;
            println!(
                "served {} request(s): {} cache hit(s), {} miss(es), {} shed",
                stats.requests, stats.cache_hits, stats.cache_misses, stats.shed
            );
            let fired = kiss_fault::total_fired();
            if fired > 0 {
                println!("fault injection: {fired} fault(s) fired");
            }
            Ok(ExitCode::SUCCESS)
        }
        "submit" => {
            let socket = flags.value("--socket")?.map(PathBuf::from);
            let port = match flags.value("--port")? {
                Some(s) => Some(parse_num(s)? as u16),
                None => None,
            };
            let corpus = flags.flag("--corpus");
            let refined = flags.flag("--refined");
            let limit = flags.value("--limit")?.map(parse_num).transpose()?;
            let engine = match flags.value("--engine")? {
                None => Engine::default(),
                Some(s) => Engine::parse(s).ok_or_else(|| format!("unknown engine `{s}`"))?,
            };
            let store = store_flag(&mut flags)?;
            let explore_jobs = explore_jobs_flag(&mut flags)?;
            let max_ts: usize = parse_num(flags.value("--max-ts")?.unwrap_or("0"))?;
            let timeout_ms = flags
                .value("--timeout")?
                .map(|s| parse_num(s).map(|secs| (secs as u64) * 1000))
                .transpose()?;
            let max_steps = flags.value("--max-steps")?.map(parse_num).transpose()?;
            let max_states = flags.value("--max-states")?.map(parse_num).transpose()?;
            let no_cache = flags.flag("--no-cache");
            let no_batch = flags.flag("--no-batch");
            let race = flags.value("--race")?;
            let ltl = ltl_flag(&mut flags)?;
            if race.is_some() && ltl.is_some() {
                return Err("--race and --ltl are mutually exclusive".into());
            }
            let retry = match flags.value("--retry")? {
                Some(s) => parse_num(s)? as u32,
                None => 0,
            };
            let retry_backoff = match flags.value("--retry-backoff")? {
                Some(s) => Duration::from_millis(parse_num(s)? as u64),
                None => Duration::from_millis(100),
            };
            let request_timeout = flags
                .value("--request-timeout")?
                .map(|s| parse_num(s).map(|secs| Duration::from_secs(secs as u64)))
                .transpose()?;
            let mut files = Vec::new();
            while let Some(f) = flags.positional() {
                files.push(f);
            }
            flags.finish()?;
            let endpoint = endpoint_of(socket, port)?;
            let configure = |mut request: Request| {
                request.engine = engine;
                request.store = store;
                request.max_ts = max_ts;
                request.max_steps = max_steps.map(|n| n as u64);
                request.max_states = max_states.map(|n| n as u64);
                request.timeout_ms = timeout_ms;
                request.no_cache = no_cache;
                request.explore_jobs = explore_jobs;
                request
            };
            let mut requests = Vec::new();
            if corpus {
                if !files.is_empty() {
                    return Err("--corpus and <file.kc> arguments are mutually exclusive".into());
                }
                if ltl.is_some() {
                    return Err("--corpus and --ltl are mutually exclusive".into());
                }
                let mut entries = kiss_drivers::corpus_batch(refined);
                if let Some(limit) = limit {
                    entries.truncate(limit);
                }
                for entry in entries {
                    requests
                        .push(configure(Request::race(entry.label, entry.source, entry.race_spec)));
                }
            } else {
                if files.is_empty() {
                    return Err("submit needs <file.kc> arguments or --corpus".into());
                }
                for file in files {
                    let source = std::fs::read_to_string(file)
                        .map_err(|e| format!("cannot read `{file}`: {e}"))?;
                    requests.push(configure(match (race, &ltl) {
                        (Some(target), _) => Request::race(file, source, target),
                        // The formula travels pretty-printed: two
                        // spellings of one formula share a cache entry.
                        (None, Some(formula)) => {
                            Request::ltl(file, source, formula.to_string())
                        }
                        (None, None) => Request::check(file, source),
                    }));
                }
            }
            let opts = SubmitOptions {
                retries: retry,
                backoff: retry_backoff,
                request_timeout,
                batch: !no_batch,
                ..SubmitOptions::default()
            };
            let started = std::time::Instant::now();
            let outcome = submit_batch_with(&endpoint, &requests, &opts)
                .map_err(|e| format!("submit failed: {e}"))?;
            let wall = started.elapsed();
            for (response, cache) in outcome.responses.iter().zip(&outcome.entry_cache) {
                println!(
                    "{}: {} — {} [{}]",
                    response.id,
                    response.verdict,
                    response.detail,
                    cache.as_str()
                );
            }
            let answered = outcome.hits + outcome.misses;
            let hit_rate = if answered == 0 {
                0.0
            } else {
                100.0 * outcome.hits as f64 / answered as f64
            };
            let rps = outcome.responses.len() as f64 / wall.as_secs_f64().max(1e-9);
            println!(
                "{} entries ({} unique) in {} ms: hits={} misses={} hit-rate={hit_rate:.1}% — {rps:.0} req/s",
                outcome.responses.len(),
                outcome.unique,
                wall.as_millis(),
                outcome.hits,
                outcome.misses,
            );
            if outcome.retries > 0 {
                println!("reconnected {} time(s) to complete the batch", outcome.retries);
            }
            let verdicts: Vec<&str> =
                outcome.responses.iter().map(|r| r.verdict.as_str()).collect();
            if outcome.responses.iter().any(|r| r.found_error()) {
                Ok(ExitCode::from(1))
            } else if verdicts.contains(&"liveness") {
                Ok(ExitCode::from(5))
            } else if verdicts.contains(&"crashed") {
                Ok(ExitCode::from(4))
            } else if verdicts.contains(&"inconclusive") {
                Ok(ExitCode::from(3))
            } else if verdicts.iter().any(|v| *v == "error" || *v == "transform_failed") {
                Ok(ExitCode::from(2))
            } else {
                Ok(ExitCode::SUCCESS)
            }
        }
        "ping" => {
            let (endpoint, timeout) = client_flags(&mut flags)?;
            flags.finish()?;
            let snap = kiss_serve::fetch_metrics(&endpoint, timeout)
                .map_err(|e| format!("ping failed: {e}"))?;
            println!(
                "pong from {endpoint}: uptime {:.1}s, queue depth {} (peak {}), {} in flight",
                snap.uptime_ms as f64 / 1000.0,
                snap.queue_depth,
                snap.queue_peak,
                snap.in_flight,
            );
            Ok(ExitCode::SUCCESS)
        }
        "metrics" => {
            let json = flags.flag("--json");
            let (endpoint, timeout) = client_flags(&mut flags)?;
            flags.finish()?;
            let snap = kiss_serve::fetch_metrics(&endpoint, timeout)
                .map_err(|e| format!("metrics failed: {e}"))?;
            if json {
                println!("{}", snap.to_json());
            } else {
                print!("{}", snap.render());
            }
            Ok(ExitCode::SUCCESS)
        }
        "top" => {
            let interval = match flags.value("--interval")? {
                Some(s) => Duration::from_millis(parse_num(s)? as u64),
                None => Duration::from_millis(1000),
            };
            let count: usize = match flags.value("--count")? {
                Some(s) => parse_num(s)?,
                None => 0,
            };
            let (endpoint, timeout) = client_flags(&mut flags)?;
            flags.finish()?;
            let stop = CancelToken::new();
            install_sigint_cancel(stop.clone());
            let mut frames = 0usize;
            while !stop.is_cancelled() {
                let snap = kiss_serve::fetch_metrics(&endpoint, timeout)
                    .map_err(|e| format!("top: {e}"))?;
                // Clear the screen and re-home the cursor between
                // frames so the view refreshes in place.
                if frames > 0 || count == 0 {
                    print!("\x1b[2J\x1b[H");
                }
                println!(
                    "kissc top — {endpoint} — every {}ms (^C quits)",
                    interval.as_millis()
                );
                print!("{}", snap.render());
                use std::io::Write as _;
                let _ = std::io::stdout().flush();
                frames += 1;
                if count != 0 && frames >= count {
                    break;
                }
                // Sleep in short slices so ^C stays responsive.
                let deadline = std::time::Instant::now() + interval;
                while !stop.is_cancelled() {
                    let now = std::time::Instant::now();
                    if now >= deadline {
                        break;
                    }
                    std::thread::sleep((deadline - now).min(Duration::from_millis(25)));
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

/// Parses the shared client flags of `ping`, `metrics`, and `top`:
/// the endpoint plus the per-request timeout.
fn client_flags(flags: &mut Flags) -> Result<(Endpoint, Duration), String> {
    let socket = flags.value("--socket")?.map(PathBuf::from);
    let port = match flags.value("--port")? {
        Some(s) => Some(parse_num(s)? as u16),
        None => None,
    };
    let timeout = match flags.value("--request-timeout")? {
        Some(s) => Duration::from_secs(parse_num(s)? as u64),
        None => Duration::from_secs(5),
    };
    Ok((endpoint_of(socket, port)?, timeout))
}

/// Picks the client endpoint from `--socket`/`--port`.
fn endpoint_of(socket: Option<PathBuf>, port: Option<u16>) -> Result<Endpoint, String> {
    #[cfg(unix)]
    if let Some(path) = socket {
        return Ok(Endpoint::Unix(path));
    }
    #[cfg(not(unix))]
    if socket.is_some() {
        return Err("unix sockets are not available on this platform; use --port".into());
    }
    match port {
        Some(port) => Ok(Endpoint::Tcp(format!("127.0.0.1:{port}"))),
        None => Err("submit needs a server --socket or --port".into()),
    }
}

fn parse_num(s: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("invalid number `{s}`"))
}

/// Parses the shared `--store` flag of `check` and `race`.
fn store_flag(flags: &mut Flags) -> Result<StoreKind, String> {
    match flags.value("--store")? {
        None => Ok(StoreKind::default()),
        Some(s) => StoreKind::parse(s).ok_or_else(|| format!("unknown store `{s}`")),
    }
}

/// Parses the shared `--explore-jobs` flag of `check`, `race`, and
/// `submit`: the per-check exploration worker count (default 1,
/// serial). Zero is rejected — "no workers" is not a meaningful
/// request, and silently clamping it would hide the typo.
fn explore_jobs_flag(flags: &mut Flags) -> Result<usize, String> {
    match flags.value("--explore-jobs")? {
        None => Ok(1),
        Some(s) => {
            let n: usize =
                s.parse().map_err(|_| format!("invalid --explore-jobs `{s}`"))?;
            if n == 0 {
                return Err("--explore-jobs must be at least 1".into());
            }
            Ok(n)
        }
    }
}

/// Parses the shared `--ltl` flag of `check` and `submit`: an LTL
/// formula over the program's globals. A malformed formula is a usage
/// error (exit 2) whose message names the offending token.
fn ltl_flag(flags: &mut Flags) -> Result<Option<kiss_ltl::Formula>, String> {
    match flags.value("--ltl")? {
        None => Ok(None),
        Some(s) => kiss_ltl::parse(s).map(Some).map_err(|e| format!("--ltl: {e}")),
    }
}

/// Parses the shared resource-bound flags of `check` and `race`.
fn bound_flags(flags: &mut Flags) -> Result<(Budget, u32), String> {
    let mut budget = Budget::default();
    if let Some(s) = flags.value("--timeout")? {
        budget = budget.with_deadline(Duration::from_secs(parse_num(s)? as u64));
    }
    if let Some(s) = flags.value("--max-steps")? {
        budget.max_steps = parse_num(s)? as u64;
    }
    if let Some(s) = flags.value("--max-states")? {
        budget.max_states = parse_num(s)?;
    }
    let retries = match flags.value("--retries")? {
        Some(s) => parse_num(s)? as u32,
        None => 0,
    };
    Ok((budget, retries))
}

/// Parses the shared observability flags of `check` and `race`.
fn obs_flags(flags: &mut Flags) -> Result<ObsOpts, String> {
    Ok(ObsOpts {
        stats: flags.flag("--stats"),
        trace_out: flags.value("--trace-out")?.map(str::to_string),
        metrics: flags.value("--metrics")?.map(str::to_string),
        progress: flags.flag("--progress"),
    })
}

struct ObsOpts {
    stats: bool,
    trace_out: Option<String>,
    metrics: Option<String>,
    progress: bool,
}

/// Builds the observer pipeline for one CLI check. Returns `Obs::off()`
/// (which compiles the engine hooks to no-ops) when no observability
/// flag was given; otherwise an aggregator always rides along so the
/// final `RunSummary` event carries a complete report.
fn build_obs(opts: &ObsOpts) -> Result<(Obs, Option<Aggregator>), String> {
    if opts.trace_out.is_none() && opts.metrics.is_none() && !opts.progress {
        return Ok((Obs::off(), None));
    }
    let mut sinks: Vec<Box<dyn Observer>> = Vec::new();
    if let Some(path) = &opts.trace_out {
        let sink = JsonlSink::create(path)
            .map_err(|e| format!("cannot create trace file `{path}`: {e}"))?;
        sinks.push(Box::new(sink));
    }
    let agg = Aggregator::new();
    sinks.push(Box::new(agg.clone()));
    if opts.progress {
        sinks.push(Box::new(Heartbeat::stderr()));
    }
    Ok((Obs::multi(sinks), Some(agg)))
}

/// Emits the final `RunSummary` event and writes the `--metrics` file.
fn finish_observed(obs: &Obs, agg: Option<&Aggregator>, opts: &ObsOpts) -> Result<(), String> {
    let Some(agg) = agg else { return Ok(()) };
    let report = agg.report();
    if let Some(path) = &opts.metrics {
        std::fs::write(path, format!("{}\n", report.to_json()))
            .map_err(|e| format!("cannot write metrics file `{path}`: {e}"))?;
    }
    obs.emit(|_| Event::RunSummary { report: report.clone() });
    Ok(())
}

/// Builds the supervisor for one CLI check, wiring SIGINT to its
/// cancellation token so ^C winds the search down cleanly (the check
/// reports `inconclusive: cancelled` and exits 3).
fn supervisor_with_sigint(budget: Budget, retries: u32) -> Supervisor {
    let cancel = CancelToken::new();
    install_sigint_cancel(cancel.clone());
    Supervisor::new(budget).with_retries(retries).with_cancel(cancel)
}

/// Reports a supervised run: a crash is isolated and mapped to its own
/// exit code (4) so scripts can tell "the checker broke" from "the
/// program has a bug" (1) and "the bound was hit" (3).
fn report_supervised(
    program: &Program,
    run: SupervisedRun,
    show_stats: bool,
) -> Result<ExitCode, String> {
    match run.result {
        Supervised::Completed(outcome) => {
            if show_stats {
                if let Some(stats) = outcome.stats() {
                    println!(
                        "stats: engine={} {} emitted={} pruned={} attempts={}",
                        stats.engine.name(),
                        stats.seq.render(),
                        stats.checks_emitted,
                        stats.checks_pruned,
                        run.attempts
                    );
                }
            }
            report_outcome(program, outcome)
        }
        Supervised::Crashed { cause } => {
            println!("CHECK CRASHED: {cause}");
            println!("(the failure was isolated; the input program was not judged)");
            Ok(ExitCode::from(4))
        }
    }
}

fn report_outcome(program: &Program, outcome: KissOutcome) -> Result<ExitCode, String> {
    match outcome {
        KissOutcome::NoErrorFound(stats) => {
            println!(
                "no error found ({} steps, {} states explored)",
                stats.steps(),
                stats.states()
            );
            Ok(ExitCode::SUCCESS)
        }
        KissOutcome::AssertionViolation(report) => {
            println!("ASSERTION VIOLATION");
            println!(
                "threads: {}, context switches: {}, schedule pattern {:?}",
                report.mapped.thread_count, report.mapped.context_switches, report.mapped.pattern
            );
            if let Some(v) = report.validated {
                println!("replay-validated on the concurrent program: {v}");
            }
            println!("concurrent trace:");
            print!("{}", render_trace(program, &report.mapped));
            Ok(ExitCode::from(1))
        }
        KissOutcome::RaceDetected(report) => {
            println!("RACE CONDITION");
            println!(
                "  first access : {} at {}",
                if report.first.is_write { "write" } else { "read" },
                report.first.span
            );
            println!(
                "  second access: {} at {}",
                if report.second.is_write { "write" } else { "read" },
                report.second.span
            );
            println!("concurrent trace:");
            print!("{}", render_trace(program, &report.mapped));
            Ok(ExitCode::from(1))
        }
        KissOutcome::LivenessViolated(report) => {
            println!("LIVENESS VIOLATION");
            println!("formula: {}", report.formula);
            print!("{}", render_liveness(program, &report));
            Ok(ExitCode::from(5))
        }
        KissOutcome::Inconclusive { stats, reason } => {
            let (steps, states) = (stats.steps(), stats.states());
            if reason == BoundReason::Cancelled {
                println!("inconclusive: cancelled ({steps} steps, {states} states)");
            } else {
                println!(
                    "inconclusive: resource bound exceeded on {reason} \
                     ({steps} steps, {states} states)"
                );
            }
            Ok(ExitCode::from(3))
        }
        KissOutcome::RuntimeError(e) => {
            println!("runtime error in program: {e}");
            Ok(ExitCode::from(1))
        }
        KissOutcome::TransformFailed(e) => Err(e.to_string()),
    }
}
