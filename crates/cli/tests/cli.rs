//! End-to-end tests of the `kissc` binary.

use std::io::Write as _;
use std::process::Command;

fn kissc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_kissc"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("kissc-test-{name}-{}.kc", std::process::id()));
    let mut f = std::fs::File::create(&path).expect("create temp file");
    f.write_all(contents.as_bytes()).expect("write temp file");
    path
}

const BUGGY: &str = "
    int g;
    void other() { g = 1; }
    void main() { async other(); assert g == 0; }
";

const CLEAN: &str = "
    int g;
    void other() { g = 1; }
    void main() { async other(); assert g <= 1; }
";

const RACY: &str = "
    int r;
    void w() { r = 1; }
    void main() { async w(); r = 2; }
";

#[test]
fn check_reports_violation_with_exit_1() {
    let path = write_temp("buggy", BUGGY);
    let out = kissc().args(["check"]).arg(&path).output().expect("run kissc");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ASSERTION VIOLATION"), "{stdout}");
    assert!(stdout.contains("replay-validated on the concurrent program: true"), "{stdout}");
    assert!(stdout.contains("thread 1"), "{stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn check_clean_program_exits_0() {
    let path = write_temp("clean", CLEAN);
    let out = kissc().args(["check"]).arg(&path).output().expect("run kissc");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("no error found"));
    std::fs::remove_file(path).ok();
}

#[test]
fn race_subcommand_finds_the_race() {
    let path = write_temp("racy", RACY);
    let out = kissc().args(["race"]).arg(&path).arg("r").output().expect("run kissc");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("RACE CONDITION"), "{stdout}");
    assert!(stdout.contains("first access"), "{stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn transform_prints_parseable_sequential_program() {
    let path = write_temp("transform", BUGGY);
    let out = kissc()
        .args(["transform"])
        .arg(&path)
        .args(["--max-ts", "1"])
        .output()
        .expect("run kissc");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("__raise"), "{text}");
    assert!(text.contains("__schedule"), "{text}");
    assert!(text.contains("__kiss_main"), "{text}");
    kiss_lang::parse_and_lower(&text).expect("transform output must reparse");
    std::fs::remove_file(path).ok();
}

#[test]
fn explore_reports_states_and_verdict() {
    let path = write_temp("explore", BUGGY);
    let out = kissc().args(["explore"]).arg(&path).output().expect("run kissc");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("explored"), "{stdout}");
    assert!(stdout.contains("assertion failure"), "{stdout}");
    // Balanced exploration also finds this bug (it is balanced).
    let out = kissc().args(["explore"]).arg(&path).arg("--balanced").output().expect("run");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    std::fs::remove_file(path).ok();
}

#[test]
fn detectors_summarize_all_three() {
    let path = write_temp("detectors", RACY);
    let out = kissc()
        .args(["detectors"])
        .arg(&path)
        .args(["r", "--runs", "50"])
        .output()
        .expect("run kissc");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("KISS      : race"), "{stdout}");
    assert!(stdout.contains("lockset"), "{stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn usage_errors_exit_2() {
    let out = kissc().output().expect("run kissc");
    assert_eq!(out.status.code(), Some(2));
    let out = kissc().args(["frobnicate"]).output().expect("run kissc");
    assert_eq!(out.status.code(), Some(2));
    let out = kissc().args(["check", "/nonexistent/path.kc"]).output().expect("run kissc");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn explore_jobs_matches_serial_output_and_rejects_bad_values() {
    // The flag is a throughput knob, never a semantics knob: the
    // parallel run's report must be byte-identical to the serial one.
    let path = write_temp("jobs", BUGGY);
    let bfs = ["--engine", "bfs", "--store", "cow"];
    let serial =
        kissc().args(["check"]).arg(&path).args(bfs).output().expect("run kissc");
    let parallel = kissc()
        .args(["check"])
        .arg(&path)
        .args(bfs)
        .args(["--explore-jobs", "4"])
        .output()
        .expect("run kissc");
    assert_eq!(serial.status.code(), Some(1), "{serial:?}");
    assert_eq!(parallel.status.code(), Some(1), "{parallel:?}");
    assert_eq!(
        String::from_utf8_lossy(&serial.stdout),
        String::from_utf8_lossy(&parallel.stdout)
    );
    // Zero and garbage are usage errors that name the flag.
    for bad in ["0", "many"] {
        let out = kissc()
            .args(["check"])
            .arg(&path)
            .args(["--explore-jobs", bad])
            .output()
            .expect("run kissc");
        assert_eq!(out.status.code(), Some(2), "{out:?}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("--explore-jobs"),
            "{out:?}"
        );
    }
    std::fs::remove_file(path).ok();
}

#[test]
fn bad_race_target_is_a_usage_error() {
    let path = write_temp("badtarget", RACY);
    let out = kissc().args(["race"]).arg(&path).arg("nope").output().expect("run kissc");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    std::fs::remove_file(path).ok();
}

// An unbounded counter: the state space never closes, so only a
// resource bound (steps, deadline, ...) can end the check.
const DIVERGENT: &str = "
    int g;
    void spin() { iter { g = g + 1; } }
    void main() { async spin(); assert g >= 0; }
";

#[test]
fn timeout_flag_reports_deadline_with_exit_3() {
    let path = write_temp("timeout", DIVERGENT);
    let out = kissc()
        .args(["check"])
        .arg(&path)
        .args(["--timeout", "0"])
        .output()
        .expect("run kissc");
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("inconclusive"), "{stdout}");
    assert!(stdout.contains("deadline"), "{stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn max_steps_flag_reports_steps_with_exit_3() {
    let path = write_temp("maxsteps", DIVERGENT);
    let out = kissc()
        .args(["check"])
        .arg(&path)
        .args(["--max-steps", "500"])
        .output()
        .expect("run kissc");
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("resource bound exceeded on steps"), "{stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn retries_escalate_a_tight_budget_to_a_verdict() {
    let path = write_temp("retries", CLEAN);
    // 10 steps is too tight for this program (it needs ~50), but the
    // doubling ladder reaches a budget that completes the check.
    let args = ["--max-steps", "10", "--max-states", "1000000"];
    let out = kissc().args(["check"]).arg(&path).args(args).output().expect("run kissc");
    assert_eq!(out.status.code(), Some(3), "without retries: {out:?}");
    let out = kissc()
        .args(["check"])
        .arg(&path)
        .args(args)
        .args(["--retries", "4"])
        .output()
        .expect("run kissc");
    assert_eq!(out.status.code(), Some(0), "with retries: {out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("no error found"));
    std::fs::remove_file(path).ok();
}

#[test]
fn race_subcommand_accepts_bound_flags() {
    let path = write_temp("raceflags", RACY);
    let out = kissc()
        .args(["race"])
        .arg(&path)
        .args(["r", "--timeout", "600", "--max-steps", "1000000", "--retries", "1"])
        .output()
        .expect("run kissc");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("RACE CONDITION"));
    std::fs::remove_file(path).ok();
}

#[cfg(unix)]
#[test]
fn sigint_cancels_the_check_with_exit_3() {
    use std::time::{Duration, Instant};

    let path = write_temp("sigint", DIVERGENT);
    // A long deadline so only the signal can end the run this fast.
    let mut child = kissc()
        .args(["check"])
        .arg(&path)
        .args(["--timeout", "600"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn kissc");
    std::thread::sleep(Duration::from_millis(300));
    let kill = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status()
        .expect("send SIGINT");
    assert!(kill.success());
    let deadline = Instant::now() + Duration::from_secs(10);
    let status = loop {
        if let Some(status) = child.try_wait().expect("poll child") {
            break status;
        }
        assert!(Instant::now() < deadline, "kissc did not wind down after SIGINT");
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(status.code(), Some(3), "{status:?}");
    let mut stdout = String::new();
    use std::io::Read as _;
    child.stdout.take().unwrap().read_to_string(&mut stdout).expect("read stdout");
    assert!(stdout.contains("cancelled"), "{stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn help_lists_every_subcommand_and_the_exit_code_table() {
    let out = kissc().args(["--help"]).output().expect("run kissc");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for subcommand in
        ["kissc check", "kissc race", "kissc transform", "kissc explore", "kissc detectors", "kissc serve", "kissc submit"]
    {
        assert!(stdout.contains(subcommand), "help must list `{subcommand}`:\n{stdout}");
    }
    assert!(stdout.contains("exit codes:"), "{stdout}");
    for line in ["0  no error found", "1  an error was reported", "2  usage", "3  inconclusive", "4  the check itself crashed"] {
        assert!(stdout.contains(line), "exit-code table must mention `{line}`:\n{stdout}");
    }
}

#[test]
fn unknown_flags_are_named_in_the_error() {
    let path = write_temp("unknownflag", CLEAN);
    let out = kissc()
        .args(["check"])
        .arg(&path)
        .args(["--max-step", "5"])
        .output()
        .expect("run kissc");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unrecognized flag `--max-step`"), "{stderr}");
    std::fs::remove_file(path).ok();
}

#[cfg(unix)]
#[test]
fn serve_and_submit_round_trip_with_cache_hits_and_clean_drain() {
    use std::time::{Duration, Instant};

    let program = write_temp("served", RACY);
    let socket = std::env::temp_dir().join(format!("kissc-serve-{}.sock", std::process::id()));
    let mut server = kissc()
        .args(["serve", "--socket"])
        .arg(&socket)
        .args(["--jobs", "2", "--max-steps", "100000", "--max-states", "20000"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn kissc serve");
    // Wait for the socket to exist before submitting.
    let deadline = Instant::now() + Duration::from_secs(10);
    while !socket.exists() {
        assert!(Instant::now() < deadline, "server never bound its socket");
        std::thread::sleep(Duration::from_millis(20));
    }

    let submit = |label: &str| {
        let out = kissc()
            .args(["submit"])
            .arg(&program)
            .args(["--race", "r", "--socket"])
            .arg(&socket)
            .output()
            .expect("run kissc submit");
        assert_eq!(out.status.code(), Some(1), "{label}: a race is exit 1: {out:?}");
        String::from_utf8_lossy(&out.stdout).to_string()
    };
    let cold = submit("cold");
    assert!(cold.contains("[cache miss]"), "{cold}");
    assert!(cold.contains("hit-rate=0.0%"), "{cold}");
    let warm = submit("warm");
    assert!(warm.contains("[cache hit]"), "{warm}");
    assert!(warm.contains("hit-rate=100.0%"), "{warm}");
    // Identical verdict lines modulo the cache marker.
    let verdict = |s: &str| s.lines().next().unwrap().replace("[cache hit]", "").replace("[cache miss]", "");
    assert_eq!(verdict(&cold), verdict(&warm));

    let kill = Command::new("kill")
        .args(["-INT", &server.id().to_string()])
        .status()
        .expect("send SIGINT");
    assert!(kill.success());
    let deadline = Instant::now() + Duration::from_secs(10);
    let status = loop {
        if let Some(status) = server.try_wait().expect("poll server") {
            break status;
        }
        assert!(Instant::now() < deadline, "server did not drain after SIGINT");
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(status.code(), Some(0), "clean drain exits 0: {status:?}");
    let mut stdout = String::new();
    use std::io::Read as _;
    server.stdout.take().unwrap().read_to_string(&mut stdout).expect("read stdout");
    assert!(stdout.contains("served 2 request(s): 1 cache hit(s), 1 miss(es)"), "{stdout}");
    std::fs::remove_file(program).ok();
}

#[test]
fn submit_without_an_endpoint_is_a_usage_error() {
    let path = write_temp("noendpoint", CLEAN);
    let out = kissc().args(["submit"]).arg(&path).output().expect("run kissc");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("--socket or --port"));
    std::fs::remove_file(path).ok();
}
