//! End-to-end tests of the `kissc` binary.

use std::io::Write as _;
use std::process::Command;

fn kissc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_kissc"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("kissc-test-{name}-{}.kc", std::process::id()));
    let mut f = std::fs::File::create(&path).expect("create temp file");
    f.write_all(contents.as_bytes()).expect("write temp file");
    path
}

const BUGGY: &str = "
    int g;
    void other() { g = 1; }
    void main() { async other(); assert g == 0; }
";

const CLEAN: &str = "
    int g;
    void other() { g = 1; }
    void main() { async other(); assert g <= 1; }
";

const RACY: &str = "
    int r;
    void w() { r = 1; }
    void main() { async w(); r = 2; }
";

#[test]
fn check_reports_violation_with_exit_1() {
    let path = write_temp("buggy", BUGGY);
    let out = kissc().args(["check"]).arg(&path).output().expect("run kissc");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ASSERTION VIOLATION"), "{stdout}");
    assert!(stdout.contains("replay-validated on the concurrent program: true"), "{stdout}");
    assert!(stdout.contains("thread 1"), "{stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn check_clean_program_exits_0() {
    let path = write_temp("clean", CLEAN);
    let out = kissc().args(["check"]).arg(&path).output().expect("run kissc");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("no error found"));
    std::fs::remove_file(path).ok();
}

#[test]
fn race_subcommand_finds_the_race() {
    let path = write_temp("racy", RACY);
    let out = kissc().args(["race"]).arg(&path).arg("r").output().expect("run kissc");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("RACE CONDITION"), "{stdout}");
    assert!(stdout.contains("first access"), "{stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn transform_prints_parseable_sequential_program() {
    let path = write_temp("transform", BUGGY);
    let out = kissc()
        .args(["transform"])
        .arg(&path)
        .args(["--max-ts", "1"])
        .output()
        .expect("run kissc");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("__raise"), "{text}");
    assert!(text.contains("__schedule"), "{text}");
    assert!(text.contains("__kiss_main"), "{text}");
    kiss_lang::parse_and_lower(&text).expect("transform output must reparse");
    std::fs::remove_file(path).ok();
}

#[test]
fn explore_reports_states_and_verdict() {
    let path = write_temp("explore", BUGGY);
    let out = kissc().args(["explore"]).arg(&path).output().expect("run kissc");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("explored"), "{stdout}");
    assert!(stdout.contains("assertion failure"), "{stdout}");
    // Balanced exploration also finds this bug (it is balanced).
    let out = kissc().args(["explore"]).arg(&path).arg("--balanced").output().expect("run");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    std::fs::remove_file(path).ok();
}

#[test]
fn detectors_summarize_all_three() {
    let path = write_temp("detectors", RACY);
    let out = kissc()
        .args(["detectors"])
        .arg(&path)
        .args(["r", "--runs", "50"])
        .output()
        .expect("run kissc");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("KISS      : race"), "{stdout}");
    assert!(stdout.contains("lockset"), "{stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn usage_errors_exit_2() {
    let out = kissc().output().expect("run kissc");
    assert_eq!(out.status.code(), Some(2));
    let out = kissc().args(["frobnicate"]).output().expect("run kissc");
    assert_eq!(out.status.code(), Some(2));
    let out = kissc().args(["check", "/nonexistent/path.kc"]).output().expect("run kissc");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn bad_race_target_is_a_usage_error() {
    let path = write_temp("badtarget", RACY);
    let out = kissc().args(["race"]).arg(&path).arg("nope").output().expect("run kissc");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    std::fs::remove_file(path).ok();
}
