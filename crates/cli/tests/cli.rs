//! End-to-end tests of the `kissc` binary.

use std::io::Write as _;
use std::process::Command;

fn kissc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_kissc"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("kissc-test-{name}-{}.kc", std::process::id()));
    let mut f = std::fs::File::create(&path).expect("create temp file");
    f.write_all(contents.as_bytes()).expect("write temp file");
    path
}

const BUGGY: &str = "
    int g;
    void other() { g = 1; }
    void main() { async other(); assert g == 0; }
";

const CLEAN: &str = "
    int g;
    void other() { g = 1; }
    void main() { async other(); assert g <= 1; }
";

const RACY: &str = "
    int r;
    void w() { r = 1; }
    void main() { async w(); r = 2; }
";

#[test]
fn check_reports_violation_with_exit_1() {
    let path = write_temp("buggy", BUGGY);
    let out = kissc().args(["check"]).arg(&path).output().expect("run kissc");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ASSERTION VIOLATION"), "{stdout}");
    assert!(stdout.contains("replay-validated on the concurrent program: true"), "{stdout}");
    assert!(stdout.contains("thread 1"), "{stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn check_clean_program_exits_0() {
    let path = write_temp("clean", CLEAN);
    let out = kissc().args(["check"]).arg(&path).output().expect("run kissc");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("no error found"));
    std::fs::remove_file(path).ok();
}

#[test]
fn race_subcommand_finds_the_race() {
    let path = write_temp("racy", RACY);
    let out = kissc().args(["race"]).arg(&path).arg("r").output().expect("run kissc");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("RACE CONDITION"), "{stdout}");
    assert!(stdout.contains("first access"), "{stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn transform_prints_parseable_sequential_program() {
    let path = write_temp("transform", BUGGY);
    let out = kissc()
        .args(["transform"])
        .arg(&path)
        .args(["--max-ts", "1"])
        .output()
        .expect("run kissc");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("__raise"), "{text}");
    assert!(text.contains("__schedule"), "{text}");
    assert!(text.contains("__kiss_main"), "{text}");
    kiss_lang::parse_and_lower(&text).expect("transform output must reparse");
    std::fs::remove_file(path).ok();
}

#[test]
fn explore_reports_states_and_verdict() {
    let path = write_temp("explore", BUGGY);
    let out = kissc().args(["explore"]).arg(&path).output().expect("run kissc");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("explored"), "{stdout}");
    assert!(stdout.contains("assertion failure"), "{stdout}");
    // Balanced exploration also finds this bug (it is balanced).
    let out = kissc().args(["explore"]).arg(&path).arg("--balanced").output().expect("run");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    std::fs::remove_file(path).ok();
}

#[test]
fn detectors_summarize_all_three() {
    let path = write_temp("detectors", RACY);
    let out = kissc()
        .args(["detectors"])
        .arg(&path)
        .args(["r", "--runs", "50"])
        .output()
        .expect("run kissc");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("KISS      : race"), "{stdout}");
    assert!(stdout.contains("lockset"), "{stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn usage_errors_exit_2() {
    let out = kissc().output().expect("run kissc");
    assert_eq!(out.status.code(), Some(2));
    let out = kissc().args(["frobnicate"]).output().expect("run kissc");
    assert_eq!(out.status.code(), Some(2));
    let out = kissc().args(["check", "/nonexistent/path.kc"]).output().expect("run kissc");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn bad_race_target_is_a_usage_error() {
    let path = write_temp("badtarget", RACY);
    let out = kissc().args(["race"]).arg(&path).arg("nope").output().expect("run kissc");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    std::fs::remove_file(path).ok();
}

// An unbounded counter: the state space never closes, so only a
// resource bound (steps, deadline, ...) can end the check.
const DIVERGENT: &str = "
    int g;
    void spin() { iter { g = g + 1; } }
    void main() { async spin(); assert g >= 0; }
";

#[test]
fn timeout_flag_reports_deadline_with_exit_3() {
    let path = write_temp("timeout", DIVERGENT);
    let out = kissc()
        .args(["check"])
        .arg(&path)
        .args(["--timeout", "0"])
        .output()
        .expect("run kissc");
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("inconclusive"), "{stdout}");
    assert!(stdout.contains("deadline"), "{stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn max_steps_flag_reports_steps_with_exit_3() {
    let path = write_temp("maxsteps", DIVERGENT);
    let out = kissc()
        .args(["check"])
        .arg(&path)
        .args(["--max-steps", "500"])
        .output()
        .expect("run kissc");
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("resource bound exceeded on steps"), "{stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn retries_escalate_a_tight_budget_to_a_verdict() {
    let path = write_temp("retries", CLEAN);
    // 10 steps is too tight for this program (it needs ~50), but the
    // doubling ladder reaches a budget that completes the check.
    let args = ["--max-steps", "10", "--max-states", "1000000"];
    let out = kissc().args(["check"]).arg(&path).args(args).output().expect("run kissc");
    assert_eq!(out.status.code(), Some(3), "without retries: {out:?}");
    let out = kissc()
        .args(["check"])
        .arg(&path)
        .args(args)
        .args(["--retries", "4"])
        .output()
        .expect("run kissc");
    assert_eq!(out.status.code(), Some(0), "with retries: {out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("no error found"));
    std::fs::remove_file(path).ok();
}

#[test]
fn race_subcommand_accepts_bound_flags() {
    let path = write_temp("raceflags", RACY);
    let out = kissc()
        .args(["race"])
        .arg(&path)
        .args(["r", "--timeout", "600", "--max-steps", "1000000", "--retries", "1"])
        .output()
        .expect("run kissc");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("RACE CONDITION"));
    std::fs::remove_file(path).ok();
}

#[cfg(unix)]
#[test]
fn sigint_cancels_the_check_with_exit_3() {
    use std::time::{Duration, Instant};

    let path = write_temp("sigint", DIVERGENT);
    // A long deadline so only the signal can end the run this fast.
    let mut child = kissc()
        .args(["check"])
        .arg(&path)
        .args(["--timeout", "600"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn kissc");
    std::thread::sleep(Duration::from_millis(300));
    let kill = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status()
        .expect("send SIGINT");
    assert!(kill.success());
    let deadline = Instant::now() + Duration::from_secs(10);
    let status = loop {
        if let Some(status) = child.try_wait().expect("poll child") {
            break status;
        }
        assert!(Instant::now() < deadline, "kissc did not wind down after SIGINT");
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(status.code(), Some(3), "{status:?}");
    let mut stdout = String::new();
    use std::io::Read as _;
    child.stdout.take().unwrap().read_to_string(&mut stdout).expect("read stdout");
    assert!(stdout.contains("cancelled"), "{stdout}");
    std::fs::remove_file(path).ok();
}
