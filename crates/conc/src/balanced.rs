//! The language of balanced executions (paper Section 4.1).
//!
//! For a finite set `X ⊆ N` of thread identifiers the paper defines
//!
//! ```text
//! L_X = { i · L_X1 · i · L_X2 · ... · i · L_Xk · i | {i}, X1, ..., Xk partition X }
//! ```
//!
//! — thread `i`'s actions with *complete* balanced blocks of disjoint
//! thread sets between them. An execution is balanced if the string of
//! thread ids labelling its transitions is balanced. Theorem 1: with
//! `ts` unbounded, `Check(s)` goes wrong iff some balanced execution of
//! `s` goes wrong.
//!
//! Since a failing execution is a *prefix* of a run (it stops at the
//! failure), the operationally useful notion is "prefix of a balanced
//! string", which is exactly what the KISS scheduler generates: a stack
//! discipline where a thread may be preempted only by threads that then
//! run to completion before it resumes. [`BalanceTracker`] recognises
//! these prefixes online; [`is_balanced`] is the whole-string entry
//! point. The unit tests cross-check the automaton against an
//! independent *generative* enumeration of stack-disciplined schedules.

/// Decides whether `s` is (a prefix of) a balanced string — i.e.
/// whether a stack-disciplined scheduler can produce it.
pub fn is_balanced(s: &[u32]) -> bool {
    BalanceTracker::accepts(s)
}

/// Online automaton recognising prefixes of balanced strings.
///
/// Maintains the stack discipline directly: the acting thread must be
/// on top of the stack, be brand new (pushed on top), or be below the
/// top — in which case every thread above it is popped and marked
/// dead (popped threads may never act again).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct BalanceTracker {
    /// Threads with unfinished blocks, outermost first.
    stack: Vec<u32>,
    /// Threads whose blocks have completed; acting again is unbalanced.
    dead: Vec<u32>,
}

impl BalanceTracker {
    /// An empty tracker (no thread has acted yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one action by thread `t`; returns `false` if the extended
    /// string is not a balanced prefix.
    pub fn step(&mut self, t: u32) -> bool {
        if self.dead.contains(&t) {
            return false;
        }
        match self.stack.iter().rposition(|&x| x == t) {
            None => {
                self.stack.push(t);
                true
            }
            Some(pos) => {
                // Everything above `t` finishes for good.
                for popped in self.stack.drain(pos + 1..) {
                    self.dead.push(popped);
                }
                true
            }
        }
    }

    /// The current preemption stack (outermost thread first).
    pub fn stack(&self) -> &[u32] {
        &self.stack
    }

    /// Checks a whole string.
    pub fn accepts(s: &[u32]) -> bool {
        let mut tr = BalanceTracker::new();
        s.iter().all(|&t| tr.step(t))
    }
}

/// Counts the context switches in a schedule string (changes of acting
/// thread between consecutive actions).
pub fn context_switches(s: &[u32]) -> usize {
    s.windows(2).filter(|w| w[0] != w[1]).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn empty_and_single_thread_are_balanced() {
        assert!(is_balanced(&[]));
        assert!(is_balanced(&[1]));
        assert!(is_balanced(&[1, 1, 1]));
    }

    #[test]
    fn nested_blocks_are_balanced() {
        // 1 runs, 2 runs completely in the middle, 1 resumes.
        assert!(is_balanced(&[1, 1, 2, 2, 1]));
        // Deeper nesting: 3 inside 2 inside 1.
        assert!(is_balanced(&[1, 2, 3, 3, 2, 1]));
        // The unfinished-suffix case: 2 starts and the execution stops.
        assert!(is_balanced(&[1, 2]));
    }

    #[test]
    fn sibling_blocks_are_balanced() {
        assert!(is_balanced(&[1, 2, 1, 3, 1]));
        assert!(is_balanced(&[1, 2, 2, 1, 3, 3]));
    }

    #[test]
    fn ping_pong_is_not_balanced() {
        // 1 and 2 alternate twice: 2 is popped dead when 1 resumes, so
        // 2 acting again violates the stack discipline.
        assert!(!is_balanced(&[1, 2, 1, 2]));
        assert!(!is_balanced(&[1, 2, 2, 1, 2]));
        assert!(!is_balanced(&[1, 2, 1, 2, 1]));
    }

    #[test]
    fn two_threads_two_context_switches_are_covered() {
        // The paper: for 2-threaded programs the sequential program
        // simulates all executions with at most two context switches.
        for s in [&[1u32, 2, 1][..], &[1, 1, 2, 2, 1, 1], &[2, 1, 1, 2]] {
            assert!(context_switches(s) <= 2);
            assert!(is_balanced(s), "{s:?}");
        }
    }

    #[test]
    fn context_switch_counting() {
        assert_eq!(context_switches(&[]), 0);
        assert_eq!(context_switches(&[1, 1, 1]), 0);
        assert_eq!(context_switches(&[1, 2, 1]), 2);
        assert_eq!(context_switches(&[1, 1, 2, 2, 1]), 2);
    }

    /// Independently *generates* every schedule string a stack-
    /// disciplined scheduler can produce, by explicit simulation of the
    /// scheduler's choices (act-top / start-new / resume-lower).
    fn generate_all(max_len: usize, max_threads: u32) -> HashSet<Vec<u32>> {
        let mut out = HashSet::new();
        // State: produced string, stack, dead set, next fresh id ...
        // fresh ids are canonical (threads are numbered in order of
        // first action), so we also enumerate non-canonical labellings
        // by permuting afterwards. To keep the cross-check simple we
        // compare only canonical strings from both sides.
        fn rec(
            s: &mut Vec<u32>,
            stack: &mut Vec<u32>,
            dead: &mut Vec<u32>,
            next: u32,
            max_len: usize,
            max_threads: u32,
            out: &mut HashSet<Vec<u32>>,
        ) {
            out.insert(s.clone());
            if s.len() == max_len {
                return;
            }
            // Choice 1: top of stack acts.
            if let Some(&top) = stack.last() {
                s.push(top);
                rec(s, stack, dead, next, max_len, max_threads, out);
                s.pop();
            }
            // Choice 2: a fresh thread starts.
            if next <= max_threads {
                stack.push(next);
                s.push(next);
                rec(s, stack, dead, next + 1, max_len, max_threads, out);
                s.pop();
                stack.pop();
            }
            // Choice 3: resume a thread below the top; everything above
            // it dies.
            for pos in 0..stack.len().saturating_sub(1) {
                let t = stack[pos];
                let popped: Vec<u32> = stack.drain(pos + 1..).collect();
                dead.extend(popped.iter().copied());
                s.push(t);
                rec(s, stack, dead, next, max_len, max_threads, out);
                s.pop();
                for _ in 0..popped.len() {
                    dead.pop();
                }
                stack.extend(popped);
            }
        }
        rec(&mut Vec::new(), &mut Vec::new(), &mut Vec::new(), 1, max_len, max_threads, &mut out);
        out
    }

    /// Canonicalises a string: threads renumbered 1.. in order of first
    /// appearance.
    fn canon(s: &[u32]) -> Vec<u32> {
        let mut map: Vec<u32> = Vec::new();
        s.iter()
            .map(|&t| {
                if let Some(i) = map.iter().position(|&x| x == t) {
                    (i + 1) as u32
                } else {
                    map.push(t);
                    map.len() as u32
                }
            })
            .collect()
    }

    #[test]
    fn tracker_agrees_with_generative_scheduler() {
        let max_len = 7;
        let generated = generate_all(max_len, 4);
        // Every generated string is accepted.
        for s in &generated {
            assert!(is_balanced(s), "generated but rejected: {s:?}");
        }
        // Every accepted canonical string is generated.
        fn enumerate(len: usize, cur: &mut Vec<u32>, generated: &HashSet<Vec<u32>>, checked: &mut u64) {
            if len == 0 {
                if is_balanced(cur) {
                    assert!(
                        generated.contains(&canon(cur)),
                        "accepted but not generatable: {cur:?}"
                    );
                }
                *checked += 1;
                return;
            }
            for t in 1..=3u32 {
                cur.push(t);
                enumerate(len - 1, cur, generated, checked);
                cur.pop();
            }
        }
        let mut checked = 0;
        for len in 0..=max_len {
            enumerate(len, &mut Vec::new(), &generated, &mut checked);
        }
        assert!(checked > 3_000);
    }
}
