//! Concurrent configurations: shared memory plus one stack per thread.

use std::hash::{Hash, Hasher};

use kiss_exec::{Addr, Env, ExecError, Memory, Module, Value};
use kiss_lang::hir::{FuncId, LocalId, Place, VarRef};

/// One stack frame (same layout as the sequential engine's).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Frame {
    /// Executing function.
    pub func: FuncId,
    /// Program counter.
    pub pc: usize,
    /// Local values (parameters first).
    pub locals: Vec<Value>,
    /// Caller's destination for the return value.
    pub dest: Option<Place>,
}

impl Frame {
    /// A frame entering `func` with arguments bound.
    pub fn enter(module: &Module, func: FuncId, args: &[Value], dest: Option<Place>) -> Frame {
        let def = module.program.func(func);
        let mut locals = Vec::with_capacity(def.locals.len());
        for (i, local) in def.locals.iter().enumerate() {
            locals.push(if i < args.len() { args[i] } else { Value::default_for(local.ty.as_ref()) });
        }
        Frame { func, pc: 0, locals, dest }
    }
}

/// One thread: a stack of frames. An empty stack means the thread has
/// terminated.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct ThreadState {
    /// Call stack, bottom first.
    pub frames: Vec<Frame>,
}

impl ThreadState {
    /// Whether the thread has finished.
    pub fn finished(&self) -> bool {
        self.frames.is_empty()
    }
}

/// A concurrent configuration.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConcConfig {
    /// Globals and heap, shared by all threads.
    pub mem: Memory,
    /// Thread states; the vector index is the thread id (main = 0).
    pub threads: Vec<ThreadState>,
}

impl ConcConfig {
    /// The initial configuration: thread 0 entering `main`.
    pub fn initial(module: &Module) -> ConcConfig {
        ConcConfig {
            mem: Memory::initial(&module.program),
            threads: vec![ThreadState {
                frames: vec![Frame::enter(module, module.program.main, &[], None)],
            }],
        }
    }

    /// Whether every thread has terminated.
    pub fn all_finished(&self) -> bool {
        self.threads.iter().all(ThreadState::finished)
    }

    /// A 128-bit fingerprint for visited-state hashing, mixed with an
    /// engine-supplied extra (scheduler restrictions are part of the
    /// exploration state).
    pub fn fingerprint(&self, extra: u64) -> (u64, u64) {
        let mut h1 = std::collections::hash_map::DefaultHasher::new();
        extra.hash(&mut h1);
        self.hash(&mut h1);
        let mut h2 = std::collections::hash_map::DefaultHasher::new();
        (extra ^ 0xDEAD_BEEF).hash(&mut h2);
        self.hash(&mut h2);
        (h1.finish(), h2.finish())
    }
}

/// [`Env`] for one thread of a concurrent configuration.
pub struct ConcEnv<'a> {
    /// Lowered program.
    pub module: &'a Module,
    /// The configuration being stepped.
    pub config: &'a mut ConcConfig,
    /// The acting thread.
    pub tid: usize,
}

impl ConcEnv<'_> {
    fn top(&self) -> &Frame {
        self.config.threads[self.tid].frames.last().expect("acting thread has a frame")
    }

    fn top_mut(&mut self) -> &mut Frame {
        self.config.threads[self.tid].frames.last_mut().expect("acting thread has a frame")
    }
}

impl Env for ConcEnv<'_> {
    fn read_var(&self, v: VarRef) -> Value {
        match v {
            VarRef::Global(g) => self.config.mem.globals[g.0 as usize],
            VarRef::Local(LocalId(l)) => self.top().locals[l as usize],
        }
    }

    fn write_var(&mut self, v: VarRef, val: Value) {
        match v {
            VarRef::Global(g) => self.config.mem.globals[g.0 as usize] = val,
            VarRef::Local(LocalId(l)) => self.top_mut().locals[l as usize] = val,
        }
    }

    fn read_addr(&self, a: Addr) -> Result<Value, ExecError> {
        match a {
            Addr::Global(g) => Ok(self.config.mem.globals[g.0 as usize]),
            Addr::Heap { obj, field } => self
                .config
                .mem
                .heap
                .get(obj as usize)
                .and_then(|o| o.fields.get(field as usize))
                .copied()
                .ok_or(ExecError::BadField),
            Addr::Local { tid, frame, local } => self
                .config
                .threads
                .get(tid as usize)
                .and_then(|t| t.frames.get(frame as usize))
                .and_then(|f| f.locals.get(local as usize))
                .copied()
                .ok_or(ExecError::DanglingLocal),
        }
    }

    fn write_addr(&mut self, a: Addr, val: Value) -> Result<(), ExecError> {
        match a {
            Addr::Global(g) => {
                self.config.mem.globals[g.0 as usize] = val;
                Ok(())
            }
            Addr::Heap { obj, field } => {
                *self
                    .config
                    .mem
                    .heap
                    .get_mut(obj as usize)
                    .and_then(|o| o.fields.get_mut(field as usize))
                    .ok_or(ExecError::BadField)? = val;
                Ok(())
            }
            Addr::Local { tid, frame, local } => {
                *self
                    .config
                    .threads
                    .get_mut(tid as usize)
                    .and_then(|t| t.frames.get_mut(frame as usize))
                    .and_then(|f| f.locals.get_mut(local as usize))
                    .ok_or(ExecError::DanglingLocal)? = val;
                Ok(())
            }
        }
    }

    fn addr_of_var(&self, v: VarRef) -> Addr {
        match v {
            VarRef::Global(g) => Addr::Global(g),
            VarRef::Local(LocalId(l)) => Addr::Local {
                tid: self.tid as u32,
                frame: (self.config.threads[self.tid].frames.len() - 1) as u32,
                local: l,
            },
        }
    }

    fn malloc(&mut self, sid: kiss_lang::hir::StructId) -> u32 {
        self.config.mem.malloc(&self.module.program, sid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kiss_lang::parse_and_lower;

    fn module(src: &str) -> Module {
        Module::lower(parse_and_lower(src).unwrap())
    }

    #[test]
    fn initial_has_single_main_thread() {
        let m = module("int g; void main() { g = 1; }");
        let c = ConcConfig::initial(&m);
        assert_eq!(c.threads.len(), 1);
        assert!(!c.all_finished());
        assert_eq!(c.threads[0].frames[0].func, m.program.main);
    }

    #[test]
    fn fingerprint_mixes_extra_state() {
        let m = module("int g; void main() { g = 1; }");
        let c = ConcConfig::initial(&m);
        assert_ne!(c.fingerprint(0), c.fingerprint(1));
        assert_eq!(c.fingerprint(7), c.fingerprint(7));
    }

    #[test]
    fn env_addresses_cross_thread_locals() {
        let m = module("void main() { int x; skip; }");
        let mut c = ConcConfig::initial(&m);
        // Simulate a second thread with one frame.
        let frame = Frame::enter(&m, m.program.main, &[], None);
        c.threads.push(ThreadState { frames: vec![frame] });
        {
            let mut env = ConcEnv { module: &m, config: &mut c, tid: 1 };
            env.write_var(VarRef::Local(LocalId(0)), Value::Int(42));
        }
        let env = ConcEnv { module: &m, config: &mut c, tid: 0 };
        // Thread 0 can read thread 1's local through an address.
        let a = Addr::Local { tid: 1, frame: 0, local: 0 };
        assert_eq!(env.read_addr(a), Ok(Value::Int(42)));
        // Dangling coordinates fail.
        assert_eq!(env.read_addr(Addr::Local { tid: 5, frame: 0, local: 0 }), Err(ExecError::DanglingLocal));
    }

    #[test]
    fn finished_thread_is_detected() {
        let mut t = ThreadState::default();
        assert!(t.finished());
        let m = module("void main() { skip; }");
        t.frames.push(Frame::enter(&m, m.program.main, &[], None));
        assert!(!t.finished());
    }
}
