//! Random-schedule dynamic checking.
//!
//! The paper's related-work section contrasts KISS with dynamic tools:
//! "a dynamic approach may allow schedules not allowed by our approach
//! but for each schedule only a small number of paths in each thread
//! are explored." This checker makes that comparison measurable: it
//! runs the concurrent program under uniformly random scheduler
//! decisions for a configurable number of trials.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use kiss_exec::Module;

use crate::explorer::{ConcTrace, Explorer, ScheduleMode};

/// Outcome of a dynamic checking session.
#[derive(Debug, Clone, PartialEq)]
pub enum DynamicOutcome {
    /// No failure observed in any trial (says nothing about absence!).
    NothingObserved {
        /// Trials executed.
        trials: u32,
    },
    /// A trial failed; the trace is from that trial.
    Fail {
        /// 0-based index of the failing trial.
        trial: u32,
        /// The failing execution.
        trace: ConcTrace,
    },
}

impl DynamicOutcome {
    /// `true` if a failure was observed.
    pub fn found_bug(&self) -> bool {
        matches!(self, DynamicOutcome::Fail { .. })
    }
}

/// A random-schedule checker.
#[derive(Debug, Clone)]
pub struct DynamicChecker<'a> {
    module: &'a Module,
    trials: u32,
    max_steps_per_trial: u64,
    seed: u64,
}

impl<'a> DynamicChecker<'a> {
    /// Creates a checker with a fixed seed (reproducible by default).
    pub fn new(module: &'a Module) -> Self {
        DynamicChecker { module, trials: 100, max_steps_per_trial: 10_000, seed: 0x5EED }
    }

    /// Sets the number of random trials.
    pub fn with_trials(mut self, trials: u32) -> Self {
        self.trials = trials;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-trial step bound.
    pub fn with_max_steps(mut self, steps: u64) -> Self {
        self.max_steps_per_trial = steps;
        self
    }

    /// Runs the trials.
    pub fn run(&self) -> DynamicOutcome {
        let mut rng = StdRng::seed_from_u64(self.seed);
        for trial in 0..self.trials {
            if let Some(trace) = self.one_trial(&mut rng) {
                return DynamicOutcome::Fail { trial, trace };
            }
        }
        DynamicOutcome::NothingObserved { trials: self.trials }
    }

    /// One random walk through the transition system. Implemented as a
    /// degenerate exploration: at each state we keep exactly one random
    /// successor.
    fn one_trial(&self, rng: &mut StdRng) -> Option<ConcTrace> {
        // A random walk is a pattern-free exploration where we repeatedly
        // pick one enabled transition; reuse the explorer's successor
        // machinery through a tiny local loop.
        use crate::config::ConcConfig;
        let explorer = Explorer::new(self.module).with_mode(ScheduleMode::Free);
        let mut config = ConcConfig::initial(self.module);
        let mut trace = ConcTrace::default();
        for _ in 0..self.max_steps_per_trial {
            match explorer.random_step(&mut config, rng) {
                RandomStep::Stuck => return None,
                RandomStep::Stepped(step) => trace.steps.push(step),
                RandomStep::Failed(step) => {
                    trace.steps.push(step);
                    return Some(trace);
                }
            }
        }
        None
    }
}

/// Result of one random scheduler decision.
pub(crate) enum RandomStep {
    /// No enabled transition (terminated or deadlocked).
    Stuck,
    /// Took a transition.
    Stepped(crate::explorer::ConcTraceStep),
    /// The chosen transition failed an assertion or raised a runtime
    /// error.
    Failed(crate::explorer::ConcTraceStep),
}

impl Explorer<'_> {
    /// Applies one uniformly random enabled transition in place.
    pub(crate) fn random_step(
        &self,
        config: &mut crate::config::ConcConfig,
        rng: &mut StdRng,
    ) -> RandomStep {
        let node = self.node_for(config.clone());
        let succs = self.successors_pub(&node);
        if succs.is_empty() {
            return RandomStep::Stuck;
        }
        let pick = rng.gen_range(0..succs.len());
        let (step, outcome) = succs.into_iter().nth(pick).expect("index in range");
        match outcome {
            Ok(next) => {
                *config = next;
                RandomStep::Stepped(step)
            }
            Err(()) => RandomStep::Failed(step),
        }
    }
}

/// Compares dynamic and exhaustive coverage: fraction of seeds that
/// find a known bug within the trial budget.
pub fn detection_rate(module: &Module, seeds: &[u64], trials_per_seed: u32) -> f64 {
    if seeds.is_empty() {
        return 0.0;
    }
    let found = seeds
        .iter()
        .filter(|&&s| {
            DynamicChecker::new(module).with_seed(s).with_trials(trials_per_seed).run().found_bug()
        })
        .count();
    found as f64 / seeds.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use kiss_lang::parse_and_lower;

    fn module(src: &str) -> Module {
        Module::lower(parse_and_lower(src).unwrap())
    }

    #[test]
    fn clean_program_observes_nothing() {
        let m = module("int g; void main() { g = 1; assert g == 1; }");
        let out = DynamicChecker::new(&m).with_trials(20).run();
        assert_eq!(out, DynamicOutcome::NothingObserved { trials: 20 });
        assert!(!out.found_bug());
    }

    #[test]
    fn deterministic_bug_is_found_first_trial() {
        let m = module("void main() { assert false; }");
        let out = DynamicChecker::new(&m).run();
        match out {
            DynamicOutcome::Fail { trial, trace } => {
                assert_eq!(trial, 0);
                assert!(!trace.steps.is_empty());
            }
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn racy_bug_is_eventually_observed() {
        // The failing interleaving has decent probability under random
        // scheduling; 200 trials finds it for this seed.
        let src = "
            int g;
            void other() { g = 1; }
            void main() { async other(); assert g == 0; }
        ";
        let m = module(src);
        let out = DynamicChecker::new(&m).with_trials(200).with_seed(42).run();
        assert!(out.found_bug(), "{out:?}");
    }

    #[test]
    fn detection_rate_is_between_zero_and_one() {
        let src = "
            int g;
            void other() { g = 1; }
            void main() { async other(); assert g == 0; }
        ";
        let m = module(src);
        let rate = detection_rate(&m, &[1, 2, 3, 4, 5], 50);
        assert!((0.0..=1.0).contains(&rate));
        assert!(rate > 0.0, "at least one seed should observe the race");
    }

    #[test]
    fn step_bound_prevents_infinite_trials() {
        let m = module("void main() { iter { skip; } }");
        let out = DynamicChecker::new(&m).with_trials(3).with_max_steps(100).run();
        assert!(!out.found_bug());
    }
}
