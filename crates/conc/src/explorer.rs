//! Exhaustive interleaving exploration.
//!
//! This is the "traditional model checker" of the paper's introduction:
//! it explores all reachable states of the concurrent program across
//! all thread interleavings, with whole-configuration hashing. Its
//! state count grows exponentially with the number of threads — the
//! very blowup KISS avoids — which the scalability benchmark measures.
//!
//! The explorer doubles as the ground truth for Theorem 1 via
//! [`ScheduleMode::Balanced`] (only stack-disciplined schedules), and
//! as the validator for back-mapped KISS traces via
//! [`ScheduleMode::Pattern`] (only schedules following a given
//! thread-id pattern).

use std::collections::HashSet;
use std::hash::{Hash, Hasher};

use kiss_exec::{eval, Env as _, ExecError, Instr, Module, Value};
use kiss_lang::hir::{FuncId, Origin};
use kiss_lang::Span;

use crate::balanced::BalanceTracker;
use crate::config::{ConcConfig, ConcEnv, Frame, ThreadState};

/// Which schedules the explorer may follow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleMode {
    /// All interleavings.
    Free,
    /// Only balanced (stack-disciplined) schedules — the executions
    /// Theorem 1 says KISS covers with unbounded `ts`.
    Balanced,
    /// At most `k` context switches (context-bounded exploration, the
    /// research line this paper started).
    ContextBound(u32),
    /// Only schedules whose collapsed thread-id sequence follows the
    /// given pattern (consecutive duplicates in the execution collapse
    /// onto one pattern element).
    Pattern(Vec<u32>),
}

/// One transition in a concurrent trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConcTraceStep {
    /// Acting thread.
    pub tid: u32,
    /// Function executing.
    pub func: FuncId,
    /// Program counter of the executed instruction.
    pub pc: usize,
    /// Source span.
    pub span: Span,
    /// Provenance.
    pub origin: Origin,
}

/// A concurrent error trace.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ConcTrace {
    /// Executed transitions, in order.
    pub steps: Vec<ConcTraceStep>,
}

impl ConcTrace {
    /// The schedule string: one thread id per transition.
    pub fn schedule(&self) -> Vec<u32> {
        self.steps.iter().map(|s| s.tid).collect()
    }

    /// The collapsed schedule: consecutive duplicates removed (the
    /// pattern of context switches).
    pub fn collapsed_schedule(&self) -> Vec<u32> {
        let mut out: Vec<u32> = Vec::new();
        for s in &self.steps {
            if out.last() != Some(&s.tid) {
                out.push(s.tid);
            }
        }
        out
    }
}

/// Exploration outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum ConcVerdict {
    /// No reachable assertion failure (within the schedule mode).
    Pass,
    /// Assertion failure found.
    Fail(ConcTrace),
    /// Runtime error found.
    RuntimeError(ExecError, ConcTrace),
    /// Budget or thread limit exceeded.
    ResourceBound {
        /// Transitions applied when the budget tripped.
        steps: u64,
        /// Distinct states recorded when the budget tripped.
        states: usize,
    },
}

impl ConcVerdict {
    /// `true` for [`ConcVerdict::Fail`].
    pub fn is_fail(&self) -> bool {
        matches!(self, ConcVerdict::Fail(_))
    }

    /// `true` for [`ConcVerdict::Pass`].
    pub fn is_pass(&self) -> bool {
        matches!(self, ConcVerdict::Pass)
    }
}

/// Search statistics — the currency of the scalability experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConcStats {
    /// Distinct states visited.
    pub states: usize,
    /// Transitions applied.
    pub transitions: u64,
    /// Executions that ended with at least one unfinished thread and no
    /// enabled transition.
    pub deadlocks: u64,
    /// Largest thread count observed.
    pub max_threads: usize,
}

/// The exhaustive explorer.
#[derive(Debug, Clone)]
pub struct Explorer<'a> {
    module: &'a Module,
    mode: ScheduleMode,
    max_steps: u64,
    max_states: usize,
    max_threads: usize,
    max_atomic_steps: u64,
}

/// Scheduler-side exploration state (part of the search node under
/// restricted modes).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
struct SchedState {
    last_tid: Option<u32>,
    switches: u32,
    tracker: BalanceTracker,
    pattern_pos: usize,
}

#[derive(Debug, Clone)]
pub(crate) struct Node {
    config: ConcConfig,
    sched: SchedState,
}

#[derive(Debug)]
enum Failure {
    Assert,
    Runtime(ExecError),
    Limit,
}

struct Succ {
    step: ConcTraceStep,
    outcome: Result<Node, Failure>,
}

impl<'a> Explorer<'a> {
    /// Creates an explorer with the default (free) schedule mode.
    pub fn new(module: &'a Module) -> Self {
        Explorer {
            module,
            mode: ScheduleMode::Free,
            max_steps: 20_000_000,
            max_states: 2_000_000,
            max_threads: 8,
            max_atomic_steps: 100_000,
        }
    }

    /// Sets the schedule mode.
    pub fn with_mode(mut self, mode: ScheduleMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets transition/state budgets.
    pub fn with_budget(mut self, max_steps: u64, max_states: usize) -> Self {
        self.max_steps = max_steps;
        self.max_states = max_states;
        self
    }

    /// Sets the maximum number of threads before the search gives up.
    pub fn with_max_threads(mut self, n: usize) -> Self {
        self.max_threads = n;
        self
    }

    /// Runs the exploration.
    pub fn check(&self) -> ConcVerdict {
        self.check_with_stats().0
    }

    /// Runs the exploration, also returning statistics.
    pub fn check_with_stats(&self) -> (ConcVerdict, ConcStats) {
        let mut stats = ConcStats::default();
        let mut visited: HashSet<(u64, u64)> = HashSet::new();
        let mut trace: Vec<ConcTraceStep> = Vec::new();
        let initial = Node { config: ConcConfig::initial(self.module), sched: SchedState::default() };
        let mut pending: Vec<(Node, usize, Option<ConcTraceStep>)> = vec![(initial, 0, None)];

        'outer: while let Some((mut node, tlen, step)) = pending.pop() {
            trace.truncate(tlen);
            if let Some(s) = step {
                trace.push(s);
            }
            loop {
                if stats.transitions > self.max_steps || visited.len() > self.max_states {
                    return (
                        ConcVerdict::ResourceBound { steps: stats.transitions, states: visited.len() },
                        stats,
                    );
                }
                if !visited.insert(node.config.fingerprint(self.sched_hash(&node.sched))) {
                    continue 'outer;
                }
                stats.states = visited.len();
                stats.max_threads = stats.max_threads.max(node.config.threads.len());

                let succs = self.successors(&node);
                stats.transitions += succs.len() as u64;
                // Report reachable failures before descending further.
                for s in &succs {
                    match &s.outcome {
                        Err(Failure::Assert) => {
                            let mut t = trace.clone();
                            t.push(s.step);
                            return (ConcVerdict::Fail(ConcTrace { steps: t }), stats);
                        }
                        Err(Failure::Runtime(e)) => {
                            let mut t = trace.clone();
                            t.push(s.step);
                            return (
                                ConcVerdict::RuntimeError(e.clone(), ConcTrace { steps: t }),
                                stats,
                            );
                        }
                        Err(Failure::Limit) => {
                            return (
                                ConcVerdict::ResourceBound {
                                    steps: stats.transitions,
                                    states: visited.len(),
                                },
                                stats,
                            );
                        }
                        Ok(_) => {}
                    }
                }
                let mut ok_succs =
                    succs.into_iter().filter_map(|s| s.outcome.ok().map(|n| (s.step, n)));
                let Some((first_step, first_node)) = ok_succs.next() else {
                    if !node.config.all_finished() {
                        stats.deadlocks += 1;
                    }
                    continue 'outer;
                };
                let here = trace.len();
                for (s, n) in ok_succs {
                    pending.push((n, here, Some(s)));
                }
                trace.push(first_step);
                node = first_node;
            }
        }
        (ConcVerdict::Pass, stats)
    }

    fn sched_hash(&self, sched: &SchedState) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        match &self.mode {
            ScheduleMode::Free => 0u8.hash(&mut h),
            ScheduleMode::Balanced => {
                1u8.hash(&mut h);
                sched.tracker.hash(&mut h);
            }
            ScheduleMode::ContextBound(_) => {
                2u8.hash(&mut h);
                sched.last_tid.hash(&mut h);
                sched.switches.hash(&mut h);
            }
            ScheduleMode::Pattern(_) => {
                3u8.hash(&mut h);
                sched.last_tid.hash(&mut h);
                sched.pattern_pos.hash(&mut h);
            }
        }
        h.finish()
    }

    /// Whether `tid` may act next under the schedule mode, returning
    /// the updated scheduler state if so.
    fn sched_step(&self, sched: &SchedState, tid: u32) -> Option<SchedState> {
        let mut next = sched.clone();
        if sched.last_tid != Some(tid) {
            if sched.last_tid.is_some() {
                next.switches += 1;
            }
            next.last_tid = Some(tid);
        }
        match &self.mode {
            ScheduleMode::Free => {}
            ScheduleMode::Balanced => {
                if !next.tracker.step(tid) {
                    return None;
                }
            }
            ScheduleMode::ContextBound(k) => {
                if next.switches > *k {
                    return None;
                }
            }
            ScheduleMode::Pattern(pattern) => {
                if sched.last_tid == Some(tid) {
                    // Continuing the current segment.
                } else if pattern.get(next.pattern_pos_after(sched)) == Some(&tid) {
                    next.pattern_pos = next.pattern_pos_after(sched);
                } else {
                    return None;
                }
            }
        }
        Some(next)
    }

    /// All one-transition successors of a node.
    fn successors(&self, node: &Node) -> Vec<Succ> {
        let mut out = Vec::new();
        for tid in 0..node.config.threads.len() {
            let Some(sched) = self.sched_step(&node.sched, tid as u32) else { continue };
            self.thread_successors(node, tid, &sched, &mut out);
        }
        out
    }

    fn step_label(&self, config: &ConcConfig, tid: usize) -> ConcTraceStep {
        let frame = config.threads[tid].frames.last().expect("caller checked");
        let meta = self.module.body(frame.func).meta[frame.pc];
        ConcTraceStep { tid: tid as u32, func: frame.func, pc: frame.pc, span: meta.span, origin: meta.origin }
    }

    fn thread_successors(&self, node: &Node, tid: usize, sched: &SchedState, out: &mut Vec<Succ>) {
        let Some(frame) = node.config.threads[tid].frames.last() else { return };
        let instr = self.module.body(frame.func).instrs[frame.pc].clone();
        let step = self.step_label(&node.config, tid);
        let mk = |config: ConcConfig| Node { config, sched: sched.clone() };

        match instr {
            Instr::Assign(place, rv) => {
                let mut config = node.config.clone();
                let mut env = ConcEnv { module: self.module, config: &mut config, tid };
                match eval::exec_assign(&mut env, &place, &rv) {
                    Ok(()) => {
                        self.advance(&mut config, tid, 1);
                        out.push(Succ { step, outcome: Ok(mk(config)) });
                    }
                    Err(e) => out.push(Succ { step, outcome: Err(Failure::Runtime(e)) }),
                }
            }
            Instr::Assert(cond) => {
                let mut probe = node.config.clone();
                let env = ConcEnv { module: self.module, config: &mut probe, tid };
                match eval::eval_cond(&env, &cond) {
                    Ok(true) => {
                        let mut config = node.config.clone();
                        self.advance(&mut config, tid, 1);
                        out.push(Succ { step, outcome: Ok(mk(config)) });
                    }
                    Ok(false) => out.push(Succ { step, outcome: Err(Failure::Assert) }),
                    Err(e) => out.push(Succ { step, outcome: Err(Failure::Runtime(e)) }),
                }
            }
            Instr::Assume(cond) => {
                let mut probe = node.config.clone();
                let env = ConcEnv { module: self.module, config: &mut probe, tid };
                match eval::eval_cond(&env, &cond) {
                    Ok(true) => {
                        let mut config = node.config.clone();
                        self.advance(&mut config, tid, 1);
                        out.push(Succ { step, outcome: Ok(mk(config)) });
                    }
                    Ok(false) => {} // blocked: no transition now
                    Err(e) => out.push(Succ { step, outcome: Err(Failure::Runtime(e)) }),
                }
            }
            Instr::Call { dest, target, args } => {
                let mut config = node.config.clone();
                let resolved = {
                    let env = ConcEnv { module: self.module, config: &mut config, tid };
                    crate::resolve_target_conc(&env, target)
                };
                match resolved {
                    Ok(callee) => {
                        let def = self.module.program.func(callee);
                        if def.param_count as usize != args.len() {
                            out.push(Succ {
                                step,
                                outcome: Err(Failure::Runtime(ExecError::ArityMismatch {
                                    func: callee,
                                    expected: def.param_count,
                                    got: args.len() as u32,
                                })),
                            });
                            return;
                        }
                        let arg_vals: Vec<Value> = {
                            let env = ConcEnv { module: self.module, config: &mut config, tid };
                            args.iter().map(|a| eval::eval_operand(&env, a)).collect()
                        };
                        config.threads[tid].frames.last_mut().expect("nonempty").pc += 1;
                        config.threads[tid].frames.push(Frame::enter(self.module, callee, &arg_vals, dest));
                        self.fast_forward(&mut config, tid);
                        out.push(Succ { step, outcome: Ok(mk(config)) });
                    }
                    Err(e) => out.push(Succ { step, outcome: Err(Failure::Runtime(e)) }),
                }
            }
            Instr::Async { target, args } => {
                let mut config = node.config.clone();
                if config.threads.len() >= self.max_threads {
                    out.push(Succ { step, outcome: Err(Failure::Limit) });
                    return;
                }
                let resolved = {
                    let env = ConcEnv { module: self.module, config: &mut config, tid };
                    crate::resolve_target_conc(&env, target)
                };
                match resolved {
                    Ok(callee) => {
                        let arg_vals: Vec<Value> = {
                            let env = ConcEnv { module: self.module, config: &mut config, tid };
                            args.iter().map(|a| eval::eval_operand(&env, a)).collect()
                        };
                        config.threads[tid].frames.last_mut().expect("nonempty").pc += 1;
                        let new_tid = config.threads.len();
                        config.threads.push(ThreadState {
                            frames: vec![Frame::enter(self.module, callee, &arg_vals, None)],
                        });
                        self.fast_forward(&mut config, tid);
                        self.fast_forward(&mut config, new_tid);
                        out.push(Succ { step, outcome: Ok(mk(config)) });
                    }
                    Err(e) => out.push(Succ { step, outcome: Err(Failure::Runtime(e)) }),
                }
            }
            Instr::Return(op) => {
                let mut config = node.config.clone();
                let ret = {
                    let env = ConcEnv { module: self.module, config: &mut config, tid };
                    op.map(|o| eval::eval_operand(&env, &o)).unwrap_or(Value::Null)
                };
                let finished = config.threads[tid].frames.pop().expect("nonempty");
                if let (Some(dest), false) = (finished.dest, config.threads[tid].frames.is_empty()) {
                    let mut env = ConcEnv { module: self.module, config: &mut config, tid };
                    match eval::place_addr(&env, &dest).and_then(|a| env.write_addr(a, ret)) {
                        Ok(()) => {}
                        Err(e) => {
                            out.push(Succ { step, outcome: Err(Failure::Runtime(e)) });
                            return;
                        }
                    }
                }
                if !config.threads[tid].frames.is_empty() {
                    self.fast_forward(&mut config, tid);
                }
                out.push(Succ { step, outcome: Ok(mk(config)) });
            }
            Instr::Jump(target) => {
                // Normally consumed by fast_forward; handle anyway.
                let mut config = node.config.clone();
                config.threads[tid].frames.last_mut().expect("nonempty").pc = target;
                self.fast_forward(&mut config, tid);
                out.push(Succ { step, outcome: Ok(mk(config)) });
            }
            Instr::NondetJump(targets) => {
                for &t in &targets {
                    // Peek: skip branches that begin with a presently
                    // false assume. Sound: committing then waiting is
                    // equivalent to waiting then committing.
                    let body = self.module.body(frame.func);
                    if let Instr::Assume(cond) = &body.instrs[t] {
                        let mut probe = node.config.clone();
                        let env = ConcEnv { module: self.module, config: &mut probe, tid };
                        if matches!(eval::eval_cond(&env, cond), Ok(false)) {
                            continue;
                        }
                    }
                    let mut config = node.config.clone();
                    config.threads[tid].frames.last_mut().expect("nonempty").pc = t;
                    self.fast_forward(&mut config, tid);
                    out.push(Succ { step, outcome: Ok(mk(config)) });
                }
            }
            Instr::AtomicBegin => {
                match self.atomic_outcomes(&node.config, tid) {
                    Ok(configs) => {
                        for config in configs {
                            out.push(Succ { step, outcome: Ok(mk(config)) });
                        }
                    }
                    Err(f) => out.push(Succ { step, outcome: Err(f) }),
                }
            }
            Instr::AtomicEnd => {
                // Unreachable outside atomic_outcomes, but harmless.
                let mut config = node.config.clone();
                self.advance(&mut config, tid, 1);
                out.push(Succ { step, outcome: Ok(mk(config)) });
            }
        }
    }

    /// Advances a thread's pc and slides over silent jumps.
    fn advance(&self, config: &mut ConcConfig, tid: usize, by: usize) {
        config.threads[tid].frames.last_mut().expect("nonempty").pc += by;
        self.fast_forward(config, tid);
    }

    /// Slides the thread over unconditional jumps (silent, thread-local,
    /// deterministic — collapsing them shrinks the state space without
    /// changing reachability).
    fn fast_forward(&self, config: &mut ConcConfig, tid: usize) {
        loop {
            let Some(frame) = config.threads[tid].frames.last() else { return };
            match self.module.body(frame.func).instrs[frame.pc] {
                Instr::Jump(t) => config.threads[tid].frames.last_mut().expect("nonempty").pc = t,
                _ => return,
            }
        }
    }

    /// Enumerates all complete executions of the atomic block a thread
    /// is about to enter. An execution that hits a false assume is
    /// discarded (the whole block retries later); if none complete, the
    /// thread is blocked and has no successor.
    fn atomic_outcomes(&self, config: &ConcConfig, tid: usize) -> Result<Vec<ConcConfig>, Failure> {
        let mut done = Vec::new();
        let mut steps: u64 = 0;
        let mut start = config.clone();
        start.threads[tid].frames.last_mut().expect("nonempty").pc += 1; // past AtomicBegin
        let mut pending = vec![start];
        while let Some(mut cur) = pending.pop() {
            'path: loop {
                steps += 1;
                if steps > self.max_atomic_steps {
                    return Err(Failure::Limit);
                }
                let frame = cur.threads[tid].frames.last().expect("nonempty");
                let instr = self.module.body(frame.func).instrs[frame.pc].clone();
                match instr {
                    Instr::AtomicEnd => {
                        cur.threads[tid].frames.last_mut().expect("nonempty").pc += 1;
                        self.fast_forward(&mut cur, tid);
                        done.push(cur);
                        break 'path;
                    }
                    Instr::Assign(place, rv) => {
                        let mut env = ConcEnv { module: self.module, config: &mut cur, tid };
                        eval::exec_assign(&mut env, &place, &rv).map_err(Failure::Runtime)?;
                        cur.threads[tid].frames.last_mut().expect("nonempty").pc += 1;
                    }
                    Instr::Assert(cond) => {
                        let env = ConcEnv { module: self.module, config: &mut cur, tid };
                        match eval::eval_cond(&env, &cond).map_err(Failure::Runtime)? {
                            true => cur.threads[tid].frames.last_mut().expect("nonempty").pc += 1,
                            false => return Err(Failure::Assert),
                        }
                    }
                    Instr::Assume(cond) => {
                        let env = ConcEnv { module: self.module, config: &mut cur, tid };
                        match eval::eval_cond(&env, &cond).map_err(Failure::Runtime)? {
                            true => cur.threads[tid].frames.last_mut().expect("nonempty").pc += 1,
                            false => break 'path, // this path retries later
                        }
                    }
                    Instr::Jump(t) => {
                        cur.threads[tid].frames.last_mut().expect("nonempty").pc = t;
                    }
                    Instr::NondetJump(targets) => {
                        if targets.is_empty() {
                            break 'path;
                        }
                        for &alt in targets.iter().skip(1) {
                            let mut c = cur.clone();
                            c.threads[tid].frames.last_mut().expect("nonempty").pc = alt;
                            pending.push(c);
                        }
                        cur.threads[tid].frames.last_mut().expect("nonempty").pc = targets[0];
                    }
                    // Well-formedness forbids the rest inside atomic.
                    other => {
                        let _ = other;
                        return Err(Failure::Runtime(ExecError::AsyncInSequential));
                    }
                }
            }
        }
        Ok(done)
    }
}

impl Explorer<'_> {
    /// Wraps a configuration in a schedule-state-free node (used by the
    /// dynamic checker, which imposes no schedule restriction).
    pub(crate) fn node_for(&self, config: ConcConfig) -> Node {
        Node { config, sched: SchedState::default() }
    }

    /// Successors as plain configurations; assertion failures and
    /// runtime errors map to `Err(())`, limit trips are dropped.
    pub(crate) fn successors_pub(
        &self,
        node: &Node,
    ) -> Vec<(ConcTraceStep, Result<ConcConfig, ()>)> {
        self.successors(node)
            .into_iter()
            .filter_map(|s| match s.outcome {
                Ok(n) => Some((s.step, Ok(n.config))),
                Err(Failure::Assert) | Err(Failure::Runtime(_)) => Some((s.step, Err(()))),
                Err(Failure::Limit) => None,
            })
            .collect()
    }
}

impl SchedState {
    /// Index the pattern would advance to when a new segment starts.
    fn pattern_pos_after(&self, prev: &SchedState) -> usize {
        if prev.last_tid.is_none() {
            0
        } else {
            prev.pattern_pos + 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kiss_lang::parse_and_lower;

    fn module(src: &str) -> Module {
        Module::lower(parse_and_lower(src).unwrap())
    }

    #[test]
    fn sequential_program_behaves_like_seq_engine() {
        let m = module("int g; void main() { g = 1; assert g == 1; }");
        assert!(Explorer::new(&m).check().is_pass());
        let m = module("int g; void main() { g = 1; assert g == 2; }");
        assert!(Explorer::new(&m).check().is_fail());
    }

    #[test]
    fn finds_interleaving_bug() {
        // Classic lost-update shape: the assert fails only if the forked
        // thread runs between the read and the write.
        let src = "
            int g;
            bool done;
            void other() { g = 5; done = true; }
            void main() {
                int tmp;
                async other();
                tmp = g;
                g = tmp + 1;
                if (done) { assert g == 1; }
            }
        ";
        let v = Explorer::new(&module(src)).check();
        assert!(v.is_fail(), "{v:?}");
    }

    #[test]
    fn no_bug_without_interference() {
        let src = "
            int g;
            void other() { skip; }
            void main() { async other(); g = g + 1; assert g == 1; }
        ";
        assert!(Explorer::new(&module(src)).check().is_pass());
    }

    #[test]
    fn trace_has_schedule_and_collapse() {
        let src = "
            int g;
            void other() { g = 1; }
            void main() { async other(); assert g == 0; }
        ";
        let ConcVerdict::Fail(trace) = Explorer::new(&module(src)).check() else {
            panic!("expected failure")
        };
        let sched = trace.schedule();
        assert!(!sched.is_empty());
        let collapsed = trace.collapsed_schedule();
        assert!(collapsed.len() <= sched.len());
    }

    #[test]
    fn atomic_blocks_are_not_interleaved() {
        // Without atomicity the increment could be torn; with it the
        // assert holds in every interleaving.
        let src = "
            int g;
            void bump() { atomic { g = g + 1; } }
            void main() {
                async bump();
                atomic { g = g + 1; }
                assume g == 2;
                assert g == 2;
            }
        ";
        assert!(Explorer::new(&module(src)).check().is_pass());
    }

    #[test]
    fn torn_increment_without_atomic_is_found() {
        let src = "
            int g;
            bool bdone;
            void bump() { int t; t = g; g = t + 1; bdone = true; }
            void main() {
                int t;
                async bump();
                t = g;
                g = t + 1;
                if (bdone) { assert g == 2; }
            }
        ";
        let v = Explorer::new(&module(src)).check();
        assert!(v.is_fail(), "{v:?}");
    }

    #[test]
    fn lock_via_atomic_assume_blocks_thread() {
        // A spin lock built from atomic+assume, as the paper sketches.
        let src = "
            int lock;
            int g;
            void acquire() { atomic { assume lock == 0; lock = 1; } }
            void release() { atomic { lock = 0; } }
            void worker() {
                int t;
                acquire();
                t = g; g = t + 1;
                release();
            }
            void main() {
                int t;
                async worker();
                acquire();
                t = g; g = t + 1;
                release();
                assume lock == 0;
                assert g <= 2;
            }
        ";
        let v = Explorer::new(&module(src)).check();
        assert!(v.is_pass(), "{v:?}");
    }

    #[test]
    fn mutual_exclusion_actually_protects() {
        // main's critical section cannot interleave with worker's, but
        // worker may not have run at the assert: guard checks wdone.
        let src_with_spawn = "
            int lock;
            int g;
            bool wdone;
            void worker() { atomic { assume lock == 0; lock = 1; } g = g + 1; atomic { lock = 0; } wdone = true; }
            void main() {
                async worker();
                atomic { assume lock == 0; lock = 1; }
                g = g + 1;
                atomic { lock = 0; }
                if (wdone) { assert g == 2; }
            }
        ";
        let v = Explorer::new(&module(src_with_spawn)).check();
        assert!(v.is_pass(), "{v:?}");
    }

    #[test]
    fn balanced_mode_misses_ping_pong_bugs() {
        // The bug needs schedule 0,1,0,1 (threads alternating twice) —
        // not balanced, so Balanced mode must miss it while Free finds
        // it.
        let src = "
            int phase;
            void other() {
                assume phase == 1;
                phase = 2;
            }
            void main() {
                async other();
                phase = 1;
                assume phase == 2;
                assert false;
            }
        ";
        let m = module(src);
        assert!(Explorer::new(&m).check().is_fail());
        // Hmm: 0 runs (phase=1), 1 runs fully (phase=2), 0 resumes:
        // that IS balanced (one nested block). Use a stricter shape.
        let src = "
            int phase;
            void other() {
                assume phase == 1;
                phase = 2;
                assume phase == 3;
                phase = 4;
            }
            void main() {
                async other();
                phase = 1;
                assume phase == 2;
                phase = 3;
                assume phase == 4;
                assert false;
            }
        ";
        let m = module(src);
        assert!(Explorer::new(&m).check().is_fail(), "free mode finds the handshake bug");
        let v = Explorer::new(&m).with_mode(ScheduleMode::Balanced).check();
        assert!(v.is_pass(), "balanced mode cannot follow the 0-1-0-1 handshake: {v:?}");
    }

    #[test]
    fn context_bound_zero_is_sequential_until_main_ends() {
        let src = "
            int g;
            void other() { g = 1; }
            void main() { async other(); assert g == 0; }
        ";
        let m = module(src);
        // With zero context switches the forked thread never runs
        // before main's assert.
        let v = Explorer::new(&m).with_mode(ScheduleMode::ContextBound(0)).check();
        assert!(v.is_pass(), "{v:?}");
        // The failing schedule is 0,1,0: two context switches (into the
        // forked thread and back).
        let v = Explorer::new(&m).with_mode(ScheduleMode::ContextBound(1)).check();
        assert!(v.is_pass(), "{v:?}");
        let v = Explorer::new(&m).with_mode(ScheduleMode::ContextBound(2)).check();
        assert!(v.is_fail(), "{v:?}");
    }

    #[test]
    fn pattern_mode_finds_error_only_on_matching_schedule() {
        let src = "
            int g;
            void other() { g = 1; }
            void main() { async other(); assert g == 0; }
        ";
        let m = module(src);
        // Failure needs thread 1 to act between the fork and the
        // assert: pattern 0,1,0.
        let v = Explorer::new(&m).with_mode(ScheduleMode::Pattern(vec![0, 1, 0])).check();
        assert!(v.is_fail(), "{v:?}");
        // Pattern 0 only: no failure.
        let v = Explorer::new(&m).with_mode(ScheduleMode::Pattern(vec![0])).check();
        assert!(v.is_pass(), "{v:?}");
    }

    #[test]
    fn thread_limit_reports_resource_bound() {
        let src = "
            void spin() { iter { skip; } }
            void main() { iter { async spin(); } }
        ";
        let v = Explorer::new(&module(src)).with_max_threads(3).check();
        assert!(matches!(v, ConcVerdict::ResourceBound { .. }), "{v:?}");
    }

    #[test]
    fn stats_grow_with_thread_count() {
        let mk = |n: usize| {
            let spawns: String = (0..n).map(|_| "async w();".to_string()).collect();
            format!(
                "int g; void w() {{ g = g + 1; }} void main() {{ {spawns} assert g >= 0; }}"
            )
        };
        let m1 = module(&mk(1));
        let m3 = module(&mk(3));
        let (_, s1) = Explorer::new(&m1).with_max_threads(8).check_with_stats();
        let (_, s3) = Explorer::new(&m3).with_max_threads(8).check_with_stats();
        assert!(s3.states > s1.states, "interleaving blowup: {s1:?} vs {s3:?}");
    }

    #[test]
    fn deadlock_is_counted_not_erroneous() {
        let src = "bool never; void main() { assume never; assert false; }";
        let (v, stats) = Explorer::new(&module(src)).check_with_stats();
        assert!(v.is_pass());
        assert_eq!(stats.deadlocks, 1);
    }
}

#[cfg(test)]
mod async_arg_tests {
    use super::*;
    use kiss_lang::parse_and_lower;

    fn module(src: &str) -> Module {
        Module::lower(parse_and_lower(src).unwrap())
    }

    #[test]
    fn async_arguments_are_evaluated_at_fork_time() {
        // The forked thread must see the argument value from fork time
        // even though the global changes afterwards.
        let src = "
            struct D { int x; }
            int seen;
            void w(D *p) { seen = p->x; }
            void main() {
                D *a;
                D *b;
                a = malloc(D);
                b = malloc(D);
                a->x = 1;
                b->x = 2;
                async w(a);
                a = b;
                assume seen != 0;
                assert seen == 1;
            }
        ";
        let v = Explorer::new(&module(src)).check();
        assert!(v.is_pass(), "{v:?}");
    }

    #[test]
    fn indirect_async_through_variable() {
        let src = "
            int g;
            void w() { g = 7; }
            void main() { fn f; f = w; async f(); assume g == 7; assert g == 7; }
        ";
        let v = Explorer::new(&module(src)).check();
        assert!(v.is_pass(), "{v:?}");
    }

    #[test]
    fn three_way_interleaving_is_complete() {
        // Two writers with distinct values: the reader can observe
        // 0, 1 or 2 depending on the schedule; assert each is possible
        // by checking that claiming otherwise fails.
        for forbidden in [0, 1, 2] {
            let src = format!(
                "int g;
                 void w1() {{ g = 1; }}
                 void w2() {{ g = 2; }}
                 void main() {{ async w1(); async w2(); assert g != {forbidden}; }}"
            );
            let v = Explorer::new(&module(&src)).check();
            assert!(v.is_fail(), "value {forbidden} must be observable");
        }
    }
}
