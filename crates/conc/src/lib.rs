//! # kiss-conc
//!
//! The concurrent side of the reproduction: a ground-truth interleaving
//! explorer and its companions.
//!
//! * [`explorer::Explorer`] — exhaustive exploration of thread
//!   interleavings with state hashing; the "traditional model checker"
//!   whose exponential growth in the thread count the paper's
//!   introduction argues against. Supports restricting the search to
//!   **balanced** (stack-disciplined) schedules, bounding context
//!   switches, and replaying a thread-id schedule pattern (used to
//!   validate back-mapped KISS error traces — "never reports false
//!   errors").
//! * [`balanced`] — the language `L_X` of paper Section 4.1: membership
//!   checking both by the recursive definition and by an online
//!   stack-discipline automaton (proven equivalent by property tests).
//! * [`dynamic`] — a random-schedule dynamic checker, the comparison
//!   point for the paper's related-work discussion of dynamic tools.

pub mod balanced;
pub mod config;
pub mod dynamic;
pub mod explorer;
pub mod lockset;
pub mod runner;
pub mod vclock;

pub use balanced::{is_balanced, BalanceTracker};
pub use config::{ConcConfig, ThreadState};
pub use dynamic::{DynamicChecker, DynamicOutcome};
pub use explorer::{ConcStats, ConcTraceStep, ConcVerdict, Explorer, ScheduleMode};
pub use lockset::{lockset_check, LocksetReport, LocksetWarning};
pub use runner::{Event, RunEnd, Runner};
pub use vclock::{hb_check, HbRace, HbReport};

use kiss_exec::{Env, ExecError, Value};
use kiss_lang::hir::{CallTarget, FuncId};

/// Resolves a call target to a function id in a concurrent context.
pub(crate) fn resolve_target_conc(env: &impl Env, target: CallTarget) -> Result<FuncId, ExecError> {
    match target {
        CallTarget::Direct(f) => Ok(f),
        CallTarget::Indirect(v) => match env.read_var(v) {
            Value::Fn(f) => Ok(f),
            other => Err(ExecError::NotAFunction { found: other.type_name() }),
        },
    }
}
