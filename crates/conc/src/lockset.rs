//! Eraser-style lockset race detection (paper §7 related work,
//! ref \[36\]).
//!
//! The lockset algorithm observes executions and maintains, for every
//! shared cell `v`, a candidate set `C(v)` of locks that protected
//! *every* access so far; when `C(v)` becomes empty for a
//! written-and-shared cell, a race is reported. The paper contrasts
//! KISS with this family: locksets handle "only the simplest
//! synchronization mechanism of locks", flag benign races, and depend
//! on the executions actually observed — all three measurable here.

use std::collections::{BTreeSet, HashMap, HashSet};

use kiss_exec::{Addr, Module};
use kiss_lang::Span;

use crate::runner::{Event, Runner};

/// Eraser's per-cell state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CellState {
    /// Only ever touched by its first thread.
    Exclusive(u32),
    /// Read by several threads, never written after sharing.
    Shared,
    /// Written while shared: lockset violations are reported.
    SharedModified,
}

/// A lockset warning: a cell accessed with an empty candidate set.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LocksetWarning {
    /// The racy cell.
    pub addr: Addr,
    /// Location of the access that emptied the candidate set.
    pub span: Span,
}

/// Result of a lockset session.
#[derive(Debug, Clone, Default)]
pub struct LocksetReport {
    /// Distinct warnings across all runs.
    pub warnings: BTreeSet<LocksetWarning>,
    /// Executions observed.
    pub runs: u32,
}

impl LocksetReport {
    /// Whether any warning was produced.
    pub fn has_warnings(&self) -> bool {
        !self.warnings.is_empty()
    }
}

/// The lockset checker: runs `runs` random executions and accumulates
/// warnings.
pub fn lockset_check(module: &Module, runs: u32, base_seed: u64) -> LocksetReport {
    let runner = Runner::new(module);
    let mut report = LocksetReport { runs, ..Default::default() };
    for i in 0..runs {
        let mut held: HashMap<u32, HashSet<Addr>> = HashMap::new();
        let mut state: HashMap<Addr, CellState> = HashMap::new();
        let mut candidates: HashMap<Addr, HashSet<Addr>> = HashMap::new();
        runner.run(base_seed.wrapping_add(i as u64), |event| match event {
            Event::Acquire { tid, addr } => {
                held.entry(tid).or_default().insert(addr);
            }
            Event::Release { tid, addr } => {
                held.entry(tid).or_default().remove(&addr);
            }
            Event::Access { tid, addr, is_write, span } => {
                let locks = held.get(&tid).cloned().unwrap_or_default();
                let st = state.entry(addr).or_insert(CellState::Exclusive(tid));
                match *st {
                    CellState::Exclusive(owner) if owner == tid => {
                        // First-thread accesses are unchecked (Eraser's
                        // initialization grace).
                    }
                    CellState::Exclusive(_) => {
                        // Second thread arrives: start refining.
                        candidates.insert(addr, locks.clone());
                        *st = if is_write { CellState::SharedModified } else { CellState::Shared };
                        if is_write && locks.is_empty() {
                            report.warnings.insert(LocksetWarning { addr, span });
                        }
                    }
                    CellState::Shared | CellState::SharedModified => {
                        let c = candidates.entry(addr).or_insert_with(|| locks.clone());
                        *c = c.intersection(&locks).cloned().collect();
                        if is_write {
                            *st = CellState::SharedModified;
                        }
                        if matches!(*st, CellState::SharedModified) && c.is_empty() {
                            report.warnings.insert(LocksetWarning { addr, span });
                        }
                    }
                }
            }
            _ => {}
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use kiss_lang::parse_and_lower;

    fn module(src: &str) -> Module {
        Module::lower(parse_and_lower(src).unwrap())
    }

    #[test]
    fn unprotected_shared_write_is_flagged() {
        let src = "
            int g;
            void w() { g = 1; }
            void main() { async w(); g = 2; }
        ";
        let report = lockset_check(&module(src), 50, 1);
        assert!(report.has_warnings(), "{report:?}");
    }

    #[test]
    fn consistently_locked_cell_is_clean() {
        let src = "
            int l;
            int g;
            void w() { atomic { assume l == 0; l = 1; } g = g + 1; atomic { l = 0; } }
            void main() { async w(); atomic { assume l == 0; l = 1; } g = g + 1; atomic { l = 0; } }
        ";
        let report = lockset_check(&module(src), 50, 1);
        assert!(!report.has_warnings(), "{:?}", report.warnings);
    }

    #[test]
    fn first_thread_initialization_is_not_flagged() {
        // Classic Eraser feature: unlocked initialization before
        // sharing is fine.
        let src = "
            int l;
            int g;
            void w() { atomic { assume l == 0; l = 1; } g = g + 1; atomic { l = 0; } }
            void main() {
                g = 41;           // init without lock, before sharing
                async w();
                atomic { assume l == 0; l = 1; }
                g = g + 1;
                atomic { l = 0; }
            }
        ";
        let report = lockset_check(&module(src), 50, 1);
        assert!(!report.has_warnings(), "{:?}", report.warnings);
    }

    #[test]
    fn event_synchronization_is_a_false_positive() {
        // The handoff is perfectly ordered by the event, but locksets
        // only understand locks: Eraser-style analysis flags it. KISS
        // does not (the paper's "flexibility in implementation" point);
        // the comparison experiment measures this.
        let src = "
            bool ev;
            int g;
            void consumer() { assume ev; g = g + 1; }
            void main() { async consumer(); g = 1; ev = true; }
        ";
        let report = lockset_check(&module(src), 100, 1);
        assert!(report.has_warnings(), "lockset must flag the (ordered) handoff: {report:?}");
    }

    #[test]
    fn read_only_sharing_is_clean() {
        let src = "
            int g;
            int a;
            int b;
            void r1() { a = g; }
            void main() { g = 7; async r1(); b = g; }
        ";
        // g is written only before the fork, then read concurrently;
        // a and b are each exclusive to one thread.
        let report = lockset_check(&module(src), 50, 3);
        assert!(!report.has_warnings(), "{:?}", report.warnings);
    }
}
