//! Single-execution random runner with instrumentation hooks.
//!
//! Dynamic race detectors (the paper's related-work §7: Eraser-style
//! locksets, happens-before via vector clocks) observe *one* execution
//! at a time. This module provides the shared machinery: a randomized
//! scheduler stepping the concurrent program, emitting an event stream
//! of memory accesses, lock operations, forks and thread completions.
//!
//! Lock operations are recognized *structurally*: an `atomic` region
//! that tests a cell for 0 and stores 1 is an acquire of that cell; an
//! `atomic` region whose only effect is storing 0 is the release. This
//! matches the paper's Section 3 encoding of `lock_acquire` /
//! `lock_release` and the generated `KeAcquireSpinLock` models.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

use kiss_exec::{eval, Addr, Env, ExecError, Instr, Module, Value};
use kiss_lang::hir::{Const, FuncId, Operand, Place, Rvalue};
use kiss_lang::Span;

use crate::config::{ConcConfig, ConcEnv, Frame, ThreadState};

/// An observable event of one execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A memory access to a shared cell (globals and heap only).
    Access {
        /// Acting thread.
        tid: u32,
        /// The accessed cell.
        addr: Addr,
        /// Whether the access writes.
        is_write: bool,
        /// Source location of the accessing statement.
        span: Span,
    },
    /// A lock acquire (structurally recognized).
    Acquire {
        /// Acting thread.
        tid: u32,
        /// The lock cell.
        addr: Addr,
    },
    /// A lock release.
    Release {
        /// Acting thread.
        tid: u32,
        /// The lock cell.
        addr: Addr,
    },
    /// A thread fork.
    Fork {
        /// Forking thread.
        parent: u32,
        /// New thread.
        child: u32,
    },
    /// A thread ran to completion.
    Finish {
        /// The finished thread.
        tid: u32,
    },
    /// An assertion failed (the run stops after this event).
    AssertFail {
        /// Acting thread.
        tid: u32,
        /// Location of the assert.
        span: Span,
    },
}

/// How a run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum RunEnd {
    /// All threads finished.
    Completed,
    /// No thread could make progress (all blocked).
    Deadlock,
    /// The step bound was reached.
    StepBound,
    /// An assertion failed.
    AssertFailed,
    /// A runtime error occurred.
    RuntimeError(ExecError),
}

/// Classification of an atomic region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AtomicKind {
    /// `atomic { assume *l == 0; *l = 1 }` — acquire of the stored-to
    /// place.
    Acquire(Place),
    /// `atomic { *l = 0 }` — release.
    Release(Place),
    /// Anything else (e.g. interlocked arithmetic): accesses inside are
    /// reported as ordinary accesses.
    Other,
}

/// Classifies every atomic region of a module once.
fn classify_atomics(module: &Module) -> HashMap<(FuncId, usize), AtomicKind> {
    let mut out = HashMap::new();
    for body in &module.bodies {
        let mut i = 0;
        while i < body.instrs.len() {
            if matches!(body.instrs[i], Instr::AtomicBegin) {
                let mut j = i + 1;
                let mut stores: Vec<(Place, Const)> = Vec::new();
                let mut other_store = false;
                let mut has_assume = false;
                let mut read_places: Vec<Place> = Vec::new();
                while j < body.instrs.len() && !matches!(body.instrs[j], Instr::AtomicEnd) {
                    match &body.instrs[j] {
                        Instr::Assume(_) => has_assume = true,
                        Instr::Assign(place, rv) => {
                            match rv {
                                Rvalue::Operand(Operand::Const(c)) if !matches!(place, Place::Var(kiss_lang::hir::VarRef::Local(_))) => {
                                    stores.push((*place, *c));
                                }
                                Rvalue::Load(p) => read_places.push(*p),
                                Rvalue::BinOp(_, a, b) => {
                                    for op in [a, b] {
                                        if let Operand::Var(v) = op {
                                            read_places.push(Place::Var(*v));
                                        }
                                    }
                                }
                                _ => {
                                    if !matches!(place, Place::Var(kiss_lang::hir::VarRef::Local(_))) {
                                        other_store = true;
                                    }
                                }
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                let kind = match (&stores[..], has_assume, other_store) {
                    ([(p, c)], true, false) if is_one(c) && reads(p, &read_places) => {
                        AtomicKind::Acquire(*p)
                    }
                    ([(p, c)], false, false) if is_zero(c) => AtomicKind::Release(*p),
                    _ => AtomicKind::Other,
                };
                out.insert((body.func, i), kind);
                i = j;
            }
            i += 1;
        }
    }
    out
}

fn is_one(c: &Const) -> bool {
    matches!(c, Const::Int(1) | Const::Bool(true))
}

fn is_zero(c: &Const) -> bool {
    matches!(c, Const::Int(0) | Const::Bool(false))
}

fn reads(p: &Place, read_places: &[Place]) -> bool {
    read_places.contains(p)
}

/// The shared-cell accesses an instruction performs (locals excluded),
/// resolved against the current state.
fn shared_accesses(env: &ConcEnv<'_>, instr: &Instr) -> Vec<(Addr, bool)> {
    let mut out = Vec::new();
    let place_addr = |place: &Place, is_write: bool, out: &mut Vec<(Addr, bool)>| {
        match place {
            Place::Var(kiss_lang::hir::VarRef::Global(g)) => out.push((Addr::Global(*g), is_write)),
            Place::Var(kiss_lang::hir::VarRef::Local(_)) => {}
            _ => {
                if let Ok(addr) = eval::place_addr(env, place) {
                    if !matches!(addr, Addr::Local { .. }) {
                        out.push((addr, is_write));
                    }
                }
            }
        }
    };
    let read_operand = |op: &Operand, out: &mut Vec<(Addr, bool)>| {
        if let Operand::Var(kiss_lang::hir::VarRef::Global(g)) = op {
            out.push((Addr::Global(*g), false));
        }
    };
    match instr {
        Instr::Assign(place, rv) => {
            match rv {
                Rvalue::Operand(op) => read_operand(op, &mut out),
                Rvalue::Load(p) => place_addr(p, false, &mut out),
                Rvalue::BinOp(_, a, b) => {
                    read_operand(a, &mut out);
                    read_operand(b, &mut out);
                }
                Rvalue::UnOp(_, a) => read_operand(a, &mut out),
                _ => {}
            }
            place_addr(place, true, &mut out);
        }
        Instr::Assert(c) | Instr::Assume(c) => {
            if let kiss_lang::hir::VarRef::Global(g) = c.var {
                out.push((Addr::Global(g), false));
            }
        }
        Instr::Call { args, .. } | Instr::Async { args, .. } => {
            for a in args {
                read_operand(a, &mut out);
            }
        }
        Instr::Return(Some(op)) => read_operand(op, &mut out),
        _ => {}
    }
    out
}

/// A randomized single-execution runner.
#[derive(Debug)]
pub struct Runner<'a> {
    module: &'a Module,
    atomics: HashMap<(FuncId, usize), AtomicKind>,
    max_steps: u64,
    max_threads: usize,
}

impl<'a> Runner<'a> {
    /// Creates a runner for a module.
    pub fn new(module: &'a Module) -> Self {
        Runner { module, atomics: classify_atomics(module), max_steps: 50_000, max_threads: 16 }
    }

    /// Sets the per-run step bound.
    pub fn with_max_steps(mut self, steps: u64) -> Self {
        self.max_steps = steps;
        self
    }

    /// Runs one random execution, emitting events.
    pub fn run(&self, seed: u64, mut on_event: impl FnMut(Event)) -> RunEnd {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut config = ConcConfig::initial(self.module);
        let mut steps = 0u64;
        loop {
            if steps >= self.max_steps {
                return RunEnd::StepBound;
            }
            // Enabled threads: those whose next step can fire.
            let enabled: Vec<usize> = (0..config.threads.len())
                .filter(|&tid| self.enabled(&config, tid))
                .collect();
            if enabled.is_empty() {
                return if config.all_finished() { RunEnd::Completed } else { RunEnd::Deadlock };
            }
            let tid = enabled[rng.gen_range(0..enabled.len())];
            match self.step(&mut config, tid, &mut rng, &mut on_event) {
                StepResult::Ok => {}
                StepResult::Ended(end) => return end,
            }
            steps += 1;
        }
    }

    fn frame_instr<'b>(&'b self, config: &ConcConfig, tid: usize) -> Option<(&'b Instr, Span, FuncId, usize)> {
        let frame = config.threads[tid].frames.last()?;
        let body = self.module.body(frame.func);
        Some((&body.instrs[frame.pc], body.meta[frame.pc].span, frame.func, frame.pc))
    }

    /// Can the thread take a step right now?
    fn enabled(&self, config: &ConcConfig, tid: usize) -> bool {
        let mut probe = config.clone();
        let Some((instr, ..)) = self.frame_instr(config, tid) else { return false };
        match instr {
            Instr::Assume(c) => {
                let env = ConcEnv { module: self.module, config: &mut probe, tid };
                matches!(eval::eval_cond(&env, c), Ok(true) | Err(_))
            }
            Instr::AtomicBegin => {
                // Enabled iff at least one path through the region
                // completes; probe with a fixed choice policy (first
                // branch) is insufficient, so try a handful of random
                // probes.
                let mut rng = StdRng::seed_from_u64(0xFACE);
                (0..4).any(|_| {
                    let mut c = config.clone();
                    self.run_atomic(&mut c, tid, &mut rng).is_some()
                })
            }
            Instr::Async { .. } => config.threads.len() < self.max_threads,
            _ => true,
        }
    }

    fn step(
        &self,
        config: &mut ConcConfig,
        tid: usize,
        rng: &mut StdRng,
        on_event: &mut impl FnMut(Event),
    ) -> StepResult {
        let (instr, span, func, pc) = {
            let Some((i, s, f, p)) = self.frame_instr(config, tid) else {
                return StepResult::Ok;
            };
            (i.clone(), s, f, p)
        };
        let bump = |config: &mut ConcConfig, by: usize| {
            config.threads[tid].frames.last_mut().expect("nonempty").pc += by;
        };
        match instr {
            Instr::Assign(place, rv) => {
                {
                    let env = ConcEnv { module: self.module, config, tid };
                    for (addr, is_write) in shared_accesses(&env, &Instr::Assign(place, rv)) {
                        on_event(Event::Access { tid: tid as u32, addr, is_write, span });
                    }
                }
                let mut env = ConcEnv { module: self.module, config, tid };
                if let Err(e) = eval::exec_assign(&mut env, &place, &rv) {
                    return StepResult::Ended(RunEnd::RuntimeError(e));
                }
                bump(config, 1);
            }
            Instr::Assert(c) => {
                {
                    let env = ConcEnv { module: self.module, config, tid };
                    for (addr, is_write) in shared_accesses(&env, &Instr::Assert(c)) {
                        on_event(Event::Access { tid: tid as u32, addr, is_write, span });
                    }
                }
                let env = ConcEnv { module: self.module, config, tid };
                match eval::eval_cond(&env, &c) {
                    Ok(true) => bump(config, 1),
                    Ok(false) => {
                        on_event(Event::AssertFail { tid: tid as u32, span });
                        return StepResult::Ended(RunEnd::AssertFailed);
                    }
                    Err(e) => return StepResult::Ended(RunEnd::RuntimeError(e)),
                }
            }
            Instr::Assume(c) => {
                let env = ConcEnv { module: self.module, config, tid };
                match eval::eval_cond(&env, &c) {
                    Ok(true) => bump(config, 1),
                    Ok(false) => {} // re-checked when scheduled again
                    Err(e) => return StepResult::Ended(RunEnd::RuntimeError(e)),
                }
            }
            Instr::Call { dest, target, args } => {
                let callee = {
                    let env = ConcEnv { module: self.module, config, tid };
                    match crate::resolve_target_conc(&env, target) {
                        Ok(f) => f,
                        Err(e) => return StepResult::Ended(RunEnd::RuntimeError(e)),
                    }
                };
                let arg_vals: Vec<Value> = {
                    let env = ConcEnv { module: self.module, config, tid };
                    args.iter().map(|a| eval::eval_operand(&env, a)).collect()
                };
                bump(config, 1);
                config.threads[tid].frames.push(Frame::enter(self.module, callee, &arg_vals, dest));
            }
            Instr::Async { target, args } => {
                let callee = {
                    let env = ConcEnv { module: self.module, config, tid };
                    match crate::resolve_target_conc(&env, target) {
                        Ok(f) => f,
                        Err(e) => return StepResult::Ended(RunEnd::RuntimeError(e)),
                    }
                };
                let arg_vals: Vec<Value> = {
                    let env = ConcEnv { module: self.module, config, tid };
                    args.iter().map(|a| eval::eval_operand(&env, a)).collect()
                };
                bump(config, 1);
                let child = config.threads.len() as u32;
                config.threads.push(ThreadState {
                    frames: vec![Frame::enter(self.module, callee, &arg_vals, None)],
                });
                on_event(Event::Fork { parent: tid as u32, child });
            }
            Instr::Return(op) => {
                let ret = {
                    let env = ConcEnv { module: self.module, config, tid };
                    op.map(|o| eval::eval_operand(&env, &o)).unwrap_or(Value::Null)
                };
                let finished = config.threads[tid].frames.pop().expect("nonempty");
                if config.threads[tid].frames.is_empty() {
                    on_event(Event::Finish { tid: tid as u32 });
                } else if let Some(dest) = finished.dest {
                    let mut env = ConcEnv { module: self.module, config, tid };
                    match eval::place_addr(&env, &dest).and_then(|a| env.write_addr(a, ret)) {
                        Ok(()) => {}
                        Err(e) => return StepResult::Ended(RunEnd::RuntimeError(e)),
                    }
                }
            }
            Instr::Jump(t) => {
                config.threads[tid].frames.last_mut().expect("nonempty").pc = t;
            }
            Instr::NondetJump(targets) => {
                if targets.is_empty() {
                    // Dead end; park the thread by popping it.
                    config.threads[tid].frames.clear();
                    on_event(Event::Finish { tid: tid as u32 });
                } else {
                    let t = targets[rng.gen_range(0..targets.len())];
                    config.threads[tid].frames.last_mut().expect("nonempty").pc = t;
                }
            }
            Instr::AtomicBegin => {
                let kind = self.atomics.get(&(func, pc)).copied().unwrap_or(AtomicKind::Other);
                let mut attempt = config.clone();
                let Some(accesses) = self.run_atomic(&mut attempt, tid, rng) else {
                    // Blocked (e.g. lock held): no state change.
                    return StepResult::Ok;
                };
                *config = attempt;
                match kind {
                    AtomicKind::Acquire(_) => {
                        // Resolve the lock cell from the recorded
                        // accesses: the written cell.
                        if let Some((addr, _)) = accesses.iter().find(|(_, w)| *w) {
                            on_event(Event::Acquire { tid: tid as u32, addr: *addr });
                        }
                    }
                    AtomicKind::Release(_) => {
                        if let Some((addr, _)) = accesses.iter().find(|(_, w)| *w) {
                            on_event(Event::Release { tid: tid as u32, addr: *addr });
                        }
                    }
                    AtomicKind::Other => {
                        for (addr, is_write) in accesses {
                            on_event(Event::Access { tid: tid as u32, addr, is_write, span });
                        }
                    }
                }
            }
            Instr::AtomicEnd => bump(config, 1),
        }
        StepResult::Ok
    }

    /// Executes a whole atomic region with random inner choices;
    /// returns the shared accesses performed, or `None` if the region
    /// blocked (caller must discard the attempt).
    fn run_atomic(
        &self,
        config: &mut ConcConfig,
        tid: usize,
        rng: &mut StdRng,
    ) -> Option<Vec<(Addr, bool)>> {
        let mut accesses = Vec::new();
        // Step past AtomicBegin.
        config.threads[tid].frames.last_mut().expect("nonempty").pc += 1;
        for _ in 0..10_000 {
            let (instr, ..) = self.frame_instr(config, tid)?;
            let instr = instr.clone();
            match instr {
                Instr::AtomicEnd => {
                    config.threads[tid].frames.last_mut().expect("nonempty").pc += 1;
                    return Some(accesses);
                }
                Instr::Assign(place, rv) => {
                    {
                        let env = ConcEnv { module: self.module, config, tid };
                        accesses.extend(shared_accesses(&env, &Instr::Assign(place, rv)));
                    }
                    let mut env = ConcEnv { module: self.module, config, tid };
                    eval::exec_assign(&mut env, &place, &rv).ok()?;
                    config.threads[tid].frames.last_mut().expect("nonempty").pc += 1;
                }
                Instr::Assume(c) => {
                    let env = ConcEnv { module: self.module, config, tid };
                    match eval::eval_cond(&env, &c) {
                        Ok(true) => {
                            config.threads[tid].frames.last_mut().expect("nonempty").pc += 1
                        }
                        _ => return None,
                    }
                }
                Instr::Assert(c) => {
                    let env = ConcEnv { module: self.module, config, tid };
                    match eval::eval_cond(&env, &c) {
                        Ok(true) => {
                            config.threads[tid].frames.last_mut().expect("nonempty").pc += 1
                        }
                        _ => return None,
                    }
                }
                Instr::Jump(t) => {
                    config.threads[tid].frames.last_mut().expect("nonempty").pc = t;
                }
                Instr::NondetJump(targets) => {
                    if targets.is_empty() {
                        return None;
                    }
                    let t = targets[rng.gen_range(0..targets.len())];
                    config.threads[tid].frames.last_mut().expect("nonempty").pc = t;
                }
                _ => return None, // calls/returns forbidden by wf
            }
        }
        None
    }
}

enum StepResult {
    Ok,
    Ended(RunEnd),
}

#[cfg(test)]
mod tests {
    use super::*;
    use kiss_lang::parse_and_lower;

    fn module(src: &str) -> Module {
        Module::lower(parse_and_lower(src).unwrap())
    }

    #[test]
    fn emits_fork_access_and_finish_events() {
        let src = "
            int g;
            void w() { g = 1; }
            void main() { async w(); g = 2; }
        ";
        let m = module(src);
        let mut forks = 0;
        let mut writes = 0;
        let mut finishes = 0;
        let end = Runner::new(&m).run(7, |e| match e {
            Event::Fork { .. } => forks += 1,
            Event::Access { is_write: true, .. } => writes += 1,
            Event::Finish { .. } => finishes += 1,
            _ => {}
        });
        assert_eq!(end, RunEnd::Completed);
        assert_eq!(forks, 1);
        assert_eq!(writes, 2);
        assert_eq!(finishes, 2);
    }

    #[test]
    fn recognizes_lock_acquire_and_release() {
        let src = "
            int l;
            int g;
            void main() {
                atomic { assume l == 0; l = 1; }
                g = 1;
                atomic { l = 0; }
            }
        ";
        let m = module(src);
        let mut events = Vec::new();
        let end = Runner::new(&m).run(3, |e| events.push(e));
        assert_eq!(end, RunEnd::Completed);
        let acquires: Vec<_> =
            events.iter().filter(|e| matches!(e, Event::Acquire { .. })).collect();
        let releases: Vec<_> =
            events.iter().filter(|e| matches!(e, Event::Release { .. })).collect();
        assert_eq!(acquires.len(), 1, "{events:?}");
        assert_eq!(releases.len(), 1, "{events:?}");
    }

    #[test]
    fn interlocked_style_atomic_reports_accesses_not_locks() {
        let src = "
            int c;
            void main() { int v; atomic { c = c + 1; v = c; } }
        ";
        let m = module(src);
        let mut locks = 0;
        let mut accesses = 0;
        Runner::new(&m).run(1, |e| match e {
            Event::Acquire { .. } | Event::Release { .. } => locks += 1,
            Event::Access { .. } => accesses += 1,
            _ => {}
        });
        assert_eq!(locks, 0);
        assert!(accesses >= 2); // read + write of c
    }

    #[test]
    fn assert_failure_ends_run_with_event() {
        let m = module("void main() { assert false; }");
        let mut failed = false;
        let end = Runner::new(&m).run(0, |e| {
            if matches!(e, Event::AssertFail { .. }) {
                failed = true;
            }
        });
        assert_eq!(end, RunEnd::AssertFailed);
        assert!(failed);
    }

    #[test]
    fn blocked_lock_is_a_deadlock_when_never_released() {
        let src = "
            int l;
            void main() { l = 1; atomic { assume l == 0; l = 1; } }
        ";
        let m = module(src);
        let end = Runner::new(&m).run(0, |_| {});
        assert_eq!(end, RunEnd::Deadlock);
    }

    #[test]
    fn step_bound_terminates_unbounded_recursion() {
        let m = module("void f() { f(); } void main() { f(); }");
        let end = Runner::new(&m).with_max_steps(200).run(0, |_| {});
        assert_eq!(end, RunEnd::StepBound);
    }

    #[test]
    fn nondeterministic_loop_ends_one_way_or_another() {
        // `iter` may exit at any iteration under the random scheduler,
        // so the run completes, deadlocks (committed to a blocked
        // branch) or hits the bound — but never errs.
        let m = module("void main() { iter { skip; } }");
        for seed in 0..10 {
            let end = Runner::new(&m).with_max_steps(200).run(seed, |_| {});
            assert!(
                matches!(end, RunEnd::Completed | RunEnd::StepBound),
                "unexpected end: {end:?}"
            );
        }
    }

    #[test]
    fn heap_field_accesses_are_reported() {
        let src = "
            struct D { int x; }
            D *e;
            void main() { e = malloc(D); e->x = 5; }
        ";
        let m = module(src);
        let mut heap_writes = 0;
        Runner::new(&m).run(0, |e| {
            if let Event::Access { addr: Addr::Heap { .. }, is_write: true, .. } = e {
                heap_writes += 1;
            }
        });
        assert_eq!(heap_writes, 1);
    }
}
