//! Happens-before race detection with vector clocks (paper §7 related
//! work: refs \[2, 30, 32\], using Lamport's relation \[28\]).
//!
//! Orders events by program order, fork edges, and lock
//! release→acquire edges; two accesses to the same cell race if at
//! least one writes and neither happens-before the other. Unlike
//! locksets, this is precise for the *observed* execution (no
//! false positives on event-style synchronization realized through
//! lock-shaped atomics), but its coverage is limited to the schedules
//! actually run — the trade-off the paper describes for dynamic tools.

use std::collections::{BTreeSet, HashMap};

use kiss_exec::{Addr, Module};
use kiss_lang::Span;

use crate::runner::{Event, Runner};

/// A vector clock: logical time per thread id.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VClock(Vec<u64>);

impl VClock {
    fn get(&self, tid: u32) -> u64 {
        self.0.get(tid as usize).copied().unwrap_or(0)
    }

    fn set(&mut self, tid: u32, v: u64) {
        if self.0.len() <= tid as usize {
            self.0.resize(tid as usize + 1, 0);
        }
        self.0[tid as usize] = v;
    }

    fn tick(&mut self, tid: u32) {
        let v = self.get(tid);
        self.set(tid, v + 1);
    }

    fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, &v) in other.0.iter().enumerate() {
            self.0[i] = self.0[i].max(v);
        }
    }

    /// `self ≤ other` pointwise: everything in `self` happened before
    /// `other`'s view.
    fn le(&self, other: &VClock) -> bool {
        self.0.iter().enumerate().all(|(i, &v)| v <= other.0.get(i).copied().unwrap_or(0))
    }
}

/// A happens-before race: two unordered accesses, at least one a write.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct HbRace {
    /// The racy cell.
    pub addr: Addr,
    /// Location of the earlier access.
    pub first: Span,
    /// Location of the later (conflicting) access.
    pub second: Span,
}

/// Result of a happens-before session.
#[derive(Debug, Clone, Default)]
pub struct HbReport {
    /// Distinct races across all runs.
    pub races: BTreeSet<HbRace>,
    /// Executions observed.
    pub runs: u32,
}

impl HbReport {
    /// Whether any race was observed.
    pub fn has_races(&self) -> bool {
        !self.races.is_empty()
    }
}

#[derive(Debug, Clone, Default)]
struct CellHistory {
    /// Clock and location of the last write.
    write: Option<(VClock, Span)>,
    /// Clock and location of reads since the last write, per thread.
    reads: HashMap<u32, (VClock, Span)>,
}

/// Runs `runs` random executions with vector-clock tracking.
pub fn hb_check(module: &Module, runs: u32, base_seed: u64) -> HbReport {
    let runner = Runner::new(module);
    let mut report = HbReport { runs, ..Default::default() };
    for i in 0..runs {
        let mut clocks: HashMap<u32, VClock> = HashMap::new();
        let mut c0 = VClock::default();
        c0.tick(0);
        clocks.insert(0, c0);
        let mut lock_clock: HashMap<Addr, VClock> = HashMap::new();
        let mut cells: HashMap<Addr, CellHistory> = HashMap::new();

        runner.run(base_seed.wrapping_add(i as u64), |event| match event {
            Event::Fork { parent, child } => {
                let mut c = clocks.get(&parent).cloned().unwrap_or_default();
                c.tick(child);
                clocks.insert(child, c);
                clocks.entry(parent).or_default().tick(parent);
            }
            Event::Release { tid, addr } => {
                let c = clocks.entry(tid).or_default();
                lock_clock.insert(addr, c.clone());
                c.tick(tid);
            }
            Event::Acquire { tid, addr } => {
                let lc = lock_clock.get(&addr).cloned();
                let c = clocks.entry(tid).or_default();
                if let Some(lc) = lc {
                    c.join(&lc);
                }
                c.tick(tid);
            }
            Event::Access { tid, addr, is_write, span } => {
                let clock = clocks.entry(tid).or_default().clone();
                let hist = cells.entry(addr).or_default();
                if is_write {
                    if let Some((wc, wspan)) = &hist.write {
                        if !wc.le(&clock) {
                            report.races.insert(HbRace { addr, first: *wspan, second: span });
                        }
                    }
                    for (rc, rspan) in hist.reads.values() {
                        if !rc.le(&clock) {
                            report.races.insert(HbRace { addr, first: *rspan, second: span });
                        }
                    }
                    hist.write = Some((clock, span));
                    hist.reads.clear();
                } else {
                    if let Some((wc, wspan)) = &hist.write {
                        if !wc.le(&clock) {
                            report.races.insert(HbRace { addr, first: *wspan, second: span });
                        }
                    }
                    hist.reads.insert(tid, (clock, span));
                }
                clocks.entry(tid).or_default().tick(tid);
            }
            _ => {}
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use kiss_lang::parse_and_lower;

    fn module(src: &str) -> Module {
        Module::lower(parse_and_lower(src).unwrap())
    }

    #[test]
    fn clocks_order_and_join() {
        let mut a = VClock::default();
        a.set(0, 3);
        let mut b = VClock::default();
        b.set(0, 2);
        b.set(1, 5);
        assert!(!a.le(&b));
        assert!(!b.le(&a));
        b.join(&a);
        assert!(a.le(&b));
        assert_eq!(b.get(0), 3);
        assert_eq!(b.get(1), 5);
    }

    #[test]
    fn unsynchronized_write_write_race_is_found() {
        let src = "
            int g;
            void w() { g = 1; }
            void main() { async w(); g = 2; }
        ";
        let report = hb_check(&module(src), 50, 1);
        assert!(report.has_races(), "{report:?}");
    }

    #[test]
    fn lock_protected_accesses_are_ordered() {
        let src = "
            int l;
            int g;
            void w() { atomic { assume l == 0; l = 1; } g = g + 1; atomic { l = 0; } }
            void main() { async w(); atomic { assume l == 0; l = 1; } g = g + 1; atomic { l = 0; } }
        ";
        let report = hb_check(&module(src), 50, 1);
        assert!(!report.has_races(), "{:?}", report.races);
    }

    #[test]
    fn fork_edge_orders_pre_fork_writes() {
        let src = "
            int g;
            int a;
            void r() { a = g; }
            void main() { g = 7; async r(); }
        ";
        let report = hb_check(&module(src), 50, 2);
        assert!(!report.has_races(), "{:?}", report.races);
    }

    #[test]
    fn lock_based_handoff_is_not_flagged() {
        // Producer releases the lock after writing; consumer acquires
        // it before reading: ordered by the release→acquire edge. The
        // lockset algorithm cannot see this ordering when the lock
        // sets are disjoint per access; happens-before can.
        let src = "
            int l;
            int g;
            int got;
            void consumer() {
                int ready;
                ready = 0;
                while (ready == 0) {
                    atomic { assume l == 0; l = 1; }
                    ready = g;
                    atomic { l = 0; }
                }
                got = ready;
            }
            void main() {
                async consumer();
                atomic { assume l == 0; l = 1; }
                g = 5;
                atomic { l = 0; }
            }
        ";
        let report = hb_check(&module(src), 40, 3);
        assert!(!report.has_races(), "{:?}", report.races);
    }

    #[test]
    fn racy_read_after_concurrent_write_is_found() {
        let src = "
            int g;
            int t;
            void w() { g = 1; }
            void main() { async w(); t = g; }
        ";
        let report = hb_check(&module(src), 50, 4);
        assert!(report.has_races(), "{report:?}");
    }
}
