//! The end-to-end KISS pipeline (the paper's Figure 1).
//!
//! `concurrent program → instrumentation → sequential program →
//! sequential checker → error trace → concurrent error trace`.
//!
//! [`Kiss`] bundles the transformation configuration, the sequential
//! engine and its budget, error-trace back-mapping, and (optionally)
//! *validation*: replaying the back-mapped schedule pattern on the
//! original concurrent program with `kiss-conc` to confirm the error is
//! real — an executable witness of the paper's "never reports false
//! errors" guarantee.

use kiss_exec::Module;
use kiss_lang::hir::Origin;
use kiss_lang::Program;
use kiss_obs::{Obs, Span, TraceId};
use kiss_seq::{
    BfsChecker, BoundReason, Budget, CancelToken, EngineStats, ErrorTrace, ExplicitChecker,
    StoreKind, SummaryChecker, Verdict,
};

use crate::trace_map::{self, MappedTrace};
use crate::transform::{transform, RaceSite, RaceTarget, TransformConfig, TransformError, Transformed};

/// Which sequential engine analyzes the transformed program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Explicit-state DFS (full error traces; the default).
    #[default]
    Explicit,
    /// Summary-based interprocedural engine (verdicts only).
    Summary,
    /// Breadth-first engine (minimal-depth error traces).
    Bfs,
}

impl Engine {
    /// A stable lowercase name (used in events and reports).
    pub fn name(&self) -> &'static str {
        match self {
            Engine::Explicit => "explicit",
            Engine::Summary => "summary",
            Engine::Bfs => "bfs",
        }
    }

    /// Parses [`Engine::name`] output (the `--engine` flag values and
    /// the serve protocol's `engine` field).
    pub fn parse(s: &str) -> Option<Engine> {
        match s {
            "explicit" => Some(Engine::Explicit),
            "summary" => Some(Engine::Summary),
            "bfs" => Some(Engine::Bfs),
            _ => None,
        }
    }
}

/// Search statistics for one check.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckStats {
    /// The engine that produced these statistics.
    pub engine: Engine,
    /// The engine's own counters (steps, states, frontier peak, …).
    pub seq: EngineStats,
    /// Race checks emitted after pruning (race mode).
    pub checks_emitted: usize,
    /// Race checks removed by the alias analysis (race mode).
    pub checks_pruned: usize,
}

impl CheckStats {
    /// Instructions executed by the sequential engine.
    pub fn steps(&self) -> u64 {
        self.seq.steps
    }

    /// Distinct states recorded (summaries for the summary engine).
    pub fn states(&self) -> usize {
        self.seq.states
    }
}

/// A confirmed assertion violation.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorReport {
    /// The reconstructed concurrent execution.
    pub mapped: MappedTrace,
    /// `Some(true)` if the schedule pattern reproduced the failure on
    /// the original concurrent program; `None` if validation was
    /// disabled or the engine produced no trace.
    pub validated: Option<bool>,
    /// Engine statistics.
    pub stats: CheckStats,
}

/// A violated liveness property: a concrete infinite run of the
/// sequentialized program on which the LTL formula fails, reported as
/// a finite stem into a repeating cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct LivenessReport {
    /// The formula that was checked (pretty-printed).
    pub formula: String,
    /// Steps from the initial state to the cycle entry.
    pub stem: Vec<kiss_seq::TraceStep>,
    /// Steps around the repeating cycle. Empty when the violating run
    /// is a terminated execution whose final state repeats forever.
    pub cycle: Vec<kiss_seq::TraceStep>,
    /// Engine statistics.
    pub stats: CheckStats,
}

/// A detected race condition on the distinguished location.
#[derive(Debug, Clone, PartialEq)]
pub struct RaceReport {
    /// The first access (recorded by the instrumentation).
    pub first: RaceSite,
    /// The second, conflicting access (where the assertion fired).
    pub second: RaceSite,
    /// The reconstructed concurrent execution.
    pub mapped: MappedTrace,
    /// Engine statistics.
    pub stats: CheckStats,
}

/// The outcome of a KISS check.
#[derive(Debug, Clone, PartialEq)]
pub enum KissOutcome {
    /// The sequential search completed without finding an error. By
    /// Theorem 1 this means no *balanced* execution (within the `ts`
    /// bound) goes wrong; other interleavings may still err.
    NoErrorFound(CheckStats),
    /// A user assertion can fail.
    AssertionViolation(ErrorReport),
    /// Conflicting accesses to the distinguished location exist.
    RaceDetected(RaceReport),
    /// An LTL liveness property is violated by a concrete lasso
    /// (stem + repeating cycle) of the sequentialized program.
    LivenessViolated(LivenessReport),
    /// The search exceeded its budget — the paper's "resource bound
    /// exceeded" bucket in Table 1.
    Inconclusive {
        /// Statistics at the point the budget tripped.
        stats: CheckStats,
        /// Which budget axis ended the search (steps, states, deadline,
        /// memory, or cancellation).
        reason: BoundReason,
    },
    /// The program has a runtime error (ill-typed operation).
    RuntimeError(String),
    /// The transformation itself failed.
    TransformFailed(TransformError),
}

impl KissOutcome {
    /// `true` for any error-finding outcome.
    pub fn found_error(&self) -> bool {
        matches!(
            self,
            KissOutcome::AssertionViolation(_)
                | KissOutcome::RaceDetected(_)
                | KissOutcome::LivenessViolated(_)
        )
    }

    /// `true` for [`KissOutcome::NoErrorFound`].
    pub fn is_clean(&self) -> bool {
        matches!(self, KissOutcome::NoErrorFound(_))
    }

    /// `true` for [`KissOutcome::Inconclusive`].
    pub fn is_inconclusive(&self) -> bool {
        matches!(self, KissOutcome::Inconclusive { .. })
    }

    /// The engine statistics, when the check got far enough to have
    /// any.
    pub fn stats(&self) -> Option<&CheckStats> {
        match self {
            KissOutcome::NoErrorFound(stats) => Some(stats),
            KissOutcome::AssertionViolation(report) => Some(&report.stats),
            KissOutcome::RaceDetected(report) => Some(&report.stats),
            KissOutcome::LivenessViolated(report) => Some(&report.stats),
            KissOutcome::Inconclusive { stats, .. } => Some(stats),
            KissOutcome::RuntimeError(_) | KissOutcome::TransformFailed(_) => None,
        }
    }

    /// A stable lowercase verdict name (used in events and reports).
    pub fn verdict_str(&self) -> &'static str {
        match self {
            KissOutcome::NoErrorFound(_) => "pass",
            KissOutcome::AssertionViolation(_) => "assertion",
            KissOutcome::RaceDetected(_) => "race",
            KissOutcome::LivenessViolated(_) => "liveness",
            KissOutcome::Inconclusive { .. } => "inconclusive",
            KissOutcome::RuntimeError(_) => "runtime_error",
            KissOutcome::TransformFailed(_) => "transform_failed",
        }
    }
}

/// A check request that could not even start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// The race spec named no global or `Struct.field` in the program.
    UnknownRaceSpec {
        /// The spec as given.
        spec: String,
    },
    /// An LTL proposition named no global in the program.
    UnknownProposition {
        /// The proposition as given.
        name: String,
    },
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::UnknownRaceSpec { spec } => {
                write!(f, "race spec `{spec}` names no global or Struct.field in the program")
            }
            CheckError::UnknownProposition { name } => {
                write!(f, "proposition `{name}` names no global in the program")
            }
        }
    }
}

impl std::error::Error for CheckError {}

/// The KISS checker.
#[derive(Debug, Clone)]
pub struct Kiss {
    max_ts: usize,
    budget: Budget,
    alias_prune: bool,
    validate: bool,
    engine: Engine,
    optimize: bool,
    cancel: CancelToken,
    obs: Obs,
    store: StoreKind,
    explore_jobs: usize,
    trace: TraceId,
    trace_parent: u64,
}

impl Default for Kiss {
    fn default() -> Self {
        Kiss::new()
    }
}

impl Kiss {
    /// A checker with `MAX = 0`, the default budget, alias pruning and
    /// validation enabled.
    pub fn new() -> Self {
        Kiss {
            max_ts: 0,
            budget: Budget::default(),
            alias_prune: true,
            validate: true,
            engine: Engine::Explicit,
            optimize: false,
            cancel: CancelToken::default(),
            obs: Obs::off(),
            store: StoreKind::default(),
            explore_jobs: 1,
            trace: TraceId::NONE,
            trace_parent: 0,
        }
    }

    /// Sets `MAX`, the `ts` multiset bound (the coverage knob).
    pub fn with_max_ts(mut self, max_ts: usize) -> Self {
        self.max_ts = max_ts;
        self
    }

    /// Sets the sequential engine's budget.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Enables or disables alias-based check pruning.
    pub fn with_alias_prune(mut self, on: bool) -> Self {
        self.alias_prune = on;
        self
    }

    /// Enables or disables concurrent-replay validation of reported
    /// errors.
    pub fn with_validation(mut self, on: bool) -> Self {
        self.validate = on;
        self
    }

    /// Selects the sequential engine.
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Selects the sequential engines' state-storage implementation
    /// (`--store legacy|cow`); the legacy store is the equivalence
    /// oracle for the interned one.
    pub fn with_store(mut self, store: StoreKind) -> Self {
        self.store = store;
        self
    }

    /// Explores each single check with `jobs` worker threads
    /// (`--explore-jobs <n>`; clamped to at least one). Only the BFS
    /// engine over the `cow` store parallelizes; other engines ignore
    /// it. Verdicts, traces, and state counts are byte-identical to a
    /// serial run — this is a throughput knob, never a semantics knob.
    pub fn with_explore_jobs(mut self, jobs: usize) -> Self {
        self.explore_jobs = jobs.max(1);
        self
    }

    /// Installs a cancellation token threaded through to the sequential
    /// engine's inner loop. Cancelling mid-check yields
    /// [`KissOutcome::Inconclusive`] with
    /// [`BoundReason::Cancelled`].
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Attaches an observer; the sequential engine emits throttled
    /// progress and budget-violation events through it. The default
    /// observer is off and costs nothing.
    pub fn with_observer(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Threads a trace id through the check: [`Kiss::run`] brackets its
    /// transform, lower, and explore phases with spans parented under
    /// `parent` in that trace, so a request's phase breakdown is
    /// reconstructible from the event stream. With the default
    /// [`TraceId::NONE`] a fresh trace is minted per check (when the
    /// observer is on); `parent` 0 makes the phases root spans.
    pub fn with_trace(mut self, trace: TraceId, parent: u64) -> Self {
        self.trace = trace;
        self.trace_parent = parent;
        self
    }

    /// Enables semantics-preserving optimization: unreachable functions
    /// are pruned before the transformation, and the transformed
    /// program is simplified before checking. Verdicts are unchanged;
    /// the `opt_ablation` benchmark measures the cost difference.
    pub fn with_optimize(mut self, on: bool) -> Self {
        self.optimize = on;
        self
    }

    /// Checks the user assertions of a concurrent program
    /// (Figure 4 instrumentation).
    pub fn check_assertions(&self, program: &Program) -> KissOutcome {
        let cfg = TransformConfig { max_ts: self.max_ts, race: None, alias_prune: self.alias_prune };
        self.run(program, &cfg)
    }

    /// Checks for races on the distinguished location (Figure 5
    /// instrumentation). User assertions remain active.
    pub fn check_race(&self, program: &Program, target: RaceTarget) -> KissOutcome {
        let cfg = TransformConfig {
            max_ts: self.max_ts,
            race: Some(target),
            alias_prune: self.alias_prune,
        };
        self.run(program, &cfg)
    }

    /// Checks for races on a `"global"` or `"Struct.field"` spec.
    pub fn check_race_spec(&self, program: &Program, spec: &str) -> Option<KissOutcome> {
        RaceTarget::resolve(program, spec).map(|t| self.check_race(program, t))
    }

    /// Like [`Kiss::check_race_spec`], but an unresolvable spec is a
    /// typed error instead of `None` — callers running corpora report
    /// it per-field rather than aborting.
    pub fn try_check_race_spec(
        &self,
        program: &Program,
        spec: &str,
    ) -> Result<KissOutcome, CheckError> {
        self.check_race_spec(program, spec)
            .ok_or_else(|| CheckError::UnknownRaceSpec { spec: spec.to_string() })
    }

    /// Checks an LTL formula over the program's globals against every
    /// balanced run of the sequentialized program (within the `ts`
    /// bound): the negated formula becomes a Büchi automaton and the
    /// product with the transformed program is explored for an
    /// accepting lasso. Terminated runs stutter in their final state;
    /// pruned (`assume`-false) paths contribute no run. The `--engine`
    /// selection does not apply — liveness always uses the product
    /// engine — but budget, cancellation, observer, and `explore_jobs`
    /// do, and parallel exploration stays byte-identical to serial.
    pub fn check_ltl(
        &self,
        program: &Program,
        formula: &kiss_ltl::Formula,
    ) -> Result<KissOutcome, CheckError> {
        let cfg = TransformConfig { max_ts: self.max_ts, race: None, alias_prune: self.alias_prune };
        let trace = if self.trace.is_none() && self.obs.is_enabled() {
            TraceId::fresh()
        } else {
            self.trace
        };
        let phase = |name| Span::open(&self.obs, trace, self.trace_parent, name);
        let span = phase("transform");
        let pruned;
        let input: &Program = if self.optimize {
            let mut p = program.clone();
            kiss_lang::opt::prune_unreachable(&mut p);
            pruned = p;
            &pruned
        } else {
            program
        };
        let mut info = match transform(input, &cfg) {
            Ok(t) => t,
            Err(e) => return Ok(KissOutcome::TransformFailed(e)),
        };
        if self.optimize {
            kiss_lang::opt::simplify(&mut info.program);
        }
        span.close();
        let span = phase("buchi");
        let buchi = kiss_ltl::Buchi::for_negation(formula);
        span.close();
        let span = phase("lower");
        let module = Module::lower(std::mem::take(&mut info.program));
        span.close();
        // Transformation only appends instrumentation globals, so user
        // globals keep their ids — resolving against the transformed
        // program indexes the product configurations correctly.
        let atoms = kiss_ltl::resolve_atoms(&module.program, &buchi.atoms)
            .map_err(|name| CheckError::UnknownProposition { name })?;
        let span = phase("explore");
        let (verdict, seq) = kiss_ltl::ProductChecker::new(&module, &buchi, atoms)
            .with_budget(self.budget)
            .with_cancel(self.cancel.clone())
            .with_observer(self.obs.clone())
            .with_jobs(self.explore_jobs)
            .with_trace(trace, self.trace_parent)
            .check_with_stats();
        span.close();
        // The product engine is the BFS engine's layered search over a
        // bigger state space; it reports under the same engine label.
        let stats = CheckStats {
            engine: Engine::Bfs,
            seq,
            checks_emitted: info.checks_emitted,
            checks_pruned: info.checks_pruned,
        };
        Ok(match verdict {
            kiss_ltl::LtlVerdict::Holds => KissOutcome::NoErrorFound(stats),
            kiss_ltl::LtlVerdict::ResourceBound { reason, .. } => {
                KissOutcome::Inconclusive { stats, reason }
            }
            kiss_ltl::LtlVerdict::RuntimeError(e, _) => KissOutcome::RuntimeError(e.to_string()),
            kiss_ltl::LtlVerdict::Violated(lasso) => {
                KissOutcome::LivenessViolated(LivenessReport {
                    formula: formula.to_string(),
                    stem: lasso.stem,
                    cycle: lasso.cycle,
                    stats,
                })
            }
        })
    }

    fn run(&self, program: &Program, cfg: &TransformConfig) -> KissOutcome {
        // A standalone check (no caller-supplied trace) still gets a
        // coherent phase tree when the observer is on.
        let trace = if self.trace.is_none() && self.obs.is_enabled() {
            TraceId::fresh()
        } else {
            self.trace
        };
        let phase = |name| Span::open(&self.obs, trace, self.trace_parent, name);
        let span = phase("transform");
        let pruned;
        let input: &Program = if self.optimize {
            let mut p = program.clone();
            kiss_lang::opt::prune_unreachable(&mut p);
            pruned = p;
            &pruned
        } else {
            program
        };
        let mut info = match transform(input, cfg) {
            Ok(t) => t,
            Err(e) => return KissOutcome::TransformFailed(e),
        };
        if self.optimize {
            kiss_lang::opt::simplify(&mut info.program);
        }
        span.close();
        // `lower` keeps the program inside the module, so hand it over
        // instead of cloning; `report` only reads the id/slot fields.
        let span = phase("lower");
        let module = Module::lower(std::mem::take(&mut info.program));
        span.close();
        let span = phase("explore");
        let (verdict, seq) = match self.engine {
            Engine::Explicit => ExplicitChecker::new(&module)
                .with_budget(self.budget)
                .with_cancel(self.cancel.clone())
                .with_observer(self.obs.clone())
                .with_store(self.store)
                .check_with_stats(),
            Engine::Summary => SummaryChecker::new(&module)
                .with_budget(self.budget)
                .with_cancel(self.cancel.clone())
                .with_observer(self.obs.clone())
                .with_store(self.store)
                .check_with_stats(),
            Engine::Bfs => BfsChecker::new(&module)
                .with_budget(self.budget)
                .with_cancel(self.cancel.clone())
                .with_observer(self.obs.clone())
                .with_store(self.store)
                .with_jobs(self.explore_jobs)
                .check_with_stats(),
        };
        span.close();
        let stats = CheckStats {
            engine: self.engine,
            seq,
            checks_emitted: info.checks_emitted,
            checks_pruned: info.checks_pruned,
        };
        match verdict {
            Verdict::Pass => KissOutcome::NoErrorFound(stats),
            Verdict::ResourceBound { reason, .. } => KissOutcome::Inconclusive { stats, reason },
            Verdict::RuntimeError(e, _) => KissOutcome::RuntimeError(e.to_string()),
            Verdict::Fail(trace) => self.report(program, &module, &info, trace, stats),
        }
    }

    fn report(
        &self,
        program: &Program,
        module: &Module,
        info: &Transformed,
        trace: ErrorTrace,
        stats: CheckStats,
    ) -> KissOutcome {
        let mapped = trace_map::map_trace(module, info, &trace);
        // Race or user assertion? The failing step's provenance tells.
        let failing_origin = trace.steps.last().map(|s| s.origin);
        let is_race = failing_origin == Some(Origin::Check)
            || trace
                .steps
                .last()
                .map(|s| Some(s.func) == info.check_r || Some(s.func) == info.check_w)
                .unwrap_or(false);
        if is_race {
            if let Some((first, second)) = trace_map::race_sites(module, info, &trace) {
                return KissOutcome::RaceDetected(RaceReport { first, second, mapped, stats });
            }
        }
        let validated = if self.validate && !mapped.pattern.is_empty() {
            let orig = Module::lower(program.clone());
            let v = kiss_conc::Explorer::new(&orig)
                .with_mode(kiss_conc::ScheduleMode::Pattern(mapped.pattern.clone()))
                .check();
            Some(v.is_fail() || matches!(v, kiss_conc::ConcVerdict::RuntimeError(..)))
        } else {
            None
        };
        KissOutcome::AssertionViolation(ErrorReport { mapped, validated, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kiss_lang::parse_and_lower;

    fn prog(src: &str) -> Program {
        parse_and_lower(src).unwrap()
    }

    const FORK_BUG: &str = "
        int g;
        void other() { g = 1; }
        void main() { async other(); assert g == 0; }
    ";

    const SPINLOCK_CORRECT: &str = "
        int locked;
        void worker() { locked = 0; }
        void main() { locked = 1; async worker(); while (locked == 1) { skip; } }
    ";
    const SPINLOCK_MUTANT: &str = "
        int locked;
        void worker() { skip; }
        void main() { locked = 1; async worker(); while (locked == 1) { skip; } }
    ";

    #[test]
    fn ltl_distinguishes_released_from_stuck_spinlock() {
        let formula = kiss_ltl::parse("G (locked -> F !locked)").unwrap();
        let held = Kiss::new().check_ltl(&prog(SPINLOCK_CORRECT), &formula).unwrap();
        assert!(held.is_clean(), "correct spinlock must satisfy the formula: {held:?}");

        let violated = Kiss::new().check_ltl(&prog(SPINLOCK_MUTANT), &formula).unwrap();
        let KissOutcome::LivenessViolated(report) = violated else {
            panic!("expected liveness violation, got {violated:?}");
        };
        assert_eq!(report.formula, "G (locked -> F !locked)");
        assert!(!report.cycle.is_empty(), "the spin loop is a real cycle, not a stutter");
        assert!(report.stats.seq.product_states > 0);
        assert!(report.stats.seq.buchi_states > 0);
        // Rendering shows the loop's source text.
        let rendered = crate::report::render_liveness(&prog(SPINLOCK_MUTANT), &report);
        assert!(rendered.contains("cycle"), "{rendered}");
    }

    #[test]
    fn ltl_parallel_exploration_matches_serial() {
        let formula = kiss_ltl::parse("F (locked == 0)").unwrap();
        let serial = Kiss::new().check_ltl(&prog(SPINLOCK_MUTANT), &formula).unwrap();
        let parallel = Kiss::new()
            .with_explore_jobs(4)
            .check_ltl(&prog(SPINLOCK_MUTANT), &formula)
            .unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn ltl_unknown_proposition_is_a_typed_error() {
        let formula = kiss_ltl::parse("F missing").unwrap();
        let err = Kiss::new().check_ltl(&prog(SPINLOCK_CORRECT), &formula).unwrap_err();
        assert_eq!(err, CheckError::UnknownProposition { name: "missing".into() });
        assert!(err.to_string().contains("`missing`"), "{err}");
    }

    #[test]
    fn finds_and_validates_fork_bug() {
        let outcome = Kiss::new().check_assertions(&prog(FORK_BUG));
        let KissOutcome::AssertionViolation(report) = outcome else {
            panic!("expected violation, got {outcome:?}");
        };
        assert_eq!(report.validated, Some(true), "mapped schedule must replay");
        assert_eq!(report.mapped.thread_count, 2);
        assert!(report.stats.steps() > 0);
        assert_eq!(report.stats.engine, Engine::Explicit);
    }

    #[test]
    fn clean_program_reports_no_error() {
        let outcome = Kiss::new().check_assertions(&prog(
            "int g; void other() { g = 1; } void main() { async other(); assert g <= 1; }",
        ));
        assert!(outcome.is_clean(), "{outcome:?}");
        assert!(!outcome.found_error());
    }

    #[test]
    fn summary_engine_agrees_on_verdicts() {
        for (src, fails) in [
            (FORK_BUG, true),
            ("int g; void o() { g = 1; } void main() { async o(); assert g <= 1; }", false),
        ] {
            let outcome =
                Kiss::new().with_engine(Engine::Summary).with_validation(false).check_assertions(&prog(src));
            assert_eq!(outcome.found_error(), fails, "summary disagrees on: {src}");
        }
    }

    #[test]
    fn race_is_detected_with_both_sites() {
        let src = "
            int r;
            void w1() { r = 1; }
            void main() { async w1(); r = 2; }
        ";
        let p = prog(src);
        let outcome = Kiss::new().check_race_spec(&p, "r").unwrap();
        let KissOutcome::RaceDetected(report) = outcome else {
            panic!("expected race, got {outcome:?}");
        };
        assert!(report.first.is_write && report.second.is_write, "write/write race");
        assert!(report.mapped.thread_count >= 2);
    }

    #[test]
    fn read_only_sharing_is_race_free() {
        let src = "
            int r;
            int a;
            int b;
            void rd() { a = r; }
            void main() { async rd(); b = r; }
        ";
        let p = prog(src);
        let outcome = Kiss::new().check_race_spec(&p, "r").unwrap();
        assert!(outcome.is_clean(), "two reads do not race: {outcome:?}");
    }

    #[test]
    fn lock_protected_accesses_are_race_free() {
        let src = "
            int lock;
            int r;
            void acquire() { atomic { assume lock == 0; lock = 1; } }
            void release() { atomic { lock = 0; } }
            void w1() { acquire(); r = 1; release(); }
            void main() { async w1(); acquire(); r = 2; release(); }
        ";
        let p = prog(src);
        let outcome = Kiss::new().check_race_spec(&p, "r").unwrap();
        // KISS's RAISE-after-check means: first thread records its
        // access *while holding the lock* and terminates — the lock is
        // never released, so the second thread blocks before its
        // access. No race is reported, matching the lockset intuition.
        assert!(outcome.is_clean(), "{outcome:?}");
    }

    #[test]
    fn unknown_race_spec_returns_none() {
        let p = prog("int r; void main() { skip; }");
        assert!(Kiss::new().check_race_spec(&p, "nope").is_none());
    }

    #[test]
    fn budget_produces_inconclusive() {
        let src = "
            int g;
            void spin() { iter { g = g + 1; } }
            void main() { async spin(); assert g >= 0; }
        ";
        let outcome = Kiss::new()
            .with_budget(Budget::steps_states(2_000, 200))
            .check_assertions(&prog(src));
        assert!(outcome.is_inconclusive(), "{outcome:?}");
    }

    #[test]
    fn cancellation_surfaces_as_inconclusive() {
        let src = "
            int g;
            void spin() { iter { g = g + 1; } }
            void main() { async spin(); assert g >= 0; }
        ";
        let cancel = CancelToken::new();
        cancel.cancel();
        let outcome = Kiss::new().with_cancel(cancel).check_assertions(&prog(src));
        let KissOutcome::Inconclusive { reason, .. } = outcome else {
            panic!("expected inconclusive, got {outcome:?}");
        };
        assert_eq!(reason, BoundReason::Cancelled);
    }

    #[test]
    fn try_check_race_spec_reports_unknown_specs_as_errors() {
        let p = prog("int r; void main() { skip; }");
        assert!(Kiss::new().try_check_race_spec(&p, "r").is_ok());
        let err = Kiss::new().try_check_race_spec(&p, "nope").unwrap_err();
        assert_eq!(err, CheckError::UnknownRaceSpec { spec: "nope".into() });
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn max_ts_knob_changes_coverage() {
        // The refcount idiom of paper §2.3 in miniature: the bug needs
        // the forked thread to run *in the middle of* the other
        // thread's call, which requires a ts slot (MAX = 1); with
        // MAX = 0 the forked thread runs as one inline block and the
        // bug is missed.
        let src = "
            int phase;
            void stopper() { phase = 1; }
            void worker() {
                int p0;
                p0 = phase;
                if (p0 == 1) { assert phase == 0; }
            }
            void main() {
                async stopper();
                worker();
            }
        ";
        // worker reads phase twice; failing needs phase==1 at first
        // read and ==1 at assert... that fails whenever stopper ran
        // first — reachable at MAX=0 too. Use the classic
        // read-switch-write shape instead:
        let src2 = "
            int x;
            void stopper() { x = 1; }
            void worker() {
                int t;
                t = x;
                assert t == x;
            }
            void main() {
                async stopper();
                worker();
            }
        ";
        let _ = src;
        // With MAX=0: stopper runs entirely before worker, after
        // worker, or... inline at the fork — never *between* worker's
        // two statements of the same synchronous call? It can: RAISE
        // terminates worker early but does not resume it. The
        // between-statements interleaving needs suspend/resume of
        // worker, i.e. a pending slot. MAX=0 must miss it; MAX=1 finds
        // it.
        let p = prog(src2);
        let at0 = Kiss::new().with_max_ts(0).check_assertions(&p);
        assert!(at0.is_clean(), "MAX=0 cannot suspend/resume worker: {at0:?}");
        let at1 = Kiss::new().with_max_ts(1).check_assertions(&p);
        assert!(at1.found_error(), "MAX=1 exposes the mid-call interleaving: {at1:?}");
        if let KissOutcome::AssertionViolation(r) = at1 {
            assert_eq!(r.validated, Some(true));
        }
    }

    #[test]
    fn checks_emit_balanced_phase_spans_under_a_caller_trace() {
        use kiss_obs::{ChannelSink, Event};
        let (tx, rx) = std::sync::mpsc::channel::<Event>();
        let obs = Obs::new(ChannelSink(tx));
        let trace = TraceId::derive(9, 9);
        let outcome = Kiss::new()
            .with_trace(trace, 42)
            .with_observer(obs)
            .with_validation(false)
            .check_assertions(&prog(FORK_BUG));
        assert!(outcome.found_error());
        let mut opened = Vec::new();
        let mut closed = Vec::new();
        for event in rx.try_iter() {
            match event {
                Event::SpanOpen { trace: t, parent, name, span, .. } => {
                    assert_eq!(t, trace.to_hex());
                    assert_eq!(parent, 42, "phases parent under the caller's span");
                    opened.push((span, name));
                }
                Event::SpanClose { trace: t, span, name, .. } => {
                    assert_eq!(t, trace.to_hex());
                    closed.push((span, name));
                }
                _ => {}
            }
        }
        let names: Vec<&str> = opened.iter().map(|(_, n)| n.as_str()).collect();
        assert_eq!(names, ["transform", "lower", "explore"]);
        assert_eq!(opened, closed, "every phase span closes, in order");
    }

    #[test]
    fn never_reports_false_errors_on_a_small_corpus() {
        // For every program where KISS reports an error, the concurrent
        // explorer (free schedules) must also find one.
        let corpus = [
            FORK_BUG,
            "int g; void o() { g = g + 1; } void main() { async o(); g = g + 1; assert g <= 2; }",
            "int r; void w() { r = 1; } void main() { async w(); assert r == 0; }",
            "bool f; void o() { f = true; } void main() { async o(); assert !f; }",
        ];
        for src in corpus {
            let p = prog(src);
            for max_ts in [0, 1] {
                let outcome =
                    Kiss::new().with_max_ts(max_ts).with_validation(false).check_assertions(&p);
                if outcome.found_error() {
                    let orig = Module::lower(p.clone());
                    let conc = kiss_conc::Explorer::new(&orig).check();
                    assert!(conc.is_fail(), "KISS error not confirmed concurrently: {src}");
                }
            }
        }
    }
}

#[cfg(test)]
mod benign_tests {
    use super::*;
    use kiss_lang::parse_and_lower;

    /// The paper's future-work annotation: marking the deliberate
    /// lock-free read as benign suppresses the race report, while the
    /// unannotated variant is still flagged.
    #[test]
    fn benign_annotation_suppresses_the_fakemodem_style_warning() {
        let flagged = "
            int l;
            int OpenCount;
            int decision;
            void creator() { atomic { assume l == 0; l = 1; } OpenCount = OpenCount + 1; atomic { l = 0; } }
            void closer() { int t; t = OpenCount; if (t == 0) { decision = 1; } }
            void main() { async creator(); closer(); }
        ";
        let p = parse_and_lower(flagged).unwrap();
        let outcome = Kiss::new().check_race_spec(&p, "OpenCount").unwrap();
        assert!(matches!(outcome, KissOutcome::RaceDetected(_)), "{outcome:?}");

        let annotated = "
            int l;
            int OpenCount;
            int decision;
            void creator() { atomic { assume l == 0; l = 1; } OpenCount = OpenCount + 1; atomic { l = 0; } }
            void closer() { int t; benign t = OpenCount; if (t == 0) { decision = 1; } }
            void main() { async creator(); closer(); }
        ";
        let p = parse_and_lower(annotated).unwrap();
        let outcome = Kiss::new().check_race_spec(&p, "OpenCount").unwrap();
        assert!(outcome.is_clean(), "benign read must not be flagged: {outcome:?}");
    }

    /// Benign annotations do not weaken *other* accesses' checking.
    #[test]
    fn benign_does_not_mask_unrelated_races() {
        let src = "
            int r;
            int unrelated;
            void w() { benign unrelated = 1; r = 1; }
            void main() { async w(); r = 2; }
        ";
        let p = parse_and_lower(src).unwrap();
        let outcome = Kiss::new().check_race_spec(&p, "r").unwrap();
        assert!(matches!(outcome, KissOutcome::RaceDetected(_)), "{outcome:?}");
    }

    /// Assertion checking is unaffected by benign annotations.
    #[test]
    fn benign_statements_still_execute_in_assertion_mode() {
        let src = "
            int g;
            void w() { benign g = 1; }
            void main() { async w(); assert g == 0; }
        ";
        let p = parse_and_lower(src).unwrap();
        let outcome = Kiss::new().check_assertions(&p);
        assert!(outcome.found_error(), "{outcome:?}");
    }
}

#[cfg(test)]
mod bfs_engine_tests {
    use super::*;
    use kiss_lang::parse_and_lower;

    #[test]
    fn bfs_engine_finds_bugs_with_short_mapped_traces() {
        let src = "
            int g;
            void other() { g = 1; }
            void main() { async other(); assert g == 0; }
        ";
        let p = parse_and_lower(src).unwrap();
        let bfs = Kiss::new().with_engine(Engine::Bfs).check_assertions(&p);
        let KissOutcome::AssertionViolation(bfs_report) = bfs else {
            panic!("expected violation, got {bfs:?}");
        };
        assert_eq!(bfs_report.validated, Some(true));
        let dfs = Kiss::new().check_assertions(&p);
        let KissOutcome::AssertionViolation(dfs_report) = dfs else { panic!() };
        assert!(
            bfs_report.mapped.steps.len() <= dfs_report.mapped.steps.len(),
            "bfs {} vs dfs {}",
            bfs_report.mapped.steps.len(),
            dfs_report.mapped.steps.len()
        );
    }

    #[test]
    fn bfs_engine_agrees_on_clean_programs() {
        let src = "int g; void o() { g = 1; } void main() { async o(); assert g <= 1; }";
        let p = parse_and_lower(src).unwrap();
        assert!(Kiss::new().with_engine(Engine::Bfs).check_assertions(&p).is_clean());
    }
}

#[cfg(test)]
mod optimize_tests {
    use super::*;
    use kiss_lang::parse_and_lower;

    /// Optimization never changes verdicts, only cost.
    #[test]
    fn optimize_preserves_verdicts() {
        let corpus = [
            ("int g; void w() { g = 1; } void main() { async w(); assert g == 0; }", true),
            ("int g; void w() { g = 1; } void main() { async w(); assert g <= 1; }", false),
            (
                "int g; void dead() { g = 99; }
                 void w() { g = 1; } void main() { async w(); assert g <= 1; }",
                false,
            ),
        ];
        for (src, fails) in corpus {
            let p = parse_and_lower(src).unwrap();
            for max_ts in [0, 1] {
                let plain = Kiss::new()
                    .with_max_ts(max_ts)
                    .with_validation(false)
                    .check_assertions(&p);
                let opt = Kiss::new()
                    .with_max_ts(max_ts)
                    .with_validation(false)
                    .with_optimize(true)
                    .check_assertions(&p);
                assert_eq!(plain.found_error(), fails, "{src}");
                assert_eq!(opt.found_error(), fails, "optimized diverged on {src}");
            }
        }
    }

    /// Optimized traces still validate against the concurrent original.
    #[test]
    fn optimized_traces_still_replay() {
        let src = "int g; void w() { g = 1; } void main() { async w(); assert g == 0; }";
        let p = parse_and_lower(src).unwrap();
        let outcome = Kiss::new().with_optimize(true).check_assertions(&p);
        let KissOutcome::AssertionViolation(report) = outcome else {
            panic!("expected violation, got {outcome:?}");
        };
        assert_eq!(report.validated, Some(true));
    }

    /// Pruning drives down the checking cost on padded programs (the
    /// driver-corpus shape).
    #[test]
    fn optimization_reduces_cost_on_padded_programs() {
        let pads: String = (0..30)
            .map(|i| format!("int pad_{i}(int a) {{ int c; c = a + {i}; return c; }}\n"))
            .collect();
        let src = format!(
            "{pads}int g; void w() {{ g = 1; }} void main() {{ async w(); assert g <= 1; }}"
        );
        let p = parse_and_lower(&src).unwrap();
        let KissOutcome::NoErrorFound(plain) =
            Kiss::new().with_validation(false).check_assertions(&p)
        else {
            panic!()
        };
        let KissOutcome::NoErrorFound(opt) =
            Kiss::new().with_validation(false).with_optimize(true).check_assertions(&p)
        else {
            panic!()
        };
        // Exploration cost is dominated by reachable code, so steps are
        // similar; the win is in transformation/lowering size. Assert
        // the verdict costs did not grow.
        assert!(opt.steps() <= plain.steps(), "opt {} vs plain {}", opt.steps(), plain.steps());
    }
}
