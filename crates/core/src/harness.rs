//! Dispatch-routine harnesses (paper Section 6).
//!
//! "For each device driver, we created a concurrent program with two
//! threads, each of which nondeterministically calls a dispatch
//! routine." The naive harness allows *any* pair of routines to run
//! concurrently; the refined harness (after the driver quality team's
//! feedback, rules A1–A3) restricts the pairs. Both are expressed here
//! as a set of allowed ordered routine pairs.

use kiss_lang::hir::{CallTarget, FuncId, Origin, Program, Stmt, StmtKind};

/// Errors from harness construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HarnessError {
    /// A named routine does not exist.
    UnknownRoutine(String),
    /// A routine takes parameters (harness routines read shared state
    /// from globals).
    RoutineHasParams(String),
    /// No pairs were supplied.
    NoPairs,
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::UnknownRoutine(n) => write!(f, "unknown dispatch routine `{n}`"),
            HarnessError::RoutineHasParams(n) => {
                write!(f, "dispatch routine `{n}` must take no parameters")
            }
            HarnessError::NoPairs => write!(f, "harness needs at least one routine pair"),
        }
    }
}

impl std::error::Error for HarnessError {}

/// Builds the two-thread harness into a program's `main`.
///
/// The result's `main` body becomes:
///
/// ```text
/// init();                       // optional setup routine
/// choice {
///     async A1(); B1();         // one branch per allowed ordered pair
///  [] async A2(); B2();
///  ...
/// }
/// ```
///
/// # Errors
///
/// See [`HarnessError`].
pub fn dispatch_harness(
    program: &Program,
    init: Option<&str>,
    pairs: &[(&str, &str)],
) -> Result<Program, HarnessError> {
    if pairs.is_empty() {
        return Err(HarnessError::NoPairs);
    }
    let mut p = program.clone();
    let resolve = |p: &Program, name: &str| -> Result<FuncId, HarnessError> {
        let id = p
            .func_by_name(name)
            .ok_or_else(|| HarnessError::UnknownRoutine(name.to_string()))?;
        if p.func(id).param_count != 0 {
            return Err(HarnessError::RoutineHasParams(name.to_string()));
        }
        Ok(id)
    };
    let init_id = init.map(|n| resolve(&p, n)).transpose()?;
    let resolved: Vec<(FuncId, FuncId)> = pairs
        .iter()
        .map(|(a, b)| Ok((resolve(&p, a)?, resolve(&p, b)?)))
        .collect::<Result<_, HarnessError>>()?;

    let mk = |kind| Stmt::synth(kind, Origin::User);
    let mut body = Vec::new();
    if let Some(init_id) = init_id {
        body.push(mk(StmtKind::Call { dest: None, target: CallTarget::Direct(init_id), args: vec![] }));
    }
    let branches = resolved
        .into_iter()
        .map(|(a, b)| {
            mk(StmtKind::Seq(vec![
                mk(StmtKind::Async { target: CallTarget::Direct(a), args: vec![] }),
                mk(StmtKind::Call { dest: None, target: CallTarget::Direct(b), args: vec![] }),
            ]))
        })
        .collect();
    body.push(mk(StmtKind::Choice(branches)));

    let main = p.main;
    p.func_mut(main).body = mk(StmtKind::Seq(body));
    Ok(p)
}

/// All ordered pairs over a routine set — the paper's naive harness.
pub fn all_pairs<'a>(routines: &[&'a str]) -> Vec<(&'a str, &'a str)> {
    let mut out = Vec::new();
    for &a in routines {
        for &b in routines {
            out.push((a, b));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{Kiss, KissOutcome};
    use kiss_lang::parse_and_lower;

    const DRIVER: &str = "
        int r;
        int setup_done;
        void init() { setup_done = 1; }
        void DispatchA() { r = 1; }
        void DispatchB() { r = 2; }
        void DispatchC() { int t; t = r; t = t + 0; }
        void main() { skip; }
    ";

    #[test]
    fn harness_replaces_main_with_pair_choice() {
        let p = parse_and_lower(DRIVER).unwrap();
        let h = dispatch_harness(&p, Some("init"), &[("DispatchA", "DispatchB")]).unwrap();
        let text = kiss_lang::pretty::print_program(&h);
        assert!(text.contains("async DispatchA();"));
        assert!(text.contains("DispatchB();"));
        assert!(text.contains("init();"));
        // And it still parses.
        parse_and_lower(&text).unwrap();
    }

    #[test]
    fn all_pairs_is_the_cartesian_square() {
        let pairs = all_pairs(&["A", "B", "C"]);
        assert_eq!(pairs.len(), 9);
        assert!(pairs.contains(&("A", "A")));
        assert!(pairs.contains(&("C", "B")));
    }

    #[test]
    fn naive_harness_finds_race_that_refined_harness_excludes() {
        let p = parse_and_lower(DRIVER).unwrap();
        // Naive: A and B may run concurrently — write/write race on r.
        let naive =
            dispatch_harness(&p, None, &all_pairs(&["DispatchA", "DispatchB", "DispatchC"])).unwrap();
        let outcome = Kiss::new().check_race_spec(&naive, "r").unwrap();
        assert!(matches!(outcome, KissOutcome::RaceDetected(_)), "{outcome:?}");
        // Refined: only C (a pure reader) may run concurrently with
        // itself — no conflicting pair remains.
        let refined = dispatch_harness(&p, None, &[("DispatchC", "DispatchC")]).unwrap();
        let outcome = Kiss::new().check_race_spec(&refined, "r").unwrap();
        assert!(outcome.is_clean(), "{outcome:?}");
    }

    #[test]
    fn errors_on_bad_routines() {
        let p = parse_and_lower(DRIVER).unwrap();
        assert_eq!(
            dispatch_harness(&p, None, &[("Nope", "DispatchA")]),
            Err(HarnessError::UnknownRoutine("Nope".into()))
        );
        assert_eq!(dispatch_harness(&p, None, &[]), Err(HarnessError::NoPairs));
        let p2 = parse_and_lower("void takes(int x) { skip; } void main() { skip; }").unwrap();
        assert_eq!(
            dispatch_harness(&p2, None, &[("takes", "takes")]),
            Err(HarnessError::RoutineHasParams("takes".into()))
        );
    }
}
