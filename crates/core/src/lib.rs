//! # kiss-core
//!
//! The paper's primary contribution: the **KISS transformation** that
//! turns a concurrent KISS-C program into a sequential program whose
//! executions simulate the concurrent program's balanced (stack-
//! disciplined) executions — plus everything around it:
//!
//! * [`transform`] — the `[[·]]` translation of paper Figures 4
//!   (assertion checking) and 5 (race checking): the `raise` flag and
//!   `RAISE` prologue, the bounded multiset `ts` encoded as `MAX` extra
//!   global slots, the generated `schedule()` / `check_r` / `check_w`
//!   runtime, and the `Check(s)` entry point;
//! * [`trace_map`] — reconstruction of a concurrent error trace
//!   (thread ids + context switches) from the sequential checker's
//!   trace, as the paper's Figure 1 architecture requires;
//! * [`checker`] — the end-to-end [`checker::Kiss`] pipeline:
//!   transform, run a sequential engine (`kiss-seq`), back-map the
//!   trace, and optionally *validate* the mapped schedule against the
//!   concurrent explorer — witnessing the paper's "never reports false
//!   errors" guarantee;
//! * [`harness`] — the two-thread dispatch-routine harness used by the
//!   driver experiments (Section 6);
//! * [`supervisor`] — robust execution of many checks in sequence:
//!   panic isolation, wall-clock deadlines, cooperative cancellation,
//!   and bounded retry-with-escalation for inconclusive checks.
//!
//! ```
//! use kiss_core::checker::{Kiss, KissOutcome};
//!
//! let src = r#"
//!     int g;
//!     void other() { g = 1; }
//!     void main() { async other(); assert g == 0; }
//! "#;
//! let program = kiss_lang::parse_and_lower(src).expect("valid program");
//! let outcome = Kiss::new().check_assertions(&program);
//! assert!(matches!(outcome, KissOutcome::AssertionViolation(_)));
//! ```

pub mod checker;
pub mod harness;
pub mod report;
pub mod sigint;
pub mod supervisor;
pub mod trace_map;
pub mod transform;

pub use checker::{CheckError, Kiss, KissOutcome};
pub use kiss_seq::StoreKind;
pub use supervisor::{Supervised, SupervisedRun, Supervisor};
pub use transform::{RaceTarget, TransformConfig, Transformed};
