//! Human-readable rendering of mapped concurrent error traces.

use std::collections::HashMap;

use kiss_lang::hir::{FuncDef, Program, Stmt, StmtKind};
use kiss_lang::{pretty, Span};

use crate::checker::LivenessReport;
use crate::trace_map::MappedTrace;

/// Renders a mapped trace with the source text of each executed
/// statement, one line per step:
///
/// ```text
/// thread 0  9:13   async other();
/// thread 1  5:13   g = 1;
/// thread 0  10:13  assert g == 0;
/// ```
pub fn render_trace(program: &Program, mapped: &MappedTrace) -> String {
    let index = statement_index(program);
    let mut out = String::new();
    let mut last: Option<(u32, Span)> = None;
    for step in &mapped.steps {
        // Lowering splits one source statement into several core steps
        // (temporaries, atomic contents); collapse consecutive steps of
        // the same thread at the same source location.
        if last == Some((step.tid, step.span)) {
            continue;
        }
        last = Some((step.tid, step.span));
        let text: &str = if step.span.is_synthetic() {
            "<return>"
        } else {
            index.get(&step.span).map(String::as_str).unwrap_or("<statement>")
        };
        out.push_str(&format!("thread {}  {:<7} {}\n", step.tid, step.span.to_string(), text));
    }
    out
}

/// Renders a liveness counterexample: the user-visible steps of the
/// stem, then the repeating cycle. Instrumentation steps (scheduler
/// assumes, raise propagation) are elided, and consecutive steps at the
/// same source location collapse like in [`render_trace`]:
///
/// ```text
/// stem:
///   3:13   locked = 1;
/// cycle (repeats forever):
///   4:13   iter { ... }
/// ```
///
/// An empty cycle means the violating run terminated and its final
/// state repeats forever.
pub fn render_liveness(program: &Program, report: &LivenessReport) -> String {
    let index = statement_index(program);
    let mut out = String::new();
    let mut section = |title: &str, steps: &[kiss_seq::TraceStep]| {
        out.push_str(title);
        out.push('\n');
        let mut last: Option<Span> = None;
        let mut any = false;
        for step in steps {
            if !step.origin.is_user() || step.span.is_synthetic() || last == Some(step.span) {
                continue;
            }
            last = Some(step.span);
            any = true;
            let text = index.get(&step.span).map(String::as_str).unwrap_or("<statement>");
            out.push_str(&format!("  {:<7} {}\n", step.span.to_string(), text));
        }
        if !any {
            out.push_str("  <no user statements>\n");
        }
    };
    section("stem:", &report.stem);
    if report.cycle.is_empty() {
        out.push_str("cycle: the final state repeats forever (program terminated)\n");
    } else {
        section("cycle (repeats forever):", &report.cycle);
    }
    out
}

/// Maps each source span to the principal statement text at that span.
/// Lowering can attach several core statements to one source statement
/// (temporaries); traversal order puts the principal statement last, so
/// later entries win.
fn statement_index(program: &Program) -> HashMap<Span, String> {
    let mut index = HashMap::new();
    for f in &program.funcs {
        walk(program, f, &f.body, &mut index);
    }
    index
}

fn walk(program: &Program, f: &FuncDef, s: &Stmt, index: &mut HashMap<Span, String>) {
    match &s.kind {
        StmtKind::Seq(ss) | StmtKind::Choice(ss) => {
            for inner in ss {
                walk(program, f, inner, index);
            }
        }
        StmtKind::Atomic(b) | StmtKind::Iter(b) => walk(program, f, b, index),
        _ => {}
    }
    if !s.span.is_synthetic() && !matches!(s.kind, StmtKind::Seq(_)) {
        // The `while` desugar appends a loop-exit condition re-check
        // and `assume !cond` that share the loop head's span; an
        // already-indexed composite (the loop itself) stays the
        // principal statement there.
        if index.get(&s.span).is_some_and(|t| t.ends_with("{ ... }")) {
            return;
        }
        // One-line rendering; composites get their head line only.
        let text = match &s.kind {
            StmtKind::Choice(_) => "choice { ... }".to_string(),
            StmtKind::Atomic(_) => "atomic { ... }".to_string(),
            StmtKind::Iter(_) => "iter { ... }".to_string(),
            _ => pretty::print_stmt(program, f, s),
        };
        index.insert(s.span, text);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{Kiss, KissOutcome};

    #[test]
    fn rendered_trace_shows_statement_text() {
        let src = "
            int g;
            void other() { g = 1; }
            void main() { async other(); assert g == 0; }
        ";
        let program = kiss_lang::parse_and_lower(src).unwrap();
        let KissOutcome::AssertionViolation(report) = Kiss::new().check_assertions(&program) else {
            panic!("expected violation");
        };
        let rendered = render_trace(&program, &report.mapped);
        assert!(rendered.contains("thread 0"), "{rendered}");
        assert!(rendered.contains("thread 1"), "{rendered}");
        assert!(rendered.contains("g = 1;"), "{rendered}");
        assert!(rendered.contains("assert"), "{rendered}");
    }

    #[test]
    fn index_prefers_principal_statement_over_temporaries() {
        // `assert g == 1;` lowers to a temp compare plus the assert at
        // the same span; the assert must win.
        let src = "int g; void main() { g = 1; assert g == 1; }";
        let program = kiss_lang::parse_and_lower(src).unwrap();
        let index = statement_index(&program);
        let assert_line = index.values().filter(|t| t.contains("assert")).count();
        assert!(assert_line >= 1);
    }
}
