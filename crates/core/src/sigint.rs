//! Signal-to-cancellation plumbing (SIGINT, SIGTERM), shared by
//! `kissc` and the corpus binaries (`table1`, `table2`).
//!
//! ^C must not lose a half-finished corpus run: the handler only flips
//! a [`CancelToken`]'s atomic flag, which the engines observe at their
//! next budget poll, so the process winds down through the normal
//! journal/report paths instead of dying mid-write.

use kiss_seq::CancelToken;

#[cfg(unix)]
extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

/// Installs a SIGINT handler that cancels `token`. Only the first
/// installation takes effect (the handler is process-global); later
/// calls are no-ops. Also restores default SIGPIPE handling so piping
/// output into `head` exits quietly instead of panicking.
#[cfg(unix)]
pub fn install_sigint_cancel(token: CancelToken) {
    use std::sync::OnceLock;
    static CANCEL: OnceLock<CancelToken> = OnceLock::new();
    // The handler only flips the token's atomic flag — async-signal-safe
    // and observed by the engines at their next budget poll.
    extern "C" fn on_sigint(_: i32) {
        if let Some(t) = CANCEL.get() {
            t.cancel();
        }
    }
    const SIGINT: i32 = 2;
    if CANCEL.set(token).is_ok() {
        unsafe {
            signal(SIGINT, on_sigint as *const () as usize);
        }
        restore_sigpipe_default();
    }
}

/// Installs a SIGTERM handler that cancels `token`, so supervised
/// shutdown (systemd stop, `kill`, container runtime) drains exactly
/// like ^C instead of dying mid-write. Process-global like
/// [`install_sigint_cancel`]; only the first installation takes effect.
#[cfg(unix)]
pub fn install_sigterm_cancel(token: CancelToken) {
    use std::sync::OnceLock;
    static CANCEL: OnceLock<CancelToken> = OnceLock::new();
    extern "C" fn on_sigterm(_: i32) {
        if let Some(t) = CANCEL.get() {
            t.cancel();
        }
    }
    const SIGTERM: i32 = 15;
    if CANCEL.set(token).is_ok() {
        unsafe {
            signal(SIGTERM, on_sigterm as *const () as usize);
        }
    }
}

/// Rust ignores SIGPIPE by default, so `kissc ... | head` panics
/// mid-print; this restores the conventional silent exit. Call early
/// in `main` — the binaries here are pipeline citizens first.
#[cfg(unix)]
pub fn restore_sigpipe_default() {
    const SIGPIPE: i32 = 13;
    const SIG_DFL: usize = 0;
    unsafe {
        signal(SIGPIPE, SIG_DFL);
    }
}

/// No-op on non-unix targets: ^C kills the process the default way.
#[cfg(not(unix))]
pub fn install_sigint_cancel(_token: CancelToken) {}

/// No-op on non-unix targets: there is no SIGTERM.
#[cfg(not(unix))]
pub fn install_sigterm_cancel(_token: CancelToken) {}

/// No-op on non-unix targets: there is no SIGPIPE.
#[cfg(not(unix))]
pub fn restore_sigpipe_default() {}
