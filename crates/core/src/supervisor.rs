//! Supervised execution of individual checks.
//!
//! The paper's experiments run 481 field checks under a per-check
//! resource bound (20 minutes / 800 MB), recording "resource bound
//! exceeded" for the ones that do not finish — one divergent or crashing
//! check must never take down the rest of the corpus. [`Supervisor`]
//! provides that robustness layer for our reproduction:
//!
//! * **panic isolation** — the check closure runs under
//!   [`std::panic::catch_unwind`]; a panic becomes
//!   [`Supervised::Crashed`] with the panic payload as the cause,
//!   instead of aborting the corpus run;
//! * **retry with escalation** — an inconclusive check (budget tripped)
//!   is retried under a doubled, then quadrupled budget (the ladder is
//!   bounded by [`Supervisor::with_retries`]); a check cut short by
//!   *cancellation* is never retried, because the supervisor itself is
//!   being shut down;
//! * **deadline and cancellation plumbing** — each attempt receives the
//!   (escalated) [`Budget`] and the shared [`CancelToken`], which the
//!   engines poll from their inner loops.
//!
//! The crash path is testable on demand: the `supervisor.attempt`
//! failpoint (`kiss-fault`) sits inside the unwind boundary, so an
//! injected panic takes exactly the route a buggy engine would.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use kiss_obs::{CheckMetrics, Event, Obs};
use kiss_seq::{BoundReason, Budget, CancelToken};

use crate::checker::{CheckStats, KissOutcome};

/// Failpoint: one supervised attempt, inside `catch_unwind`.
const ATTEMPT_POINT: &str = "supervisor.attempt";

/// How a supervised check ended.
#[derive(Debug, Clone, PartialEq)]
pub enum Supervised {
    /// The check ran to a verdict (possibly still inconclusive after
    /// the whole escalation ladder).
    Completed(KissOutcome),
    /// The check panicked; the corpus run continues without it.
    Crashed {
        /// The panic payload, stringified.
        cause: String,
    },
}

impl Supervised {
    /// `true` for [`Supervised::Crashed`].
    pub fn is_crashed(&self) -> bool {
        matches!(self, Supervised::Crashed { .. })
    }
}

/// One supervised run: the final result plus attempt accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisedRun {
    /// The final result.
    pub result: Supervised,
    /// Attempts made (1 = no retry was needed or allowed).
    pub attempts: u32,
    /// The budget of the last attempt (base budget × 2^(attempts-1)
    /// unless the run crashed or was cancelled earlier).
    pub last_budget: Budget,
}

/// Runs check closures with panic isolation, cancellation, and a
/// bounded retry-with-escalation ladder.
#[derive(Debug, Clone)]
pub struct Supervisor {
    budget: Budget,
    retries: u32,
    cancel: CancelToken,
    obs: Obs,
    explore_jobs: usize,
}

impl Supervisor {
    /// A supervisor granting each check `budget`, with the default
    /// two-step escalation ladder (retry at 2× and 4×).
    pub fn new(budget: Budget) -> Self {
        Supervisor {
            budget,
            retries: 2,
            cancel: CancelToken::default(),
            obs: Obs::off(),
            explore_jobs: 1,
        }
    }

    /// Sets how many escalating retries an inconclusive check gets
    /// after its first attempt (0 disables retrying). Retry `i` runs
    /// under `budget.scaled(2^i)`.
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Shares a cancellation token with every attempt. Once cancelled,
    /// running checks wind down and no further attempts start.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Sets the worker-thread count each supervised check may use for
    /// a single BFS exploration (see
    /// [`Kiss::with_explore_jobs`](crate::checker::Kiss::with_explore_jobs)).
    /// Carried here so corpus harnesses thread one knob instead of a
    /// parallel argument through every call chain.
    pub fn with_explore_jobs(mut self, jobs: usize) -> Self {
        self.explore_jobs = jobs.max(1);
        self
    }

    /// The per-check exploration worker count (1 = serial).
    pub fn explore_jobs(&self) -> usize {
        self.explore_jobs
    }

    /// The base (unescalated) budget.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// The shared cancellation token.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Attaches an observer. [`Supervisor::run_scoped`] relabels it per
    /// check and emits lifecycle events (`check_started`,
    /// `retry_escalated`, `check_finished`) through it.
    pub fn with_observer(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The attached observer (disabled by default).
    pub fn observer(&self) -> &Obs {
        &self.obs
    }

    /// Runs `check` under supervision. The closure receives the budget
    /// for the current attempt and the shared cancellation token; it is
    /// called again with a scaled budget while it reports a *retryable*
    /// inconclusive outcome and the ladder is not exhausted.
    ///
    /// No events are emitted: callers that want the check's lifecycle
    /// observed use [`Supervisor::run_scoped`].
    pub fn run<F>(&self, mut check: F) -> SupervisedRun
    where
        F: FnMut(Budget, CancelToken) -> KissOutcome,
    {
        self.run_inner(&Obs::off(), |budget, cancel, _| check(budget, cancel))
    }

    /// Like [`Supervisor::run`], but relabels the attached observer
    /// with `label`, passes it to the closure (for
    /// [`crate::checker::Kiss::with_observer`]), and emits the check's
    /// lifecycle events around the attempts.
    pub fn run_scoped<F>(&self, label: &str, check: F) -> SupervisedRun
    where
        F: FnMut(Budget, CancelToken, &Obs) -> KissOutcome,
    {
        self.run_inner(&self.obs.with_label(label), check)
    }

    fn run_inner<F>(&self, obs: &Obs, mut check: F) -> SupervisedRun
    where
        F: FnMut(Budget, CancelToken, &Obs) -> KissOutcome,
    {
        obs.emit(|label| Event::CheckStarted { check: label.to_string() });
        let started = Instant::now();
        let mut attempts = 0u32;
        let mut budget = self.budget;
        loop {
            attempts += 1;
            if self.cancel.is_cancelled() {
                return self.finish(
                    obs,
                    started,
                    SupervisedRun {
                        result: Supervised::Completed(KissOutcome::Inconclusive {
                            stats: CheckStats::default(),
                            reason: BoundReason::Cancelled,
                        }),
                        attempts,
                        last_budget: budget,
                    },
                );
            }
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                // Failpoint inside the unwind boundary: an injected
                // panic exercises exactly the crash path a buggy engine
                // would take, surfacing as `Supervised::Crashed`.
                if let Some(action) = kiss_fault::hit(ATTEMPT_POINT) {
                    obs.emit(|_| Event::FaultInjected {
                        point: ATTEMPT_POINT.to_string(),
                        action: action.name().to_string(),
                    });
                    match action {
                        kiss_fault::Action::Error | kiss_fault::Action::Panic => {
                            panic!("kiss-fault: injected {} at {ATTEMPT_POINT}", action.name())
                        }
                        kiss_fault::Action::Delay(d) => std::thread::sleep(d),
                        kiss_fault::Action::Truncate(_) => {}
                    }
                }
                check(budget, self.cancel.clone(), obs)
            }));
            let outcome = match attempt {
                Ok(outcome) => outcome,
                Err(payload) => {
                    return self.finish(
                        obs,
                        started,
                        SupervisedRun {
                            result: Supervised::Crashed { cause: panic_cause(payload) },
                            attempts,
                            last_budget: budget,
                        },
                    )
                }
            };
            let retry_reason = match &outcome {
                KissOutcome::Inconclusive { reason, .. } if reason.retryable() => Some(*reason),
                _ => None,
            };
            if let Some(reason) = retry_reason {
                if attempts <= self.retries {
                    budget = budget.scaled(2);
                    obs.emit(|label| Event::RetryEscalated {
                        check: label.to_string(),
                        attempt: u64::from(attempts) + 1,
                        reason: reason.as_str().to_string(),
                    });
                    continue;
                }
            }
            return self.finish(
                obs,
                started,
                SupervisedRun {
                    result: Supervised::Completed(outcome),
                    attempts,
                    last_budget: budget,
                },
            );
        }
    }

    fn finish(&self, obs: &Obs, started: Instant, run: SupervisedRun) -> SupervisedRun {
        obs.emit(|label| Event::CheckFinished {
            metrics: metrics_for(label, &run, started.elapsed().as_millis() as u64),
        });
        run
    }
}

/// Builds the [`CheckMetrics`] record for one finished supervised run.
fn metrics_for(label: &str, run: &SupervisedRun, wall_ms: u64) -> CheckMetrics {
    let mut m = CheckMetrics {
        check: label.to_string(),
        wall_ms,
        retries: u64::from(run.attempts.saturating_sub(1)),
        ..CheckMetrics::default()
    };
    match &run.result {
        Supervised::Crashed { .. } => m.verdict = "crashed".to_string(),
        Supervised::Completed(outcome) => {
            m.verdict = outcome.verdict_str().to_string();
            if let KissOutcome::Inconclusive { reason, .. } = outcome {
                m.bound_reason = Some(reason.as_str().to_string());
            }
            if let Some(stats) = outcome.stats() {
                m.engine = stats.engine.name().to_string();
                m.steps = stats.seq.steps;
                m.states = stats.seq.states as u64;
                m.frontier_peak = stats.seq.frontier_peak as u64;
                m.states_stored = stats.seq.states_stored as u64;
                m.store_bytes = stats.seq.store_bytes as u64;
                m.summaries = stats.seq.summaries as u64;
                m.rounds = u64::from(stats.seq.rounds);
                m.speculative_steps = stats.seq.speculative_steps;
                m.product_states = stats.seq.product_states as u64;
                m.buchi_states = stats.seq.buchi_states as u64;
            }
        }
    }
    m
}

/// Stringifies a panic payload (`&str` and `String` payloads cover
/// everything `panic!` and `unwrap` produce).
fn panic_cause(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{CheckStats, Kiss};
    use kiss_seq::BoundReason;
    use std::time::Duration;

    fn small() -> Budget {
        Budget::steps_states(1_000, 100)
    }

    fn no_error() -> KissOutcome {
        KissOutcome::NoErrorFound(CheckStats::default())
    }

    fn inconclusive(reason: BoundReason) -> KissOutcome {
        KissOutcome::Inconclusive { stats: CheckStats::default(), reason }
    }

    #[test]
    fn clean_check_takes_one_attempt() {
        let run = Supervisor::new(small()).run(|_, _| no_error());
        assert_eq!(run.attempts, 1);
        assert_eq!(run.result, Supervised::Completed(no_error()));
        assert_eq!(run.last_budget, small());
    }

    #[test]
    fn escalation_ladder_doubles_then_caps() {
        let mut budgets = Vec::new();
        let run = Supervisor::new(small()).with_retries(2).run(|b, _| {
            budgets.push(b);
            inconclusive(BoundReason::Steps)
        });
        // 1×, 2×, 4× — then the ladder is exhausted.
        assert_eq!(run.attempts, 3);
        assert_eq!(budgets, vec![small(), small().scaled(2), small().scaled(4)]);
        assert_eq!(run.result, Supervised::Completed(inconclusive(BoundReason::Steps)));
        assert_eq!(run.last_budget, small().scaled(4));
    }

    #[test]
    fn zero_retries_disables_the_ladder() {
        let mut calls = 0;
        let run = Supervisor::new(small()).with_retries(0).run(|_, _| {
            calls += 1;
            inconclusive(BoundReason::States)
        });
        assert_eq!(run.attempts, 1);
        assert_eq!(calls, 1);
    }

    #[test]
    fn success_on_retry_stops_the_ladder() {
        let mut calls = 0;
        let run = Supervisor::new(small()).with_retries(2).run(|_, _| {
            calls += 1;
            if calls == 1 {
                inconclusive(BoundReason::Steps)
            } else {
                no_error()
            }
        });
        assert_eq!(run.attempts, 2);
        assert_eq!(run.result, Supervised::Completed(no_error()));
    }

    #[test]
    fn panicking_check_is_isolated_as_crashed() {
        let run = Supervisor::new(small()).run(|_, _| panic!("model exploded: field 7"));
        assert_eq!(run.attempts, 1);
        let Supervised::Crashed { cause } = run.result else { panic!("{:?}", run.result) };
        assert!(cause.contains("model exploded"), "{cause}");
    }

    #[test]
    fn formatted_panic_payloads_are_captured() {
        let field = 9;
        let run = Supervisor::new(small()).run(|_, _| panic!("bad field {field}"));
        let Supervised::Crashed { cause } = run.result else { panic!() };
        assert_eq!(cause, "bad field 9");
    }

    #[test]
    fn crashes_are_not_retried() {
        let mut calls = 0;
        let run = Supervisor::new(small()).with_retries(5).run(|_, _| {
            calls += 1;
            panic!("boom")
        });
        assert_eq!(calls, 1);
        assert_eq!(run.attempts, 1);
        assert!(run.result.is_crashed());
    }

    #[test]
    fn cancellation_is_not_retried() {
        let cancel = CancelToken::new();
        let mut calls = 0;
        let run = Supervisor::new(small()).with_retries(5).with_cancel(cancel.clone()).run(
            |_, token| {
                calls += 1;
                // Simulates an engine observing mid-check cancellation.
                cancel.cancel();
                assert!(token.is_cancelled());
                inconclusive(BoundReason::Cancelled)
            },
        );
        assert_eq!(calls, 1);
        assert_eq!(run.result, Supervised::Completed(inconclusive(BoundReason::Cancelled)));
    }

    #[test]
    fn pre_cancelled_supervisor_skips_the_check_entirely() {
        let cancel = CancelToken::new();
        cancel.cancel();
        let mut calls = 0;
        let run = Supervisor::new(small()).with_cancel(cancel).run(|_, _| {
            calls += 1;
            no_error()
        });
        assert_eq!(calls, 0);
        let Supervised::Completed(KissOutcome::Inconclusive { reason, .. }) = run.result else {
            panic!("{:?}", run.result);
        };
        assert_eq!(reason, BoundReason::Cancelled);
    }

    #[test]
    fn deadline_expiry_on_a_real_check_reports_deadline_through_the_ladder() {
        // A zero deadline stays zero under scaling, so every rung of
        // the ladder reports Deadline and the run ends inconclusive.
        let src = "
            int g;
            void spin() { iter { g = g + 1; } }
            void main() { async spin(); assert g >= 0; }
        ";
        let program = kiss_lang::parse_and_lower(src).unwrap();
        let budget = Budget::generous().with_deadline(Duration::ZERO);
        let run = Supervisor::new(budget)
            .with_retries(1)
            .run(|b, token| Kiss::new().with_budget(b).with_cancel(token).check_assertions(&program));
        assert_eq!(run.attempts, 2);
        let Supervised::Completed(KissOutcome::Inconclusive { reason, .. }) = run.result else {
            panic!("{:?}", run.result);
        };
        assert_eq!(reason, BoundReason::Deadline);
    }

    #[test]
    fn run_scoped_emits_lifecycle_events() {
        let agg = kiss_obs::Aggregator::new();
        let sup = Supervisor::new(small()).with_retries(1).with_observer(Obs::new(agg.clone()));
        let mut calls = 0;
        let run = sup.run_scoped("drv/0", |_, _, _| {
            calls += 1;
            if calls == 1 {
                inconclusive(BoundReason::Steps)
            } else {
                no_error()
            }
        });
        assert_eq!(run.attempts, 2);
        let counts = agg.event_counts();
        assert_eq!(counts.get("check_started"), Some(&1), "{counts:?}");
        assert_eq!(counts.get("retry_escalated"), Some(&1), "{counts:?}");
        assert_eq!(counts.get("check_finished"), Some(&1), "{counts:?}");
        let report = agg.report();
        assert_eq!(report.checks, 1);
        assert_eq!(report.retries, 1);
        assert_eq!(report.outcomes.get("pass"), Some(&1));
    }

    #[test]
    fn plain_run_emits_nothing() {
        let agg = kiss_obs::Aggregator::new();
        let sup = Supervisor::new(small()).with_observer(Obs::new(agg.clone()));
        sup.run(|_, _| no_error());
        assert!(agg.event_counts().is_empty());
    }

    #[test]
    fn escalation_resolves_a_genuinely_tight_budget() {
        // The check needs more steps than the base budget allows but
        // fits in 4×: the ladder turns inconclusive into a verdict.
        let src = "
            int g;
            void o() { g = 1; }
            void main() { async o(); assert g <= 1; }
        ";
        let program = kiss_lang::parse_and_lower(src).unwrap();
        let (_, full) = {
            let module = kiss_exec::Module::lower(
                crate::transform::transform(
                    &program,
                    &crate::transform::TransformConfig { max_ts: 0, race: None, alias_prune: true },
                )
                .unwrap()
                .program,
            );
            kiss_seq::ExplicitChecker::new(&module).check_with_stats()
        };
        // Base budget covers a quarter of the needed steps (rounded
        // up), so the first attempts trip and the 4× rung completes.
        let base = Budget::steps_states(full.steps.div_ceil(4), usize::MAX);
        let run = Supervisor::new(base)
            .with_retries(2)
            .run(|b, token| Kiss::new().with_budget(b).with_cancel(token).check_assertions(&program));
        let Supervised::Completed(outcome) = &run.result else { panic!("{:?}", run.result) };
        assert!(outcome.is_clean(), "{outcome:?}");
        assert!(run.attempts > 1, "base budget should have tripped at least once");
    }
}
