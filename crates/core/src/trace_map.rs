//! Back-mapping sequential error traces to concurrent executions.
//!
//! "An error trace produced by SLAM is transformed into an error trace
//! of the original concurrent program" (paper Section 1). The
//! sequential trace interleaves user statements with instrumentation;
//! this module reconstructs which *thread* of the original concurrent
//! program performs each user statement, by replaying the scheduler
//! structure the transformation encodes:
//!
//! * thread ids are assigned in fork order (matching `kiss-conc`'s
//!   numbering): a store into a `__tsN_fn` slot or an inline
//!   `ts`-full call registers a fork;
//! * a call with [`Origin::ThreadStart`] begins executing a thread: the
//!   one from the slot `__schedule` just popped, or the just-forked
//!   inline thread;
//! * when the call that started a thread returns (tracked by call
//!   depth), the thread's block is over and control returns to the
//!   preempted thread below it — the stack discipline of balanced
//!   executions.

use std::collections::HashMap;

use kiss_exec::{Instr, Module};
use kiss_lang::hir::{Const, GlobalId, Operand, Origin, Place, Rvalue, VarRef};
use kiss_lang::Span;
use kiss_seq::{ErrorTrace, TraceStep};

use crate::transform::Transformed;

/// One step of the reconstructed concurrent execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MappedStep {
    /// The thread performing the action (0 = the main thread).
    pub tid: u32,
    /// Source span of the original statement.
    pub span: Span,
}

/// The reconstructed concurrent error trace.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MappedTrace {
    /// Original-program actions with their thread attribution.
    pub steps: Vec<MappedStep>,
    /// The schedule string (one tid per step).
    pub schedule: Vec<u32>,
    /// The collapsed schedule (context-switch pattern), suitable for
    /// `kiss_conc::ScheduleMode::Pattern` validation.
    pub pattern: Vec<u32>,
    /// Number of context switches in the schedule.
    pub context_switches: usize,
    /// Total number of threads involved.
    pub thread_count: u32,
}

impl MappedTrace {
    fn push(&mut self, tid: u32, span: Span) {
        self.steps.push(MappedStep { tid, span });
        if self.pattern.last() != Some(&tid) {
            self.pattern.push(tid);
        }
        self.schedule.push(tid);
    }
}

/// Reconstructs the concurrent trace from a sequential error trace
/// over the *transformed* module.
pub fn map_trace(module: &Module, info: &Transformed, trace: &ErrorTrace) -> MappedTrace {
    let slot_of_fn_global: HashMap<GlobalId, usize> =
        info.ts_slots.iter().enumerate().map(|(i, s)| (s.fn_g, i)).collect();

    let mut out = MappedTrace::default();
    // The active-thread stack: main is thread 0.
    let mut active: Vec<u32> = vec![0];
    // For each active thread above main: the call depth of its root
    // frame.
    let mut markers: Vec<usize> = Vec::new();
    let mut depth: usize = 1; // __kiss_main's frame
    let mut slot_tid: HashMap<usize, u32> = HashMap::new();
    let mut pending_slot: Option<usize> = None;
    let mut next_tid: u32 = 1;

    for step in &trace.steps {
        let instr = &module.body(step.func).instrs[step.pc];
        let top = *active.last().expect("main never pops");

        // User statements map 1:1 onto concurrent actions.
        if step.origin.is_user() && !instr.is_silent() {
            out.push(top, step.span);
        }

        match instr {
            Instr::Assign(Place::Var(VarRef::Global(g)), rv) => {
                if let Some(&slot) = slot_of_fn_global.get(g) {
                    match rv {
                        // A put: the async registered a pending thread.
                        Rvalue::Operand(op) if !matches!(op, Operand::Const(Const::Null)) => {
                            slot_tid.insert(slot, next_tid);
                            next_tid += 1;
                            // The fork itself is an action of the
                            // forking thread.
                            out.push(top, step.span);
                        }
                        _ => {} // slot clear / harness init
                    }
                }
            }
            Instr::Assign(Place::Var(VarRef::Local(_)), Rvalue::Operand(Operand::Var(VarRef::Global(g))))
                if step.origin == Origin::Sched =>
            {
                // `__f = __tsN_fn` inside __schedule: remember which
                // pending thread is about to start.
                if let Some(&slot) = slot_of_fn_global.get(g) {
                    pending_slot = Some(slot);
                }
            }
            Instr::Call { .. } => {
                depth += 1;
                if step.origin == Origin::ThreadStart {
                    let tid = match pending_slot.take() {
                        Some(slot) => slot_tid.get(&slot).copied().unwrap_or_else(|| {
                            let t = next_tid;
                            next_tid += 1;
                            t
                        }),
                        None => {
                            // Inline (ts-full) fork: fork and start at
                            // once; the fork is the forker's action.
                            let t = next_tid;
                            next_tid += 1;
                            out.push(top, step.span);
                            t
                        }
                    };
                    active.push(tid);
                    markers.push(depth);
                }
            }
            Instr::Return(_) => {
                if markers.last() == Some(&depth) {
                    markers.pop();
                    active.pop();
                }
                depth = depth.saturating_sub(1);
            }
            _ => {}
        }
    }

    out.context_switches = out.schedule.windows(2).filter(|w| w[0] != w[1]).count();
    out.thread_count = next_tid.max(1);
    out
}

/// Extracts the two access sites of a detected race: the first access
/// (recorded in `__access_site` at the failure state) and the second,
/// failing access (the last check call in the trace).
pub fn race_sites(
    module: &Module,
    info: &Transformed,
    trace: &ErrorTrace,
) -> Option<(crate::transform::RaceSite, crate::transform::RaceSite)> {
    let site_global = info.access_site?;
    let first_idx = match trace.globals.get(site_global.0 as usize)? {
        kiss_exec::Value::Int(n) if *n >= 0 => *n as usize,
        _ => return None,
    };
    let first = *info.race_sites.get(first_idx)?;
    // The failing access: the last Check-origin call in the trace.
    let second = trace.steps.iter().rev().find_map(|s: &TraceStep| {
        if s.origin != Origin::Check {
            return None;
        }
        match &module.body(s.func).instrs[s.pc] {
            Instr::Call { args, .. } => match args.get(1) {
                Some(Operand::Const(Const::Int(site))) if *site >= 0 => {
                    info.race_sites.get(*site as usize).copied()
                }
                _ => None,
            },
            _ => None,
        }
    })?;
    Some((first, second))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::{transform, TransformConfig};
    use kiss_seq::{ExplicitChecker, Verdict};

    fn fail_trace(src: &str, cfg: &TransformConfig) -> (Module, Transformed, ErrorTrace) {
        let p = kiss_lang::parse_and_lower(src).unwrap();
        let t = transform(&p, cfg).unwrap();
        let module = Module::lower(t.program.clone());
        let v = ExplicitChecker::new(&module).check();
        let Verdict::Fail(trace) = v else { panic!("expected failure, got {v:?}") };
        (module, t, trace)
    }

    #[test]
    fn inline_fork_maps_to_two_threads() {
        let src = "
            int g;
            void other() { g = 1; }
            void main() { async other(); assert g == 0; }
        ";
        let (module, info, trace) =
            fail_trace(src, &TransformConfig { max_ts: 0, ..Default::default() });
        let mapped = map_trace(&module, &info, &trace);
        assert_eq!(mapped.thread_count, 2);
        // The failing execution runs thread 1 inline between main's
        // fork and assert: pattern 0,1,0.
        assert_eq!(mapped.pattern, vec![0, 1, 0]);
        assert_eq!(mapped.context_switches, 2);
        assert!(kiss_conc::is_balanced(&mapped.schedule));
    }

    #[test]
    fn slot_fork_maps_to_deferred_thread() {
        // With MAX=1 the thread can be deferred; the bug requires it to
        // run after main's assignment.
        let src = "
            int g;
            void other() { assert g == 1; }
            void main() { async other(); g = 1; }
        ";
        let (module, info, trace) =
            fail_trace(src, &TransformConfig { max_ts: 1, ..Default::default() });
        // Wait: other asserts g == 1; failing requires other to run
        // while g == 0 — i.e. immediately. Either way we get a mapped
        // trace with two threads and a balanced schedule.
        let mapped = map_trace(&module, &info, &trace);
        assert_eq!(mapped.thread_count, 2);
        assert!(kiss_conc::is_balanced(&mapped.schedule), "{:?}", mapped.schedule);
    }

    #[test]
    fn mapped_steps_carry_source_spans() {
        let src = "
            int g;
            void other() { g = 1; }
            void main() { async other(); assert g == 0; }
        ";
        let (module, info, trace) =
            fail_trace(src, &TransformConfig { max_ts: 0, ..Default::default() });
        let mapped = map_trace(&module, &info, &trace);
        // All steps except implicit end-of-function returns carry real
        // source spans.
        assert!(mapped.steps.iter().filter(|s| !s.span.is_synthetic()).count() >= 3);
        // The last step is main's assert, with a real location.
        let last = mapped.steps.last().unwrap();
        assert_eq!(last.tid, 0);
        assert!(!last.span.is_synthetic());
    }

    #[test]
    fn race_sites_are_recovered() {
        let src = "
            int r;
            void w1() { r = 1; }
            void main() { async w1(); r = 2; }
        ";
        let p = kiss_lang::parse_and_lower(src).unwrap();
        let target = crate::transform::RaceTarget::resolve(&p, "r").unwrap();
        let (module, info, trace) = fail_trace(
            src,
            &TransformConfig { max_ts: 0, race: Some(target), alias_prune: true },
        );
        let (first, second) = race_sites(&module, &info, &trace).expect("race sites");
        assert!(first.is_write);
        assert!(second.is_write);
        assert_ne!(first.span, second.span, "the two accesses are distinct statements");
    }

    #[test]
    fn schedule_pattern_validates_against_concurrent_explorer() {
        // End-to-end "never reports false errors": the mapped schedule
        // pattern must reproduce the failure in the *original*
        // concurrent program.
        let src = "
            int g;
            void other() { g = 1; }
            void main() { async other(); assert g == 0; }
        ";
        let (module, info, trace) =
            fail_trace(src, &TransformConfig { max_ts: 0, ..Default::default() });
        let mapped = map_trace(&module, &info, &trace);
        let orig = Module::lower(kiss_lang::parse_and_lower(src).unwrap());
        let v = kiss_conc::Explorer::new(&orig)
            .with_mode(kiss_conc::ScheduleMode::Pattern(mapped.pattern.clone()))
            .check();
        assert!(v.is_fail(), "mapped pattern {:?} must reproduce the bug: {v:?}", mapped.pattern);
    }
}

#[cfg(test)]
mod multi_slot_tests {
    use super::*;
    use crate::transform::{transform, TransformConfig};
    use kiss_seq::{ExplicitChecker, Verdict};

    /// With two slots and two forked threads, the mapped trace must
    /// attribute actions to three distinct threads and stay balanced.
    #[test]
    fn two_pending_threads_map_to_distinct_tids() {
        let src = "
            int a;
            int b;
            void w1() { a = 1; }
            void w2() { b = 1; }
            void main() {
                async w1();
                async w2();
                assert a + b < 2;
            }
        ";
        let p = kiss_lang::parse_and_lower(src).unwrap();
        let t = transform(&p, &TransformConfig { max_ts: 2, ..Default::default() }).unwrap();
        let module = Module::lower(t.program.clone());
        let Verdict::Fail(trace) = ExplicitChecker::new(&module).check() else {
            panic!("a + b reaches 2 when both threads run");
        };
        let mapped = map_trace(&module, &t, &trace);
        assert_eq!(mapped.thread_count, 3, "{mapped:?}");
        assert!(kiss_conc::is_balanced(&mapped.schedule), "{:?}", mapped.schedule);
        // Replay the pattern on the original program.
        let orig = Module::lower(p);
        let v = kiss_conc::Explorer::new(&orig)
            .with_mode(kiss_conc::ScheduleMode::Pattern(mapped.pattern.clone()))
            .check();
        assert!(v.is_fail(), "pattern {:?} must reproduce: {v:?}", mapped.pattern);
    }
}
