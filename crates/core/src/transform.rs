//! The KISS source-to-source transformation (paper Section 4 and 5).
//!
//! Given a concurrent core-IR program, produces a *sequential* program
//! `Check(s)` that simulates the concurrent program's stack-disciplined
//! (balanced) executions:
//!
//! * a fresh global `__raise`, plus a `RAISE` (`__raise = true; return`)
//!   branch inserted nondeterministically before statements, lets the
//!   simulation terminate a thread at any point; `if (__raise) return`
//!   after every call propagates the unwinding;
//! * the multiset `ts` of forked-but-unscheduled threads is encoded as
//!   `MAX` triples of fresh globals (`__tsN_fn`, `__tsN_argc`,
//!   `__tsN_argJ`); `async f(a)` stores into the first free slot or —
//!   when full — calls `f` inline (running the forked thread to
//!   completion at the fork point, which is itself balanced);
//! * a generated `__schedule()` pops and runs a nondeterministically
//!   chosen number of pending threads, resetting `__raise` after each;
//!   it is invoked before every statement and once more at the end of
//!   `Check(s)`;
//! * in race mode (Figure 5), a fresh global `__access` ∈ {0,1,2} and
//!   generated `__check_r`/`__check_w` functions record accesses to the
//!   distinguished location and assert the absence of read/write and
//!   write/write conflicts; each check is followed by `RAISE` so a
//!   conflict is only ever reported *across* two simulated threads.
//!   A unification alias analysis (`kiss-alias`) prunes checks that
//!   cannot touch the distinguished location.

use kiss_alias::{AbsLoc, AliasAnalysis};
use kiss_lang::build::{self, FnBuilder};
use kiss_lang::hir::{
    BinOp, CallTarget, Cond, Const, FuncDef, FuncId, GlobalDef, GlobalId, LocalId, Operand, Origin,
    Place, Program, Rvalue, Stmt, StmtKind, StructId, VarRef,
};
use kiss_lang::Span;

/// The distinguished location checked for races.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaceTarget {
    /// A global variable `r`.
    Global(GlobalId),
    /// Field `field` of the *first allocated* instance of a struct —
    /// the device-extension idiom of the paper's driver experiments.
    Field(StructId, u32),
}

impl RaceTarget {
    /// Resolves a `"struct.field"` or `"global"` spec against a
    /// program.
    pub fn resolve(program: &Program, spec: &str) -> Option<RaceTarget> {
        if let Some((sname, fname)) = spec.split_once('.') {
            let sid = program.struct_by_name(sname)?;
            let fidx = program.structs[sid.0 as usize].field_index(fname)?;
            Some(RaceTarget::Field(sid, fidx))
        } else {
            program.global_by_name(spec).map(RaceTarget::Global)
        }
    }

    fn abs_loc(&self) -> AbsLoc {
        match self {
            RaceTarget::Global(g) => AbsLoc::Global(*g),
            RaceTarget::Field(s, f) => AbsLoc::Field(*s, *f),
        }
    }
}

/// Transformation options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransformConfig {
    /// `MAX`, the bound on the `ts` multiset. The paper uses 0 for the
    /// driver race experiments and 1 for the Bluetooth assertion bug.
    pub max_ts: usize,
    /// `Some(target)` selects the race instrumentation of Figure 5.
    pub race: Option<RaceTarget>,
    /// Use the alias analysis to prune race checks (paper Section 5).
    pub alias_prune: bool,
}

impl Default for TransformConfig {
    fn default() -> Self {
        TransformConfig { max_ts: 0, race: None, alias_prune: true }
    }
}

/// Errors the transformation can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransformError {
    /// The program already defines a name the transformation needs.
    NameCollision(String),
    /// `malloc` of the race-target struct stores to a non-variable
    /// destination; the address of the distinguished field cannot be
    /// registered.
    UnsupportedMallocDest,
}

impl std::fmt::Display for TransformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransformError::NameCollision(n) => {
                write!(f, "program already defines reserved name `{n}`")
            }
            TransformError::UnsupportedMallocDest => {
                write!(f, "malloc of the race-target struct must assign to a plain variable")
            }
        }
    }
}

impl std::error::Error for TransformError {}

/// One encoded `ts` slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TsSlot {
    /// Global holding the pending thread's start function (null =
    /// empty).
    pub fn_g: GlobalId,
    /// Global holding the stored argument count.
    pub argc_g: GlobalId,
    /// Globals holding the stored arguments.
    pub args_g: Vec<GlobalId>,
}

/// One instrumented access site (race mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaceSite {
    /// Source span of the accessing statement.
    pub span: Span,
    /// Whether the access is a write.
    pub is_write: bool,
}

/// The transformation's output.
#[derive(Debug, Clone)]
pub struct Transformed {
    /// The sequential program `Check(s)`.
    pub program: Program,
    /// The generated entry point (`Check`'s body).
    pub entry: FuncId,
    /// The original (now transformed in place) `main`.
    pub orig_main: FuncId,
    /// The generated scheduler, if `max_ts > 0`.
    pub schedule: Option<FuncId>,
    /// Generated `check_r`, in race mode.
    pub check_r: Option<FuncId>,
    /// Generated `check_w`, in race mode.
    pub check_w: Option<FuncId>,
    /// The `__raise` global.
    pub raise: GlobalId,
    /// The `__access` global, in race mode.
    pub access: Option<GlobalId>,
    /// The `__race_addr` global, in race mode.
    pub race_addr: Option<GlobalId>,
    /// The `__access_site` global recording which site performed the
    /// first access, in race mode.
    pub access_site: Option<GlobalId>,
    /// Table of race-check sites, indexed by the site id passed to the
    /// check functions.
    pub race_sites: Vec<RaceSite>,
    /// Encoded `ts` slots.
    pub ts_slots: Vec<TsSlot>,
    /// The configuration used.
    pub config: TransformConfig,
    /// Number of race checks emitted / pruned by the alias analysis.
    pub checks_emitted: usize,
    /// Number of candidate checks removed by pruning.
    pub checks_pruned: usize,
}

/// Runs the transformation.
///
/// # Errors
///
/// Fails on reserved-name collisions and unregistrable race targets
/// (see [`TransformError`]).
pub fn transform(program: &Program, config: &TransformConfig) -> Result<Transformed, TransformError> {
    let mut p = program.clone();
    let user_funcs = p.funcs.len();

    // --- reserved names -------------------------------------------------
    let mut reserved: Vec<String> =
        vec!["__raise".into(), "__access".into(), "__race_addr".into(), "__access_site".into()];
    for i in 0..config.max_ts {
        reserved.push(format!("__ts{i}_fn"));
        reserved.push(format!("__ts{i}_argc"));
    }
    for name in ["__schedule", "__check_r", "__check_w", "__kiss_main"] {
        if p.func_by_name(name).is_some() {
            return Err(TransformError::NameCollision(name.into()));
        }
    }
    for name in &reserved {
        if p.global_by_name(name).is_some() {
            return Err(TransformError::NameCollision(name.clone()));
        }
    }

    // --- async arity inventory -------------------------------------------
    let mut arities: Vec<usize> = Vec::new();
    for f in &p.funcs {
        collect_arities(&f.body, &mut arities);
    }
    arities.sort_unstable();
    arities.dedup();
    let max_arity = arities.last().copied().unwrap_or(0);

    // --- fresh globals ----------------------------------------------------
    let raise = p.add_global(GlobalDef {
        name: "__raise".into(),
        ty: None,
        init: Some(Const::Bool(false)),
    });
    let mut ts_slots = Vec::with_capacity(config.max_ts);
    for i in 0..config.max_ts {
        let fn_g = p.add_global(GlobalDef {
            name: format!("__ts{i}_fn"),
            ty: None,
            init: Some(Const::Null),
        });
        let argc_g = p.add_global(GlobalDef {
            name: format!("__ts{i}_argc"),
            ty: None,
            init: Some(Const::Int(0)),
        });
        let args_g = (0..max_arity)
            .map(|j| {
                p.add_global(GlobalDef {
                    name: format!("__ts{i}_arg{j}"),
                    ty: None,
                    init: Some(Const::Null),
                })
            })
            .collect();
        ts_slots.push(TsSlot { fn_g, argc_g, args_g });
    }
    let (access, race_addr, access_site) = if config.race.is_some() {
        (
            Some(p.add_global(GlobalDef {
                name: "__access".into(),
                ty: None,
                init: Some(Const::Int(0)),
            })),
            Some(p.add_global(GlobalDef {
                name: "__race_addr".into(),
                ty: None,
                init: Some(Const::Null),
            })),
            Some(p.add_global(GlobalDef {
                name: "__access_site".into(),
                ty: None,
                init: Some(Const::Int(-1)),
            })),
        )
    } else {
        (None, None, None)
    };

    // --- function ids of the generated runtime ----------------------------
    let mut next_fid = user_funcs as u32;
    let schedule = if config.max_ts > 0 {
        let id = FuncId(next_fid);
        next_fid += 1;
        Some(id)
    } else {
        None
    };
    let (check_r, check_w) = if config.race.is_some() {
        let r = FuncId(next_fid);
        let w = FuncId(next_fid + 1);
        next_fid += 2;
        (Some(r), Some(w))
    } else {
        (None, None)
    };
    let entry = FuncId(next_fid);

    // --- alias analysis for pruning ---------------------------------------
    let alias = match (&config.race, config.alias_prune) {
        (Some(_), true) => Some(AliasAnalysis::run(program)),
        _ => None,
    };

    // --- instrument user functions in place --------------------------------
    let mut instr = Instrumenter {
        config: config.clone(),
        schedule,
        check_r,
        check_w,
        raise,
        race_addr,
        ts_slots: &ts_slots,
        alias,
        race_sites: Vec::new(),
        checks_emitted: 0,
        checks_pruned: 0,
        cur_func: FuncId(0),
    };
    for i in 0..user_funcs {
        instr.cur_func = FuncId(i as u32);
        let body = p.funcs[i].body.clone();
        let mut temps = TempAlloc { def: &mut p.funcs[i] };
        let new_body = instr.stmt(&mut temps, &body)?;
        p.funcs[i].body = new_body;
    }
    let checks_emitted = instr.checks_emitted;
    let checks_pruned = instr.checks_pruned;
    let race_sites = std::mem::take(&mut instr.race_sites);

    // --- generated runtime --------------------------------------------------
    if let Some(sched_id) = schedule {
        let def = gen_schedule(&ts_slots, &arities, raise, max_arity);
        let got = p.add_func(def);
        debug_assert_eq!(got, sched_id);
    }
    if let (Some(r_id), Some(w_id), Some(access), Some(race_addr), Some(access_site)) =
        (check_r, check_w, access, race_addr, access_site)
    {
        let got = p.add_func(gen_check(true, access, race_addr, access_site));
        debug_assert_eq!(got, r_id);
        let got = p.add_func(gen_check(false, access, race_addr, access_site));
        debug_assert_eq!(got, w_id);
    }

    // --- Check(s) entry point -------------------------------------------------
    let orig_main = p.main;
    let mut b = FnBuilder::new("__kiss_main", &[], false);
    b.origin(Origin::Harness);
    b.set(build::g(raise), build::boolean(false));
    for slot in &ts_slots {
        b.set(build::g(slot.fn_g), build::null());
        b.set(build::g(slot.argc_g), build::int(0));
        for &a in &slot.args_g {
            b.set(build::g(a), build::null());
        }
    }
    if let (Some(access), Some(race_addr)) = (access, race_addr) {
        b.set(build::g(access), build::int(0));
        match config.race {
            Some(RaceTarget::Global(g)) => {
                b.assign(Place::Var(VarRef::Global(race_addr)), Rvalue::AddrOf(VarRef::Global(g)));
            }
            _ => {
                b.set(build::g(race_addr), build::null());
            }
        }
    }
    b.call(None, CallTarget::Direct(orig_main), vec![]);
    b.set(build::g(raise), build::boolean(false));
    if let Some(sched_id) = schedule {
        b.call(None, CallTarget::Direct(sched_id), vec![]);
    }
    let got = p.add_func(b.finish());
    debug_assert_eq!(got, entry);
    p.main = entry;

    Ok(Transformed {
        program: p,
        entry,
        orig_main,
        schedule,
        check_r,
        check_w,
        raise,
        access,
        race_addr,
        access_site,
        race_sites,
        ts_slots,
        config: config.clone(),
        checks_emitted,
        checks_pruned,
    })
}

fn collect_arities(s: &Stmt, out: &mut Vec<usize>) {
    match &s.kind {
        StmtKind::Async { args, .. } => out.push(args.len()),
        StmtKind::Seq(ss) | StmtKind::Choice(ss) => ss.iter().for_each(|s| collect_arities(s, out)),
        StmtKind::Atomic(b) | StmtKind::Iter(b) => collect_arities(b, out),
        _ => {}
    }
}

/// Lazily allocates instrumentation temporaries on a function.
struct TempAlloc<'a> {
    def: &'a mut FuncDef,
}

impl TempAlloc<'_> {
    fn fresh(&mut self) -> LocalId {
        self.def.fresh_local("__k")
    }
}

/// A memory access performed by a statement, as an address expression
/// the check functions can receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AddrExpr {
    /// `&v` — the variable's own cell.
    OfVar(VarRef),
    /// The address *stored in* `v` (a `*v` access).
    ValOf(VarRef),
    /// `&v->f`.
    OfField(VarRef, StructId, u32),
}

struct Instrumenter<'p> {
    config: TransformConfig,
    schedule: Option<FuncId>,
    check_r: Option<FuncId>,
    check_w: Option<FuncId>,
    raise: GlobalId,
    race_addr: Option<GlobalId>,
    ts_slots: &'p [TsSlot],
    alias: Option<AliasAnalysis>,
    race_sites: Vec<RaceSite>,
    checks_emitted: usize,
    checks_pruned: usize,
    cur_func: FuncId,
}

impl Instrumenter<'_> {
    /// `RAISE` = `__raise = true; return`.
    fn raise_stmt(&self) -> Stmt {
        Stmt::synth(
            StmtKind::Seq(vec![
                Stmt::synth(
                    StmtKind::Assign(
                        Place::Var(VarRef::Global(self.raise)),
                        Rvalue::Operand(Operand::Const(Const::Bool(true))),
                    ),
                    Origin::Raise,
                ),
                Stmt::synth(StmtKind::Return(None), Origin::Raise),
            ]),
            Origin::Raise,
        )
    }

    /// The `schedule()` call, when `MAX > 0`.
    fn sched_call(&self) -> Option<Stmt> {
        self.schedule.map(|f| {
            Stmt::synth(
                StmtKind::Call { dest: None, target: CallTarget::Direct(f), args: vec![] },
                Origin::Sched,
            )
        })
    }

    /// The prologue placed before a statement: `schedule();` followed by
    /// the nondeterministic choice between `skip`, `RAISE` (assertion
    /// mode) and per-access `check; RAISE` branches (race mode).
    fn prologue(&mut self, temps: &mut TempAlloc<'_>, s: &Stmt, with_accesses: bool) -> Vec<Stmt> {
        let mut out = Vec::new();
        if let Some(call) = self.sched_call() {
            out.push(call);
        }
        let mut branches = vec![Stmt::synth(StmtKind::Skip, Origin::RaiseChoice)];
        // `benign`-annotated accesses are exempt from race checks (the
        // paper's future-work annotation); they keep the plain RAISE.
        let benign = s.origin == Origin::UserBenign;
        if self.config.race.is_some() && with_accesses && !benign {
            // Figure 5: the plain RAISE branch is replaced by one
            // branch per (unpruned) access.
            for (is_write, addr) in self.accesses(&s.kind) {
                if !self.access_may_touch(&addr) {
                    self.checks_pruned += 1;
                    continue;
                }
                self.checks_emitted += 1;
                branches.push(self.check_branch(temps, is_write, addr, s.span));
            }
        } else {
            branches.push(self.raise_stmt());
        }
        let mut choice = Stmt::synth(StmtKind::Choice(branches), Origin::RaiseChoice);
        choice.span = s.span;
        out.push(choice);
        out
    }

    /// In race mode without pruning, every access is kept; with
    /// pruning, only those the alias analysis cannot rule out.
    fn access_may_touch(&mut self, addr: &AddrExpr) -> bool {
        let Some(target) = self.config.race else { return false };
        let Some(alias) = self.alias.as_mut() else { return true };
        let t = target.abs_loc();
        match addr {
            AddrExpr::OfVar(v) => alias.var_cell_is(self.cur_func, *v, t),
            AddrExpr::ValOf(v) => alias.deref_may_touch(self.cur_func, *v, t),
            AddrExpr::OfField(_, sid, fidx) => alias.field_may_touch(*sid, *fidx, t),
        }
    }

    /// One `check_{r,w}(addr, site); RAISE` branch.
    fn check_branch(&mut self, temps: &mut TempAlloc<'_>, is_write: bool, addr: AddrExpr, span: Span) -> Stmt {
        let check = if is_write { self.check_w } else { self.check_r }.expect("race mode");
        let site = self.race_sites.len() as i64;
        self.race_sites.push(RaceSite { span, is_write });
        let mut stmts = Vec::new();
        let arg: Operand = match addr {
            AddrExpr::ValOf(v) => Operand::Var(v),
            AddrExpr::OfVar(v) => {
                let t = temps.fresh();
                stmts.push(Stmt {
                    kind: StmtKind::Assign(Place::Var(VarRef::Local(t)), Rvalue::AddrOf(v)),
                    span,
                    origin: Origin::Check,
                });
                Operand::Var(VarRef::Local(t))
            }
            AddrExpr::OfField(v, sid, fidx) => {
                let t = temps.fresh();
                stmts.push(Stmt {
                    kind: StmtKind::Assign(
                        Place::Var(VarRef::Local(t)),
                        Rvalue::AddrOfField(v, sid, fidx),
                    ),
                    span,
                    origin: Origin::Check,
                });
                Operand::Var(VarRef::Local(t))
            }
        };
        stmts.push(Stmt {
            kind: StmtKind::Call {
                dest: None,
                target: CallTarget::Direct(check),
                args: vec![arg, Operand::Const(Const::Int(site))],
            },
            span,
            origin: Origin::Check,
        });
        stmts.push(self.raise_stmt());
        Stmt { kind: StmtKind::Seq(stmts), span, origin: Origin::Check }
    }

    /// The reads and writes a simple statement performs, in the style
    /// of Figure 5.
    fn accesses(&self, kind: &StmtKind) -> Vec<(bool, AddrExpr)> {
        let mut out: Vec<(bool, AddrExpr)> = Vec::new();
        let read = |a: AddrExpr, out: &mut Vec<(bool, AddrExpr)>| out.push((false, a));
        let read_operand = |op: &Operand, out: &mut Vec<(bool, AddrExpr)>| {
            if let Operand::Var(v) = op {
                out.push((false, AddrExpr::OfVar(*v)));
            }
        };
        match kind {
            StmtKind::Assign(place, rv) => {
                match rv {
                    Rvalue::Operand(op) => read_operand(op, &mut out),
                    Rvalue::Load(p) => match p {
                        Place::Var(v) => read(AddrExpr::OfVar(*v), &mut out),
                        Place::Deref(v) => {
                            read(AddrExpr::OfVar(*v), &mut out);
                            read(AddrExpr::ValOf(*v), &mut out);
                        }
                        Place::Field(v, sid, f) => {
                            read(AddrExpr::OfVar(*v), &mut out);
                            read(AddrExpr::OfField(*v, *sid, *f), &mut out);
                        }
                    },
                    Rvalue::AddrOf(_) => {}
                    Rvalue::AddrOfField(v, _, _) => read(AddrExpr::OfVar(*v), &mut out),
                    Rvalue::BinOp(_, a, b) => {
                        read_operand(a, &mut out);
                        read_operand(b, &mut out);
                    }
                    Rvalue::UnOp(_, a) => read_operand(a, &mut out),
                    Rvalue::Malloc(_) => {}
                }
                match place {
                    Place::Var(v) => out.push((true, AddrExpr::OfVar(*v))),
                    Place::Deref(v) => {
                        read(AddrExpr::OfVar(*v), &mut out);
                        out.push((true, AddrExpr::ValOf(*v)));
                    }
                    Place::Field(v, sid, f) => {
                        read(AddrExpr::OfVar(*v), &mut out);
                        out.push((true, AddrExpr::OfField(*v, *sid, *f)));
                    }
                }
            }
            StmtKind::Assert(c) | StmtKind::Assume(c) => read(AddrExpr::OfVar(c.var), &mut out),
            StmtKind::Call { dest, target, args } => {
                if let CallTarget::Indirect(v) = target {
                    read(AddrExpr::OfVar(*v), &mut out);
                }
                for a in args {
                    read_operand(a, &mut out);
                }
                if let Some(place) = dest {
                    match place {
                        Place::Var(v) => out.push((true, AddrExpr::OfVar(*v))),
                        Place::Deref(v) => {
                            read(AddrExpr::OfVar(*v), &mut out);
                            out.push((true, AddrExpr::ValOf(*v)));
                        }
                        Place::Field(v, sid, f) => {
                            read(AddrExpr::OfVar(*v), &mut out);
                            out.push((true, AddrExpr::OfField(*v, *sid, *f)));
                        }
                    }
                }
            }
            StmtKind::Async { target, args } => {
                if let CallTarget::Indirect(v) = target {
                    read(AddrExpr::OfVar(*v), &mut out);
                }
                for a in args {
                    read_operand(a, &mut out);
                }
            }
            _ => {}
        }
        out
    }

    /// `if (__raise) return` after a synchronous call.
    fn raise_propagation(&self) -> Stmt {
        let raise = VarRef::Global(self.raise);
        Stmt::synth(
            StmtKind::Choice(vec![
                Stmt::synth(
                    StmtKind::Seq(vec![
                        Stmt::synth(StmtKind::Assume(Cond::pos(raise)), Origin::RaisePropagate),
                        Stmt::synth(StmtKind::Return(None), Origin::RaisePropagate),
                    ]),
                    Origin::RaisePropagate,
                ),
                Stmt::synth(StmtKind::Assume(Cond::neg(raise)), Origin::RaisePropagate),
            ]),
            Origin::RaisePropagate,
        )
    }

    /// The `[[·]]` translation of one statement.
    fn stmt(&mut self, temps: &mut TempAlloc<'_>, s: &Stmt) -> Result<Stmt, TransformError> {
        let out = match &s.kind {
            // Synthetic skips (empty branches) carry no behaviour worth
            // a scheduling point.
            StmtKind::Skip => s.clone(),
            StmtKind::Seq(ss) => {
                let mut v = Vec::with_capacity(ss.len());
                for inner in ss {
                    v.push(self.stmt(temps, inner)?);
                }
                Stmt { kind: StmtKind::Seq(v), span: s.span, origin: s.origin }
            }
            StmtKind::Choice(ss) => {
                let mut v = Vec::with_capacity(ss.len());
                for inner in ss {
                    v.push(self.stmt(temps, inner)?);
                }
                Stmt { kind: StmtKind::Choice(v), span: s.span, origin: s.origin }
            }
            StmtKind::Iter(b) => {
                let inner = self.stmt(temps, b)?;
                Stmt { kind: StmtKind::Iter(Box::new(inner)), span: s.span, origin: s.origin }
            }
            StmtKind::Assign(..) | StmtKind::Assert(_) | StmtKind::Assume(_) => {
                let mut v = self.prologue(temps, s, true);
                v.push(s.clone());
                // Race mode: register the distinguished field's address
                // at the first allocation of the target struct.
                if let (StmtKind::Assign(place, Rvalue::Malloc(sid)), Some(RaceTarget::Field(ts, tf))) =
                    (&s.kind, self.config.race)
                {
                    if *sid == ts {
                        let Place::Var(dest) = place else {
                            return Err(TransformError::UnsupportedMallocDest);
                        };
                        v.push(self.register_race_addr(temps, *dest, ts, tf, s.span));
                    }
                }
                Stmt { kind: StmtKind::Seq(v), span: s.span, origin: s.origin }
            }
            StmtKind::Atomic(b) => {
                // Figure 4/5: schedule(); choice{skip [] RAISE}; s —
                // the body is *not* instrumented (and atomicity is
                // vacuous sequentially).
                let mut v = self.prologue(temps, s, false);
                v.push(Stmt {
                    kind: StmtKind::Atomic(b.clone()),
                    span: s.span,
                    origin: s.origin,
                });
                Stmt { kind: StmtKind::Seq(v), span: s.span, origin: s.origin }
            }
            StmtKind::Call { dest, target, args } => {
                let mut v = self.prologue(temps, s, true);
                v.push(Stmt {
                    kind: StmtKind::Call { dest: *dest, target: *target, args: args.clone() },
                    span: s.span,
                    origin: Origin::User,
                });
                v.push(self.raise_propagation());
                Stmt { kind: StmtKind::Seq(v), span: s.span, origin: s.origin }
            }
            StmtKind::Async { target, args } => {
                let mut v = self.prologue(temps, s, true);
                v.push(self.async_translation(temps, *target, args, s.span));
                Stmt { kind: StmtKind::Seq(v), span: s.span, origin: s.origin }
            }
            StmtKind::Return(_) => {
                let mut v = Vec::new();
                if let Some(call) = self.sched_call() {
                    v.push(call);
                }
                v.push(s.clone());
                Stmt { kind: StmtKind::Seq(v), span: s.span, origin: s.origin }
            }
        };
        Ok(out)
    }

    /// `if (__race_addr == null) __race_addr = &dest->field;`
    fn register_race_addr(
        &self,
        temps: &mut TempAlloc<'_>,
        dest: VarRef,
        sid: StructId,
        fidx: u32,
        span: Span,
    ) -> Stmt {
        let race_addr = self.race_addr.expect("race mode");
        let t = temps.fresh();
        let tv = VarRef::Local(t);
        let mk = |kind| Stmt { kind, span, origin: Origin::Harness };
        mk(StmtKind::Seq(vec![
            mk(StmtKind::Assign(
                Place::Var(tv),
                Rvalue::BinOp(
                    BinOp::Eq,
                    Operand::Var(VarRef::Global(race_addr)),
                    Operand::Const(Const::Null),
                ),
            )),
            mk(StmtKind::Choice(vec![
                mk(StmtKind::Seq(vec![
                    mk(StmtKind::Assume(Cond::pos(tv))),
                    mk(StmtKind::Assign(
                        Place::Var(VarRef::Global(race_addr)),
                        Rvalue::AddrOfField(dest, sid, fidx),
                    )),
                ])),
                mk(StmtKind::Assume(Cond::neg(tv))),
            ])),
        ]))
    }

    /// `if (size() < MAX) put(v0) else { [[v0]](); raise = false }`,
    /// with `put` choosing the first free slot.
    fn async_translation(
        &mut self,
        temps: &mut TempAlloc<'_>,
        target: CallTarget,
        args: &[Operand],
        span: Span,
    ) -> Stmt {
        let target_op: Operand = match target {
            CallTarget::Direct(f) => Operand::Const(Const::Fn(f)),
            CallTarget::Indirect(v) => Operand::Var(v),
        };
        let mk = |kind, origin| Stmt { kind, span, origin };
        // Innermost: ts full — run the forked thread inline.
        let inline = mk(
            StmtKind::Seq(vec![
                mk(
                    StmtKind::Call { dest: None, target, args: args.to_vec() },
                    Origin::ThreadStart,
                ),
                mk(
                    StmtKind::Assign(
                        Place::Var(VarRef::Global(self.raise)),
                        Rvalue::Operand(Operand::Const(Const::Bool(false))),
                    ),
                    Origin::Sched,
                ),
            ]),
            Origin::Sched,
        );
        let mut chain = inline;
        for slot in self.ts_slots.iter().rev() {
            let t = temps.fresh();
            let tv = VarRef::Local(t);
            let mut store = vec![mk(StmtKind::Assume(Cond::pos(tv)), Origin::Sched)];
            // The fn-slot store is the signal trace mapping uses to
            // register a fork; keep it first.
            store.push(mk(
                StmtKind::Assign(Place::Var(VarRef::Global(slot.fn_g)), Rvalue::Operand(target_op)),
                Origin::Sched,
            ));
            store.push(mk(
                StmtKind::Assign(
                    Place::Var(VarRef::Global(slot.argc_g)),
                    Rvalue::Operand(Operand::Const(Const::Int(args.len() as i64))),
                ),
                Origin::Sched,
            ));
            for (j, a) in args.iter().enumerate() {
                store.push(mk(
                    StmtKind::Assign(Place::Var(VarRef::Global(slot.args_g[j])), Rvalue::Operand(*a)),
                    Origin::Sched,
                ));
            }
            chain = mk(
                StmtKind::Seq(vec![
                    mk(
                        StmtKind::Assign(
                            Place::Var(tv),
                            Rvalue::BinOp(
                                BinOp::Eq,
                                Operand::Var(VarRef::Global(slot.fn_g)),
                                Operand::Const(Const::Null),
                            ),
                        ),
                        Origin::Sched,
                    ),
                    mk(
                        StmtKind::Choice(vec![
                            mk(StmtKind::Seq(store), Origin::Sched),
                            mk(
                                StmtKind::Seq(vec![
                                    mk(StmtKind::Assume(Cond::neg(tv)), Origin::Sched),
                                    chain,
                                ]),
                                Origin::Sched,
                            ),
                        ]),
                        Origin::Sched,
                    ),
                ]),
                Origin::Sched,
            );
        }
        chain
    }
}

/// Generates `__schedule()`.
fn gen_schedule(slots: &[TsSlot], arities: &[usize], raise: GlobalId, max_arity: usize) -> FuncDef {
    let mut b = FnBuilder::new("__schedule", &[], false);
    b.origin(Origin::Sched);
    let f = b.local("__f");
    let argc = b.local("__argc");
    let t = b.local("__t");
    let arg_locals: Vec<LocalId> = (0..max_arity).map(|j| b.local(format!("__a{j}"))).collect();

    b.iter(|b| {
        let branches: Vec<build::BranchFn<'_>> = slots
            .iter()
            .map(|slot| {
                let arg_locals = &arg_locals;
                let closure: Box<dyn FnOnce(&mut FnBuilder)> = Box::new(move |b: &mut FnBuilder| {
                    // Occupied slot?
                    b.binop(build::l(t), BinOp::Eq, build::var(build::g(slot.fn_g)), build::null());
                    b.assume(Cond::neg(build::l(t)));
                    b.set(build::l(f), build::var(build::g(slot.fn_g)));
                    b.set(build::l(argc), build::var(build::g(slot.argc_g)));
                    for (j, &a) in slot.args_g.iter().enumerate() {
                        b.set(build::l(arg_locals[j]), build::var(build::g(a)));
                    }
                    b.set(build::g(slot.fn_g), build::null());
                    // Dispatch on the stored arity.
                    let target = CallTarget::Indirect(build::l(f));
                    match arities {
                        [] => {
                            // No async in the program at all; the slot
                            // can never be filled — call with no args.
                            b.origin(Origin::ThreadStart);
                            b.call(None, target, vec![]);
                            b.origin(Origin::Sched);
                        }
                        [k] => {
                            let args: Vec<Operand> =
                                (0..*k).map(|j| build::var(build::l(arg_locals[j]))).collect();
                            b.origin(Origin::ThreadStart);
                            b.call(None, target, args);
                            b.origin(Origin::Sched);
                        }
                        many => {
                            let arms: Vec<build::BranchFn<'_>> = many
                                .iter()
                                .map(|&k| {
                                    let closure: Box<dyn FnOnce(&mut FnBuilder)> =
                                        Box::new(move |b: &mut FnBuilder| {
                                            b.binop(
                                                build::l(t),
                                                BinOp::Eq,
                                                build::var(build::l(argc)),
                                                build::int(k as i64),
                                            );
                                            b.assume(Cond::pos(build::l(t)));
                                            let args: Vec<Operand> = (0..k)
                                                .map(|j| build::var(build::l(arg_locals[j])))
                                                .collect();
                                            b.origin(Origin::ThreadStart);
                                            b.call(None, target, args);
                                            b.origin(Origin::Sched);
                                        });
                                    closure
                                })
                                .collect();
                            b.choice(arms);
                        }
                    }
                    b.set(build::g(raise), build::boolean(false));
                });
                closure
            })
            .collect();
        b.choice(branches);
    });
    b.finish()
}

/// Generates `__check_r` (`is_read = true`) or `__check_w`.
///
/// ```text
/// check_r(x, site) { if (x == &r) { assert !(access == 2); access = 1; access_site = site; } }
/// check_w(x, site) { if (x == &r) { assert access == 0;    access = 2; access_site = site; } }
/// ```
///
/// The `site` argument records which instrumented access performed the
/// *first* access, so the race report can cite both sites.
fn gen_check(is_read: bool, access: GlobalId, race_addr: GlobalId, access_site: GlobalId) -> FuncDef {
    let name = if is_read { "__check_r" } else { "__check_w" };
    let mut b = FnBuilder::new(name, &["x", "site"], false);
    b.origin(Origin::Check);
    let x = b.param(0);
    let site = b.param(1);
    let t0 = b.local("__t0");
    let t1 = b.local("__t1");
    b.binop(build::l(t0), BinOp::Eq, build::var(build::l(x)), build::var(build::g(race_addr)));
    b.if_else(
        Cond::pos(build::l(t0)),
        |b| {
            if is_read {
                b.binop(build::l(t1), BinOp::Ne, build::var(build::g(access)), build::int(2));
                b.assert(Cond::pos(build::l(t1)));
                b.set(build::g(access), build::int(1));
            } else {
                b.binop(build::l(t1), BinOp::Eq, build::var(build::g(access)), build::int(0));
                b.assert(Cond::pos(build::l(t1)));
                b.set(build::g(access), build::int(2));
            }
            b.set(build::g(access_site), build::var(build::l(site)));
        },
        |_b| {},
    );
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kiss_lang::parse_and_lower;

    fn prog(src: &str) -> Program {
        parse_and_lower(src).unwrap()
    }

    const SIMPLE_ASYNC: &str = "
        int g;
        void other() { g = 1; }
        void main() { async other(); assert g == 0; }
    ";

    #[test]
    fn transform_produces_async_free_program() {
        let p = prog(SIMPLE_ASYNC);
        for max_ts in [0, 1, 2] {
            let t = transform(&p, &TransformConfig { max_ts, ..Default::default() }).unwrap();
            fn has_async(s: &Stmt) -> bool {
                match &s.kind {
                    StmtKind::Async { .. } => true,
                    StmtKind::Seq(ss) | StmtKind::Choice(ss) => ss.iter().any(has_async),
                    StmtKind::Atomic(b) | StmtKind::Iter(b) => has_async(b),
                    _ => false,
                }
            }
            for f in &t.program.funcs {
                assert!(!has_async(&f.body), "async survived in `{}` (MAX={max_ts})", f.name);
            }
        }
    }

    #[test]
    fn max_ts_zero_generates_no_scheduler() {
        let t = transform(&prog(SIMPLE_ASYNC), &TransformConfig::default()).unwrap();
        assert!(t.schedule.is_none());
        assert!(t.program.func_by_name("__schedule").is_none());
        assert_eq!(t.ts_slots.len(), 0);
        assert_eq!(t.program.func(t.entry).name, "__kiss_main");
        assert_eq!(t.program.main, t.entry);
    }

    #[test]
    fn max_ts_positive_generates_slots_and_scheduler() {
        let t = transform(&prog(SIMPLE_ASYNC), &TransformConfig { max_ts: 2, ..Default::default() })
            .unwrap();
        assert!(t.schedule.is_some());
        assert_eq!(t.ts_slots.len(), 2);
        assert_eq!(t.ts_slots[0].args_g.len(), 0); // async other() takes no args
        assert!(t.program.global_by_name("__ts0_fn").is_some());
        assert!(t.program.global_by_name("__ts1_argc").is_some());

        // With a one-argument async, slots carry one argument global.
        let src = "
            struct D { int x; }
            D *e;
            void w(D *p) { p->x = 1; }
            void main() { e = malloc(D); async w(e); }
        ";
        let t = transform(&prog(src), &TransformConfig { max_ts: 1, ..Default::default() }).unwrap();
        assert_eq!(t.ts_slots[0].args_g.len(), 1);
        assert!(t.program.global_by_name("__ts0_arg0").is_some());
    }

    #[test]
    fn race_mode_generates_checks_and_access_globals() {
        let src = "
            int r;
            void w1() { r = 1; }
            void main() { async w1(); r = 2; }
        ";
        let p = prog(src);
        let target = RaceTarget::resolve(&p, "r").unwrap();
        let t = transform(&p, &TransformConfig { max_ts: 0, race: Some(target), alias_prune: true })
            .unwrap();
        assert!(t.check_r.is_some());
        assert!(t.check_w.is_some());
        assert!(t.access.is_some());
        assert!(t.race_addr.is_some());
        assert!(t.checks_emitted >= 2, "writes in both threads must be checked: {t:?}");
    }

    #[test]
    fn alias_pruning_reduces_check_count() {
        let src = "
            int r;
            int unrelated;
            void w1() { r = 1; unrelated = 5; }
            void main() { async w1(); r = 2; unrelated = 6; }
        ";
        let p = prog(src);
        let target = RaceTarget::resolve(&p, "r").unwrap();
        let pruned = transform(&p, &TransformConfig { max_ts: 0, race: Some(target), alias_prune: true })
            .unwrap();
        let full = transform(&p, &TransformConfig { max_ts: 0, race: Some(target), alias_prune: false })
            .unwrap();
        assert!(pruned.checks_emitted < full.checks_emitted);
        assert!(pruned.checks_pruned > 0);
        assert_eq!(full.checks_pruned, 0);
    }

    #[test]
    fn field_target_resolves_and_registers_at_malloc() {
        let src = "
            struct D { int f; bool s; }
            D *e;
            void main() { e = malloc(D); e->s = true; }
        ";
        let p = prog(src);
        let target = RaceTarget::resolve(&p, "D.s").unwrap();
        assert_eq!(target, RaceTarget::Field(StructId(0), 1));
        let t = transform(&p, &TransformConfig { max_ts: 0, race: Some(target), alias_prune: true })
            .unwrap();
        // The transformed main must mention __race_addr registration.
        let text = kiss_lang::pretty::print_program(&t.program);
        assert!(text.contains("__race_addr = &"), "{text}");
    }

    #[test]
    fn name_collisions_are_rejected() {
        let p = prog("int __raise; void main() { skip; }");
        let e = transform(&p, &TransformConfig::default()).unwrap_err();
        assert!(matches!(e, TransformError::NameCollision(_)));
        let p = prog("void __schedule() { skip; } void main() { skip; }");
        let e = transform(&p, &TransformConfig { max_ts: 1, ..Default::default() }).unwrap_err();
        assert!(matches!(e, TransformError::NameCollision(_)));
    }

    #[test]
    fn transformed_program_pretty_prints_and_reparses() {
        let p = prog(SIMPLE_ASYNC);
        for cfg in [
            TransformConfig { max_ts: 0, ..Default::default() },
            TransformConfig { max_ts: 1, ..Default::default() },
            TransformConfig {
                max_ts: 1,
                race: Some(RaceTarget::resolve(&prog(SIMPLE_ASYNC), "g").unwrap()),
                alias_prune: true,
            },
        ] {
            let t = transform(&p, &cfg).unwrap();
            let text = kiss_lang::pretty::print_program(&t.program);
            let reparsed = kiss_lang::parse_and_lower(&text)
                .unwrap_or_else(|e| panic!("reparse failed ({cfg:?}): {e}\n{text}"));
            assert_eq!(reparsed.funcs.len(), t.program.funcs.len());
        }
    }

    #[test]
    fn instrumentation_blowup_is_a_small_constant() {
        // The paper claims a small constant blowup of the CFG.
        let src = "
            int a; int b; int c;
            void f() { a = 1; b = 2; c = a + b; }
            void main() { f(); assert c == 3; }
        ";
        let p = prog(src);
        let t = transform(&p, &TransformConfig { max_ts: 1, ..Default::default() }).unwrap();
        let before = kiss_exec::Module::lower(p).instr_count();
        let after = kiss_exec::Module::lower(t.program.clone()).instr_count();
        let ratio = after as f64 / before as f64;
        assert!(ratio < 15.0, "blowup ratio {ratio} too large");
    }

    #[test]
    fn resolve_rejects_unknown_specs() {
        let p = prog("struct D { int f; } int r; void main() { skip; }");
        assert!(RaceTarget::resolve(&p, "r").is_some());
        assert!(RaceTarget::resolve(&p, "D.f").is_some());
        assert!(RaceTarget::resolve(&p, "nope").is_none());
        assert!(RaceTarget::resolve(&p, "D.nope").is_none());
        assert!(RaceTarget::resolve(&p, "E.f").is_none());
    }
}
