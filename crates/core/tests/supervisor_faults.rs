//! Fault-injection coverage for the supervisor's crash path.
//!
//! Kept in its own integration-test binary because the `kiss-fault`
//! registry is process-global: a `supervisor.attempt` policy armed here
//! would otherwise fire inside unrelated unit tests running in the same
//! process.

use kiss_core::{Supervised, Supervisor};
use kiss_fault::{Action, Policy, Trigger};
use kiss_obs::{ChannelSink, Event, Obs};
use kiss_seq::Budget;

#[test]
fn an_injected_attempt_panic_surfaces_as_crashed_then_clears() {
    kiss_fault::reset();
    kiss_fault::set(
        "supervisor.attempt",
        Policy { action: Action::Panic, trigger: Trigger::Times(1) },
    );
    let (tx, rx) = std::sync::mpsc::channel();
    let obs = Obs::new(ChannelSink(tx));

    let supervisor = Supervisor::new(Budget::steps_states(1_000, 100)).with_observer(obs);
    let run = supervisor.run_scoped("faulted", |_, _, _| {
        kiss_core::KissOutcome::NoErrorFound(Default::default())
    });
    let Supervised::Crashed { cause } = &run.result else {
        panic!("an injected panic must surface as Crashed, got {:?}", run.result)
    };
    assert!(cause.contains("kiss-fault"), "cause names the injection: {cause}");
    assert_eq!(run.attempts, 1, "a crash is never retried");

    // The injection was observed.
    let events: Vec<Event> = rx.try_iter().collect();
    assert!(
        events.iter().any(|e| matches!(
            e,
            Event::FaultInjected { point, .. } if point == "supervisor.attempt"
        )),
        "expected a fault_injected event, got {events:?}"
    );

    // Times(1) is spent: the next attempt completes normally.
    let run = supervisor.run_scoped("healthy", |_, _, _| {
        kiss_core::KissOutcome::NoErrorFound(Default::default())
    });
    assert!(
        matches!(run.result, Supervised::Completed(_)),
        "the failpoint must not fire twice: {:?}",
        run.result
    );
    kiss_fault::reset();
}
