//! Corpus-to-batch conversion for `kiss-serve` submissions.
//!
//! A served check receives program *text*, so each (driver, field) pair
//! is harnessed locally — the same `DriverInit ∥ dispatch ∥ dispatch`
//! closure [`crate::table`] builds — and pretty-printed back to KISS-C
//! (the printer round-trips through the parser). Fields the refined OS
//! model rules out without a search produce no entry, mirroring the
//! searchless short-circuit in the local corpus runner.

use kiss_core::harness::dispatch_harness;
use kiss_lang::pretty::print_program;

use crate::corpus::generate_corpus;

/// One submittable check: a self-contained harnessed program plus the
/// race spec to check it against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchEntry {
    /// `driver/field`, matching the local corpus runner's check labels.
    pub label: String,
    /// The harnessed program, pretty-printed KISS-C.
    pub source: String,
    /// The race target spec (`Ext.field`) for this entry.
    pub race_spec: String,
}

/// Builds the full 18-driver corpus as a flat batch of race checks,
/// one entry per field with at least one concurrently-dispatchable
/// routine pair under the chosen OS model.
pub fn corpus_batch(refined: bool) -> Vec<BatchEntry> {
    let mut entries = Vec::new();
    for model in generate_corpus() {
        let program = match kiss_lang::parse_and_lower(&model.source) {
            Ok(p) => p,
            // Generated drivers always parse; a regression here should
            // surface in the corpus tests, not kill a submission.
            Err(_) => continue,
        };
        for field in 0..model.fields.len() {
            let pairs = model.field_pairs(field, refined);
            if pairs.is_empty() {
                continue;
            }
            let pair_refs: Vec<(&str, &str)> =
                pairs.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
            let Ok(harnessed) = dispatch_harness(&program, Some("DriverInit"), &pair_refs) else {
                continue;
            };
            entries.push(BatchEntry {
                label: format!("{}/{}", model.name, field),
                source: print_program(&harnessed),
                race_spec: model.race_spec(field),
            });
        }
    }
    entries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_batch_entries_are_self_contained_programs() {
        let batch = corpus_batch(true);
        assert!(batch.len() >= 18, "at least one field per driver: {}", batch.len());
        // Labels are unique and every source re-parses with its race
        // spec resolvable — the server needs nothing else.
        let mut labels: Vec<&str> = batch.iter().map(|e| e.label.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), batch.len(), "duplicate labels");
        for entry in batch.iter().take(5) {
            let program = kiss_lang::parse_and_lower(&entry.source)
                .unwrap_or_else(|e| panic!("{}: {e}", entry.label));
            assert!(
                kiss_core::RaceTarget::resolve(&program, &entry.race_spec).is_some(),
                "{}: spec `{}` did not resolve",
                entry.label,
                entry.race_spec
            );
        }
    }

    #[test]
    fn refinement_prunes_entries() {
        let coarse = corpus_batch(false);
        let refined = corpus_batch(true);
        assert!(
            refined.len() <= coarse.len(),
            "refined {} > coarse {}",
            refined.len(),
            coarse.len()
        );
    }
}
