//! The paper's Figure 2: a simplified model of a Windows Bluetooth
//! driver, with the reference-counting protocol between `BCSP_PnpAdd`
//! (I/O dispatch) and `BCSP_PnpStop` (stop dispatch).
//!
//! Section 2.2 shows KISS finding a race on `stoppingFlag` with
//! `MAX = 0`; Section 2.3 shows the `assert !stopped` violation that
//! needs `MAX = 1`; Section 6 reports that after fixing
//! `BCSP_IoIncrement` as the driver quality team suggested, KISS finds
//! no errors — and that fakemodem's reference counting already follows
//! the fixed pattern.

use kiss_lang::Program;

/// The Figure 2 model, transcribed to KISS-C. The only deviations from
/// the paper's listing are syntactic: a global alias `e0` is not
/// needed, and the `// do work here` comment is kept.
pub const BLUETOOTH_BUGGY: &str = r#"
struct DEVICE_EXTENSION {
    int pendingIo;
    bool stoppingFlag;
    bool stoppingEvent;
}

bool stopped;

void main() {
    DEVICE_EXTENSION *e;
    e = malloc(DEVICE_EXTENSION);
    e->pendingIo = 1;
    e->stoppingFlag = false;
    e->stoppingEvent = false;
    stopped = false;
    async BCSP_PnpStop(e);
    BCSP_PnpAdd(e);
}

void BCSP_PnpAdd(DEVICE_EXTENSION *e) {
    int status;
    status = BCSP_IoIncrement(e);
    if (status == 0) {
        // do work here
        assert !stopped;
    }
    BCSP_IoDecrement(e);
}

void BCSP_PnpStop(DEVICE_EXTENSION *e) {
    e->stoppingFlag = true;
    BCSP_IoDecrement(e);
    assume e->stoppingEvent;
    // release allocated resources
    stopped = true;
}

int BCSP_IoIncrement(DEVICE_EXTENSION *e) {
    if (e->stoppingFlag) {
        return -1;
    }
    atomic { e->pendingIo = e->pendingIo + 1; }
    return 0;
}

void BCSP_IoDecrement(DEVICE_EXTENSION *e) {
    int pendingIo;
    atomic {
        e->pendingIo = e->pendingIo - 1;
        pendingIo = e->pendingIo;
    }
    if (pendingIo == 0) {
        e->stoppingEvent = true;
    }
}
"#;

/// The fixed driver: `BCSP_IoIncrement` increments `pendingIo` *before*
/// checking `stoppingFlag`, and undoes the increment when stopping —
/// the repair the paper reports the driver quality team suggested.
pub const BLUETOOTH_FIXED: &str = r#"
struct DEVICE_EXTENSION {
    int pendingIo;
    bool stoppingFlag;
    bool stoppingEvent;
}

bool stopped;

void main() {
    DEVICE_EXTENSION *e;
    e = malloc(DEVICE_EXTENSION);
    e->pendingIo = 1;
    e->stoppingFlag = false;
    e->stoppingEvent = false;
    stopped = false;
    async BCSP_PnpStop(e);
    BCSP_PnpAdd(e);
}

void BCSP_PnpAdd(DEVICE_EXTENSION *e) {
    int status;
    status = BCSP_IoIncrement(e);
    if (status == 0) {
        // do work here
        assert !stopped;
    }
    BCSP_IoDecrement(e);
}

void BCSP_PnpStop(DEVICE_EXTENSION *e) {
    e->stoppingFlag = true;
    BCSP_IoDecrement(e);
    assume e->stoppingEvent;
    // release allocated resources
    stopped = true;
}

int BCSP_IoIncrement(DEVICE_EXTENSION *e) {
    atomic { e->pendingIo = e->pendingIo + 1; }
    if (e->stoppingFlag) {
        BCSP_IoDecrement(e);
        return -1;
    }
    return 0;
}

void BCSP_IoDecrement(DEVICE_EXTENSION *e) {
    int pendingIo;
    atomic {
        e->pendingIo = e->pendingIo - 1;
        pendingIo = e->pendingIo;
    }
    if (pendingIo == 0) {
        e->stoppingEvent = true;
    }
}
"#;

/// A fakemodem-style reference-counting model: the paper observes that
/// fakemodem's counting "behaved exactly according to the fixed
/// implementation of BCSP_IoIncrement", so KISS reports no errors.
pub const FAKEMODEM_REFCOUNT: &str = r#"
struct FM_EXTENSION {
    int OpenCount;
    bool Stopping;
    bool StopEvent;
}

bool fm_stopped;

void main() {
    FM_EXTENSION *e;
    e = malloc(FM_EXTENSION);
    e->OpenCount = 1;
    e->Stopping = false;
    e->StopEvent = false;
    fm_stopped = false;
    async FakeModem_Stop(e);
    FakeModem_Io(e);
}

int FakeModem_Enter(FM_EXTENSION *e) {
    atomic { e->OpenCount = e->OpenCount + 1; }
    if (e->Stopping) {
        FakeModem_Exit(e);
        return -1;
    }
    return 0;
}

void FakeModem_Exit(FM_EXTENSION *e) {
    int count;
    atomic {
        e->OpenCount = e->OpenCount - 1;
        count = e->OpenCount;
    }
    if (count == 0) {
        e->StopEvent = true;
    }
}

void FakeModem_Io(FM_EXTENSION *e) {
    int status;
    status = FakeModem_Enter(e);
    if (status == 0) {
        assert !fm_stopped;
    }
    FakeModem_Exit(e);
}

void FakeModem_Stop(FM_EXTENSION *e) {
    e->Stopping = true;
    FakeModem_Exit(e);
    assume e->StopEvent;
    fm_stopped = true;
}
"#;

/// Parses the buggy Figure 2 model.
///
/// # Panics
///
/// Panics only if the embedded source is invalid (checked by tests).
pub fn buggy() -> Program {
    kiss_lang::parse_and_lower(BLUETOOTH_BUGGY).expect("embedded bluetooth model is valid")
}

/// Parses the fixed model.
///
/// # Panics
///
/// Panics only if the embedded source is invalid (checked by tests).
pub fn fixed() -> Program {
    kiss_lang::parse_and_lower(BLUETOOTH_FIXED).expect("embedded fixed model is valid")
}

/// Parses the fakemodem reference-counting model.
///
/// # Panics
///
/// Panics only if the embedded source is invalid (checked by tests).
pub fn fakemodem() -> Program {
    kiss_lang::parse_and_lower(FAKEMODEM_REFCOUNT).expect("embedded fakemodem model is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use kiss_core::checker::{Kiss, KissOutcome};

    #[test]
    fn models_parse_and_lower() {
        assert_eq!(buggy().funcs.len(), 5);
        assert_eq!(fixed().funcs.len(), 5);
        assert_eq!(fakemodem().funcs.len(), 5);
    }

    #[test]
    fn race_on_stopping_flag_found_at_max_0() {
        // Paper §2.2: "For this example, a size 0 for the multiset ts
        // is enough to expose the race."
        let outcome = Kiss::new()
            .with_max_ts(0)
            .check_race_spec(&buggy(), "DEVICE_EXTENSION.stoppingFlag")
            .unwrap();
        let KissOutcome::RaceDetected(report) = outcome else {
            panic!("expected race on stoppingFlag, got {outcome:?}");
        };
        // One write (in BCSP_PnpStop) and one read (in
        // BCSP_IoIncrement).
        assert!(report.first.is_write != report.second.is_write, "read/write race");
    }

    #[test]
    fn assertion_bug_needs_max_1() {
        // Paper §2.3: "The error trace ... cannot be simulated ... if
        // the size of ts is 0. However, the error trace can be
        // simulated if the size of ts is increased to 1."
        let at0 = Kiss::new().with_max_ts(0).check_assertions(&buggy());
        assert!(at0.is_clean(), "MAX=0 must miss the refcount bug: {at0:?}");
        let at1 = Kiss::new().with_max_ts(1).check_assertions(&buggy());
        let KissOutcome::AssertionViolation(report) = at1 else {
            panic!("MAX=1 must find the refcount bug, got {at1:?}");
        };
        // The mapped trace is a genuine concurrent execution.
        assert_eq!(report.validated, Some(true));
        assert_eq!(report.mapped.thread_count, 2);
    }

    #[test]
    fn fixed_driver_is_clean_at_max_1() {
        // Paper §6: "After fixing the bug as suggested by the driver
        // quality team, we ran KISS again and this time KISS did not
        // report any errors."
        let outcome = Kiss::new().with_max_ts(1).check_assertions(&fixed());
        assert!(outcome.is_clean(), "{outcome:?}");
    }

    #[test]
    fn fixed_driver_is_clean_at_max_2() {
        let outcome = Kiss::new().with_max_ts(2).check_assertions(&fixed());
        assert!(outcome.is_clean(), "{outcome:?}");
    }

    #[test]
    fn fakemodem_refcounting_is_clean() {
        // Paper §6: "KISS did not report any errors in the fakemodem
        // driver."
        let outcome = Kiss::new().with_max_ts(1).check_assertions(&fakemodem());
        assert!(outcome.is_clean(), "{outcome:?}");
    }
}
