//! Synthetic driver corpus generator.
//!
//! For each [`DriverSpec`] row of the paper's Table 1, generates a
//! KISS-C driver whose device-extension fields fall into the defect
//! classes the paper's experiments surfaced:
//!
//! * **Spurious** — unprotected accesses that can only collide when
//!   the OS harness violates the IRP concurrency rules: either two
//!   concurrent Pnp IRPs (rules A1/A2) or two concurrent Ioctl IRPs
//!   (the kbfiltr/moufiltr driver-specific rule). Flagged by the naive
//!   harness, gone under the refined harness.
//! * **Real** — a locked write in one dispatch routine against an
//!   unprotected read in another routine the OS *may* run concurrently
//!   (the `DevicePnPState` shape of paper Figure 6). Flagged by both
//!   harnesses.
//! * **Benign** — a counter incremented under the lock but read once
//!   without it, where the programmer deliberately skipped the lock
//!   (the fakemodem `OpenCount` discussion). KISS still reports it.
//! * **Heavy** — fields whose routines contain enough state (nested
//!   counters with nondeterministic updates) that the per-field check
//!   exhausts its resource bound: the paper's inconclusive bucket.
//! * **Clean** — lock-protected or read-only fields; proved race-free.
//!
//! Generation is fully deterministic; the same spec always yields the
//! same source text.

use std::collections::BTreeMap;

use crate::os_model;
use crate::spec::DriverSpec;

/// The IRP category of a dispatch routine, used by the refined
/// harness rules A1–A3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IrpCategory {
    /// A Pnp IRP that starts or removes the device (rule A2: nothing
    /// runs concurrently with these).
    PnpStartRemove,
    /// Another Pnp IRP (rule A1: no two Pnp IRPs concurrently).
    Pnp,
    /// A system Power IRP (rule A3).
    PowerSys,
    /// A device Power IRP (rule A3).
    PowerDev,
    /// Device I/O control (kbfiltr/moufiltr: never two concurrently).
    Ioctl,
    /// Read path.
    Read,
    /// Write path.
    Write,
    /// Create (open) path.
    Create,
    /// Close path.
    Close,
}

/// How a field is seeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldClass {
    /// Races only under the naive harness (Pnp or Ioctl pair).
    Spurious,
    /// Races under both harnesses; a genuine bug shape.
    Real,
    /// Races under both harnesses; deliberately lock-free read.
    Benign,
    /// The per-field check exceeds the resource bound.
    Heavy,
    /// Lock-protected or read-only; provably race-free.
    Clean,
}

/// Metadata for one device-extension field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldInfo {
    /// Field name within the extension struct.
    pub name: String,
    /// Seeded class.
    pub class: FieldClass,
    /// Dispatch routines that access the field (the sliced per-field
    /// harness runs exactly these).
    pub routines: Vec<String>,
}

/// A generated driver.
#[derive(Debug, Clone)]
pub struct DriverModel {
    /// Driver name.
    pub name: String,
    /// The spec it was generated from.
    pub spec: DriverSpec,
    /// Complete KISS-C source (parse with `kiss_lang::parse_and_lower`).
    pub source: String,
    /// Name of the device-extension struct.
    pub ext_struct: String,
    /// Per-field metadata, in field order.
    pub fields: Vec<FieldInfo>,
    /// IRP category of each dispatch routine.
    pub routine_category: BTreeMap<String, IrpCategory>,
    /// Generated source lines (the reproduction's "KLOC" column).
    pub loc: usize,
}

impl DriverModel {
    /// The `"Struct.field"` race-target spec for a field index.
    pub fn race_spec(&self, field: usize) -> String {
        format!("{}.{}", self.ext_struct, self.fields[field].name)
    }

    /// Ordered routine pairs the harness may run concurrently for a
    /// field, under the naive (`refined = false`) or refined
    /// (`refined = true`) OS model.
    pub fn field_pairs(&self, field: usize, refined: bool) -> Vec<(String, String)> {
        let routines = &self.fields[field].routines;
        let mut out = Vec::new();
        for a in routines {
            for b in routines {
                if !refined || self.pair_allowed_refined(a, b) {
                    out.push((a.clone(), b.clone()));
                }
            }
        }
        out
    }

    fn pair_allowed_refined(&self, a: &str, b: &str) -> bool {
        let ca = self.routine_category[a];
        let cb = self.routine_category[b];
        use IrpCategory::*;
        // A2: nothing concurrent with a Pnp start/remove IRP.
        if ca == PnpStartRemove || cb == PnpStartRemove {
            return false;
        }
        // A1: no two Pnp IRPs concurrently.
        if ca == Pnp && cb == Pnp {
            return false;
        }
        // A3: two concurrent Power IRPs must be of different
        // categories.
        if (ca == PowerSys && cb == PowerSys) || (ca == PowerDev && cb == PowerDev) {
            return false;
        }
        // Driver-specific rule for the filter drivers: no two
        // concurrent Ioctl IRPs.
        if self.spec.ioctl_spurious && ca == Ioctl && cb == Ioctl {
            return false;
        }
        true
    }
}

/// Generates the whole 18-driver corpus of Table 1.
pub fn generate_corpus() -> Vec<DriverModel> {
    crate::spec::paper_table().iter().map(generate_driver).collect()
}

/// Generates one driver from its spec.
pub fn generate_driver(spec: &DriverSpec) -> DriverModel {
    Generator::new(spec, false).run()
}

/// Generates a driver with the paper's future-work `benign`
/// annotations applied to the deliberate lock-free counter reads; the
/// corresponding warnings disappear from Table 2.
pub fn generate_driver_annotated(spec: &DriverSpec) -> DriverModel {
    Generator::new(spec, true).run()
}

struct Generator<'a> {
    spec: &'a DriverSpec,
    ext: String,
    /// routine name -> (category, body statements)
    routines: BTreeMap<String, (IrpCategory, Vec<String>)>,
    fields: Vec<FieldInfo>,
    heavy_ctr_globals: Vec<String>,
    /// Apply `benign` annotations to the deliberate lock-free reads.
    annotate_benign: bool,
}

impl<'a> Generator<'a> {
    fn new(spec: &'a DriverSpec, annotate_benign: bool) -> Self {
        Generator {
            spec,
            ext: format!("EXT_{}", sanitize(spec.name)),
            routines: BTreeMap::new(),
            fields: Vec::new(),
            heavy_ctr_globals: Vec::new(),
            annotate_benign,
        }
    }

    fn routine(&mut self, name: &str, cat: IrpCategory) -> &mut Vec<String> {
        &mut self.routines.entry(name.to_string()).or_insert_with(|| (cat, Vec::new())).1
    }

    fn run(mut self) -> DriverModel {
        let spec = self.spec.clone();
        let n_spurious = spec.spurious();
        let n_real = spec.races_refined - spec.benign;
        let n_benign = spec.benign;
        let n_heavy = spec.inconclusive();
        let n_clean = spec.clean();
        assert_eq!(n_spurious + n_real + n_benign + n_heavy + n_clean, spec.fields);

        let mut idx = 0usize;
        for _ in 0..n_spurious {
            self.seed_spurious(idx);
            idx += 1;
        }
        for _ in 0..n_real {
            self.seed_real(idx);
            idx += 1;
        }
        for _ in 0..n_benign {
            self.seed_benign(idx);
            idx += 1;
        }
        for k in 0..n_heavy {
            self.seed_heavy(idx, k);
            idx += 1;
        }
        for k in 0..n_clean {
            self.seed_clean(idx, k);
            idx += 1;
        }

        let source = self.render();
        let loc = source.lines().filter(|l| !l.trim().is_empty()).count();
        DriverModel {
            name: spec.name.to_string(),
            ext_struct: self.ext.clone(),
            fields: self.fields,
            routine_category: self.routines.iter().map(|(k, (c, _))| (k.clone(), *c)).collect(),
            loc,
            spec,
            source,
        }
    }

    fn field(&mut self, idx: usize, class: FieldClass, routines: &[&str]) -> String {
        let name = format!("f{idx}");
        self.fields.push(FieldInfo {
            name: name.clone(),
            class,
            routines: routines.iter().map(|r| r.to_string()).collect(),
        });
        name
    }

    /// Unprotected accesses in routines the refined harness never runs
    /// concurrently.
    fn seed_spurious(&mut self, idx: usize) {
        if self.spec.ioctl_spurious {
            let f = self.field(idx, FieldClass::Spurious, &["DispatchIoctl"]);
            let body = self.routine("DispatchIoctl", IrpCategory::Ioctl);
            // Read-modify-write without the lock: two concurrent Ioctl
            // IRPs would race — but this driver never receives two.
            body.push(format!("ext->{f} = ext->{f} + 1;"));
        } else {
            let f = self.field(idx, FieldClass::Spurious, &["DispatchPnpStart", "DispatchPnpRemove"]);
            self.routine("DispatchPnpStart", IrpCategory::PnpStartRemove)
                .push(format!("ext->{f} = 1;"));
            let body = self.routine("DispatchPnpRemove", IrpCategory::PnpStartRemove);
            body.push(format!("t = ext->{f};"));
        }
    }

    /// Figure 6 shape: locked write in one routine, unprotected read in
    /// a routine that may run concurrently even under the refined
    /// rules.
    fn seed_real(&mut self, idx: usize) {
        let f = self.field(idx, FieldClass::Real, &["DispatchWrite", "DispatchPowerDev"]);
        let body = self.routine("DispatchWrite", IrpCategory::Write);
        body.push("KeAcquireSpinLock();".into());
        body.push(format!("ext->{f} = 2;"));
        body.push("KeReleaseSpinLock();".into());
        // Race: unprotected read (cf. ToastMon_DispatchPower reading
        // DevicePnPState without the remove lock).
        self.routine("DispatchPowerDev", IrpCategory::PowerDev).push(format!("t = ext->{f};"));
    }

    /// fakemodem `OpenCount` shape: locked increments, one deliberate
    /// lock-free read ("the read operation is atomic already").
    fn seed_benign(&mut self, idx: usize) {
        let f = self.field(idx, FieldClass::Benign, &["DispatchCreate", "DispatchClose"]);
        let body = self.routine("DispatchCreate", IrpCategory::Create);
        body.push("KeAcquireSpinLock();".into());
        body.push(format!("ext->{f} = ext->{f} + 1;"));
        body.push("KeReleaseSpinLock();".into());
        let annotate = self.annotate_benign;
        let body = self.routine("DispatchClose", IrpCategory::Close);
        // benign: single atomic read, programmer skipped the lock.
        if annotate {
            body.push(format!("benign t = ext->{f};"));
        } else {
            body.push(format!("t = ext->{f};"));
        }
        body.push("if (t == 0) { ext2 = ext; }".to_string());
    }

    /// A field whose routine drags in a large state space, so the
    /// per-field check exhausts its budget.
    fn seed_heavy(&mut self, idx: usize, k: usize) {
        let routine = format!("DispatchHeavy{k}");
        let ctr = format!("hctr{k}");
        self.heavy_ctr_globals.push(ctr.clone());
        let f = self.field(idx, FieldClass::Heavy, &[&routine]);
        let body = self.routine(&routine, IrpCategory::Read);
        body.push("i = 0;".into());
        body.push("while (i < 25) {".into());
        body.push("    j = 0;".into());
        body.push("    while (j < 25) {".into());
        body.push("        j = j + 1;".into());
        body.push(format!("        choice {{ {ctr} = {ctr} + 1; [] {ctr} = {ctr} - 1; }}"));
        body.push("    }".into());
        body.push("    i = i + 1;".into());
        body.push("}".into());
        body.push("KeAcquireSpinLock();".into());
        body.push(format!("t = ext->{f};"));
        body.push("KeReleaseSpinLock();".into());
    }

    /// Race-free shapes, cycled for variety.
    fn seed_clean(&mut self, idx: usize, k: usize) {
        match k % 3 {
            0 => {
                let f = self.field(idx, FieldClass::Clean, &["DispatchWrite", "DispatchRead"]);
                let body = self.routine("DispatchWrite", IrpCategory::Write);
                body.push("KeAcquireSpinLock();".into());
                body.push(format!("ext->{f} = 3;"));
                body.push("KeReleaseSpinLock();".into());
                let body = self.routine("DispatchRead", IrpCategory::Read);
                body.push("KeAcquireSpinLock();".into());
                body.push(format!("t = ext->{f};"));
                body.push("KeReleaseSpinLock();".into());
            }
            1 => {
                // Read-only everywhere: concurrent reads never race.
                let f = self.field(idx, FieldClass::Clean, &["DispatchPowerSys", "DispatchRead"]);
                self.routine("DispatchPowerSys", IrpCategory::PowerSys).push(format!("t = ext->{f};"));
                self.routine("DispatchRead", IrpCategory::Read).push(format!("t = ext->{f};"));
            }
            _ => {
                // Locked counter in a single routine.
                let f = self.field(idx, FieldClass::Clean, &["DispatchCreate"]);
                let body = self.routine("DispatchCreate", IrpCategory::Create);
                body.push("KeAcquireSpinLock();".into());
                body.push(format!("ext->{f} = ext->{f} + 1;"));
                body.push("KeReleaseSpinLock();".into());
            }
        }
    }

    fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("// Synthetic driver `{}` (generated, deterministic).\n", self.spec.name));
        // Extension struct.
        out.push_str(&format!("struct {} {{\n", self.ext));
        for f in &self.fields {
            out.push_str(&format!("    int {};\n", f.name));
        }
        out.push_str("}\n\n");
        // Globals.
        out.push_str(&format!("{} *ext;\n{} *ext2;\nint g_lock;\nint io_count;\n", self.ext, self.ext));
        for ctr in &self.heavy_ctr_globals {
            out.push_str(&format!("int {ctr};\n"));
        }
        out.push('\n');
        // OS model.
        out.push_str(&os_model::spin_lock("g_lock"));
        if self.spec.benign > 0 || self.spec.fields >= 30 {
            out.push_str(os_model::interlocked());
        }
        out.push('\n');
        // Init.
        out.push_str(&format!(
            "void DriverInit() {{\n    ext = malloc({});\n    g_lock = 0;\n}}\n\n",
            self.ext
        ));
        // Dispatch routines.
        for (name, (cat, stmts)) in &self.routines {
            out.push_str(&format!("// category: {cat:?}\nvoid {name}() {{\n"));
            out.push_str("    int t;\n");
            if name.starts_with("DispatchHeavy") {
                out.push_str("    int i;\n    int j;\n");
            }
            if stmts.is_empty() {
                out.push_str("    skip;\n");
            }
            for s in stmts {
                out.push_str(&format!("    {s}\n"));
            }
            out.push_str("}\n\n");
        }
        // Placeholder main (replaced by the harness).
        out.push_str("void main() { skip; }\n\n");
        // Padding to approximate the driver's KLOC (never called by the
        // harness, like the bulk of real driver code).
        let target_lines = (self.spec.kloc * 1000.0 * 0.15) as usize;
        let mut pad_idx = 0usize;
        while out.lines().count() < target_lines {
            out.push_str(&format!(
                "int pad_{p}(int a, int b) {{\n    int c;\n    c = a + b;\n    c = c * 2;\n    c = c - a;\n    if (c > 100) {{ c = c % 100; }}\n    return c;\n}}\n",
                p = pad_idx
            ));
            pad_idx += 1;
        }
        out
    }
}

fn sanitize(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::paper_table;

    #[test]
    fn every_generated_driver_parses() {
        for model in generate_corpus() {
            kiss_lang::parse_and_lower(&model.source)
                .unwrap_or_else(|e| panic!("driver {} does not parse: {e}", model.name));
        }
    }

    #[test]
    fn field_counts_match_the_spec() {
        for model in generate_corpus() {
            assert_eq!(model.fields.len(), model.spec.fields, "{}", model.name);
            let count = |class| model.fields.iter().filter(|f| f.class == class).count();
            assert_eq!(count(FieldClass::Spurious), model.spec.spurious(), "{}", model.name);
            assert_eq!(
                count(FieldClass::Real) + count(FieldClass::Benign),
                model.spec.races_refined,
                "{}",
                model.name
            );
            assert_eq!(count(FieldClass::Heavy), model.spec.inconclusive(), "{}", model.name);
            assert_eq!(count(FieldClass::Clean), model.spec.clean(), "{}", model.name);
        }
    }

    #[test]
    fn race_specs_resolve_against_the_parsed_program() {
        let model = generate_driver(&paper_table()[9]); // fakemodem
        let program = kiss_lang::parse_and_lower(&model.source).unwrap();
        for i in 0..model.fields.len() {
            let spec = model.race_spec(i);
            assert!(
                kiss_core::RaceTarget::resolve(&program, &spec).is_some(),
                "unresolvable spec {spec}"
            );
        }
    }

    #[test]
    fn refined_rules_remove_pnp_and_ioctl_pairs() {
        // A Pnp-spurious driver: refined harness has no pairs for
        // spurious fields.
        let gameenum = generate_driver(&paper_table()[10]);
        let spurious_idx =
            gameenum.fields.iter().position(|f| f.class == FieldClass::Spurious).unwrap();
        assert!(!gameenum.field_pairs(spurious_idx, false).is_empty());
        assert!(gameenum.field_pairs(spurious_idx, true).is_empty());
        // An Ioctl-spurious driver likewise.
        let moufiltr = generate_driver(&paper_table()[1]);
        let spurious_idx =
            moufiltr.fields.iter().position(|f| f.class == FieldClass::Spurious).unwrap();
        assert!(!moufiltr.field_pairs(spurious_idx, false).is_empty());
        assert!(moufiltr.field_pairs(spurious_idx, true).is_empty());
    }

    #[test]
    fn real_fields_keep_pairs_under_refined_rules() {
        let toastmon = generate_driver(&paper_table()[5]);
        let real_idx = toastmon.fields.iter().position(|f| f.class == FieldClass::Real).unwrap();
        let refined = toastmon.field_pairs(real_idx, true);
        assert!(
            refined.iter().any(|(a, b)| a != b),
            "cross-routine pair must survive refinement: {refined:?}"
        );
    }

    #[test]
    fn power_self_pairs_are_excluded_refined() {
        let model = generate_driver(&paper_table()[17]); // fdc has clean PowerSys readers
        if let Some(idx) = model
            .fields
            .iter()
            .position(|f| f.class == FieldClass::Clean && f.routines.contains(&"DispatchPowerSys".to_string()))
        {
            let refined = model.field_pairs(idx, true);
            assert!(!refined
                .iter()
                .any(|(a, b)| a == "DispatchPowerSys" && b == "DispatchPowerSys"));
        }
    }

    #[test]
    fn generated_loc_tracks_paper_kloc() {
        let corpus = generate_corpus();
        let small = corpus.iter().find(|m| m.name == "tracedrv").unwrap();
        let large = corpus.iter().find(|m| m.name == "fdc").unwrap();
        assert!(large.loc > small.loc * 5, "fdc ({}) >> tracedrv ({})", large.loc, small.loc);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_driver(&paper_table()[3]);
        let b = generate_driver(&paper_table()[3]);
        assert_eq!(a.source, b.source);
    }
}
