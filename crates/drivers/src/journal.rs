//! Append-only journal of per-field check outcomes.
//!
//! A full corpus run is hundreds of supervised checks; if the process
//! is killed halfway (machine reclaimed, ^C, OOM), re-running from
//! scratch wastes everything already computed. `table1`/`table2` (and
//! any caller of
//! [`crate::table::check_corpus_supervised`]) append one line per
//! completed `(driver, field)` pair; `--resume` replays the journal and
//! skips those pairs.
//!
//! The format is a deliberately trivial line-oriented text format —
//! one record per line, tab-separated, versioned:
//!
//! ```text
//! v1\t<driver>\t<field-index>\t<outcome>
//! ```
//!
//! where `<outcome>` is `race`, `norace`, `inconclusive:<reason>`,
//! `crashed:<cause>`, or `failed:<cause>`. Causes have control
//! characters replaced by spaces so they stay single-line. A torn final
//! line (the process died mid-write) is ignored on load, as is any
//! line that fails to parse: a journal can only *under*-report
//! completed work, never corrupt a resumed run.
//!
//! A second record type carries observability state across sessions:
//!
//! ```text
//! v1report\t<RunReport as one-line JSON>
//! ```
//!
//! Each session of a corpus run appends the
//! [`RunReport`] covering the checks *it* performed;
//! a resumed run merges the stored reports with its own so the final
//! metrics match an uninterrupted run. Parsers that only know `v1`
//! skip these lines (the tag differs), and vice versa.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

use kiss_obs::RunReport;
use kiss_seq::BoundReason;

use crate::table::FieldOutcome;

/// A resumable record of completed per-field checks.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
    completed: HashMap<(String, usize), FieldOutcome>,
    reports: Vec<RunReport>,
}

impl Journal {
    /// Opens (creating if absent) the journal at `path` and loads every
    /// well-formed record already in it.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Journal> {
        let path = path.as_ref().to_path_buf();
        let mut completed = HashMap::new();
        let mut reports = Vec::new();
        if path.exists() {
            let reader = BufReader::new(File::open(&path)?);
            for line in reader.lines() {
                let line = line?;
                if let Some(json) = line.strip_prefix("v1report\t") {
                    // A malformed report line is dropped like any other
                    // garbage: metrics under-report, results stay intact.
                    reports.extend(RunReport::from_json(json));
                } else if let Some(((driver, field), outcome)) = parse_line(&line) {
                    completed.insert((driver, field), outcome);
                }
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Journal { path, file, completed, reports })
    }

    /// The journal's location on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of completed `(driver, field)` records loaded or written.
    pub fn len(&self) -> usize {
        self.completed.len()
    }

    /// Whether the journal holds no records.
    pub fn is_empty(&self) -> bool {
        self.completed.is_empty()
    }

    /// The recorded outcome for a `(driver, field)` pair, if any.
    pub fn lookup(&self, driver: &str, field: usize) -> Option<FieldOutcome> {
        self.completed.get(&(driver.to_string(), field)).cloned()
    }

    /// Appends a record and flushes it to disk immediately, so a kill
    /// right after a slow check loses at most the in-flight field.
    pub fn record(
        &mut self,
        driver: &str,
        field: usize,
        outcome: &FieldOutcome,
    ) -> std::io::Result<()> {
        writeln!(
            self.file,
            "v1\t{}\t{}\t{}",
            sanitize(driver),
            field,
            encode_outcome(outcome)
        )?;
        self.file.flush()?;
        self.completed.insert((driver.to_string(), field), outcome.clone());
        Ok(())
    }

    /// Appends one session's [`RunReport`] and flushes it, so a
    /// `--resume` of a later session can account for this session's
    /// checks in its merged metrics.
    pub fn record_report(&mut self, report: &RunReport) -> std::io::Result<()> {
        writeln!(self.file, "v1report\t{}", report.to_json())?;
        self.file.flush()?;
        self.reports.push(report.clone());
        Ok(())
    }

    /// The per-session reports loaded from (or written to) the journal,
    /// in order.
    pub fn reports(&self) -> &[RunReport] {
        &self.reports
    }

    /// All stored reports merged with `current` — the metrics of the
    /// whole (possibly multi-session) run. Only reports loaded at
    /// [`Journal::open`] are merged, so record `current` *after*
    /// asking for the merge.
    pub fn merged_report(&self, current: &RunReport) -> RunReport {
        let mut merged = RunReport::default();
        for r in &self.reports {
            merged.merge(r);
        }
        merged.merge(current);
        merged
    }
}

/// Replaces tabs, newlines, and other control characters so arbitrary
/// causes cannot break the line format.
fn sanitize(s: &str) -> String {
    s.chars().map(|c| if c.is_control() || c == '\t' { ' ' } else { c }).collect()
}

fn encode_outcome(outcome: &FieldOutcome) -> String {
    match outcome {
        FieldOutcome::Race => "race".to_string(),
        FieldOutcome::NoRace => "norace".to_string(),
        FieldOutcome::Inconclusive(reason) => format!("inconclusive:{}", reason.as_str()),
        FieldOutcome::Crashed { cause } => format!("crashed:{}", sanitize(cause)),
        FieldOutcome::Failed { cause } => format!("failed:{}", sanitize(cause)),
    }
}

fn decode_outcome(s: &str) -> Option<FieldOutcome> {
    if s == "race" {
        return Some(FieldOutcome::Race);
    }
    if s == "norace" {
        return Some(FieldOutcome::NoRace);
    }
    if let Some(reason) = s.strip_prefix("inconclusive:") {
        return BoundReason::parse(reason).map(FieldOutcome::Inconclusive);
    }
    if let Some(cause) = s.strip_prefix("crashed:") {
        return Some(FieldOutcome::Crashed { cause: cause.to_string() });
    }
    if let Some(cause) = s.strip_prefix("failed:") {
        return Some(FieldOutcome::Failed { cause: cause.to_string() });
    }
    None
}

fn parse_line(line: &str) -> Option<((String, usize), FieldOutcome)> {
    let mut parts = line.splitn(4, '\t');
    if parts.next()? != "v1" {
        return None;
    }
    let driver = parts.next()?.to_string();
    let field: usize = parts.next()?.parse().ok()?;
    let outcome = decode_outcome(parts.next()?)?;
    Some(((driver, field), outcome))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("kiss-journal-test-{}-{name}.log", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn all_outcomes() -> Vec<FieldOutcome> {
        vec![
            FieldOutcome::Race,
            FieldOutcome::NoRace,
            FieldOutcome::Inconclusive(BoundReason::Steps),
            FieldOutcome::Inconclusive(BoundReason::Deadline),
            FieldOutcome::Crashed { cause: "index out of bounds: len 3".to_string() },
            FieldOutcome::Failed { cause: "race spec `x` did not resolve".to_string() },
        ]
    }

    #[test]
    fn outcomes_round_trip_through_reopen() {
        let path = tmp_path("roundtrip");
        {
            let mut j = Journal::open(&path).unwrap();
            for (i, o) in all_outcomes().iter().enumerate() {
                j.record("drv", i, o).unwrap();
            }
        }
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.len(), all_outcomes().len());
        for (i, o) in all_outcomes().iter().enumerate() {
            assert_eq!(j.lookup("drv", i).as_ref(), Some(o), "field {i}");
        }
        assert_eq!(j.lookup("other", 0), None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_and_garbage_lines_are_ignored() {
        let path = tmp_path("torn");
        std::fs::write(
            &path,
            "v1\tdrv\t0\trace\n\
             not a journal line\n\
             v0\tdrv\t1\tnorace\n\
             v1\tdrv\tnot-a-number\trace\n\
             v1\tdrv\t2\tinconclusive:bogus-reason\n\
             v1\tdrv\t3\tnora",
        )
        .unwrap();
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.len(), 1);
        assert_eq!(j.lookup("drv", 0), Some(FieldOutcome::Race));
        assert_eq!(j.lookup("drv", 3), None, "torn final line must not count");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn causes_with_control_characters_stay_single_line() {
        let path = tmp_path("sanitize");
        let nasty = FieldOutcome::Crashed { cause: "line1\nline2\ttabbed".to_string() };
        {
            let mut j = Journal::open(&path).unwrap();
            j.record("drv", 0, &nasty).unwrap();
            j.record("drv", 1, &FieldOutcome::Race).unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2, "{text:?}");
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.lookup("drv", 0), Some(FieldOutcome::Crashed { cause: "line1 line2 tabbed".to_string() }));
        assert_eq!(j.lookup("drv", 1), Some(FieldOutcome::Race));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reports_round_trip_and_merge_across_reopen() {
        let path = tmp_path("reports");
        let mut session1 = RunReport::default();
        session1.observe(&kiss_obs::CheckMetrics {
            check: "drv/0".into(),
            engine: "explicit".into(),
            verdict: "pass".into(),
            steps: 100,
            states: 40,
            wall_ms: 3,
            ..kiss_obs::CheckMetrics::default()
        });
        {
            let mut j = Journal::open(&path).unwrap();
            j.record("drv", 0, &FieldOutcome::NoRace).unwrap();
            j.record_report(&session1).unwrap();
        }
        let j = Journal::open(&path).unwrap();
        // Report lines do not leak into field records, and vice versa.
        assert_eq!(j.len(), 1);
        assert_eq!(j.reports(), &[session1.clone()]);
        let mut session2 = RunReport::default();
        session2.observe(&kiss_obs::CheckMetrics {
            check: "drv/1".into(),
            engine: "explicit".into(),
            verdict: "race".into(),
            steps: 50,
            states: 20,
            wall_ms: 2,
            ..kiss_obs::CheckMetrics::default()
        });
        let merged = j.merged_report(&session2);
        assert_eq!(merged.checks, 2);
        assert_eq!(merged.outcomes["pass"], 1);
        assert_eq!(merged.outcomes["race"], 1);
        assert_eq!(merged.engines["explicit"].steps, 150);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn later_records_override_earlier_ones() {
        let path = tmp_path("override");
        {
            let mut j = Journal::open(&path).unwrap();
            j.record("drv", 0, &FieldOutcome::Inconclusive(BoundReason::Steps)).unwrap();
            j.record("drv", 0, &FieldOutcome::Race).unwrap();
        }
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.lookup("drv", 0), Some(FieldOutcome::Race));
        std::fs::remove_file(&path).unwrap();
    }
}
