//! # kiss-drivers
//!
//! The evaluation substrate of the reproduction (paper Section 6):
//!
//! * [`bluetooth`] — the paper's Figure 2 model of the Windows
//!   Bluetooth driver, verbatim in KISS-C, in buggy and fixed variants;
//! * [`os_model`] — KISS-C models of the Windows synchronization
//!   routines the paper lists (`KeAcquireSpinLock`,
//!   `KeWaitForSingleObject`, `InterlockedIncrement`,
//!   `InterlockedCompareExchange`, ...);
//! * [`spec`] — the 18-driver inventory of Table 1/Table 2, with the
//!   paper's per-driver field counts and race outcomes;
//! * [`corpus`] — a deterministic generator that synthesizes a KISS-C
//!   driver for each spec entry, seeding the same defect classes the
//!   paper found: harness-dependent spurious races (concurrent-Pnp and
//!   concurrent-Ioctl pairs, rules A1–A3), persistent real races
//!   (unprotected read vs. locked write, the toaster/toastmon shape of
//!   Figure 6), benign lock-free counter reads (the fakemodem
//!   `OpenCount` shape), budget-exceeding fields, and clean
//!   lock-protected fields.
//!
//! The real driver sources are proprietary; DESIGN.md documents why
//! this synthetic corpus preserves the behaviour the experiment
//! measures.

pub mod batch;
pub mod bluetooth;
pub mod corpus;
pub mod journal;
pub mod table;
pub mod os_model;
pub mod spec;

pub use batch::{corpus_batch, BatchEntry};
pub use corpus::{generate_corpus, generate_driver, generate_driver_annotated, DriverModel, FieldClass, FieldInfo, IrpCategory};
pub use journal::Journal;
pub use spec::{paper_table, DriverSpec};
pub use table::{
    check_corpus, check_corpus_parallel, check_corpus_supervised, check_driver,
    check_driver_jobs, check_driver_supervised, supervised_field_outcome, DriverResult,
    FieldOutcome, FieldResult,
};
