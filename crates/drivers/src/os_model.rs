//! KISS-C models of Windows synchronization routines.
//!
//! The paper (§6): "SLAM already provided stubs for these calls; we
//! augmented them to model the synchronization operations accurately.
//! Some of the synchronization routines we modeled were
//! KeAcquireSpinLock, KeWaitForSingleObject,
//! InterlockedCompareExchange, InterlockedIncrement, etc."
//!
//! Each model is a KISS-C snippet built from `atomic` + `assume`, the
//! encoding of synchronization primitives shown in paper Section 3.

/// A spin lock over a named global integer cell (0 = free, 1 = held).
pub fn spin_lock(lock_global: &str) -> String {
    format!(
        "void KeAcquireSpinLock() {{ atomic {{ assume {lock_global} == 0; {lock_global} = 1; }} }}\n\
         void KeReleaseSpinLock() {{ atomic {{ {lock_global} = 0; }} }}\n"
    )
}

/// The interlocked-arithmetic family (hardware-atomic updates through a
/// pointer).
pub fn interlocked() -> &'static str {
    "int InterlockedIncrement(int *p) { int v; atomic { *p = *p + 1; v = *p; } return v; }\n\
     int InterlockedDecrement(int *p) { int v; atomic { *p = *p - 1; v = *p; } return v; }\n\
     int InterlockedCompareExchange(int *p, int exch, int cmp) {\n\
         int old;\n\
         atomic { old = *p; if (old == cmp) { *p = exch; } }\n\
         return old;\n\
     }\n"
}

/// Event wait/set (`KeWaitForSingleObject` blocks until the event cell
/// becomes true; `KeSetEvent` fires it).
pub fn events() -> &'static str {
    "void KeWaitForSingleObject(bool *ev) { assume *ev; }\n\
     void KeSetEvent(bool *ev) { *ev = true; }\n"
}

#[cfg(test)]
mod tests {
    use kiss_conc::Explorer;
    use kiss_exec::Module;

    fn module(src: &str) -> Module {
        Module::lower(kiss_lang::parse_and_lower(src).unwrap())
    }

    #[test]
    fn models_parse_inside_a_program() {
        let src = format!(
            "int g_lock;\nint counter;\nbool ev;\n{}{}{}\
             void main() {{ int v; KeAcquireSpinLock(); KeReleaseSpinLock(); \
             v = InterlockedIncrement(&counter); KeSetEvent(&ev); KeWaitForSingleObject(&ev); \
             assert v == 1; }}",
            super::spin_lock("g_lock"),
            super::interlocked(),
            super::events()
        );
        let m = module(&src);
        assert!(Explorer::new(&m).check().is_pass());
    }

    #[test]
    fn spin_lock_provides_mutual_exclusion() {
        let src = format!(
            "int g_lock;\nint shared;\nbool done;\n{}\
             void worker() {{ int t; KeAcquireSpinLock(); t = shared; shared = t + 1; KeReleaseSpinLock(); done = true; }}\n\
             void main() {{ int t; async worker(); KeAcquireSpinLock(); t = shared; shared = t + 1; KeReleaseSpinLock(); \
             if (done) {{ assert shared == 2; }} }}",
            super::spin_lock("g_lock")
        );
        let m = module(&src);
        assert!(Explorer::new(&m).check().is_pass());
    }

    #[test]
    fn interlocked_increment_is_atomic() {
        let src = format!(
            "int c;\nbool done;\n{}\
             void worker() {{ int v; v = InterlockedIncrement(&c); done = true; }}\n\
             void main() {{ int v; async worker(); v = InterlockedIncrement(&c); \
             if (done) {{ assert c == 2; }} }}",
            super::interlocked()
        );
        let m = module(&src);
        assert!(Explorer::new(&m).check().is_pass());
    }

    #[test]
    fn compare_exchange_takes_effect_only_on_match() {
        let src = format!(
            "int c;\n{}\
             void main() {{\n\
                int old;\n\
                c = 5;\n\
                old = InterlockedCompareExchange(&c, 9, 4);\n\
                assert old == 5;\n\
                assert c == 5;\n\
                old = InterlockedCompareExchange(&c, 9, 5);\n\
                assert old == 5;\n\
                assert c == 9;\n\
             }}",
            super::interlocked()
        );
        let m = module(&src);
        let v = Explorer::new(&m).check();
        assert!(v.is_pass(), "{v:?}");
    }

    #[test]
    fn event_wait_blocks_until_set() {
        let src = format!(
            "bool ev;\nint g;\n{}\
             void setter() {{ g = 1; KeSetEvent(&ev); }}\n\
             void main() {{ async setter(); KeWaitForSingleObject(&ev); assert g == 1; }}",
            super::events()
        );
        let m = module(&src);
        assert!(Explorer::new(&m).check().is_pass());
    }
}
