//! The 18-driver inventory of the paper's Tables 1 and 2.
//!
//! For each driver the paper reports: code size (KLOC), number of
//! device-extension fields, fields with reported races under the naive
//! harness (Table 1), fields proved race-free within the resource
//! bound (Table 1), and races remaining under the refined harness
//! (Table 2). The corpus generator seeds exactly these counts:
//!
//! * `spurious` fields race only under the naive harness (the
//!   difference between Table 1 and Table 2);
//! * `persistent` fields race under both (Table 2; includes the benign
//!   and confirmed-bug cases);
//! * `inconclusive` fields exhaust the resource bound
//!   (`fields − races − no_races` in Table 1);
//! * the rest are clean.

/// Per-driver corpus specification, mirroring one row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct DriverSpec {
    /// Driver name (paper's spelling, `/` replaced by `_`).
    pub name: &'static str,
    /// Paper code size in KLOC (drives padding in the generator).
    pub kloc: f64,
    /// Number of device-extension fields.
    pub fields: usize,
    /// Fields racing under the naive harness (Table 1 "Races").
    pub races_naive: usize,
    /// Fields proved race-free within the bound (Table 1 "No Races").
    pub no_races: usize,
    /// Fields racing under the refined harness (Table 2 "Races").
    pub races_refined: usize,
    /// Of the refined races, how many follow the benign lock-free
    /// counter-read shape (fakemodem's `OpenCount` discussion).
    pub benign: usize,
    /// Whether the driver's spurious races come from concurrent Ioctl
    /// IRPs (the kbfiltr/moufiltr case) rather than concurrent Pnp
    /// IRPs.
    pub ioctl_spurious: bool,
}

impl DriverSpec {
    /// Fields that race only under the naive harness.
    pub fn spurious(&self) -> usize {
        self.races_naive - self.races_refined
    }

    /// Fields whose check exceeds the resource bound.
    pub fn inconclusive(&self) -> usize {
        self.fields - self.races_naive - self.no_races
    }

    /// Clean fields (race-free and conclusive) — Table 1 "No Races".
    pub fn clean(&self) -> usize {
        self.no_races
    }
}

/// The paper's Table 1 + Table 2, one entry per driver.
pub fn paper_table() -> Vec<DriverSpec> {
    // name, kloc, fields, races(T1), no-races(T1), races(T2), benign, ioctl?
    type Row = (&'static str, f64, usize, usize, usize, usize, usize, bool);
    let rows: [Row; 18] = [
        ("tracedrv", 0.5, 3, 0, 3, 0, 0, false),
        ("moufiltr", 1.0, 14, 7, 7, 0, 0, true),
        ("kbfiltr", 1.1, 15, 8, 7, 0, 0, true),
        ("imca", 1.1, 5, 1, 4, 1, 0, false),
        ("startio", 1.1, 9, 0, 9, 0, 0, false),
        ("toaster_toastmon", 1.4, 8, 1, 7, 1, 0, false),
        ("diskperf", 2.4, 16, 2, 14, 0, 0, false),
        ("1394diag", 2.7, 18, 1, 17, 1, 0, false),
        ("1394vdev", 2.8, 18, 1, 17, 1, 0, false),
        ("fakemodem", 2.9, 39, 6, 31, 6, 1, false),
        ("gameenum", 3.9, 45, 11, 24, 1, 0, false),
        ("toaster_bus", 5.0, 30, 0, 22, 0, 0, false),
        ("serenum", 5.9, 41, 5, 21, 2, 0, false),
        ("toaster_func", 6.6, 24, 7, 17, 5, 0, false),
        ("mouclass", 7.0, 34, 1, 32, 1, 0, false),
        ("kbdclass", 7.4, 36, 1, 33, 1, 0, false),
        ("mouser", 7.6, 34, 1, 27, 1, 0, false),
        ("fdc", 9.2, 92, 18, 54, 9, 0, false),
    ];
    rows.into_iter()
        .map(|(name, kloc, fields, races_naive, no_races, races_refined, benign, ioctl)| DriverSpec {
            name,
            kloc,
            fields,
            races_naive,
            no_races,
            races_refined,
            benign,
            ioctl_spurious: ioctl,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_the_paper() {
        let table = paper_table();
        assert_eq!(table.len(), 18);
        let kloc: f64 = table.iter().map(|d| d.kloc).sum();
        assert!((kloc - 69.6).abs() < 0.01, "total KLOC is 69.6, got {kloc}");
        assert_eq!(table.iter().map(|d| d.fields).sum::<usize>(), 481);
        assert_eq!(table.iter().map(|d| d.races_naive).sum::<usize>(), 71);
        assert_eq!(table.iter().map(|d| d.no_races).sum::<usize>(), 346);
        assert_eq!(table.iter().map(|d| d.races_refined).sum::<usize>(), 30);
    }

    #[test]
    fn derived_counts_are_consistent() {
        for d in paper_table() {
            assert!(d.races_refined <= d.races_naive, "{}", d.name);
            assert!(d.benign <= d.races_refined, "{}", d.name);
            assert_eq!(d.fields, d.races_naive + d.no_races + d.inconclusive(), "{}", d.name);
        }
        // Spurious races total 71 - 30 = 41, inconclusive 481-71-346=64.
        let table = paper_table();
        assert_eq!(table.iter().map(|d| d.spurious()).sum::<usize>(), 41);
        assert_eq!(table.iter().map(|d| d.inconclusive()).sum::<usize>(), 64);
    }

    #[test]
    fn ioctl_drivers_lose_all_races_when_refined() {
        for d in paper_table().iter().filter(|d| d.ioctl_spurious) {
            assert_eq!(d.races_refined, 0, "{}: Ioctl-pair races are all spurious", d.name);
            assert!(d.races_naive > 0);
        }
    }
}
