//! Per-field race checking over the corpus — the machinery behind
//! Tables 1 and 2.
//!
//! "For each device driver, we checked for race conditions on each
//! field of the device extension separately" under "a resource bound of
//! 20 minutes of CPU time and 800MB of memory" (paper §6). Here each
//! field gets a deterministic step/state budget instead; the harness
//! for a field runs the dispatch routines that access it, paired
//! according to the naive or refined OS model.

use kiss_core::checker::{Kiss, KissOutcome};
use kiss_core::harness::dispatch_harness;
use kiss_seq::Budget;

use crate::corpus::{DriverModel, FieldClass};

/// Outcome of one per-field check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldOutcome {
    /// A race was reported.
    Race,
    /// The check completed without reporting a race.
    NoRace,
    /// The check exceeded the resource bound.
    Inconclusive,
}

/// Result for one field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldResult {
    /// Field index within the extension struct.
    pub field: usize,
    /// Seeded class (ground truth from the generator).
    pub class: FieldClass,
    /// The checker's verdict.
    pub outcome: FieldOutcome,
}

/// One Table 1 / Table 2 row.
#[derive(Debug, Clone)]
pub struct DriverResult {
    /// Driver name.
    pub name: String,
    /// Generated source lines.
    pub loc: usize,
    /// Number of extension fields.
    pub fields: usize,
    /// Fields with reported races.
    pub races: usize,
    /// Fields proved race-free within the bound.
    pub no_races: usize,
    /// Fields whose check exceeded the bound.
    pub inconclusive: usize,
    /// Per-field details.
    pub results: Vec<FieldResult>,
}

/// The default per-field budget (the analogue of the paper's
/// 20 min / 800 MB bound).
pub fn default_budget() -> Budget {
    Budget { max_steps: 3_000_000, max_states: 60_000 }
}

/// Checks every field of one driver.
///
/// # Panics
///
/// Panics if the generated source fails to parse (a generator bug,
/// covered by tests).
pub fn check_driver(model: &DriverModel, refined: bool, budget: Budget) -> DriverResult {
    let program = kiss_lang::parse_and_lower(&model.source)
        .unwrap_or_else(|e| panic!("driver {} does not parse: {e}", model.name));
    let mut results = Vec::with_capacity(model.fields.len());
    for (i, field) in model.fields.iter().enumerate() {
        let pairs = model.field_pairs(i, refined);
        let outcome = if pairs.is_empty() {
            // No two routines may access this field concurrently: the
            // refined OS model rules the race out without a search.
            FieldOutcome::NoRace
        } else {
            let pair_refs: Vec<(&str, &str)> =
                pairs.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
            let harnessed = dispatch_harness(&program, Some("DriverInit"), &pair_refs)
                .expect("generated routines exist and take no parameters");
            let spec = model.race_spec(i);
            match Kiss::new().with_budget(budget).check_race_spec(&harnessed, &spec) {
                Some(KissOutcome::RaceDetected(_)) => FieldOutcome::Race,
                Some(KissOutcome::NoErrorFound(_)) => FieldOutcome::NoRace,
                Some(KissOutcome::Inconclusive { .. }) => FieldOutcome::Inconclusive,
                Some(other) => panic!("unexpected outcome for {}.{}: {other:?}", model.name, field.name),
                None => panic!("race spec {spec} did not resolve"),
            }
        };
        results.push(FieldResult { field: i, class: field.class, outcome });
    }
    summarize(model, results)
}

fn summarize(model: &DriverModel, results: Vec<FieldResult>) -> DriverResult {
    let races = results.iter().filter(|r| r.outcome == FieldOutcome::Race).count();
    let no_races = results.iter().filter(|r| r.outcome == FieldOutcome::NoRace).count();
    let inconclusive = results.iter().filter(|r| r.outcome == FieldOutcome::Inconclusive).count();
    DriverResult {
        name: model.name.clone(),
        loc: model.loc,
        fields: model.fields.len(),
        races,
        no_races,
        inconclusive,
        results,
    }
}

/// Checks the whole corpus, invoking `progress` after each driver.
pub fn check_corpus(
    models: &[DriverModel],
    refined: bool,
    budget: Budget,
    mut progress: impl FnMut(&DriverResult),
) -> Vec<DriverResult> {
    models
        .iter()
        .map(|m| {
            let r = check_driver(m, refined, budget);
            progress(&r);
            r
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::generate_driver;
    use crate::spec::paper_table;

    fn test_budget() -> Budget {
        // Small enough to keep tests quick, large enough for every
        // non-heavy field.
        Budget { max_steps: 1_500_000, max_states: 25_000 }
    }

    #[test]
    fn toastmon_row_matches_table_1_and_2() {
        let spec = paper_table().into_iter().find(|d| d.name == "toaster_toastmon").unwrap();
        let model = generate_driver(&spec);
        let naive = check_driver(&model, false, test_budget());
        assert_eq!(naive.races, spec.races_naive, "naive races: {naive:?}");
        assert_eq!(naive.no_races, spec.no_races, "naive no-races: {naive:?}");
        assert_eq!(naive.inconclusive, spec.inconclusive());
        let refined = check_driver(&model, true, test_budget());
        assert_eq!(refined.races, spec.races_refined, "refined races: {refined:?}");
    }

    #[test]
    fn tracedrv_is_fully_clean() {
        let spec = paper_table().into_iter().find(|d| d.name == "tracedrv").unwrap();
        let model = generate_driver(&spec);
        let naive = check_driver(&model, false, test_budget());
        assert_eq!(naive.races, 0);
        assert_eq!(naive.no_races, 3);
        assert_eq!(naive.inconclusive, 0);
    }

    #[test]
    fn moufiltr_ioctl_races_vanish_when_refined() {
        let spec = paper_table().into_iter().find(|d| d.name == "moufiltr").unwrap();
        let model = generate_driver(&spec);
        let naive = check_driver(&model, false, test_budget());
        assert_eq!(naive.races, 7);
        let refined = check_driver(&model, true, test_budget());
        assert_eq!(refined.races, 0);
    }

    #[test]
    fn outcomes_follow_seeded_classes() {
        let spec = paper_table().into_iter().find(|d| d.name == "imca").unwrap();
        let model = generate_driver(&spec);
        let naive = check_driver(&model, false, test_budget());
        for r in &naive.results {
            let expected = match r.class {
                FieldClass::Spurious | FieldClass::Real | FieldClass::Benign => FieldOutcome::Race,
                FieldClass::Heavy => FieldOutcome::Inconclusive,
                FieldClass::Clean => FieldOutcome::NoRace,
            };
            assert_eq!(r.outcome, expected, "field {} class {:?}", r.field, r.class);
        }
    }
}

#[cfg(test)]
mod benign_annotation_tests {
    use super::*;
    use crate::corpus::{generate_driver, generate_driver_annotated};
    use crate::spec::paper_table;

    /// The paper's future-work scenario, end to end: annotating the
    /// fakemodem-style `OpenCount` read as benign removes exactly the
    /// benign warnings from the Table 2 row.
    #[test]
    fn annotating_benign_reads_removes_their_table2_warnings() {
        let spec = paper_table().into_iter().find(|d| d.name == "fakemodem").unwrap();
        assert_eq!(spec.benign, 1);
        let budget = Budget { max_steps: 1_500_000, max_states: 25_000 };
        let plain = check_driver(&generate_driver(&spec), true, budget);
        assert_eq!(plain.races, spec.races_refined); // 6
        let annotated = check_driver(&generate_driver_annotated(&spec), true, budget);
        assert_eq!(
            annotated.races,
            spec.races_refined - spec.benign,
            "the annotated benign read must drop out: {annotated:?}"
        );
    }
}
