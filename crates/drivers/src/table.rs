//! Per-field race checking over the corpus — the machinery behind
//! Tables 1 and 2.
//!
//! "For each device driver, we checked for race conditions on each
//! field of the device extension separately" under "a resource bound of
//! 20 minutes of CPU time and 800MB of memory" (paper §6). Here each
//! field gets a deterministic step/state budget instead; the harness
//! for a field runs the dispatch routines that access it, paired
//! according to the naive or refined OS model.

use std::collections::VecDeque;
use std::sync::{mpsc, Mutex};

use kiss_core::checker::{Kiss, KissOutcome};
use kiss_core::harness::dispatch_harness;
use kiss_core::supervisor::{Supervised, Supervisor};
use kiss_lang::Program;
use kiss_obs::{ChannelSink, CheckMetrics, Event, Obs};
use kiss_seq::{BoundReason, Budget};

use crate::corpus::{DriverModel, FieldClass};
use crate::journal::Journal;

/// Outcome of one per-field check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldOutcome {
    /// A race was reported.
    Race,
    /// The check completed without reporting a race.
    NoRace,
    /// The check exceeded the resource bound on the recorded axis.
    Inconclusive(BoundReason),
    /// The check panicked; the supervisor isolated it and the corpus
    /// run continued.
    Crashed {
        /// The panic payload.
        cause: String,
    },
    /// The check could not run (malformed model, unresolvable harness
    /// or race spec, runtime error in the generated program).
    Failed {
        /// What went wrong.
        cause: String,
    },
}

impl FieldOutcome {
    /// `true` when the check produced a definite race/no-race answer.
    pub fn is_definite(&self) -> bool {
        matches!(self, FieldOutcome::Race | FieldOutcome::NoRace)
    }
}

/// Result for one field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldResult {
    /// Field index within the extension struct.
    pub field: usize,
    /// Seeded class (ground truth from the generator).
    pub class: FieldClass,
    /// The checker's verdict.
    pub outcome: FieldOutcome,
}

/// One Table 1 / Table 2 row.
#[derive(Debug, Clone)]
pub struct DriverResult {
    /// Driver name.
    pub name: String,
    /// Generated source lines.
    pub loc: usize,
    /// Number of extension fields.
    pub fields: usize,
    /// Fields with reported races.
    pub races: usize,
    /// Fields proved race-free within the bound.
    pub no_races: usize,
    /// Fields whose check exceeded the bound.
    pub inconclusive: usize,
    /// Fields whose check panicked (isolated by the supervisor).
    pub crashed: usize,
    /// Fields whose check could not run at all.
    pub failed: usize,
    /// Per-field details.
    pub results: Vec<FieldResult>,
}

/// The default per-field budget (the analogue of the paper's
/// 20 min / 800 MB bound).
pub fn default_budget() -> Budget {
    Budget::steps_states(3_000_000, 60_000)
}

/// Checks every field of one driver. Never panics: a model that does
/// not parse, a harness that cannot be built, or a spec that does not
/// resolve yields per-field [`FieldOutcome::Failed`] results instead.
pub fn check_driver(model: &DriverModel, refined: bool, budget: Budget) -> DriverResult {
    check_driver_supervised(model, refined, &Supervisor::new(budget).with_retries(0), None)
}

/// Like [`check_driver`], with the full robustness layer: each field
/// check runs under `supervisor` (panic isolation, deadline,
/// cancellation, retry-with-escalation), and completed fields are
/// recorded in — and on resume skipped via — the optional `journal`.
pub fn check_driver_supervised(
    model: &DriverModel,
    refined: bool,
    supervisor: &Supervisor,
    mut journal: Option<&mut Journal>,
) -> DriverResult {
    let program = match kiss_lang::parse_and_lower(&model.source) {
        Ok(p) => p,
        Err(e) => return fail_all_fields(model, supervisor, &e.to_string()),
    };
    let mut results = Vec::with_capacity(model.fields.len());
    for (i, field) in model.fields.iter().enumerate() {
        if let Some(done) = journal.as_ref().and_then(|j| j.lookup(&model.name, i)) {
            results.push(FieldResult { field: i, class: field.class, outcome: done });
            continue;
        }
        let outcome = check_field(model, &program, i, refined, supervisor);
        // Cancellation is a shutdown artifact, not a result: leave it
        // out of the journal so a resumed run re-checks the field.
        let journalable = !matches!(outcome, FieldOutcome::Inconclusive(BoundReason::Cancelled));
        if journalable {
            if let Some(j) = journal.as_deref_mut() {
                // A journal write failure must not kill the run; the
                // check result itself is still good.
                let _ = j.record(&model.name, i, &outcome);
            }
        }
        results.push(FieldResult { field: i, class: field.class, outcome });
    }
    summarize(model, results)
}

/// The whole model is unusable (it does not parse); fail every field,
/// but keep the row so corpus totals stay aligned with the spec.
fn fail_all_fields(model: &DriverModel, supervisor: &Supervisor, error: &str) -> DriverResult {
    let cause = format!("driver {} does not parse: {error}", model.name);
    let results = model
        .fields
        .iter()
        .enumerate()
        .map(|(i, f)| {
            emit_searchless(supervisor.observer(), &format!("{}/{}", model.name, i), "failed");
            FieldResult {
                field: i,
                class: f.class,
                outcome: FieldOutcome::Failed { cause: cause.clone() },
            }
        })
        .collect();
    summarize(model, results)
}

/// Messages the worker pool pushes through its shared channel:
/// forwarded observability events multiplexed with completed field
/// results (std's mpsc has no `select`, so one channel carries both).
enum WorkerMsg {
    Event(Event),
    Done(usize, FieldOutcome),
}

impl From<Event> for WorkerMsg {
    fn from(event: Event) -> Self {
        WorkerMsg::Event(event)
    }
}

/// Like [`check_driver_supervised`], checking fields on `jobs` worker
/// threads (`jobs <= 1` is exactly the serial path). `jobs` is a cap,
/// not a demand: the pool never exceeds the remaining fields or the
/// machine's hardware threads, and degenerates to the serial path when
/// only one worker would run.
///
/// The pool is a [`std::thread::scope`] over a shared
/// `Mutex<VecDeque>` work queue with heavy fields scheduled first, so
/// the longest checks never straggle behind an almost-drained queue.
/// The run is observably identical to a serial one:
///
/// * **results** are collected into per-field slots and summarized in
///   field order, so the table row is byte-identical;
/// * **journal records** are written by the single draining thread in
///   field-index order (the decided prefix), so an uninterrupted
///   parallel run's journal is byte-identical to a serial run's — and
///   an interrupted one can only under-report completed work;
/// * **events** from workers are funneled through one channel and
///   replayed into the real sink by the draining thread, so
///   single-threaded sinks need no changes; per-check event streams
///   interleave across checks exactly as concurrent wall-clock does;
/// * **cancellation** fans out through the supervisor's shared
///   [`kiss_seq::CancelToken`]: workers keep draining the queue, but
///   every remaining check completes immediately as
///   `Inconclusive(Cancelled)` (never journaled).
pub fn check_driver_jobs(
    model: &DriverModel,
    refined: bool,
    supervisor: &Supervisor,
    mut journal: Option<&mut Journal>,
    jobs: usize,
) -> DriverResult {
    if jobs <= 1 {
        return check_driver_supervised(model, refined, supervisor, journal);
    }
    let program = match kiss_lang::parse_and_lower(&model.source) {
        Ok(p) => p,
        Err(e) => return fail_all_fields(model, supervisor, &e.to_string()),
    };
    let n = model.fields.len();
    let mut slots: Vec<Option<FieldResult>> = vec![None; n];
    let mut from_journal = vec![false; n];
    let mut todo: Vec<usize> = Vec::new();
    for (i, field) in model.fields.iter().enumerate() {
        if let Some(done) = journal.as_ref().and_then(|j| j.lookup(&model.name, i)) {
            slots[i] = Some(FieldResult { field: i, class: field.class, outcome: done });
            from_journal[i] = true;
        } else {
            todo.push(i);
        }
    }
    // Longest-first schedule; ties keep field order.
    todo.sort_by_key(|&i| (model.fields[i].class != FieldClass::Heavy, i));
    // More workers than hardware threads only adds scheduler churn:
    // every check is CPU-bound, so clamp to the machine, and fall back
    // to the serial path when only one worker would actually run.
    let cores = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    let workers = jobs.min(todo.len()).min(cores);
    if workers <= 1 {
        // The serial path redoes the journal lookups itself.
        return check_driver_supervised(model, refined, supervisor, journal);
    }
    let obs_on = supervisor.observer().is_enabled();
    let queue = Mutex::new(VecDeque::from(todo));
    let (tx, rx) = mpsc::channel::<WorkerMsg>();
    std::thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            // When observability is off, forwarding every event through
            // the channel is pure overhead; give workers a dead sink.
            let worker_obs =
                if obs_on { Obs::new(ChannelSink(tx.clone())) } else { Obs::off() };
            let worker = supervisor.clone().with_observer(worker_obs);
            let queue = &queue;
            let program = &program;
            s.spawn(move || loop {
                let next = queue.lock().expect("work queue lock").pop_front();
                let Some(i) = next else { break };
                let outcome = check_field(model, program, i, refined, &worker);
                let _ = tx.send(WorkerMsg::Done(i, outcome));
            });
        }
        // Close the drain loop's own sender; `rx` ends when the last
        // worker finishes.
        drop(tx);
        let obs = supervisor.observer();
        let mut next_journal = 0usize;
        for msg in rx {
            match msg {
                WorkerMsg::Event(event) => obs.forward(&event),
                WorkerMsg::Done(i, outcome) => {
                    slots[i] =
                        Some(FieldResult { field: i, class: model.fields[i].class, outcome });
                    // Journal the decided prefix, in field order.
                    while next_journal < n {
                        let Some(r) = &slots[next_journal] else { break };
                        let journalable = !from_journal[next_journal]
                            && !matches!(
                                r.outcome,
                                FieldOutcome::Inconclusive(BoundReason::Cancelled)
                            );
                        if journalable {
                            if let Some(j) = journal.as_deref_mut() {
                                // A journal write failure must not kill
                                // the run; the result itself is good.
                                let _ = j.record(&model.name, next_journal, &r.outcome);
                            }
                        }
                        next_journal += 1;
                    }
                }
            }
        }
    });
    let results = slots.into_iter().map(|r| r.expect("every field checked")).collect();
    summarize(model, results)
}

/// Checks one field, resolving the harness and spec outside the
/// supervised closure so setup errors surface as
/// [`FieldOutcome::Failed`] rather than crashes.
fn check_field(
    model: &DriverModel,
    program: &Program,
    field: usize,
    refined: bool,
    supervisor: &Supervisor,
) -> FieldOutcome {
    let label = format!("{}/{}", model.name, field);
    let pairs = model.field_pairs(field, refined);
    if pairs.is_empty() {
        // No two routines may access this field concurrently: the
        // refined OS model rules the race out without a search.
        emit_searchless(supervisor.observer(), &label, "pass");
        return FieldOutcome::NoRace;
    }
    let pair_refs: Vec<(&str, &str)> = pairs.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
    let harnessed = match dispatch_harness(program, Some("DriverInit"), &pair_refs) {
        Ok(h) => h,
        Err(e) => {
            emit_searchless(supervisor.observer(), &label, "failed");
            return FieldOutcome::Failed { cause: format!("harness: {e}") };
        }
    };
    let spec = model.race_spec(field);
    let target = match kiss_core::RaceTarget::resolve(&harnessed, &spec) {
        Some(t) => t,
        None => {
            emit_searchless(supervisor.observer(), &label, "failed");
            return FieldOutcome::Failed { cause: format!("race spec `{spec}` did not resolve") };
        }
    };
    let explore_jobs = supervisor.explore_jobs();
    let run = supervisor.run_scoped(&label, |budget, cancel, obs| {
        Kiss::new()
            .with_budget(budget)
            .with_cancel(cancel)
            .with_observer(obs.clone())
            .with_explore_jobs(explore_jobs)
            .check_race(&harnessed, target)
    });
    field_outcome(run.result)
}

/// Emits a synthetic `check_started`/`check_finished` pair for a field
/// decided (or abandoned) without running a search, so trace consumers
/// can rely on started == finished and the outcome histogram covering
/// *every* field.
fn emit_searchless(obs: &Obs, label: &str, verdict: &str) {
    let obs = obs.with_label(label);
    obs.emit(|check| Event::CheckStarted { check: check.to_string() });
    obs.emit(|check| Event::CheckFinished {
        metrics: CheckMetrics {
            check: check.to_string(),
            engine: "none".to_string(),
            verdict: verdict.to_string(),
            ..CheckMetrics::default()
        },
    });
}

/// Runs one field-check closure under `supervisor` and maps the result
/// into the [`FieldOutcome`] taxonomy. Public so integration tests can
/// inject panicking or divergent checks without a generator hook.
pub fn supervised_field_outcome(
    supervisor: &Supervisor,
    check: impl FnMut(Budget, kiss_seq::CancelToken) -> KissOutcome,
) -> FieldOutcome {
    field_outcome(supervisor.run(check).result)
}

fn field_outcome(result: Supervised) -> FieldOutcome {
    match result {
        Supervised::Crashed { cause } => FieldOutcome::Crashed { cause },
        Supervised::Completed(KissOutcome::RaceDetected(_)) => FieldOutcome::Race,
        Supervised::Completed(KissOutcome::NoErrorFound(_)) => FieldOutcome::NoRace,
        Supervised::Completed(KissOutcome::Inconclusive { reason, .. }) => {
            FieldOutcome::Inconclusive(reason)
        }
        Supervised::Completed(KissOutcome::AssertionViolation(_)) => {
            FieldOutcome::Failed { cause: "assertion violation in race harness".to_string() }
        }
        // Race harnesses never run liveness checks; reaching here means
        // the harness was miswired, which is a failure, not a race.
        Supervised::Completed(KissOutcome::LivenessViolated(_)) => {
            FieldOutcome::Failed { cause: "liveness verdict in race harness".to_string() }
        }
        Supervised::Completed(KissOutcome::RuntimeError(e)) => {
            FieldOutcome::Failed { cause: format!("runtime error: {e}") }
        }
        Supervised::Completed(KissOutcome::TransformFailed(e)) => {
            FieldOutcome::Failed { cause: format!("transform failed: {e:?}") }
        }
    }
}

fn summarize(model: &DriverModel, results: Vec<FieldResult>) -> DriverResult {
    let count = |f: fn(&FieldOutcome) -> bool| results.iter().filter(|r| f(&r.outcome)).count();
    DriverResult {
        name: model.name.clone(),
        loc: model.loc,
        fields: model.fields.len(),
        races: count(|o| matches!(o, FieldOutcome::Race)),
        no_races: count(|o| matches!(o, FieldOutcome::NoRace)),
        inconclusive: count(|o| matches!(o, FieldOutcome::Inconclusive(_))),
        crashed: count(|o| matches!(o, FieldOutcome::Crashed { .. })),
        failed: count(|o| matches!(o, FieldOutcome::Failed { .. })),
        results,
    }
}

/// Checks the whole corpus, invoking `progress` after each driver.
pub fn check_corpus(
    models: &[DriverModel],
    refined: bool,
    budget: Budget,
    mut progress: impl FnMut(&DriverResult),
) -> Vec<DriverResult> {
    models
        .iter()
        .map(|m| {
            let r = check_driver(m, refined, budget);
            progress(&r);
            r
        })
        .collect()
}

/// Checks the whole corpus under a supervisor, journaling per-field
/// outcomes so a killed run can resume where it stopped. Once the
/// supervisor's cancellation token fires, remaining fields complete as
/// [`FieldOutcome::Inconclusive`]`(Cancelled)` without being journaled
/// (cancellation is not a result worth resuming *from*), and remaining
/// drivers are skipped entirely.
pub fn check_corpus_supervised(
    models: &[DriverModel],
    refined: bool,
    supervisor: &Supervisor,
    journal: Option<&mut Journal>,
    progress: impl FnMut(&DriverResult),
) -> Vec<DriverResult> {
    check_corpus_parallel(models, refined, supervisor, journal, 1, progress)
}

/// Like [`check_corpus_supervised`], with each driver's fields checked
/// on `jobs` worker threads (see [`check_driver_jobs`]). Drivers still
/// run one at a time, so `progress` fires in corpus order and rendered
/// rows stream exactly as in a serial run.
pub fn check_corpus_parallel(
    models: &[DriverModel],
    refined: bool,
    supervisor: &Supervisor,
    mut journal: Option<&mut Journal>,
    jobs: usize,
    mut progress: impl FnMut(&DriverResult),
) -> Vec<DriverResult> {
    let mut rows = Vec::with_capacity(models.len());
    for m in models {
        if supervisor.cancel_token().is_cancelled() {
            break;
        }
        let r = check_driver_jobs(m, refined, supervisor, journal.as_deref_mut(), jobs);
        progress(&r);
        rows.push(r);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::generate_driver;
    use crate::spec::paper_table;

    fn test_budget() -> Budget {
        // Small enough to keep tests quick, large enough for every
        // non-heavy field.
        Budget::steps_states(1_500_000, 25_000)
    }

    #[test]
    fn toastmon_row_matches_table_1_and_2() {
        let spec = paper_table().into_iter().find(|d| d.name == "toaster_toastmon").unwrap();
        let model = generate_driver(&spec);
        let naive = check_driver(&model, false, test_budget());
        assert_eq!(naive.races, spec.races_naive, "naive races: {naive:?}");
        assert_eq!(naive.no_races, spec.no_races, "naive no-races: {naive:?}");
        assert_eq!(naive.inconclusive, spec.inconclusive());
        let refined = check_driver(&model, true, test_budget());
        assert_eq!(refined.races, spec.races_refined, "refined races: {refined:?}");
    }

    #[test]
    fn tracedrv_is_fully_clean() {
        let spec = paper_table().into_iter().find(|d| d.name == "tracedrv").unwrap();
        let model = generate_driver(&spec);
        let naive = check_driver(&model, false, test_budget());
        assert_eq!(naive.races, 0);
        assert_eq!(naive.no_races, 3);
        assert_eq!(naive.inconclusive, 0);
    }

    #[test]
    fn moufiltr_ioctl_races_vanish_when_refined() {
        let spec = paper_table().into_iter().find(|d| d.name == "moufiltr").unwrap();
        let model = generate_driver(&spec);
        let naive = check_driver(&model, false, test_budget());
        assert_eq!(naive.races, 7);
        let refined = check_driver(&model, true, test_budget());
        assert_eq!(refined.races, 0);
    }

    #[test]
    fn outcomes_follow_seeded_classes() {
        let spec = paper_table().into_iter().find(|d| d.name == "imca").unwrap();
        let model = generate_driver(&spec);
        let naive = check_driver(&model, false, test_budget());
        for r in &naive.results {
            let matches = match r.class {
                FieldClass::Spurious | FieldClass::Real | FieldClass::Benign => {
                    r.outcome == FieldOutcome::Race
                }
                FieldClass::Heavy => matches!(r.outcome, FieldOutcome::Inconclusive(_)),
                FieldClass::Clean => r.outcome == FieldOutcome::NoRace,
            };
            assert!(matches, "field {} class {:?} got {:?}", r.field, r.class, r.outcome);
        }
    }

    #[test]
    fn heavy_fields_record_which_axis_tripped() {
        let spec = paper_table().into_iter().find(|d| d.name == "mouser").unwrap();
        let model = generate_driver(&spec);
        // Heavy fields are built to exhaust any budget, so a tiny one
        // keeps this fast; other fields' outcomes are irrelevant here.
        let naive = check_driver(&model, false, Budget::steps_states(50_000, 5_000));
        let heavy: Vec<_> =
            naive.results.iter().filter(|r| r.class == FieldClass::Heavy).collect();
        assert!(!heavy.is_empty());
        for r in heavy {
            let FieldOutcome::Inconclusive(reason) = &r.outcome else {
                panic!("heavy field {} got {:?}", r.field, r.outcome);
            };
            assert!(
                matches!(reason, kiss_seq::BoundReason::Steps | kiss_seq::BoundReason::States),
                "{reason:?}"
            );
        }
    }
}

#[cfg(test)]
mod benign_annotation_tests {
    use super::*;
    use crate::corpus::{generate_driver, generate_driver_annotated};
    use crate::spec::paper_table;

    /// The paper's future-work scenario, end to end: annotating the
    /// fakemodem-style `OpenCount` read as benign removes exactly the
    /// benign warnings from the Table 2 row.
    #[test]
    fn annotating_benign_reads_removes_their_table2_warnings() {
        let spec = paper_table().into_iter().find(|d| d.name == "fakemodem").unwrap();
        assert_eq!(spec.benign, 1);
        let budget = Budget::steps_states(1_500_000, 25_000);
        let plain = check_driver(&generate_driver(&spec), true, budget);
        assert_eq!(plain.races, spec.races_refined); // 6
        let annotated = check_driver(&generate_driver_annotated(&spec), true, budget);
        assert_eq!(
            annotated.races,
            spec.races_refined - spec.benign,
            "the annotated benign read must drop out: {annotated:?}"
        );
    }
}
