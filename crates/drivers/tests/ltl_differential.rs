//! Differential suite: safety formulas through the liveness engine.
//!
//! `G !bad` is a safety property — it is violated exactly when a state
//! with `bad != 0` is reachable. That gives two independent oracles for
//! one corpus: the LTL product engine checking `G !bad`, and the
//! assertion engine checking a variant of the same program where every
//! `bad = 1;` is immediately followed by `assert bad == 0;`. The two
//! engines share the transform but nothing downstream of it (tableau +
//! product BFS vs the sequential checkers), so agreement over the
//! corpus is real evidence that the product construction is sound for
//! the safety fragment.
//!
//! The corpus deliberately avoids source-level `assume`: the product
//! engine judges complete runs only (truncated prefixes are safety
//! coverage, not infinite behaviors), and every program here reaches
//! `bad = 1` on a completed run whenever it reaches it at all, so the
//! verdicts must match exactly.

use kiss_core::checker::{Kiss, KissOutcome};
use kiss_lang::Program;

/// One corpus entry: a label, a source with `int bad;` and zero or
/// more `bad = 1;` sites, and whether `bad` is reachable at `ts = 0`.
const CORPUS: &[(&str, &str, bool)] = &[
    (
        "straight-line",
        "int bad; void main() { bad = 1; }",
        true,
    ),
    (
        "dead-branch",
        "int bad; int x; void main() { x = 0; if (x == 1) { bad = 1; } }",
        false,
    ),
    (
        "live-branch",
        "int bad; int x; void main() { x = 2; if (x == 2) { bad = 1; } }",
        true,
    ),
    (
        "loop-then-bad",
        "int bad; int i; void main() { while (i != 3) { i = i + 1; } bad = 1; }",
        true,
    ),
    (
        "async-witness",
        "int bad; void worker() { bad = 1; } void main() { async worker(); }",
        true,
    ),
    (
        // The fork runs inline at `ts = 0`, before the flag is raised;
        // the write to `bad` is only reachable with a context switch.
        "async-needs-a-switch",
        "int bad; int flag;
         void worker() { if (flag == 1) { bad = 1; } }
         void main() { async worker(); flag = 1; }",
        false,
    ),
    (
        "nondet-choice",
        "int bad; void main() { choice { skip; bad = 1; } }",
        true,
    ),
];

fn prog(src: &str) -> Program {
    kiss_lang::parse_and_lower(src).expect("corpus entry parses")
}

/// The assertion-oracle variant: every write of `bad` immediately
/// asserts it away, so the assertion checker trips exactly where the
/// safety formula does.
fn assert_variant(src: &str) -> String {
    assert!(src.contains("bad = 1;"), "corpus entries must name their bad site");
    src.replace("bad = 1;", "bad = 1; assert bad == 0;")
}

#[test]
fn product_checker_agrees_with_the_assertion_checker_on_safety() {
    let formula = kiss_ltl::parse("G !bad").unwrap();
    for max_ts in [0usize, 1] {
        for (label, src, reachable_at_zero) in CORPUS {
            let kiss = Kiss::new().with_max_ts(max_ts);
            let ltl = kiss.check_ltl(&prog(src), &formula).unwrap();
            let assertion = kiss.check_assertions(&prog(&assert_variant(src)));
            let ltl_violated = matches!(ltl, KissOutcome::LivenessViolated(_));
            let assert_violated = matches!(assertion, KissOutcome::AssertionViolation(_));
            assert_eq!(
                ltl_violated, assert_violated,
                "{label} at ts={max_ts}: product says {}, assertion oracle says {}",
                ltl.verdict_str(),
                assertion.verdict_str(),
            );
            // Raising the bound only adds runs: the ground truth at
            // ts=0 stays violated at ts=1, and anything reachable at
            // ts=0 needs no switches.
            if max_ts == 0 {
                assert_eq!(ltl_violated, *reachable_at_zero, "{label}: ground truth at ts=0");
            } else if *reachable_at_zero {
                assert!(ltl_violated, "{label}: a ts=0 violation must survive ts=1");
            }
            // Step-count sanity: both engines actually explored, and
            // the product run reports its product-specific gauges.
            let ltl_stats = ltl.stats().expect("ltl outcomes carry stats");
            let seq_stats = assertion.stats().expect("assertion outcomes carry stats");
            assert!(ltl_stats.steps() > 0, "{label}: product explored nothing");
            assert!(seq_stats.steps() > 0, "{label}: oracle explored nothing");
            assert!(ltl_stats.seq.product_states > 0, "{label}: missing product gauge");
            assert!(ltl_stats.seq.buchi_states > 0, "{label}: missing buchi gauge");
        }
    }
}

#[test]
fn the_witness_cycle_is_reconstructible_for_every_violated_entry() {
    // Beyond verdict agreement: each violation must come with a
    // concrete lasso whose stem is non-trivial to render (the CLI
    // prints it), and a safety violation always terminates — the
    // "cycle" is the final state stuttering.
    let formula = kiss_ltl::parse("G !bad").unwrap();
    for (label, src, reachable) in CORPUS {
        if !reachable {
            continue;
        }
        let program = prog(src);
        let KissOutcome::LivenessViolated(report) =
            Kiss::new().check_ltl(&program, &formula).unwrap()
        else {
            panic!("{label}: expected a violation");
        };
        assert!(!report.stem.is_empty(), "{label}: empty stem");
        let rendered = kiss_core::report::render_liveness(&program, &report);
        assert!(rendered.contains("stem:"), "{label}: {rendered}");
        assert!(rendered.contains("bad = 1;"), "{label}: {rendered}");
    }
}
