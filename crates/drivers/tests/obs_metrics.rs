//! Integration tests for the observability layer over corpus runs:
//! the acceptance scenarios of the metrics work.
//!
//! * Running the same corpus twice yields identical event counts and
//!   outcome histograms (timing excluded) — the trace is deterministic.
//! * A run cancelled partway and `--resume`d produces a merged
//!   [`RunReport`] whose totals match an uninterrupted run's.

use std::path::PathBuf;

use kiss_core::supervisor::Supervisor;
use kiss_drivers::{check_corpus_supervised, generate_driver, paper_table, Journal};
use kiss_obs::{Aggregator, Obs, RunReport};
use kiss_seq::{Budget, CancelToken};

fn tmp_journal(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("kiss-obs-it-{}-{name}.log", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

fn small_models() -> Vec<kiss_drivers::DriverModel> {
    // tracedrv (3 clean fields) and imca (5 mixed fields): fast, with
    // pair-free, racy, clean, and heavy-inconclusive outcomes all
    // represented.
    paper_table()
        .into_iter()
        .filter(|d| d.name == "tracedrv" || d.name == "imca")
        .map(|d| generate_driver(&d))
        .collect()
}

fn budget() -> Budget {
    Budget::steps_states(400_000, 20_000)
}

/// One full observed corpus run; returns (aggregator, report).
fn observed_run(cancel: Option<CancelToken>, journal: Option<&mut Journal>) -> (Aggregator, RunReport) {
    let agg = Aggregator::new();
    let mut supervisor =
        Supervisor::new(budget()).with_retries(1).with_observer(Obs::new(agg.clone()));
    let mut on_driver: Box<dyn FnMut()> = Box::new(|| {});
    if let Some(token) = cancel {
        supervisor = supervisor.with_cancel(token.clone());
        // Simulate a ^C between the first and second driver.
        on_driver = Box::new(move || token.cancel());
    }
    check_corpus_supervised(&small_models(), false, &supervisor, journal, |_| on_driver());
    let report = agg.resumable_report();
    (agg, report)
}

#[test]
fn identical_runs_produce_identical_counts() {
    let (agg1, report1) = observed_run(None, None);
    let (agg2, report2) = observed_run(None, None);

    assert!(report1.counts_match(&report2), "{report1:?}\nvs\n{report2:?}");
    assert_eq!(agg1.event_counts(), agg2.event_counts());

    // Internal consistency: every field produced a started/finished
    // pair, and the histogram covers every finished check.
    let counts = agg1.event_counts();
    let fields: usize = small_models().iter().map(|m| m.fields.len()).sum();
    assert_eq!(counts["check_started"], fields as u64);
    assert_eq!(counts["check_finished"], fields as u64);
    assert_eq!(report1.checks, fields as u64);
    assert_eq!(report1.outcomes.values().sum::<u64>(), fields as u64);
    assert_eq!(report1.retries, counts.get("retry_escalated").copied().unwrap_or(0));
}

#[test]
fn resumed_run_report_matches_uninterrupted_run() {
    let (_, uninterrupted) = observed_run(None, None);

    // Session 1: cancelled after the first driver; journal what
    // completed, plus this session's report.
    let path = tmp_journal("resume");
    let session1 = {
        let mut journal = Journal::open(&path).unwrap();
        let (_, report) = observed_run(Some(CancelToken::new()), Some(&mut journal));
        journal.record_report(&report).unwrap();
        report
    };
    assert!(session1.checks > 0, "first driver must have been checked");
    assert!(
        session1.checks < uninterrupted.checks,
        "cancellation must have cut the run short: {session1:?}"
    );

    // Session 2: resume with the same journal; completed fields are
    // skipped (emitting nothing), the rest run now.
    let mut journal = Journal::open(&path).unwrap();
    let (_, session2) = observed_run(None, Some(&mut journal));
    let merged = journal.merged_report(&session2);
    journal.record_report(&session2).unwrap();

    assert!(
        merged.counts_match(&uninterrupted),
        "merged:\n{merged:?}\nuninterrupted:\n{uninterrupted:?}"
    );
    std::fs::remove_file(&path).unwrap();
}
