//! Integration tests for the parallel field scheduler: the acceptance
//! scenario of the `--jobs` work.
//!
//! * A `jobs = 4` run over a mixed corpus (including a heavy,
//!   budget-exhausting field) renders byte-identical table rows, a
//!   byte-identical journal, and a `RunReport` whose counts match the
//!   serial run exactly.
//! * A parallel run cancelled mid-corpus and resumed from its journal
//!   merges to the same totals and the same report counts as an
//!   uninterrupted run.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use kiss_core::supervisor::Supervisor;
use kiss_drivers::{
    check_corpus_parallel, generate_driver, paper_table, DriverModel, DriverResult, Journal,
};
use kiss_obs::{Aggregator, Event, Obs, Observer, RunReport};
use kiss_seq::{Budget, CancelToken};

fn tmp_journal(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("kiss-parallel-it-{}-{name}.log", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

fn models() -> Vec<DriverModel> {
    // tracedrv (3 fields, all clean), imca (5 fields, mixed verdicts),
    // and mouclass (34 fields including one heavy budget-exhauster, so
    // the heavy-first schedule actually reorders the queue).
    paper_table()
        .into_iter()
        .filter(|d| matches!(d.name, "tracedrv" | "imca" | "mouclass"))
        .map(|d| generate_driver(&d))
        .collect()
}

fn budget() -> Budget {
    // Settles every non-heavy field definitively; the heavy field trips
    // the step/state bound deterministically.
    Budget::steps_states(1_500_000, 25_000)
}

/// Renders rows exactly as the `table1` binary does, so string equality
/// here is byte-identity of the user-visible table.
fn render_rows(rows: &[DriverResult]) -> String {
    let mut out = String::new();
    for r in rows {
        out.push_str(&format!(
            "{:<18} {:>7} {:>7} {:>6} {:>9}\n",
            r.name, r.loc, r.fields, r.races, r.no_races
        ));
    }
    out
}

#[test]
fn jobs4_run_is_byte_identical_to_serial() {
    let models = models();

    let run = |jobs: usize, journal_path: &PathBuf| -> (Vec<DriverResult>, RunReport) {
        let agg = Aggregator::new();
        let supervisor = Supervisor::new(budget())
            .with_retries(0)
            .with_observer(Obs::new(agg.clone()));
        let mut journal = Journal::open(journal_path).expect("open journal");
        let rows = check_corpus_parallel(
            &models,
            false,
            &supervisor,
            Some(&mut journal),
            jobs,
            |_| {},
        );
        (rows, agg.report())
    };

    let serial_path = tmp_journal("serial");
    let parallel_path = tmp_journal("jobs4");
    let (serial_rows, serial_report) = run(1, &serial_path);
    let (parallel_rows, parallel_report) = run(4, &parallel_path);

    // Byte-identical rendered table.
    assert_eq!(render_rows(&parallel_rows), render_rows(&serial_rows));
    // ...because the per-field outcomes are identical.
    for (a, b) in parallel_rows.iter().zip(&serial_rows) {
        assert_eq!(a.results, b.results, "driver {}", a.name);
    }
    // Byte-identical journal: same records, same order.
    let serial_journal = std::fs::read_to_string(&serial_path).expect("read serial journal");
    let parallel_journal =
        std::fs::read_to_string(&parallel_path).expect("read parallel journal");
    assert_eq!(parallel_journal, serial_journal);
    assert!(!serial_journal.is_empty());
    // The aggregated reports describe the same deterministic work.
    assert!(
        parallel_report.counts_match(&serial_report),
        "parallel:\n{}\nserial:\n{}",
        parallel_report.render(),
        serial_report.render()
    );
    assert_eq!(parallel_report.checks, models.iter().map(|m| m.fields.len() as u64).sum());

    let _ = std::fs::remove_file(&serial_path);
    let _ = std::fs::remove_file(&parallel_path);
}

/// Cancels the shared token once `after` checks have finished —
/// simulating ^C landing mid-way through a parallel corpus run.
struct CancelAfter {
    token: CancelToken,
    after: usize,
    seen: Arc<AtomicUsize>,
}

impl Observer for CancelAfter {
    fn on_event(&mut self, event: &Event) {
        if let Event::CheckFinished { .. } = event {
            if self.seen.fetch_add(1, Ordering::SeqCst) + 1 >= self.after {
                self.token.cancel();
            }
        }
    }
}

#[test]
fn cancelled_then_resumed_parallel_run_merges_to_the_same_totals() {
    let models = models();
    let total_fields: usize = models.iter().map(|m| m.fields.len()).sum();

    // Reference: one uninterrupted parallel run.
    let reference_report = {
        let agg = Aggregator::new();
        let supervisor = Supervisor::new(budget())
            .with_retries(0)
            .with_observer(Obs::new(agg.clone()));
        let rows = check_corpus_parallel(&models, false, &supervisor, None, 4, |_| {});
        assert_eq!(rows.len(), models.len());
        agg.resumable_report()
    };
    assert_eq!(reference_report.checks, total_fields as u64);

    // Session 1: cancelled after 5 finished checks (mid-corpus, and —
    // with 4 workers — mid-driver, so in-flight checks wind down as
    // cancelled and must stay out of the journal).
    let path = tmp_journal("resume");
    let session1 = {
        let token = CancelToken::new();
        let agg = Aggregator::new();
        let cancel_sink = CancelAfter {
            token: token.clone(),
            after: 5,
            seen: Arc::new(AtomicUsize::new(0)),
        };
        let supervisor = Supervisor::new(budget())
            .with_retries(0)
            .with_cancel(token)
            .with_observer(Obs::multi(vec![
                Box::new(agg.clone()),
                Box::new(cancel_sink),
            ]));
        let mut journal = Journal::open(&path).expect("open journal");
        let rows =
            check_corpus_parallel(&models, false, &supervisor, Some(&mut journal), 4, |_| {});
        assert!(rows.len() < models.len() || rows.iter().any(|r| r.inconclusive > 0));
        let report = agg.resumable_report();
        journal.record_report(&report).expect("record session report");
        report
    };
    assert!(session1.checks < total_fields as u64, "cancellation must cut the run short");

    // No cancelled artifacts may have been journaled.
    {
        let journal = Journal::open(&path).expect("reopen journal");
        assert_eq!(journal.len() as u64, session1.checks, "journal = completed checks");
    }

    // Session 2: resume with a fresh supervisor; journaled fields are
    // skipped, the rest re-run in parallel.
    let merged = {
        let agg = Aggregator::new();
        let supervisor = Supervisor::new(budget())
            .with_retries(0)
            .with_observer(Obs::new(agg.clone()));
        let mut journal = Journal::open(&path).expect("reopen journal");
        let rows =
            check_corpus_parallel(&models, false, &supervisor, Some(&mut journal), 4, |_| {});
        assert_eq!(rows.len(), models.len());
        journal.merged_report(&agg.resumable_report())
    };

    // The merged two-session report covers each field exactly once and
    // matches the uninterrupted run.
    assert!(
        merged.counts_match(&reference_report),
        "merged:\n{}\nreference:\n{}",
        merged.render(),
        reference_report.render()
    );

    let _ = std::fs::remove_file(&path);
}
