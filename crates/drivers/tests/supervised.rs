//! Integration tests for the supervised corpus runner: the acceptance
//! scenario of the robustness work.
//!
//! * A corpus-style run with one deliberately panicking field and one
//!   genuinely divergent field (under a wall-clock deadline) completes
//!   every remaining check, recording exactly `Crashed` and
//!   `Inconclusive(Deadline)` for the faulty fields.
//! * A journaled run that is "killed" partway through and resumed with
//!   the same journal reproduces identical totals without re-running
//!   the completed fields.

use std::path::PathBuf;
use std::time::Duration;

use kiss_core::checker::Kiss;
use kiss_core::supervisor::Supervisor;
use kiss_drivers::{
    check_corpus_supervised, generate_driver, paper_table, supervised_field_outcome,
    DriverResult, FieldOutcome, Journal,
};
use kiss_seq::{BoundReason, Budget};

fn tmp_journal(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("kiss-supervised-it-{}-{name}.log", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

fn small_models() -> Vec<kiss_drivers::DriverModel> {
    // tracedrv (3 fields) and imca (5 fields): no heavy fields, so a
    // moderate budget settles every check definitively and quickly.
    paper_table()
        .into_iter()
        .filter(|d| d.name == "tracedrv" || d.name == "imca")
        .map(|d| generate_driver(&d))
        .collect()
}

fn totals(rows: &[DriverResult]) -> Vec<(String, usize, usize, usize, usize, usize)> {
    rows.iter()
        .map(|r| (r.name.clone(), r.races, r.no_races, r.inconclusive, r.crashed, r.failed))
        .collect()
}

/// The acceptance scenario: three "fields" checked in sequence under
/// one supervisor — a panicking one, a divergent one, and a clean one
/// that must still run after both faults.
#[test]
fn corpus_run_survives_a_panicking_and_a_divergent_field() {
    // Unlimited steps/states so the divergent field can only be stopped
    // by the wall-clock deadline; clean checks finish long before it.
    let budget = Budget::unlimited().with_deadline(Duration::from_millis(300));
    let supervisor = Supervisor::new(budget).with_retries(0);

    // Field 0: the check itself panics (an engine bug, in production).
    let crashed = supervised_field_outcome(&supervisor, |_, _| panic!("injected fault: field 0"));

    // Field 1: a genuinely divergent program — unbounded counter, so
    // the state space never closes and only the deadline ends the run.
    let divergent = kiss_lang::parse_and_lower(
        "int g; void spin() { iter { g = g + 1; } } void main() { async spin(); assert g >= 0; }",
    )
    .expect("divergent model parses");
    let deadline = supervised_field_outcome(&supervisor, |b, token| {
        Kiss::new().with_budget(b).with_cancel(token).check_assertions(&divergent)
    });

    // Field 2: a clean check, proving the run continued past both.
    let clean = kiss_lang::parse_and_lower(
        "int g; void other() { g = 1; } void main() { async other(); assert g <= 1; }",
    )
    .expect("clean model parses");
    let ok = supervised_field_outcome(&supervisor, |b, token| {
        Kiss::new().with_budget(b).with_cancel(token).check_assertions(&clean)
    });

    let FieldOutcome::Crashed { cause } = &crashed else { panic!("{crashed:?}") };
    assert!(cause.contains("injected fault"), "{cause}");
    assert_eq!(deadline, FieldOutcome::Inconclusive(BoundReason::Deadline));
    assert_eq!(ok, FieldOutcome::NoRace, "clean field must still complete");
}

/// A journaled corpus run killed partway through and resumed finishes
/// only the missing fields and reproduces the full run's totals.
#[test]
fn killed_run_resumes_from_the_journal_without_rerunning() {
    let models = small_models();
    let field_count: usize = models.iter().map(|m| m.fields.len()).sum();
    assert_eq!(field_count, 8);
    let budget = Budget::steps_states(2_000_000, 50_000);

    // Reference run: full corpus, journaling every field.
    let full_path = tmp_journal("full");
    let reference = {
        let mut journal = Journal::open(&full_path).expect("open journal");
        let rows = check_corpus_supervised(
            &models,
            true,
            &Supervisor::new(budget).with_retries(0),
            Some(&mut journal),
            |_| {},
        );
        assert_eq!(journal.len(), field_count, "every field journaled");
        rows
    };
    assert!(
        reference.iter().all(|r| r.crashed == 0 && r.failed == 0),
        "{reference:?}"
    );

    // Simulate a kill after the first 4 fields: keep a prefix of the
    // journal, as if the process died mid-run.
    let partial_path = tmp_journal("partial");
    let full_text = std::fs::read_to_string(&full_path).expect("read journal");
    let prefix: Vec<&str> = full_text.lines().take(4).collect();
    std::fs::write(&partial_path, format!("{}\n", prefix.join("\n"))).expect("write prefix");

    // Resume from the truncated journal with the same budget: the four
    // journaled fields are skipped, the rest re-run, totals match.
    let resumed = {
        let mut journal = Journal::open(&partial_path).expect("reopen journal");
        assert_eq!(journal.len(), 4);
        check_corpus_supervised(
            &models,
            true,
            &Supervisor::new(budget).with_retries(0),
            Some(&mut journal),
            |_| {},
        )
    };
    assert_eq!(totals(&resumed), totals(&reference));

    // Resume from the *complete* journal under an absurdly tiny budget:
    // any field actually re-executed would now come back
    // Inconclusive(Steps) and skew the totals, so matching totals prove
    // every field was answered from the journal alone.
    let replayed = {
        let mut journal = Journal::open(&full_path).expect("reopen full journal");
        check_corpus_supervised(
            &models,
            true,
            &Supervisor::new(Budget::steps_states(1, 1)).with_retries(0),
            Some(&mut journal),
            |_| {},
        )
    };
    assert_eq!(totals(&replayed), totals(&reference));
    for (a, b) in replayed.iter().zip(reference.iter()) {
        assert_eq!(a.results, b.results, "per-field outcomes must replay exactly");
    }

    let _ = std::fs::remove_file(&full_path);
    let _ = std::fs::remove_file(&partial_path);
}

/// Cancellation stops the corpus loop between drivers and leaves no
/// cancelled artifacts in the journal, so a resume re-checks them.
#[test]
fn cancellation_stops_the_corpus_and_stays_out_of_the_journal() {
    let models = small_models();
    let budget = Budget::steps_states(2_000_000, 50_000);
    let supervisor = Supervisor::new(budget).with_retries(0);

    // Pre-cancelled: nothing runs at all.
    let cancelled = Supervisor::new(budget)
        .with_cancel({
            let t = kiss_seq::CancelToken::new();
            t.cancel();
            t
        });
    let rows = check_corpus_supervised(&models, true, &cancelled, None, |_| {});
    assert!(rows.is_empty());

    // Cancel after the first driver completes: the second is skipped,
    // and only the first driver's fields land in the journal.
    let path = tmp_journal("cancel");
    let token = supervisor.cancel_token().clone();
    let rows = {
        let mut journal = Journal::open(&path).expect("open journal");
        check_corpus_supervised(&models, true, &supervisor, Some(&mut journal), |_| {
            token.cancel();
        })
    };
    assert_eq!(rows.len(), 1);
    let journal = Journal::open(&path).expect("reopen journal");
    assert_eq!(journal.len(), models[0].fields.len());
    for i in 0..models[1].fields.len() {
        assert_eq!(journal.lookup(&models[1].name, i), None);
    }
    let _ = std::fs::remove_file(&path);
}
