//! Flat control-flow form.
//!
//! Each function body is lowered from the statement tree of the core IR
//! into a vector of instructions with explicit (nondeterministic) jumps.
//! Program counters into this vector are what the engines store in
//! stack frames and error traces.

use kiss_lang::hir::{CallTarget, Cond, FuncId, Operand, Origin, Place, Rvalue, Stmt, StmtKind};
use kiss_lang::{Program, Span};

/// One instruction of the flat form.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `place = rvalue`.
    Assign(Place, Rvalue),
    /// Fails the program if the condition is false.
    Assert(Cond),
    /// Blocks (concurrently) / prunes the path (sequentially) if false.
    Assume(Cond),
    /// Synchronous call.
    Call {
        /// Destination for the return value, applied in the caller.
        dest: Option<Place>,
        /// Callee.
        target: CallTarget,
        /// Arguments.
        args: Vec<Operand>,
    },
    /// Thread fork.
    Async {
        /// New thread's start function.
        target: CallTarget,
        /// Arguments.
        args: Vec<Operand>,
    },
    /// Return from the current function.
    Return(Option<Operand>),
    /// Unconditional jump.
    Jump(usize),
    /// Nondeterministic jump: exactly one target is chosen.
    NondetJump(Vec<usize>),
    /// Start of an atomic region; control must reach the matching
    /// [`Instr::AtomicEnd`] without interleaving.
    AtomicBegin,
    /// End of an atomic region.
    AtomicEnd,
}

impl Instr {
    /// Whether this instruction is pure control flow (no observable
    /// action).
    pub fn is_silent(&self) -> bool {
        matches!(self, Instr::Jump(_) | Instr::NondetJump(_) | Instr::AtomicBegin | Instr::AtomicEnd)
    }
}

/// Source metadata for one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstrMeta {
    /// Source span of the originating statement.
    pub span: Span,
    /// Provenance (user code vs. KISS instrumentation).
    pub origin: Origin,
}

/// A lowered function body.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncBody {
    /// The function this body belongs to.
    pub func: FuncId,
    /// Instructions; entry is index 0.
    pub instrs: Vec<Instr>,
    /// Parallel metadata, one entry per instruction.
    pub meta: Vec<InstrMeta>,
}

/// A lowered program: the core program plus one [`FuncBody`] per
/// function.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// The core program (owned; engines resolve names/layout through
    /// it).
    pub program: Program,
    /// Lowered bodies, indexed by [`FuncId`].
    pub bodies: Vec<FuncBody>,
}

impl Module {
    /// Lowers every function of a core program.
    pub fn lower(program: Program) -> Module {
        let bodies = program
            .funcs
            .iter()
            .enumerate()
            .map(|(i, f)| lower_func(FuncId(i as u32), &f.body))
            .collect();
        Module { program, bodies }
    }

    /// The body for a function.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn body(&self, f: FuncId) -> &FuncBody {
        &self.bodies[f.0 as usize]
    }

    /// Total instruction count over all functions — the "size of the
    /// control-flow graph" metric used in the blowup experiment.
    pub fn instr_count(&self) -> usize {
        self.bodies.iter().map(|b| b.instrs.len()).sum()
    }
}

struct LowerCx {
    instrs: Vec<Instr>,
    meta: Vec<InstrMeta>,
}

impl LowerCx {
    fn emit(&mut self, instr: Instr, s: &Stmt) -> usize {
        self.instrs.push(instr);
        self.meta.push(InstrMeta { span: s.span, origin: s.origin });
        self.instrs.len() - 1
    }

    fn here(&self) -> usize {
        self.instrs.len()
    }

    fn patch_jump(&mut self, at: usize, target: usize) {
        match &mut self.instrs[at] {
            Instr::Jump(t) => *t = target,
            other => panic!("patch_jump on non-jump {other:?}"),
        }
    }

    fn lower(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Skip => {}
            StmtKind::Seq(ss) => {
                for inner in ss {
                    self.lower(inner);
                }
            }
            StmtKind::Assign(pl, rv) => {
                self.emit(Instr::Assign(*pl, *rv), s);
            }
            StmtKind::Assert(c) => {
                self.emit(Instr::Assert(*c), s);
            }
            StmtKind::Assume(c) => {
                self.emit(Instr::Assume(*c), s);
            }
            StmtKind::Call { dest, target, args } => {
                self.emit(Instr::Call { dest: *dest, target: *target, args: args.clone() }, s);
            }
            StmtKind::Async { target, args } => {
                self.emit(Instr::Async { target: *target, args: args.clone() }, s);
            }
            StmtKind::Return(op) => {
                self.emit(Instr::Return(*op), s);
            }
            StmtKind::Atomic(inner) => {
                self.emit(Instr::AtomicBegin, s);
                self.lower(inner);
                self.emit(Instr::AtomicEnd, s);
            }
            StmtKind::Choice(branches) => {
                let nondet_at = self.emit(Instr::NondetJump(Vec::new()), s);
                let mut branch_starts = Vec::with_capacity(branches.len());
                let mut exit_jumps = Vec::with_capacity(branches.len());
                for b in branches {
                    branch_starts.push(self.here());
                    self.lower(b);
                    exit_jumps.push(self.emit(Instr::Jump(usize::MAX), s));
                }
                let join = self.here();
                for j in exit_jumps {
                    self.patch_jump(j, join);
                }
                self.instrs[nondet_at] = Instr::NondetJump(branch_starts);
            }
            StmtKind::Iter(body) => {
                // header: NondetJump([body, exit]); body; Jump(header)
                let header = self.emit(Instr::NondetJump(Vec::new()), s);
                let body_start = self.here();
                self.lower(body);
                self.emit(Instr::Jump(header), s);
                let exit = self.here();
                self.instrs[header] = Instr::NondetJump(vec![body_start, exit]);
            }
        }
    }
}

fn lower_func(func: FuncId, body: &Stmt) -> FuncBody {
    let mut cx = LowerCx { instrs: Vec::new(), meta: Vec::new() };
    cx.lower(body);
    // Implicit `return` at the end of every function, inheriting the
    // body's provenance so generated runtime functions do not produce
    // user-attributed steps.
    let end = Stmt::synth(StmtKind::Return(None), body.origin);
    cx.emit(Instr::Return(None), &end);
    FuncBody { func, instrs: cx.instrs, meta: cx.meta }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kiss_lang::parse_and_lower;

    fn module(src: &str) -> Module {
        Module::lower(parse_and_lower(src).unwrap())
    }

    #[test]
    fn straightline_code_lowers_in_order() {
        let m = module("int g; void main() { g = 1; g = 2; }");
        let b = m.body(m.program.main);
        assert!(matches!(b.instrs[0], Instr::Assign(..)));
        assert!(matches!(b.instrs[1], Instr::Assign(..)));
        assert!(matches!(b.instrs[2], Instr::Return(None)));
        assert_eq!(b.instrs.len(), 3);
    }

    #[test]
    fn choice_lowers_to_nondet_jump_with_join() {
        let m = module("int g; void main() { choice { g = 1; [] g = 2; } g = 3; }");
        let b = m.body(m.program.main);
        let Instr::NondetJump(targets) = &b.instrs[0] else { panic!("expected nondet jump") };
        assert_eq!(targets.len(), 2);
        // Both branches jump to the same join point.
        let joins: Vec<usize> = b
            .instrs
            .iter()
            .filter_map(|i| match i {
                Instr::Jump(t) => Some(*t),
                _ => None,
            })
            .collect();
        assert_eq!(joins.len(), 2);
        assert_eq!(joins[0], joins[1]);
        assert!(matches!(b.instrs[joins[0]], Instr::Assign(..)));
    }

    #[test]
    fn iter_lowers_to_loop_with_exit() {
        let m = module("int g; void main() { iter { g = g + 1; } g = 0; }");
        let b = m.body(m.program.main);
        let Instr::NondetJump(targets) = &b.instrs[0] else { panic!("expected loop header") };
        assert_eq!(targets.len(), 2);
        let (body_start, exit) = (targets[0], targets[1]);
        assert!(matches!(b.instrs[body_start], Instr::Assign(..)));
        // The back edge returns to the header.
        assert!(matches!(b.instrs[exit - 1], Instr::Jump(0)));
        assert!(matches!(b.instrs[exit], Instr::Assign(..)));
    }

    #[test]
    fn atomic_is_bracketed() {
        let m = module("int g; void main() { atomic { g = 1; g = 2; } }");
        let b = m.body(m.program.main);
        assert!(matches!(b.instrs[0], Instr::AtomicBegin));
        assert!(matches!(b.instrs[3], Instr::AtomicEnd));
    }

    #[test]
    fn every_instr_has_meta() {
        let m = module("int g; void main() { if (g == 0) { g = 1; } while (g < 5) { g = g + 1; } }");
        for b in &m.bodies {
            assert_eq!(b.instrs.len(), b.meta.len());
        }
    }

    #[test]
    fn skip_emits_nothing_but_function_still_returns() {
        let m = module("void main() { skip; }");
        let b = m.body(m.program.main);
        assert_eq!(b.instrs.len(), 1);
        assert!(matches!(b.instrs[0], Instr::Return(None)));
    }

    #[test]
    fn empty_choice_branch_jumps_straight_to_join() {
        let m = module("int g; void main() { choice { skip; [] g = 1; } }");
        let b = m.body(m.program.main);
        let Instr::NondetJump(targets) = &b.instrs[0] else { panic!() };
        // First branch starts at a Jump (empty body).
        assert!(matches!(b.instrs[targets[0]], Instr::Jump(_)));
    }

    #[test]
    fn silent_classification() {
        assert!(Instr::Jump(0).is_silent());
        assert!(Instr::NondetJump(vec![]).is_silent());
        assert!(Instr::AtomicBegin.is_silent());
        assert!(!Instr::Return(None).is_silent());
    }

    #[test]
    fn instr_count_sums_bodies() {
        let m = module("void f() { skip; } void main() { f(); }");
        assert_eq!(m.instr_count(), m.bodies.iter().map(|b| b.instrs.len()).sum::<usize>());
        assert!(m.instr_count() >= 3);
    }
}
