//! Copy-on-write chunked vector — the structural-sharing layer under
//! [`Memory`](crate::Memory).
//!
//! Explicit-state search clones the whole `Memory` on every
//! nondeterministic branch and into every BFS frontier slot. With plain
//! `Vec`s each clone is O(heap); with [`CowVec`] the storage is split
//! into small `Arc`-shared chunks, so a clone is O(chunks) pointer
//! bumps and the first *write* to a shared chunk pays for copying just
//! that chunk (`Arc::make_mut` is the write barrier). Sibling states
//! that never touch a chunk keep sharing it for their whole lifetime —
//! exactly the access pattern of branching searches, where siblings
//! diverge in a handful of cells out of a heap they otherwise share.
//!
//! The chunk size is a compile-time power of two so indexing is a
//! shift and a mask. Eight elements per chunk keeps the write barrier's
//! copy small (a `HeapObj` clone per touched neighbour) while still
//! collapsing a 64-object heap clone into 8 `Arc` bumps.

use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

const CHUNK_BITS: usize = 3;
const CHUNK: usize = 1 << CHUNK_BITS;
const MASK: usize = CHUNK - 1;

/// One shared chunk: the elements plus a lazily computed, cached
/// content digest. The digest lives inside the `Arc`ed allocation on
/// purpose — once any sharer computes it, every state still sharing
/// the chunk reads it back for free, which turns the per-branch state
/// fingerprint from O(memory) re-hashing into O(chunks) digest loads
/// for all the memory sibling states never wrote.
struct Chunk<T> {
    data: Vec<T>,
    /// Two independent digest lanes; meaningful only when `sealed`.
    digest: (AtomicU64, AtomicU64),
    /// Whether `digest` holds the hash of the current `data`.
    sealed: AtomicBool,
}

impl<T> Chunk<T> {
    fn new(data: Vec<T>) -> Self {
        Chunk { data, digest: (AtomicU64::new(0), AtomicU64::new(0)), sealed: AtomicBool::new(false) }
    }

    /// Drops the cached digest; called (through `&mut`, so without
    /// atomic traffic) after every write-barrier crossing.
    fn unseal(&mut self) {
        *self.sealed.get_mut() = false;
    }
}

impl<T: Hash> Chunk<T> {
    /// The cached digest, computing and sealing it on first use. Two
    /// racing computations store identical values, so `Relaxed` lane
    /// stores under an `Acquire`/`Release` seal are enough.
    fn digest(&self) -> (u64, u64) {
        if self.sealed.load(Ordering::Acquire) {
            return (self.digest.0.load(Ordering::Relaxed), self.digest.1.load(Ordering::Relaxed));
        }
        let mut h = ChunkHasher::new();
        self.data.hash(&mut h);
        let (a, b) = h.finish_pair();
        self.digest.0.store(a, Ordering::Relaxed);
        self.digest.1.store(b, Ordering::Relaxed);
        self.sealed.store(true, Ordering::Release);
        (a, b)
    }
}

impl<T: Clone> Clone for Chunk<T> {
    fn clone(&self) -> Self {
        // A clone exists to be written (it is what `Arc::make_mut`
        // creates behind the write barrier), so it starts unsealed.
        Chunk::new(self.data.clone())
    }
}

/// A single-pass two-lane mixing hasher for chunk digests: xor, odd
/// rotations, and odd multipliers per 8-byte word, one independent
/// seed and multiplier per lane.
struct ChunkHasher {
    a: u64,
    b: u64,
}

impl ChunkHasher {
    fn new() -> Self {
        ChunkHasher { a: 0x243F_6A88_85A3_08D3, b: 0x1319_8A2E_0370_7344 }
    }

    fn mix(&mut self, word: u64) {
        self.a = (self.a ^ word).rotate_left(23).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.b = (self.b ^ word).rotate_left(29).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    }

    fn finish_pair(self) -> (u64, u64) {
        // splitmix64-style finalization on each lane.
        let fin = |mut x: u64| {
            x ^= x >> 30;
            x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x ^= x >> 27;
            x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^ (x >> 31)
        };
        (fin(self.a), fin(self.b))
    }
}

impl Hasher for ChunkHasher {
    fn finish(&self) -> u64 {
        unreachable!("chunk digests are read through finish_pair")
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut it = bytes.chunks_exact(8);
        for word in &mut it {
            self.mix(u64::from_le_bytes(word.try_into().expect("8-byte chunk")));
        }
        let rest = it.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Length-tag the tail so `[1]` and `[1, 0]` differ.
            tail[7] = rest.len() as u8;
            self.mix(u64::from_le_bytes(tail));
        }
    }
}

/// A vector of `Arc`-shared fixed-size chunks with clone-on-write
/// mutation. Reads and in-place writes go through shift/mask indexing;
/// `Clone` is O(len / CHUNK) `Arc` clones.
#[derive(Clone)]
pub struct CowVec<T> {
    chunks: Vec<Arc<Chunk<T>>>,
    len: usize,
}

impl<T: Clone> CowVec<T> {
    /// An empty vector.
    pub fn new() -> Self {
        CowVec { chunks: Vec::new(), len: 0 }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends an element, starting a fresh chunk when the last one is
    /// full. Pushing into a shared final chunk copies only that chunk.
    pub fn push(&mut self, value: T) {
        if self.len & MASK == 0 {
            self.chunks.push(Arc::new(Chunk::new(Vec::with_capacity(CHUNK))));
        }
        let last = Arc::make_mut(self.chunks.last_mut().expect("chunk pushed above"));
        last.unseal();
        last.data.push(value);
        self.len += 1;
    }

    /// Shared read access; `None` out of bounds.
    pub fn get(&self, index: usize) -> Option<&T> {
        if index >= self.len {
            return None;
        }
        self.chunks[index >> CHUNK_BITS].data.get(index & MASK)
    }

    /// Mutable access through the write barrier: a chunk shared with
    /// sibling states is copied (just that chunk) before the reference
    /// is handed out. `None` out of bounds.
    pub fn get_mut(&mut self, index: usize) -> Option<&mut T> {
        if index >= self.len {
            return None;
        }
        let chunk = Arc::make_mut(&mut self.chunks[index >> CHUNK_BITS]);
        chunk.unseal();
        chunk.data.get_mut(index & MASK)
    }

    /// Iterates the elements in order.
    pub fn iter(&self) -> impl Iterator<Item = &T> + '_ {
        self.chunks.iter().flat_map(|c| c.data.iter())
    }

    /// Copies the elements out into a plain `Vec` (used at the
    /// boundary where error traces escape the engine).
    pub fn to_vec(&self) -> Vec<T> {
        self.iter().cloned().collect()
    }
}

impl<T: Clone + Hash> CowVec<T> {
    /// Feeds the length and the cached per-chunk digests into `state` —
    /// the fast fingerprint path. The digest stream depends only on the
    /// *contents* (never on sharing history), but it is NOT the same
    /// stream as the element-wise [`Hash`] impl: a fingerprint scheme
    /// must use one or the other for the lifetime of a visited set.
    pub fn hash_cached<H: Hasher>(&self, state: &mut H) {
        state.write_usize(self.len);
        for chunk in &self.chunks {
            let (a, b) = chunk.digest();
            state.write_u64(a);
            state.write_u64(b);
        }
    }
}

impl<T: Clone> Default for CowVec<T> {
    fn default() -> Self {
        CowVec::new()
    }
}

// Parallel exploration hands configurations (hence chunk handles)
// across worker threads: the seal flag and digest words are atomics,
// so a `CowVec` of sendable elements must stay `Send + Sync`. These
// assertions turn an accidental regression (e.g. a `Cell` slipping
// into `Chunk`) into a compile error here instead of a distant trait
// bound failure in the search engine.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Chunk<u64>>();
    assert_send_sync::<CowVec<u64>>();
};

impl<T: Clone> From<Vec<T>> for CowVec<T> {
    fn from(items: Vec<T>) -> Self {
        items.into_iter().collect()
    }
}

impl<T: Clone> FromIterator<T> for CowVec<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = CowVec::new();
        for item in iter {
            v.push(item);
        }
        v
    }
}

impl<T> std::ops::Index<usize> for CowVec<T> {
    type Output = T;
    fn index(&self, index: usize) -> &T {
        assert!(index < self.len, "CowVec index {index} out of bounds (len {})", self.len);
        &self.chunks[index >> CHUNK_BITS].data[index & MASK]
    }
}

impl<T: Clone> std::ops::IndexMut<usize> for CowVec<T> {
    fn index_mut(&mut self, index: usize) -> &mut T {
        self.get_mut(index)
            .unwrap_or_else(|| panic!("CowVec index {index} out of bounds"))
    }
}

impl<T: Clone + PartialEq> PartialEq for CowVec<T> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl<T: Clone + Eq> Eq for CowVec<T> {}

impl<T: Clone + PartialEq> PartialEq<Vec<T>> for CowVec<T> {
    fn eq(&self, other: &Vec<T>) -> bool {
        self.len == other.len() && self.iter().eq(other.iter())
    }
}

impl<T: Clone + PartialEq> PartialEq<CowVec<T>> for Vec<T> {
    fn eq(&self, other: &CowVec<T>) -> bool {
        other == self
    }
}

impl<T: Clone + PartialOrd> PartialOrd for CowVec<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        self.iter().partial_cmp(other.iter())
    }
}

impl<T: Clone + Ord> Ord for CowVec<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.iter().cmp(other.iter())
    }
}

// Hashes exactly like a `Vec<T>` (length prefix, then elements), so
// fingerprints of configs are unchanged by the representation switch.
impl<T: Clone + std::hash::Hash> std::hash::Hash for CowVec<T> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_usize(self.len);
        for item in self.iter() {
            item.hash(state);
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for CowVec<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.chunks.iter().flat_map(|c| c.data.iter())).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    #[test]
    fn push_index_and_iterate_across_chunk_boundaries() {
        let mut v = CowVec::new();
        for i in 0..40usize {
            v.push(i);
        }
        assert_eq!(v.len(), 40);
        assert!(!v.is_empty());
        for i in 0..40 {
            assert_eq!(v[i], i);
            assert_eq!(v.get(i), Some(&i));
        }
        assert!(v.get(40).is_none());
        let collected: Vec<usize> = v.iter().copied().collect();
        assert_eq!(collected, (0..40).collect::<Vec<_>>());
        assert_eq!(v.to_vec(), (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn clones_share_until_written() {
        let mut a: CowVec<usize> = (0..20).collect();
        let b = a.clone();
        // The write barrier copies only the touched chunk; the other
        // chunks keep their original allocation.
        a[17] = 99;
        assert_eq!(b[17], 17);
        assert_eq!(a[17], 99);
        assert!(std::ptr::eq(&a[0], &b[0]), "untouched chunk must stay shared");
        assert!(!std::ptr::eq(&a[17], &b[17]), "touched chunk must be copied");
    }

    #[test]
    fn equality_and_ordering_match_plain_vecs() {
        let a: CowVec<i32> = vec![1, 2, 3].into();
        let b: CowVec<i32> = vec![1, 2, 4].into();
        assert_eq!(a, vec![1, 2, 3]);
        assert_eq!(vec![1, 2, 3], a);
        assert_ne!(a, b);
        assert!(a < b);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn hash_matches_the_vec_representation() {
        let cow: CowVec<u32> = vec![5, 6, 7, 8, 9, 10, 11, 12, 13].into();
        let vec: Vec<u32> = vec![5, 6, 7, 8, 9, 10, 11, 12, 13];
        let mut h1 = DefaultHasher::new();
        cow.hash(&mut h1);
        let mut h2 = DefaultHasher::new();
        vec.hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn cached_digests_track_contents_not_history() {
        let pair = |v: &CowVec<u32>| {
            let mut h = DefaultHasher::new();
            v.hash_cached(&mut h);
            h.finish()
        };
        let fresh: CowVec<u32> = (0..20).collect();
        let mut touched: CowVec<u32> = (0..20).collect();
        let baseline = pair(&touched); // seal every chunk
        touched[9] = 99;
        assert_ne!(pair(&touched), baseline, "a write must change the digest");
        touched[9] = 9;
        assert_eq!(pair(&touched), baseline, "contents restored, digest restored");
        assert_eq!(pair(&fresh), baseline, "equal contents, equal digest stream");
        // A clone of a sealed vec reads the same cached digests.
        assert_eq!(pair(&fresh.clone()), baseline);
    }

    #[test]
    fn out_of_bounds_writes_panic() {
        let mut v: CowVec<u8> = vec![1].into();
        assert!(v.get_mut(0).is_some());
        assert!(v.get_mut(1).is_none());
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| v[1] = 0));
        assert!(r.is_err());
    }
}
