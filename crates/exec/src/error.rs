//! Runtime execution errors.

use kiss_lang::hir::FuncId;

/// A runtime error: the program performed an operation with no defined
/// semantics. These are distinct from assertion failures — a well-typed
/// program never raises one, and the KISS transformation preserves their
/// absence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// Dereferenced a null or non-pointer value.
    NullDeref {
        /// What was dereferenced instead of a pointer.
        found: &'static str,
    },
    /// A pointer referred to a popped stack frame.
    DanglingLocal,
    /// An operator was applied to operands of the wrong type.
    TypeMismatch {
        /// The operation.
        op: &'static str,
        /// Left/only operand type.
        lhs: &'static str,
        /// Right operand type, if binary.
        rhs: Option<&'static str>,
    },
    /// `%` by zero.
    DivisionByZero,
    /// A field index was out of range for the object (heap corruption —
    /// impossible for lowered programs, possible for hand-built IR).
    BadField,
    /// Called a value that is not a function.
    NotAFunction {
        /// What was called.
        found: &'static str,
    },
    /// Called a function with the wrong number of arguments.
    ArityMismatch {
        /// Callee.
        func: FuncId,
        /// Expected parameter count.
        expected: u32,
        /// Supplied argument count.
        got: u32,
    },
    /// An `async` statement reached a sequential engine. Sequentialized
    /// programs never contain `async`; this indicates a pipeline misuse.
    AsyncInSequential,
    /// Integer overflow in arithmetic.
    Overflow,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::NullDeref { found } => write!(f, "dereference of non-pointer value ({found})"),
            ExecError::DanglingLocal => write!(f, "dangling pointer to a popped stack frame"),
            ExecError::TypeMismatch { op, lhs, rhs: Some(rhs) } => {
                write!(f, "type mismatch: `{op}` applied to {lhs} and {rhs}")
            }
            ExecError::TypeMismatch { op, lhs, rhs: None } => {
                write!(f, "type mismatch: `{op}` applied to {lhs}")
            }
            ExecError::DivisionByZero => write!(f, "modulo by zero"),
            ExecError::BadField => write!(f, "field index out of range"),
            ExecError::NotAFunction { found } => write!(f, "call of non-function value ({found})"),
            ExecError::ArityMismatch { func, expected, got } => {
                write!(f, "call of {func} with {got} argument(s), expected {expected}")
            }
            ExecError::AsyncInSequential => {
                write!(f, "`async` reached a sequential engine (program was not sequentialized)")
            }
            ExecError::Overflow => write!(f, "integer overflow"),
        }
    }
}

impl std::error::Error for ExecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_specific() {
        let e = ExecError::TypeMismatch { op: "+", lhs: "bool", rhs: Some("int") };
        assert_eq!(e.to_string(), "type mismatch: `+` applied to bool and int");
        assert!(ExecError::AsyncInSequential.to_string().contains("sequentialized"));
        let e = ExecError::ArityMismatch { func: FuncId(3), expected: 2, got: 0 };
        assert!(e.to_string().contains("expected 2"));
    }
}
