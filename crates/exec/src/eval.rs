//! Context-generic evaluation of operands, rvalues and assignments.
//!
//! The engines differ in how a "current frame" and shared memory are
//! organised; they implement [`Env`] and get the entire statement
//! semantics from this module for free.

use kiss_lang::hir::{BinOp, Cond, Operand, Place, Rvalue, StructId, UnOp, VarRef};

use crate::error::ExecError;
use crate::value::{Addr, Value};

/// Access to the execution context of one step: the current frame's
/// locals, shared globals, and the heap.
pub trait Env {
    /// Reads a variable (local of the current frame, or global).
    fn read_var(&self, v: VarRef) -> Value;
    /// Writes a variable.
    fn write_var(&mut self, v: VarRef, val: Value);
    /// Reads a memory cell by address.
    ///
    /// # Errors
    ///
    /// Fails on dangling local addresses or corrupted heap addresses.
    fn read_addr(&self, a: Addr) -> Result<Value, ExecError>;
    /// Writes a memory cell by address.
    ///
    /// # Errors
    ///
    /// Fails on dangling local addresses or corrupted heap addresses.
    fn write_addr(&mut self, a: Addr, val: Value) -> Result<(), ExecError>;
    /// The address of a variable (for `&v`).
    fn addr_of_var(&self, v: VarRef) -> Addr;
    /// Allocates a struct instance and returns the object index.
    fn malloc(&mut self, sid: StructId) -> u32;
}

/// Evaluates an operand.
pub fn eval_operand(env: &impl Env, op: &Operand) -> Value {
    match op {
        Operand::Const(c) => Value::from_const(*c),
        Operand::Var(v) => env.read_var(*v),
    }
}

/// Resolves a place to the address it denotes.
///
/// # Errors
///
/// Fails if a pointer-typed step encounters a non-pointer value.
pub fn place_addr(env: &impl Env, place: &Place) -> Result<Addr, ExecError> {
    match place {
        Place::Var(v) => Ok(env.addr_of_var(*v)),
        Place::Deref(v) => match env.read_var(*v) {
            Value::Ptr(a) => Ok(a),
            other => Err(ExecError::NullDeref { found: other.type_name() }),
        },
        Place::Field(v, _sid, fidx) => match env.read_var(*v) {
            Value::Ptr(Addr::Heap { obj, .. }) => Ok(Addr::Heap { obj, field: *fidx }),
            Value::Ptr(_) => Err(ExecError::BadField),
            other => Err(ExecError::NullDeref { found: other.type_name() }),
        },
    }
}

/// Evaluates a condition (`v` / `!v`).
///
/// # Errors
///
/// Fails if the variable does not hold a boolean.
pub fn eval_cond(env: &impl Env, cond: &Cond) -> Result<bool, ExecError> {
    match env.read_var(cond.var) {
        Value::Bool(b) => Ok(b != cond.negated),
        other => Err(ExecError::TypeMismatch {
            op: if cond.negated { "assume/assert !v" } else { "assume/assert v" },
            lhs: other.type_name(),
            rhs: None,
        }),
    }
}

/// Evaluates an rvalue.
///
/// # Errors
///
/// Propagates dereference, type and arithmetic errors.
pub fn eval_rvalue(env: &mut impl Env, rv: &Rvalue) -> Result<Value, ExecError> {
    match rv {
        Rvalue::Operand(op) => Ok(eval_operand(env, op)),
        Rvalue::Load(place) => {
            let addr = place_addr(env, place)?;
            env.read_addr(addr)
        }
        Rvalue::AddrOf(v) => Ok(Value::Ptr(env.addr_of_var(*v))),
        Rvalue::AddrOfField(v, _sid, fidx) => match env.read_var(*v) {
            Value::Ptr(Addr::Heap { obj, .. }) => Ok(Value::Ptr(Addr::Heap { obj, field: *fidx })),
            Value::Ptr(_) => Err(ExecError::BadField),
            other => Err(ExecError::NullDeref { found: other.type_name() }),
        },
        Rvalue::BinOp(op, a, b) => {
            let a = eval_operand(env, a);
            let b = eval_operand(env, b);
            eval_binop(*op, a, b)
        }
        Rvalue::UnOp(op, a) => {
            let a = eval_operand(env, a);
            eval_unop(*op, a)
        }
        Rvalue::Malloc(sid) => {
            let obj = env.malloc(*sid);
            Ok(Value::Ptr(Addr::Heap { obj, field: 0 }))
        }
    }
}

/// Executes `place = rvalue`.
///
/// # Errors
///
/// Propagates evaluation errors from either side.
pub fn exec_assign(env: &mut impl Env, place: &Place, rv: &Rvalue) -> Result<(), ExecError> {
    let val = eval_rvalue(env, rv)?;
    match place {
        Place::Var(v) => {
            env.write_var(*v, val);
            Ok(())
        }
        _ => {
            let addr = place_addr(env, place)?;
            env.write_addr(addr, val)
        }
    }
}

/// Applies a binary operator to two values.
///
/// # Errors
///
/// Fails on operand type mismatches and on `%` by zero.
pub fn eval_binop(op: BinOp, a: Value, b: Value) -> Result<Value, ExecError> {
    use BinOp::*;
    let mismatch = |opname| ExecError::TypeMismatch { op: opname, lhs: a.type_name(), rhs: Some(b.type_name()) };
    match op {
        Add | Sub | Mul | Mod => match (a, b) {
            (Value::Int(x), Value::Int(y)) => match op {
                Add => x.checked_add(y).map(Value::Int).ok_or(ExecError::Overflow),
                Sub => x.checked_sub(y).map(Value::Int).ok_or(ExecError::Overflow),
                Mul => x.checked_mul(y).map(Value::Int).ok_or(ExecError::Overflow),
                Mod => {
                    if y == 0 {
                        Err(ExecError::DivisionByZero)
                    } else {
                        Ok(Value::Int(x.rem_euclid(y)))
                    }
                }
                _ => unreachable!(),
            },
            _ => Err(mismatch(binop_name(op))),
        },
        Lt | Le | Gt | Ge => match (a, b) {
            (Value::Int(x), Value::Int(y)) => Ok(Value::Bool(match op {
                Lt => x < y,
                Le => x <= y,
                Gt => x > y,
                Ge => x >= y,
                _ => unreachable!(),
            })),
            _ => Err(mismatch(binop_name(op))),
        },
        // Equality is defined across all value shapes; values of
        // different shapes are simply unequal (null != any pointer,
        // null != any function, ...).
        Eq => Ok(Value::Bool(a == b)),
        Ne => Ok(Value::Bool(a != b)),
        And | Or => match (a, b) {
            (Value::Bool(x), Value::Bool(y)) => {
                Ok(Value::Bool(if matches!(op, And) { x && y } else { x || y }))
            }
            _ => Err(mismatch(binop_name(op))),
        },
    }
}

/// Applies a unary operator.
///
/// # Errors
///
/// Fails on operand type mismatches.
pub fn eval_unop(op: UnOp, a: Value) -> Result<Value, ExecError> {
    match (op, a) {
        (UnOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
        (UnOp::Neg, Value::Int(n)) => n.checked_neg().map(Value::Int).ok_or(ExecError::Overflow),
        (UnOp::Not, other) => {
            Err(ExecError::TypeMismatch { op: "!", lhs: other.type_name(), rhs: None })
        }
        (UnOp::Neg, other) => {
            Err(ExecError::TypeMismatch { op: "-", lhs: other.type_name(), rhs: None })
        }
    }
}

fn binop_name(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Mod => "%",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::And => "&&",
        BinOp::Or => "||",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kiss_lang::hir::{Const, GlobalId};

    /// A toy Env over a flat global array, for unit-testing evaluation.
    struct TestEnv {
        globals: Vec<Value>,
        heap: Vec<Vec<Value>>,
    }

    impl Env for TestEnv {
        fn read_var(&self, v: VarRef) -> Value {
            match v {
                VarRef::Global(g) => self.globals[g.0 as usize],
                VarRef::Local(_) => unimplemented!("test env has no locals"),
            }
        }
        fn write_var(&mut self, v: VarRef, val: Value) {
            match v {
                VarRef::Global(g) => self.globals[g.0 as usize] = val,
                VarRef::Local(_) => unimplemented!(),
            }
        }
        fn read_addr(&self, a: Addr) -> Result<Value, ExecError> {
            match a {
                Addr::Global(g) => Ok(self.globals[g.0 as usize]),
                Addr::Heap { obj, field } => self.heap[obj as usize]
                    .get(field as usize)
                    .copied()
                    .ok_or(ExecError::BadField),
                Addr::Local { .. } => Err(ExecError::DanglingLocal),
            }
        }
        fn write_addr(&mut self, a: Addr, val: Value) -> Result<(), ExecError> {
            match a {
                Addr::Global(g) => {
                    self.globals[g.0 as usize] = val;
                    Ok(())
                }
                Addr::Heap { obj, field } => {
                    *self.heap[obj as usize].get_mut(field as usize).ok_or(ExecError::BadField)? = val;
                    Ok(())
                }
                Addr::Local { .. } => Err(ExecError::DanglingLocal),
            }
        }
        fn addr_of_var(&self, v: VarRef) -> Addr {
            match v {
                VarRef::Global(g) => Addr::Global(g),
                VarRef::Local(_) => unimplemented!(),
            }
        }
        fn malloc(&mut self, _sid: StructId) -> u32 {
            self.heap.push(vec![Value::Int(0), Value::Int(0)]);
            (self.heap.len() - 1) as u32
        }
    }

    fn env() -> TestEnv {
        TestEnv { globals: vec![Value::Int(10), Value::Bool(true), Value::Null], heap: vec![] }
    }

    fn gv(i: u32) -> VarRef {
        VarRef::Global(GlobalId(i))
    }

    #[test]
    fn arithmetic_and_comparison() {
        assert_eq!(eval_binop(BinOp::Add, Value::Int(2), Value::Int(3)), Ok(Value::Int(5)));
        assert_eq!(eval_binop(BinOp::Sub, Value::Int(2), Value::Int(3)), Ok(Value::Int(-1)));
        assert_eq!(eval_binop(BinOp::Mul, Value::Int(4), Value::Int(3)), Ok(Value::Int(12)));
        assert_eq!(eval_binop(BinOp::Mod, Value::Int(7), Value::Int(3)), Ok(Value::Int(1)));
        assert_eq!(eval_binop(BinOp::Lt, Value::Int(1), Value::Int(2)), Ok(Value::Bool(true)));
        assert_eq!(eval_binop(BinOp::Ge, Value::Int(1), Value::Int(2)), Ok(Value::Bool(false)));
    }

    #[test]
    fn modulo_by_zero_and_overflow_are_errors() {
        assert_eq!(eval_binop(BinOp::Mod, Value::Int(1), Value::Int(0)), Err(ExecError::DivisionByZero));
        assert_eq!(
            eval_binop(BinOp::Add, Value::Int(i64::MAX), Value::Int(1)),
            Err(ExecError::Overflow)
        );
        assert_eq!(eval_unop(UnOp::Neg, Value::Int(i64::MIN)), Err(ExecError::Overflow));
    }

    #[test]
    fn equality_spans_value_shapes() {
        assert_eq!(eval_binop(BinOp::Eq, Value::Null, Value::Null), Ok(Value::Bool(true)));
        assert_eq!(
            eval_binop(BinOp::Eq, Value::Null, Value::Ptr(Addr::Heap { obj: 0, field: 0 })),
            Ok(Value::Bool(false))
        );
        assert_eq!(
            eval_binop(BinOp::Ne, Value::Int(1), Value::Bool(true)),
            Ok(Value::Bool(true))
        );
    }

    #[test]
    fn boolean_operators_require_booleans() {
        assert_eq!(
            eval_binop(BinOp::And, Value::Bool(true), Value::Bool(false)),
            Ok(Value::Bool(false))
        );
        assert!(eval_binop(BinOp::And, Value::Int(1), Value::Bool(true)).is_err());
        assert!(eval_unop(UnOp::Not, Value::Int(0)).is_err());
        assert_eq!(eval_unop(UnOp::Not, Value::Bool(false)), Ok(Value::Bool(true)));
    }

    #[test]
    fn conditions_read_through_env() {
        let e = env();
        assert_eq!(eval_cond(&e, &Cond::pos(gv(1))), Ok(true));
        assert_eq!(eval_cond(&e, &Cond::neg(gv(1))), Ok(false));
        assert!(eval_cond(&e, &Cond::pos(gv(0))).is_err());
    }

    #[test]
    fn deref_of_null_is_an_error() {
        let mut e = env();
        let rv = Rvalue::Load(Place::Deref(gv(2)));
        assert!(matches!(eval_rvalue(&mut e, &rv), Err(ExecError::NullDeref { .. })));
    }

    #[test]
    fn malloc_then_field_roundtrip() {
        let mut e = env();
        // g0 = malloc(S); then treat g0 as pointer: write via place, read back.
        exec_assign(&mut e, &Place::Var(gv(0)), &Rvalue::Malloc(StructId(0))).unwrap();
        let pl = Place::Field(gv(0), StructId(0), 1);
        exec_assign(&mut e, &pl, &Rvalue::Operand(Operand::Const(Const::Int(9)))).unwrap();
        let mut e2 = e;
        assert_eq!(eval_rvalue(&mut e2, &Rvalue::Load(pl)), Ok(Value::Int(9)));
    }

    #[test]
    fn addr_of_field_requires_heap_pointer() {
        let mut e = env();
        let rv = Rvalue::AddrOfField(gv(2), StructId(0), 0);
        assert!(eval_rvalue(&mut e, &rv).is_err());
        exec_assign(&mut e, &Place::Var(gv(2)), &Rvalue::Malloc(StructId(0))).unwrap();
        let got = eval_rvalue(&mut e, &Rvalue::AddrOfField(gv(2), StructId(0), 1)).unwrap();
        assert_eq!(got, Value::Ptr(Addr::Heap { obj: 0, field: 1 }));
    }

    #[test]
    fn assign_through_deref_pointer() {
        let mut e = env();
        // g2 = &g0; *g2 = 42;
        exec_assign(&mut e, &Place::Var(gv(2)), &Rvalue::AddrOf(gv(0))).unwrap();
        exec_assign(&mut e, &Place::Deref(gv(2)), &Rvalue::Operand(Operand::Const(Const::Int(42))))
            .unwrap();
        assert_eq!(e.globals[0], Value::Int(42));
    }
}
