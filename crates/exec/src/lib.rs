//! # kiss-exec
//!
//! The shared execution substrate for the KISS reproduction: dynamic
//! values, addresses and heap objects ([`value`]), a flat control-flow
//! instruction form lowered from the core IR ([`mod@cfg`]), and a
//! context-generic evaluator for instructions ([`eval`]).
//!
//! Both the sequential checkers (`kiss-seq`, the stand-in for SLAM) and
//! the concurrent baseline explorer (`kiss-conc`) are built on this
//! crate, so a statement is guaranteed to mean the same thing under
//! sequential and interleaved execution — which is what makes the
//! completeness theorem (paper Theorem 1) empirically testable.

pub mod cfg;
pub mod cow;
pub mod error;
pub mod eval;
pub mod value;

pub use cfg::{FuncBody, Instr, InstrMeta, Module};
pub use cow::CowVec;
pub use error::ExecError;
pub use eval::{eval_operand, eval_rvalue, exec_assign, place_addr, Env};
pub use value::{Addr, HeapObj, Memory, Value};
