//! Runtime values, addresses and memory.
//!
//! KISS-C is dynamically typed at execution time: the engines check at
//! each operation that operand shapes match, and report a runtime error
//! (distinct from an assertion failure) otherwise.

use kiss_lang::hir::{Const, FuncId, GlobalId, StructId};
use kiss_lang::Program;

use crate::cow::CowVec;

/// The address of a memory cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Addr {
    /// A global variable.
    Global(GlobalId),
    /// Field `field` of heap object `obj`.
    Heap {
        /// Heap object index.
        obj: u32,
        /// Field index within the object.
        field: u32,
    },
    /// A local variable slot on some thread's stack. Sequential engines
    /// use `tid == 0`.
    Local {
        /// Owning thread.
        tid: u32,
        /// Frame depth within that thread's stack (0 = bottom).
        frame: u32,
        /// Local slot index.
        local: u32,
    },
}

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// Integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// Function reference.
    Fn(FuncId),
    /// Pointer.
    Ptr(Addr),
    /// Null pointer / null function reference / uninitialized cell.
    Null,
}

impl Value {
    /// Converts a compile-time constant to a value.
    pub fn from_const(c: Const) -> Value {
        match c {
            Const::Int(n) => Value::Int(n),
            Const::Bool(b) => Value::Bool(b),
            Const::Null => Value::Null,
            Const::Fn(f) => Value::Fn(f),
        }
    }

    /// The default value for a declared type: `0`, `false`, or null.
    pub fn default_for(ty: Option<&kiss_lang::hir::Type>) -> Value {
        match ty {
            Some(kiss_lang::hir::Type::Int) => Value::Int(0),
            Some(kiss_lang::hir::Type::Bool) => Value::Bool(false),
            _ => Value::Null,
        }
    }

    /// Truthiness as an atomic proposition: a nonzero int, `true`, or a
    /// non-null reference. Used by the LTL engine to judge bare-name
    /// atoms against global values.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Int(n) => *n != 0,
            Value::Bool(b) => *b,
            Value::Fn(_) | Value::Ptr(_) => true,
            Value::Null => false,
        }
    }

    /// The integer content, if the value is an int.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// A short type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Bool(_) => "bool",
            Value::Fn(_) => "fn",
            Value::Ptr(_) => "pointer",
            Value::Null => "null",
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Fn(id) => write!(f, "{id}"),
            Value::Ptr(Addr::Global(g)) => write!(f, "&global#{}", g.0),
            Value::Ptr(Addr::Heap { obj, field }) => write!(f, "&heap#{obj}.{field}"),
            Value::Ptr(Addr::Local { tid, frame, local }) => {
                write!(f, "&local#{tid}.{frame}.{local}")
            }
            Value::Null => write!(f, "null"),
        }
    }
}

/// A heap-allocated struct instance.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HeapObj {
    /// The struct this object instantiates.
    pub struct_id: StructId,
    /// One value per field.
    pub fields: Vec<Value>,
}

/// Shared memory: globals plus the heap. Thread stacks live in the
/// engines' own configurations.
///
/// Both stores are [`CowVec`]s: cloning a `Memory` into a frontier or
/// branch alternative bumps per-chunk reference counts, and the first
/// write through [`CowVec::get_mut`] copies only the touched chunk.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Memory {
    /// One value per global.
    pub globals: CowVec<Value>,
    /// Allocated objects, in allocation order.
    pub heap: CowVec<HeapObj>,
}

impl Memory {
    /// Initial memory for a program: globals set to their initializers
    /// or type defaults, empty heap.
    pub fn initial(program: &Program) -> Memory {
        let globals = program
            .globals
            .iter()
            .map(|gd| match gd.init {
                Some(c) => Value::from_const(c),
                None => Value::default_for(gd.ty.as_ref()),
            })
            .collect();
        Memory { globals, heap: CowVec::new() }
    }

    /// Allocates a struct instance with all fields defaulted, returning
    /// the address of the object (field 0).
    pub fn malloc(&mut self, program: &Program, sid: StructId) -> u32 {
        let def = &program.structs[sid.0 as usize];
        let fields = def.fields.iter().map(|(_, ty)| Value::default_for(Some(ty))).collect();
        self.heap.push(HeapObj { struct_id: sid, fields });
        (self.heap.len() - 1) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kiss_lang::parse_and_lower;

    #[test]
    fn truthiness_and_int_views() {
        assert!(Value::Int(2).truthy() && Value::Int(-1).truthy());
        assert!(!Value::Int(0).truthy());
        assert!(Value::Bool(true).truthy() && !Value::Bool(false).truthy());
        assert!(!Value::Null.truthy());
        assert!(Value::Fn(kiss_lang::hir::FuncId(0)).truthy());
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Bool(true).as_int(), None);
        assert_eq!(Value::Null.as_int(), None);
    }

    #[test]
    fn from_const_round_trips() {
        assert_eq!(Value::from_const(Const::Int(7)), Value::Int(7));
        assert_eq!(Value::from_const(Const::Bool(true)), Value::Bool(true));
        assert_eq!(Value::from_const(Const::Null), Value::Null);
        assert_eq!(Value::from_const(Const::Fn(FuncId(2))), Value::Fn(FuncId(2)));
    }

    #[test]
    fn defaults_follow_declared_types() {
        use kiss_lang::hir::Type;
        assert_eq!(Value::default_for(Some(&Type::Int)), Value::Int(0));
        assert_eq!(Value::default_for(Some(&Type::Bool)), Value::Bool(false));
        assert_eq!(Value::default_for(Some(&Type::Fn)), Value::Null);
        assert_eq!(Value::default_for(None), Value::Null);
    }

    #[test]
    fn initial_memory_uses_initializers() {
        let p = parse_and_lower("int a = 5; bool b; int c; void main() { skip; }").unwrap();
        let mem = Memory::initial(&p);
        assert_eq!(mem.globals, vec![Value::Int(5), Value::Bool(false), Value::Int(0)]);
        assert!(mem.heap.is_empty());
    }

    #[test]
    fn malloc_defaults_fields_per_type() {
        let p = parse_and_lower("struct D { int x; bool b; fn f; } void main() { skip; }").unwrap();
        let mut mem = Memory::initial(&p);
        let obj = mem.malloc(&p, kiss_lang::StructId(0));
        assert_eq!(obj, 0);
        assert_eq!(mem.heap[0].fields, vec![Value::Int(0), Value::Bool(false), Value::Null]);
        let obj2 = mem.malloc(&p, kiss_lang::StructId(0));
        assert_eq!(obj2, 1);
    }

    #[test]
    fn value_display_is_informative() {
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::Ptr(Addr::Heap { obj: 1, field: 2 }).to_string(), "&heap#1.2");
    }
}
