//! # kiss-fault
//!
//! Deterministic fault injection for the KISS serving stack.
//!
//! A **failpoint** is a named site in production code — a journal
//! append, a socket read, a queue admission — that asks this crate
//! whether a fault should fire *right now*. In normal operation the
//! answer is always "no" and the question costs one relaxed atomic
//! load. Under a chaos test or a `KISS_FAULT` profile, each site is
//! bound to a [`Policy`] that decides deterministically, from a fixed
//! seed and the site's own hit counter, when to inject an error, a
//! panic, a delay, or a truncated write.
//!
//! Determinism is the point: the chaos suite's invariant is that a
//! faulted run returns the *same verdicts* as a fault-free run for
//! every request it completes, and that only holds up to reproducible
//! fault schedules. Probabilistic policies therefore derive their coin
//! flips from `splitmix64(seed ^ site ^ hit_index)`, never from a
//! global RNG or the clock — the i-th hit of a given site under a
//! given seed always decides the same way, regardless of thread
//! interleaving elsewhere.
//!
//! ## Wiring a site
//!
//! ```
//! match kiss_fault::hit("serve.journal.append") {
//!     None => { /* normal path */ }
//!     Some(action) => { /* honour Error/Panic/Delay/Truncate */ }
//! }
//! ```
//!
//! Sites that cannot honour a particular action (a queue admission
//! cannot truncate anything) treat it as the nearest meaningful one
//! and document the mapping.
//!
//! ## Profiles
//!
//! A profile is a one-line spec, accepted programmatically
//! ([`configure`]) or from the `KISS_FAULT` environment variable
//! ([`configure_from_env`]):
//!
//! ```text
//! seed=42;serve.worker=panic*1;serve.journal.append=truncate(8)%25;serve.conn.read=error%5
//! ```
//!
//! `;`-separated clauses, each `site=action`. Actions:
//!
//! | spec | meaning |
//! |---|---|
//! | `error` / `panic` | fire on **every** hit |
//! | `error*N` | fire on the first `N` hits, then stop (`error*1` = error once) |
//! | `error%P` | fire on each hit with probability `P`% (seeded, deterministic) |
//! | `delay(MS)`, `delay(MS)*N`, `delay(MS)%P` | sleep `MS` milliseconds |
//! | `truncate(K)`, `truncate(K)*N`, `truncate(K)%P` | keep only `K` bytes of a write |
//! | `off` | unbind the site |
//!
//! `seed=N` seeds every probabilistic clause (default 0).
//!
//! ## Cost when disabled
//!
//! With no profile configured, [`hit`] is a single
//! `AtomicBool::load(Relaxed)` and an immediate `None`. Building with
//! the `force-off` feature removes even that: [`hit`] becomes a
//! constant `None` the optimizer erases along with the match on it.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// What one failpoint decision asks the site to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Fail the operation with an injected error.
    Error,
    /// Panic (sites under `catch_unwind` turn this into a crash path).
    Panic,
    /// Sleep for the given duration, then proceed normally.
    Delay(Duration),
    /// Perform only the first `usize` bytes of a write (torn write).
    Truncate(usize),
}

impl Action {
    /// Stable lowercase name for events and logs.
    pub fn name(self) -> &'static str {
        match self {
            Action::Error => "error",
            Action::Panic => "panic",
            Action::Delay(_) => "delay",
            Action::Truncate(_) => "truncate",
        }
    }
}

/// When a bound site fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Fire on every hit.
    Always,
    /// Fire on the first `n` hits, then never again.
    Times(u32),
    /// Fire on each hit with this probability, in percent (seeded,
    /// deterministic per hit index).
    Percent(u32),
}

/// One site's binding: what to do and when to do it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Policy {
    /// The action to inject.
    pub action: Action,
    /// When the action fires.
    pub trigger: Trigger,
}

#[derive(Debug, Default)]
struct Point {
    policy: Option<Policy>,
    /// Hits seen (whether or not they fired).
    hits: u64,
    /// Hits that actually injected a fault.
    fired: u64,
}

#[derive(Debug, Default)]
struct Registry {
    seed: u64,
    points: BTreeMap<String, Point>,
}

/// Fast-path flag: `false` means no site is bound and [`hit`] returns
/// immediately.
static ACTIVE: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(Mutex::default)
}

/// SplitMix64: the standard avalanche step, good enough to turn
/// (seed, site, hit-index) into an unbiased coin.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn site_hash(name: &str) -> u64 {
    // FNV-1a; only used to decorrelate sites sharing one seed.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Asks whether the failpoint `name` should inject a fault on this
/// hit. `None` is the normal path. Sites call this unconditionally;
/// the disabled fast path is one relaxed atomic load.
#[inline]
pub fn hit(name: &str) -> Option<Action> {
    #[cfg(feature = "force-off")]
    {
        let _ = name;
        None
    }
    #[cfg(not(feature = "force-off"))]
    {
        if !ACTIVE.load(Ordering::Relaxed) {
            return None;
        }
        hit_slow(name)
    }
}

#[cfg(not(feature = "force-off"))]
fn hit_slow(name: &str) -> Option<Action> {
    let mut reg = registry().lock().expect("fault registry lock");
    let seed = reg.seed;
    let point = reg.points.get_mut(name)?;
    let policy = point.policy?;
    let index = point.hits;
    point.hits += 1;
    let fires = match policy.trigger {
        Trigger::Always => true,
        Trigger::Times(n) => point.fired < u64::from(n),
        Trigger::Percent(p) => {
            let roll = splitmix64(seed ^ site_hash(name) ^ index) % 100;
            roll < u64::from(p.min(100))
        }
    };
    if !fires {
        return None;
    }
    point.fired += 1;
    Some(policy.action)
}

/// Whether any failpoint is currently bound.
pub fn is_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Binds one site to a policy (replacing any previous binding).
pub fn set(name: &str, policy: Policy) {
    let mut reg = registry().lock().expect("fault registry lock");
    reg.points.entry(name.to_string()).or_default().policy = Some(policy);
    ACTIVE.store(true, Ordering::Relaxed);
}

/// Clears every binding and counter. The next [`hit`] is back on the
/// one-atomic-load fast path.
pub fn reset() {
    let mut reg = registry().lock().expect("fault registry lock");
    reg.points.clear();
    reg.seed = 0;
    ACTIVE.store(false, Ordering::Relaxed);
}

/// Replaces the whole configuration with `spec` (see the module docs
/// for the grammar). An empty spec is [`reset`].
pub fn configure(spec: &str) -> Result<(), String> {
    let parsed = parse_spec(spec)?;
    let mut reg = registry().lock().expect("fault registry lock");
    reg.points.clear();
    reg.seed = parsed.seed;
    let any = !parsed.bindings.is_empty();
    for (name, policy) in parsed.bindings {
        reg.points.insert(name, Point { policy: Some(policy), hits: 0, fired: 0 });
    }
    ACTIVE.store(any, Ordering::Relaxed);
    Ok(())
}

/// Configures from the `KISS_FAULT` environment variable. Returns the
/// spec when one was found and applied, `None` when the variable is
/// unset or empty.
pub fn configure_from_env() -> Result<Option<String>, String> {
    match std::env::var("KISS_FAULT") {
        Ok(spec) if !spec.trim().is_empty() => {
            configure(&spec).map_err(|e| format!("KISS_FAULT: {e}"))?;
            Ok(Some(spec))
        }
        _ => Ok(None),
    }
}

/// Per-site injection tallies: `(site, hits seen, faults fired)`,
/// sorted by site name. Sites bound but never hit report `(0, 0)`.
pub fn injections() -> Vec<(String, u64, u64)> {
    let reg = registry().lock().expect("fault registry lock");
    reg.points.iter().map(|(k, p)| (k.clone(), p.hits, p.fired)).collect()
}

/// Total faults fired across every site since the last [`configure`]
/// or [`reset`].
pub fn total_fired() -> u64 {
    let reg = registry().lock().expect("fault registry lock");
    reg.points.values().map(|p| p.fired).sum()
}

struct ParsedSpec {
    seed: u64,
    bindings: Vec<(String, Policy)>,
}

fn parse_spec(spec: &str) -> Result<ParsedSpec, String> {
    let mut parsed = ParsedSpec { seed: 0, bindings: Vec::new() };
    for clause in spec.split(';').map(str::trim).filter(|c| !c.is_empty()) {
        let (name, value) = clause
            .split_once('=')
            .ok_or_else(|| format!("clause `{clause}` is not `site=action`"))?;
        let (name, value) = (name.trim(), value.trim());
        if name.is_empty() {
            return Err(format!("clause `{clause}` has an empty site name"));
        }
        if name == "seed" {
            parsed.seed = value.parse().map_err(|_| format!("bad seed `{value}`"))?;
            continue;
        }
        if value == "off" {
            parsed.bindings.retain(|(n, _)| n != name);
            continue;
        }
        parsed.bindings.push((name.to_string(), parse_policy(value)?));
    }
    Ok(parsed)
}

fn parse_policy(value: &str) -> Result<Policy, String> {
    // Split the trigger suffix: `*N` (times) or `%P` (percent).
    let (base, trigger) = if let Some((b, n)) = value.rsplit_once('*') {
        let times = n.trim().parse().map_err(|_| format!("bad count in `{value}`"))?;
        (b.trim(), Trigger::Times(times))
    } else if let Some((b, p)) = value.rsplit_once('%') {
        let pct: u32 = p.trim().parse().map_err(|_| format!("bad percent in `{value}`"))?;
        if pct > 100 {
            return Err(format!("percent {pct} > 100 in `{value}`"));
        }
        (b.trim(), Trigger::Percent(pct))
    } else {
        (value, Trigger::Always)
    };
    let action = if base == "error" {
        Action::Error
    } else if base == "panic" {
        Action::Panic
    } else if let Some(arg) = arg_of(base, "delay") {
        Action::Delay(Duration::from_millis(
            arg?.parse().map_err(|_| format!("bad delay in `{value}`"))?,
        ))
    } else if let Some(arg) = arg_of(base, "truncate") {
        Action::Truncate(arg?.parse().map_err(|_| format!("bad truncate length in `{value}`"))?)
    } else {
        return Err(format!(
            "unknown action `{base}` (expected error, panic, delay(MS), truncate(K), or off)"
        ));
    };
    Ok(Policy { action, trigger })
}

/// For `delay(5)`-style specs: `Some(Ok("5"))` when `base` is
/// `head(...)`, `Some(Err)` when the parentheses are malformed, `None`
/// when `base` is some other action.
fn arg_of<'a>(base: &'a str, head: &str) -> Option<Result<&'a str, String>> {
    let rest = base.strip_prefix(head)?;
    let rest = rest.trim();
    if let Some(inner) = rest.strip_prefix('(').and_then(|r| r.strip_suffix(')')) {
        Some(Ok(inner.trim()))
    } else {
        Some(Err(format!("`{head}` needs a parenthesized argument, e.g. `{head}(5)`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// The registry is process-global, so tests serialize on their own
    /// lock and reset around each body.
    fn exclusive() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        guard
    }

    #[test]
    fn disabled_fast_path_returns_none() {
        let _x = exclusive();
        assert!(!is_active());
        assert_eq!(hit("anything"), None);
    }

    #[test]
    fn error_times_fires_exactly_n_then_stops() {
        let _x = exclusive();
        configure("serve.read=error*2").unwrap();
        assert!(is_active());
        assert_eq!(hit("serve.read"), Some(Action::Error));
        assert_eq!(hit("serve.read"), Some(Action::Error));
        assert_eq!(hit("serve.read"), None);
        assert_eq!(hit("serve.read"), None);
        assert_eq!(hit("unbound.site"), None);
        assert_eq!(injections(), vec![("serve.read".to_string(), 4, 2)]);
        assert_eq!(total_fired(), 2);
    }

    #[test]
    fn always_fires_every_hit_and_delay_truncate_carry_arguments() {
        let _x = exclusive();
        configure("a=delay(25);b=truncate(8);c=panic").unwrap();
        for _ in 0..3 {
            assert_eq!(hit("a"), Some(Action::Delay(Duration::from_millis(25))));
        }
        assert_eq!(hit("b"), Some(Action::Truncate(8)));
        assert_eq!(hit("c"), Some(Action::Panic));
        assert_eq!(hit("c").unwrap().name(), "panic");
    }

    #[test]
    fn percent_policy_is_deterministic_under_a_fixed_seed() {
        let _x = exclusive();
        let run = |seed: u64| -> Vec<bool> {
            configure(&format!("seed={seed};site=error%40")).unwrap();
            (0..64).map(|_| hit("site").is_some()).collect()
        };
        let first = run(7);
        let again = run(7);
        assert_eq!(first, again, "same seed, same schedule");
        let fired = first.iter().filter(|b| **b).count();
        assert!(fired > 10 && fired < 45, "~40% of 64 hits, got {fired}");
        let other = run(8);
        assert_ne!(first, other, "different seed, different schedule");
    }

    #[test]
    fn sites_sharing_a_seed_decide_independently() {
        let _x = exclusive();
        configure("seed=3;a=error%50;b=error%50").unwrap();
        let a: Vec<bool> = (0..64).map(|_| hit("a").is_some()).collect();
        let b: Vec<bool> = (0..64).map(|_| hit("b").is_some()).collect();
        assert_ne!(a, b, "site hash decorrelates coin flips");
    }

    #[test]
    fn configure_replaces_and_reset_clears() {
        let _x = exclusive();
        configure("a=error").unwrap();
        assert_eq!(hit("a"), Some(Action::Error));
        configure("b=panic*1").unwrap();
        assert_eq!(hit("a"), None, "old bindings are gone");
        assert_eq!(hit("b"), Some(Action::Panic));
        reset();
        assert!(!is_active());
        assert_eq!(hit("b"), None);
        assert!(injections().is_empty());
    }

    #[test]
    fn off_clause_unbinds_and_empty_spec_deactivates() {
        let _x = exclusive();
        configure("a=error;a=off").unwrap();
        assert!(!is_active());
        configure("  ;; ").unwrap();
        assert!(!is_active());
    }

    #[test]
    fn malformed_specs_are_rejected_with_reasons() {
        let _x = exclusive();
        for (spec, needle) in [
            ("justaname", "not `site=action`"),
            ("=error", "empty site name"),
            ("a=explode", "unknown action"),
            ("a=error*x", "bad count"),
            ("a=error%x", "bad percent"),
            ("a=error%101", "> 100"),
            ("a=delay", "parenthesized argument"),
            ("a=delay(x)", "bad delay"),
            ("a=truncate(", "parenthesized argument"),
            ("seed=abc", "bad seed"),
        ] {
            let err = configure(spec).unwrap_err();
            assert!(err.contains(needle), "{spec} -> {err}");
        }
        // A failed configure never half-applies.
        assert!(!is_active());
    }

    #[test]
    fn env_configuration_round_trips() {
        let _x = exclusive();
        std::env::remove_var("KISS_FAULT");
        assert_eq!(configure_from_env().unwrap(), None);
        std::env::set_var("KISS_FAULT", "site=error*1");
        assert_eq!(configure_from_env().unwrap().as_deref(), Some("site=error*1"));
        assert_eq!(hit("site"), Some(Action::Error));
        std::env::set_var("KISS_FAULT", "not a spec");
        assert!(configure_from_env().unwrap_err().contains("KISS_FAULT"));
        std::env::remove_var("KISS_FAULT");
        reset();
    }
}
