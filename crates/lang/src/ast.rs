//! Surface abstract syntax for KISS-C.
//!
//! The surface language is deliberately richer than the paper's core
//! grammar: it has `if`/`while`, compound boolean/arithmetic expressions
//! and named struct fields. [`crate::lower`] desugars all of that into
//! the core [`crate::hir`], which is exactly the paper's Figure 3
//! language.

use crate::span::Span;

/// A whole translation unit: struct definitions, global variables and
/// function definitions.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// Struct definitions, in source order.
    pub structs: Vec<StructDef>,
    /// Global variable declarations, in source order.
    pub globals: Vec<VarDecl>,
    /// Function definitions, in source order.
    pub funcs: Vec<FuncDef>,
}

/// A `struct Name { field decls }` definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// Field declarations.
    pub fields: Vec<VarDecl>,
    /// Source location of the `struct` keyword.
    pub span: Span,
}

/// A variable declaration `ty name;` (global, local, field or parameter).
/// Globals may carry a constant initializer: `int g = 0;`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarDecl {
    /// Declared name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Constant initializer (globals only; defaults to 0/false/null).
    pub init: Option<Expr>,
    /// Source location of the name.
    pub span: Span,
}

/// Declared types. KISS-C is checked dynamically at execution time; the
/// declared types drive struct layout and readability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Type {
    /// Machine integer.
    Int,
    /// Boolean.
    Bool,
    /// Function reference (a thread start function).
    Fn,
    /// Pointer to another type.
    Ptr(Box<Type>),
    /// A named struct type (only meaningful behind a pointer or in
    /// `malloc`).
    Named(String),
}

impl Type {
    /// `true` for `T*` types.
    pub fn is_pointer(&self) -> bool {
        matches!(self, Type::Ptr(_))
    }
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncDef {
    /// Function name.
    pub name: String,
    /// `None` for `void` functions, otherwise the declared return type.
    pub ret: Option<Type>,
    /// Parameters.
    pub params: Vec<VarDecl>,
    /// Local declarations (must precede statements in the body).
    pub locals: Vec<VarDecl>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source location of the name.
    pub span: Span,
}

/// An lvalue: something assignable / addressable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LValue {
    /// A plain variable `x`.
    Var(String),
    /// A pointer dereference `*x`.
    Deref(String),
    /// A field projection through a pointer, `x->f`.
    Field(String, String),
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Logical negation `!`.
    Not,
    /// Arithmetic negation `-`.
    Neg,
}

/// Surface expressions. Function calls are statements, not expressions,
/// mirroring the paper's language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// The null pointer / null function reference.
    Null,
    /// Variable read — or a function name used as a value.
    Var(String),
    /// Pointer dereference `*x`.
    Deref(String),
    /// Field read `x->f`.
    Field(String, String),
    /// Address of a variable `&x`.
    AddrOf(String),
    /// Address of a field `&x->f` (binds as `&(x->f)`).
    AddrOfField(String, String),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
}

/// Surface statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stmt {
    /// The statement proper.
    pub kind: StmtKind,
    /// Source location.
    pub span: Span,
}

/// The different statement forms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StmtKind {
    /// `lv = expr;`
    Assign(LValue, Expr),
    /// `lv = malloc(Struct);`
    Malloc(LValue, String),
    /// `lv = f(args);` or `f(args);` — synchronous call. The callee is an
    /// identifier that resolves either to a function (direct call) or to
    /// a variable holding a function reference (indirect call).
    Call { dest: Option<LValue>, callee: String, args: Vec<Expr> },
    /// `async f(args);` — asynchronous call: fork a new thread.
    Async { callee: String, args: Vec<Expr> },
    /// `assert expr;`
    Assert(Expr),
    /// `assume expr;` — blocks until the expression is true.
    Assume(Expr),
    /// `atomic { ... }`
    Atomic(Vec<Stmt>),
    /// `if (expr) { ... } else { ... }`
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while (expr) { ... }`
    While(Expr, Vec<Stmt>),
    /// `choice { ... [] ... [] ... }` — nondeterministic branch.
    Choice(Vec<Vec<Stmt>>),
    /// `iter { ... }` — execute the body a nondeterministic number of
    /// times.
    Iter(Vec<Stmt>),
    /// `return;` / `return expr;`
    Return(Option<Expr>),
    /// `skip;`
    Skip,
    /// A bare `{ ... }` block.
    Block(Vec<Stmt>),
    /// `benign <stmt>` — the enclosed accesses are exempt from race
    /// instrumentation (the paper's future-work annotation for benign
    /// races).
    Benign(Box<Stmt>),
}

impl Stmt {
    /// Wraps a kind with a span.
    pub fn new(kind: StmtKind, span: Span) -> Self {
        Stmt { kind, span }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_pointer_predicate() {
        assert!(Type::Ptr(Box::new(Type::Int)).is_pointer());
        assert!(!Type::Int.is_pointer());
        assert!(!Type::Named("D".into()).is_pointer());
    }

    #[test]
    fn stmt_new_attaches_span() {
        let s = Stmt::new(StmtKind::Skip, Span::new(4, 2));
        assert_eq!(s.span, Span::new(4, 2));
        assert_eq!(s.kind, StmtKind::Skip);
    }
}
