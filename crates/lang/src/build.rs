//! Programmatic construction of core-IR functions.
//!
//! The KISS transformation generates runtime functions (`schedule`,
//! `check_r`, `check_w`, the `Check(s)` entry point) and the driver
//! corpus generator builds harnesses; both use this builder instead of
//! hand-assembling [`Stmt`] trees.

use crate::hir::*;
use crate::span::Span;

/// Shorthand for a global variable reference.
pub fn g(id: GlobalId) -> VarRef {
    VarRef::Global(id)
}

/// Shorthand for a local variable reference.
pub fn l(id: LocalId) -> VarRef {
    VarRef::Local(id)
}

/// Shorthand for a variable operand.
pub fn var(v: VarRef) -> Operand {
    Operand::Var(v)
}

/// Shorthand for an integer constant operand.
pub fn int(n: i64) -> Operand {
    Operand::Const(Const::Int(n))
}

/// Shorthand for a boolean constant operand.
pub fn boolean(b: bool) -> Operand {
    Operand::Const(Const::Bool(b))
}

/// Shorthand for the null constant operand.
pub fn null() -> Operand {
    Operand::Const(Const::Null)
}

/// Shorthand for a function-reference constant operand.
pub fn fnref(f: FuncId) -> Operand {
    Operand::Const(Const::Fn(f))
}

/// A deferred branch body, as [`FnBuilder::choice`] consumes them.
pub type BranchFn<'a> = Box<dyn FnOnce(&mut FnBuilder) + 'a>;

/// Builds a function statement-by-statement.
#[derive(Debug)]
pub struct FnBuilder {
    func: FuncDef,
    stmts: Vec<Stmt>,
    origin: Origin,
}

impl FnBuilder {
    /// Starts a function with named parameters.
    pub fn new(name: impl Into<String>, params: &[&str], has_ret: bool) -> Self {
        let locals = params
            .iter()
            .map(|p| LocalDef { name: (*p).to_string(), ty: None })
            .collect::<Vec<_>>();
        FnBuilder {
            func: FuncDef {
                name: name.into(),
                param_count: locals.len() as u32,
                locals,
                has_ret,
                body: Stmt::skip(),
            },
            stmts: Vec::new(),
            origin: Origin::Harness,
        }
    }

    /// Sets the provenance attached to subsequently-emitted statements.
    pub fn origin(&mut self, origin: Origin) -> &mut Self {
        self.origin = origin;
        self
    }

    /// Declares a named local, returning its id.
    pub fn local(&mut self, name: impl Into<String>) -> LocalId {
        let id = LocalId(self.func.locals.len() as u32);
        self.func.locals.push(LocalDef { name: name.into(), ty: None });
        id
    }

    /// The id of parameter `idx`.
    pub fn param(&self, idx: u32) -> LocalId {
        assert!(idx < self.func.param_count, "parameter index out of range");
        LocalId(idx)
    }

    fn push(&mut self, kind: StmtKind) -> &mut Self {
        self.stmts.push(Stmt { kind, span: Span::synthetic(), origin: self.origin });
        self
    }

    /// Emits a raw, already-constructed statement.
    pub fn stmt(&mut self, s: Stmt) -> &mut Self {
        self.stmts.push(s);
        self
    }

    /// `place = rvalue;`
    pub fn assign(&mut self, place: Place, rvalue: Rvalue) -> &mut Self {
        self.push(StmtKind::Assign(place, rvalue))
    }

    /// `v = operand;`
    pub fn set(&mut self, v: VarRef, op: Operand) -> &mut Self {
        self.assign(Place::Var(v), Rvalue::Operand(op))
    }

    /// `v = a op b;`
    pub fn binop(&mut self, v: VarRef, op: BinOp, a: Operand, b: Operand) -> &mut Self {
        self.assign(Place::Var(v), Rvalue::BinOp(op, a, b))
    }

    /// `assert cond;`
    pub fn assert(&mut self, cond: Cond) -> &mut Self {
        self.push(StmtKind::Assert(cond))
    }

    /// `assume cond;`
    pub fn assume(&mut self, cond: Cond) -> &mut Self {
        self.push(StmtKind::Assume(cond))
    }

    /// `skip;`
    pub fn skip(&mut self) -> &mut Self {
        self.push(StmtKind::Skip)
    }

    /// A synchronous call.
    pub fn call(&mut self, dest: Option<Place>, target: CallTarget, args: Vec<Operand>) -> &mut Self {
        self.push(StmtKind::Call { dest, target, args })
    }

    /// An asynchronous call.
    pub fn spawn(&mut self, target: CallTarget, args: Vec<Operand>) -> &mut Self {
        self.push(StmtKind::Async { target, args })
    }

    /// `return;` / `return op;`
    pub fn ret(&mut self, op: Option<Operand>) -> &mut Self {
        self.push(StmtKind::Return(op))
    }

    /// `atomic { ... }` with the body built by `f`.
    pub fn atomic(&mut self, f: impl FnOnce(&mut Self)) -> &mut Self {
        let body = self.sub(f);
        self.push(StmtKind::Atomic(Box::new(body)))
    }

    /// `iter { ... }` with the body built by `f`.
    pub fn iter(&mut self, f: impl FnOnce(&mut Self)) -> &mut Self {
        let body = self.sub(f);
        self.push(StmtKind::Iter(Box::new(body)))
    }

    /// `choice { b1 [] b2 [] ... }` with each branch built by a closure.
    pub fn choice(&mut self, branches: Vec<BranchFn<'_>>) -> &mut Self {
        let built: Vec<Stmt> = branches.into_iter().map(|b| self.sub(b)).collect();
        self.push(StmtKind::Choice(built))
    }

    /// `if (cond) { then } else { else }` encoded as the paper's
    /// choice/assume desugaring.
    pub fn if_else(
        &mut self,
        cond: Cond,
        then_f: impl FnOnce(&mut Self),
        else_f: impl FnOnce(&mut Self),
    ) -> &mut Self {
        let origin = self.origin;
        let then_b = self.sub(|b| {
            b.assume(cond);
            then_f(b);
        });
        let else_b = self.sub(|b| {
            b.assume(Cond { var: cond.var, negated: !cond.negated });
            else_f(b);
        });
        let _ = origin;
        self.push(StmtKind::Choice(vec![then_b, else_b]))
    }

    /// Builds a nested block with the same locals table.
    fn sub(&mut self, f: impl FnOnce(&mut Self)) -> Stmt {
        let saved = std::mem::take(&mut self.stmts);
        f(self);
        let inner = std::mem::replace(&mut self.stmts, saved);
        seq_of(inner, self.origin)
    }

    /// Finishes the function.
    pub fn finish(mut self) -> FuncDef {
        let origin = self.origin;
        self.func.body = seq_of(std::mem::take(&mut self.stmts), origin);
        self.func
    }
}

fn seq_of(mut stmts: Vec<Stmt>, origin: Origin) -> Stmt {
    match stmts.len() {
        0 => Stmt::synth(StmtKind::Skip, origin),
        1 => stmts.pop().expect("len checked"),
        _ => Stmt::synth(StmtKind::Seq(stmts), origin),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_function_with_locals_and_control_flow() {
        let mut b = FnBuilder::new("sched", &["x"], false);
        let f = b.local("f");
        let x = b.param(0);
        b.set(l(f), null());
        b.iter(|b| {
            b.if_else(
                Cond::pos(l(f)),
                |b| {
                    b.set(l(x), int(1));
                },
                |b| {
                    b.skip();
                },
            );
        });
        b.ret(None);
        let func = b.finish();
        assert_eq!(func.name, "sched");
        assert_eq!(func.param_count, 1);
        assert_eq!(func.locals.len(), 2);
        let StmtKind::Seq(ss) = &func.body.kind else { panic!("expected seq") };
        assert_eq!(ss.len(), 3);
        assert!(matches!(ss[1].kind, StmtKind::Iter(_)));
    }

    #[test]
    fn choice_builder_produces_branches() {
        let mut b = FnBuilder::new("f", &[], false);
        b.choice(vec![
            Box::new(|b: &mut FnBuilder| {
                b.skip();
            }),
            Box::new(|b: &mut FnBuilder| {
                b.ret(None);
            }),
        ]);
        let func = b.finish();
        let StmtKind::Choice(branches) = &func.body.kind else { panic!("expected choice") };
        assert_eq!(branches.len(), 2);
    }

    #[test]
    fn origin_is_attached_to_emitted_statements() {
        let mut b = FnBuilder::new("f", &[], false);
        b.origin(Origin::Sched).skip();
        let func = b.finish();
        assert_eq!(func.body.origin, Origin::Sched);
    }

    #[test]
    #[should_panic(expected = "parameter index out of range")]
    fn param_out_of_range_panics() {
        let b = FnBuilder::new("f", &["a"], false);
        let _ = b.param(1);
    }
}
