//! The core IR: the paper's parallel language (Figure 3) with fields.
//!
//! Everything the surface language offers is desugared into this IR by
//! [`crate::lower`]: decisions are taken on variables, `if`/`while` are
//! encoded with `choice`/`assume`/`iter` exactly as Section 3 of the
//! paper prescribes, and compound expressions are flattened into
//! three-address statements over fresh temporaries.
//!
//! The KISS transformation (`kiss-core`) is a `Program -> Program`
//! function over this IR.

use crate::span::Span;
pub use crate::ast::{BinOp, Type, UnOp};

/// Index of a function in [`Program::funcs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct FuncId(pub u32);

/// Index of a global variable in [`Program::globals`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalId(pub u32);

/// Index of a local variable (parameters first) in [`FuncDef::locals`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LocalId(pub u32);

/// Index of a struct in [`Program::structs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StructId(pub u32);

impl std::fmt::Display for FuncId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fn#{}", self.0)
    }
}

/// A compile-time constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Const {
    /// Integer constant.
    Int(i64),
    /// Boolean constant.
    Bool(bool),
    /// Null pointer / null function reference.
    Null,
    /// A function used as a value (thread start function).
    Fn(FuncId),
}

/// Reference to a variable: either a global or a local of the enclosing
/// function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarRef {
    /// A program global.
    Global(GlobalId),
    /// A local (parameter or declaration) of the current function.
    Local(LocalId),
}

/// An operand: a constant or a variable read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Constant operand.
    Const(Const),
    /// Variable read.
    Var(VarRef),
}

/// A memory location expression that can be written (or loaded).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Place {
    /// The variable itself: `v`.
    Var(VarRef),
    /// The cell the pointer variable points to: `*v`.
    Deref(VarRef),
    /// A struct field through a pointer variable: `v->f`, with the
    /// struct resolved statically from the declared type of `v`.
    Field(VarRef, StructId, u32),
}

/// Right-hand sides of assignments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rvalue {
    /// Copy a constant or a variable: `v0 = c` / `v0 = v1`.
    Operand(Operand),
    /// Load through a pointer: `v0 = *v1` / `v0 = v1->f`.
    Load(Place),
    /// Address of a variable: `v0 = &v1`.
    AddrOf(VarRef),
    /// Address of a field: `v0 = &v1->f`.
    AddrOfField(VarRef, StructId, u32),
    /// Binary operation on operands: `v0 = v1 op v2`.
    BinOp(BinOp, Operand, Operand),
    /// Unary operation: `v0 = !v1` / `v0 = -v1`.
    UnOp(UnOp, Operand),
    /// Heap allocation of a struct: `v0 = malloc(S)`.
    Malloc(StructId),
}

/// A condition for `assert`/`assume`: a (possibly negated) variable, as
/// in the paper ("decisions are made on variables").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cond {
    /// The tested variable.
    pub var: VarRef,
    /// Whether the test is `!var` rather than `var`.
    pub negated: bool,
}

impl Cond {
    /// A positive test of `var`.
    pub fn pos(var: VarRef) -> Self {
        Cond { var, negated: false }
    }

    /// A negated test of `var`.
    pub fn neg(var: VarRef) -> Self {
        Cond { var, negated: true }
    }
}

/// The callee of a (synchronous or asynchronous) call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CallTarget {
    /// Statically-known function.
    Direct(FuncId),
    /// Call through a variable holding a function reference (`v0()`).
    Indirect(VarRef),
}

/// Provenance of a statement: `User` statements come from the original
/// program; the other variants are injected by the KISS transformation
/// and drive error-trace back-mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Origin {
    /// Written by the user (or the corpus generator).
    #[default]
    User,
    /// Written by the user inside a `benign` annotation: exempt from
    /// race instrumentation (the paper's §6 future work on benign
    /// races).
    UserBenign,
    /// Part of the generated `schedule()` machinery.
    Sched,
    /// The `choice { skip [] RAISE }` prologue inserted before
    /// statements.
    RaiseChoice,
    /// The `raise = true; return` statement pair itself.
    Raise,
    /// The `if (raise) return` propagation after a call.
    RaisePropagate,
    /// A call that *starts* executing a forked thread (the `[[f]]()`
    /// inside `schedule()`, or the inline `[[v0]]()` when `ts` is full).
    ThreadStart,
    /// A `check_r`/`check_w` race-instrumentation call.
    Check,
    /// Initialization injected by the `Check(s)` wrapper or a test
    /// harness.
    Harness,
}

impl Origin {
    /// Whether the statement came from the user program (annotated or
    /// not) rather than from KISS instrumentation.
    pub fn is_user(self) -> bool {
        matches!(self, Origin::User | Origin::UserBenign)
    }
}

/// A statement with provenance and source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// The statement form.
    pub kind: StmtKind,
    /// Source location (synthetic for generated code).
    pub span: Span,
    /// Provenance.
    pub origin: Origin,
}

impl Stmt {
    /// A user-originated statement at a given span.
    pub fn user(kind: StmtKind, span: Span) -> Self {
        Stmt { kind, span, origin: Origin::User }
    }

    /// A synthesized statement with the given provenance.
    pub fn synth(kind: StmtKind, origin: Origin) -> Self {
        Stmt { kind, span: Span::synthetic(), origin }
    }

    /// A synthesized `skip`.
    pub fn skip() -> Self {
        Stmt::synth(StmtKind::Skip, Origin::User)
    }
}

/// Statement forms of the core language.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// No-op (`assume(true)` in the paper's notation).
    Skip,
    /// Sequential composition.
    Seq(Vec<Stmt>),
    /// All assignment forms of Figure 3 (plus fields and `malloc`).
    Assign(Place, Rvalue),
    /// `assert(v)` — fails the program if the condition is false.
    Assert(Cond),
    /// `assume(v)` — blocks (concurrently) or prunes the path
    /// (sequentially) if the condition is false.
    Assume(Cond),
    /// `atomic { s }` — executes `s` without interruption.
    Atomic(Box<Stmt>),
    /// Synchronous call `v = v0(args)`.
    Call {
        /// Optional destination for the return value.
        dest: Option<Place>,
        /// Callee.
        target: CallTarget,
        /// Argument operands.
        args: Vec<Operand>,
    },
    /// Asynchronous call `async v0(args)` — forks a thread.
    Async {
        /// Callee (the new thread's start function).
        target: CallTarget,
        /// Argument operands, evaluated at fork time.
        args: Vec<Operand>,
    },
    /// `return` / `return v`.
    Return(Option<Operand>),
    /// Nondeterministic choice between branches.
    Choice(Vec<Stmt>),
    /// Execute the body a nondeterministic number of times.
    Iter(Box<Stmt>),
}

/// A struct definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// Field names and declared types, in declaration order.
    pub fields: Vec<(String, Type)>,
}

impl StructDef {
    /// Finds a field index by name.
    pub fn field_index(&self, name: &str) -> Option<u32> {
        self.fields.iter().position(|(n, _)| n == name).map(|i| i as u32)
    }
}

/// A global variable definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalDef {
    /// Name.
    pub name: String,
    /// Declared type, if written by the user (generated globals may omit
    /// it).
    pub ty: Option<Type>,
    /// Initial value; `None` means the type's default (0 / false /
    /// null).
    pub init: Option<Const>,
}

/// A local variable definition (parameters come first).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalDef {
    /// Name.
    pub name: String,
    /// Declared type, if any.
    pub ty: Option<Type>,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    /// Name.
    pub name: String,
    /// Number of parameters; parameters are `locals[0..param_count]`.
    pub param_count: u32,
    /// All locals: parameters first, then declarations, then
    /// lowering-introduced temporaries.
    pub locals: Vec<LocalDef>,
    /// Whether the function returns a value.
    pub has_ret: bool,
    /// The body.
    pub body: Stmt,
}

impl FuncDef {
    /// Adds a fresh local with the given name prefix, returning its id.
    /// The chosen name never collides with an existing local.
    pub fn fresh_local(&mut self, prefix: &str) -> LocalId {
        let id = LocalId(self.locals.len() as u32);
        let mut n = self.locals.len();
        let name = loop {
            let candidate = format!("{prefix}{n}");
            if self.locals.iter().all(|l| l.name != candidate) {
                break candidate;
            }
            n += 1;
        };
        self.locals.push(LocalDef { name, ty: None });
        id
    }
}

/// A whole core program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Struct definitions.
    pub structs: Vec<StructDef>,
    /// Global variables.
    pub globals: Vec<GlobalDef>,
    /// Functions.
    pub funcs: Vec<FuncDef>,
    /// The entry function.
    pub main: FuncId,
}

impl Program {
    /// Looks up a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs.iter().position(|f| f.name == name).map(|i| FuncId(i as u32))
    }

    /// Looks up a global by name.
    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.globals.iter().position(|g| g.name == name).map(|i| GlobalId(i as u32))
    }

    /// Looks up a struct by name.
    pub fn struct_by_name(&self, name: &str) -> Option<StructId> {
        self.structs.iter().position(|s| s.name == name).map(|i| StructId(i as u32))
    }

    /// The function definition for an id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn func(&self, id: FuncId) -> &FuncDef {
        &self.funcs[id.0 as usize]
    }

    /// Mutable access to a function definition.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn func_mut(&mut self, id: FuncId) -> &mut FuncDef {
        &mut self.funcs[id.0 as usize]
    }

    /// Adds a global, returning its id.
    pub fn add_global(&mut self, def: GlobalDef) -> GlobalId {
        let id = GlobalId(self.globals.len() as u32);
        self.globals.push(def);
        id
    }

    /// Adds a function, returning its id.
    pub fn add_func(&mut self, def: FuncDef) -> FuncId {
        let id = FuncId(self.funcs.len() as u32);
        self.funcs.push(def);
        id
    }

    /// Counts statements in the whole program (a simple size metric used
    /// by the CFG-blowup experiment).
    pub fn stmt_count(&self) -> usize {
        fn count(s: &Stmt) -> usize {
            1 + match &s.kind {
                StmtKind::Seq(ss) | StmtKind::Choice(ss) => ss.iter().map(count).sum(),
                StmtKind::Atomic(inner) | StmtKind::Iter(inner) => count(inner),
                _ => 0,
            }
        }
        self.funcs.iter().map(|f| count(&f.body)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_program() -> Program {
        let mut p = Program::default();
        p.structs.push(StructDef {
            name: "D".into(),
            fields: vec![("x".into(), Type::Int), ("ok".into(), Type::Bool)],
        });
        p.add_global(GlobalDef { name: "g".into(), ty: Some(Type::Int), init: None });
        p.add_func(FuncDef {
            name: "main".into(),
            param_count: 0,
            locals: vec![],
            has_ret: false,
            body: Stmt::skip(),
        });
        p
    }

    #[test]
    fn lookup_by_name_works() {
        let p = small_program();
        assert_eq!(p.func_by_name("main"), Some(FuncId(0)));
        assert_eq!(p.func_by_name("nope"), None);
        assert_eq!(p.global_by_name("g"), Some(GlobalId(0)));
        assert_eq!(p.struct_by_name("D"), Some(StructId(0)));
    }

    #[test]
    fn struct_field_index() {
        let p = small_program();
        assert_eq!(p.structs[0].field_index("ok"), Some(1));
        assert_eq!(p.structs[0].field_index("nope"), None);
    }

    #[test]
    fn fresh_local_names_are_unique() {
        let mut p = small_program();
        let f = p.func_mut(FuncId(0));
        let a = f.fresh_local("__t");
        let b = f.fresh_local("__t");
        assert_ne!(a, b);
        assert_ne!(f.locals[a.0 as usize].name, f.locals[b.0 as usize].name);
    }

    #[test]
    fn stmt_count_recurses_through_composites() {
        let mut p = small_program();
        p.func_mut(FuncId(0)).body = Stmt::synth(
            StmtKind::Seq(vec![
                Stmt::skip(),
                Stmt::synth(StmtKind::Iter(Box::new(Stmt::skip())), Origin::User),
            ]),
            Origin::User,
        );
        // Seq + Skip + Iter + inner Skip = 4.
        assert_eq!(p.stmt_count(), 4);
    }

    #[test]
    fn cond_constructors() {
        let v = VarRef::Global(GlobalId(0));
        assert!(!Cond::pos(v).negated);
        assert!(Cond::neg(v).negated);
    }

    #[test]
    fn origin_user_classification() {
        assert!(Origin::User.is_user());
        assert!(Origin::UserBenign.is_user());
        assert!(!Origin::Sched.is_user());
        assert!(!Origin::Check.is_user());
    }
}
