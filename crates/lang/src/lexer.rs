//! Hand-written lexer for KISS-C.
//!
//! Supports `//` line comments and `/* ... */` block comments. The
//! `choice` branch separator is the paper's `[]` notation.

use crate::span::Span;
use crate::token::{Tok, Token};
use crate::{LangError, LangErrorKind};

/// Lexes `src` into a token vector terminated by [`Tok::Eof`].
///
/// # Errors
///
/// Returns a [`LangError`] on unknown characters, malformed numbers, or
/// unterminated block comments.
pub fn lex(src: &str) -> Result<Vec<Token>, LangError> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    src: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { chars: src.chars().collect(), pos: 0, line: 1, col: 1, src }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn span(&self) -> Span {
        Span::new(self.line, self.col)
    }

    fn error(&self, msg: impl Into<String>) -> LangError {
        LangError::new(LangErrorKind::Lex, msg, Some(self.span()))
    }

    fn run(mut self) -> Result<Vec<Token>, LangError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let span = self.span();
            let Some(c) = self.peek() else {
                out.push(Token { tok: Tok::Eof, span });
                return Ok(out);
            };
            let tok = match c {
                'a'..='z' | 'A'..='Z' | '_' => self.lex_word(),
                '0'..='9' => self.lex_number()?,
                _ => self.lex_symbol()?,
            };
            out.push(Token { tok, span });
        }
    }

    fn skip_trivia(&mut self) -> Result<(), LangError> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') if self.peek2() == Some('/') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                Some('/') if self.peek2() == Some('*') => {
                    let start = self.span();
                    self.bump();
                    self.bump();
                    let mut closed = false;
                    while let Some(c) = self.bump() {
                        if c == '*' && self.peek() == Some('/') {
                            self.bump();
                            closed = true;
                            break;
                        }
                    }
                    if !closed {
                        return Err(LangError::new(
                            LangErrorKind::Lex,
                            "unterminated block comment",
                            Some(start),
                        ));
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_word(&mut self) -> Tok {
        let mut word = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                word.push(c);
                self.bump();
            } else {
                break;
            }
        }
        Tok::keyword(&word).unwrap_or(Tok::Ident(word))
    }

    fn lex_number(&mut self) -> Result<Tok, LangError> {
        let mut digits = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                digits.push(c);
                self.bump();
            } else if c.is_ascii_alphabetic() || c == '_' {
                return Err(self.error(format!("invalid digit `{c}` in number")));
            } else {
                break;
            }
        }
        digits
            .parse::<i64>()
            .map(Tok::Int)
            .map_err(|_| self.error(format!("integer literal `{digits}` out of range")))
    }

    fn lex_symbol(&mut self) -> Result<Tok, LangError> {
        let c = self.bump().expect("caller checked peek");
        let two = |lexer: &mut Self, next: char, yes: Tok, no: Tok| {
            if lexer.peek() == Some(next) {
                lexer.bump();
                yes
            } else {
                no
            }
        };
        Ok(match c {
            '(' => Tok::LParen,
            ')' => Tok::RParen,
            '{' => Tok::LBrace,
            '}' => Tok::RBrace,
            ';' => Tok::Semi,
            ',' => Tok::Comma,
            '+' => Tok::Plus,
            '%' => Tok::Percent,
            '*' => Tok::Star,
            '[' => {
                if self.peek() == Some(']') {
                    self.bump();
                    Tok::BranchSep
                } else {
                    return Err(self.error("expected `]` after `[` (choice separator is `[]`)"));
                }
            }
            '-' => two(self, '>', Tok::Arrow, Tok::Minus),
            '=' => two(self, '=', Tok::EqEq, Tok::Assign),
            '!' => two(self, '=', Tok::NotEq, Tok::Bang),
            '<' => two(self, '=', Tok::Le, Tok::Lt),
            '>' => two(self, '=', Tok::Ge, Tok::Gt),
            '&' => two(self, '&', Tok::AndAnd, Tok::Amp),
            '|' => {
                if self.peek() == Some('|') {
                    self.bump();
                    Tok::OrOr
                } else {
                    return Err(self.error("single `|` is not a KISS-C operator (did you mean `||`?)"));
                }
            }
            other => {
                let _ = self.src;
                return Err(self.error(format!("unexpected character `{other}`")));
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_keywords_and_idents() {
        assert_eq!(
            toks("async foo iter"),
            vec![Tok::KwAsync, Tok::Ident("foo".into()), Tok::KwIter, Tok::Eof]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(toks("0 42 1234"), vec![Tok::Int(0), Tok::Int(42), Tok::Int(1234), Tok::Eof]);
    }

    #[test]
    fn rejects_number_followed_by_letter() {
        assert!(lex("12ab").is_err());
    }

    #[test]
    fn lexes_two_char_operators() {
        assert_eq!(
            toks("== != <= >= && || -> []"),
            vec![
                Tok::EqEq,
                Tok::NotEq,
                Tok::Le,
                Tok::Ge,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::Arrow,
                Tok::BranchSep,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn distinguishes_prefix_of_two_char_operators() {
        assert_eq!(
            toks("= ! < > & - *"),
            vec![Tok::Assign, Tok::Bang, Tok::Lt, Tok::Gt, Tok::Amp, Tok::Minus, Tok::Star, Tok::Eof]
        );
    }

    #[test]
    fn skips_line_and_block_comments() {
        assert_eq!(toks("a // hi\n b /* x\ny */ c"), vec![
            Tok::Ident("a".into()),
            Tok::Ident("b".into()),
            Tok::Ident("c".into()),
            Tok::Eof
        ]);
    }

    #[test]
    fn unterminated_block_comment_is_an_error() {
        let err = lex("x /* oops").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn rejects_single_pipe_and_lone_bracket() {
        assert!(lex("a | b").is_err());
        assert!(lex("a [ b").is_err());
    }

    #[test]
    fn tracks_line_and_column() {
        let tokens = lex("a\n  b").unwrap();
        assert_eq!(tokens[0].span, Span::new(1, 1));
        assert_eq!(tokens[1].span, Span::new(2, 3));
    }

    #[test]
    fn rejects_unknown_character() {
        assert!(lex("#").is_err());
    }
}
