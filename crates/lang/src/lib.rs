//! # kiss-lang
//!
//! The **KISS-C** language: a C-like concrete syntax for the parallel
//! language of Figure 3 in *KISS: Keep It Simple and Sequential*
//! (Qadeer & Wu, PLDI 2004), extended with structs/fields, pointers and
//! `malloc`, which the paper states KISS "can handle just as well".
//!
//! The crate provides:
//!
//! * a lexer and recursive-descent parser ([`parse_program`]),
//! * a surface AST ([`ast`]) with `if`/`while` and compound expressions,
//! * a core IR ([`hir`]) that is *exactly* the paper's parallel language
//!   (decisions on variables, `choice`, `iter`, `atomic`, `async`),
//! * lowering/desugaring from surface to core ([`lower`]), following the
//!   encodings of paper Section 3 (`if` becomes `choice{assume(v); ...}`,
//!   `while` becomes `iter{...}`),
//! * well-formedness checks ([`wf`]) enforcing the paper's restrictions
//!   (atomic bodies are free of calls, returns and nested atomics),
//! * a pretty-printer ([`pretty`]) that renders core programs back to
//!   parseable KISS-C source, and
//! * a programmatic builder API ([`build`]) used by the KISS
//!   transformation and the synthetic driver corpus, and
//! * semantics-preserving simplification and dead-function pruning
//!   ([`opt`]).
//!
//! ```
//! let src = r#"
//!     int g;
//!     void main() { g = 1; assert g == 1; }
//! "#;
//! let program = kiss_lang::parse_and_lower(src).expect("valid program");
//! assert_eq!(program.funcs.len(), 1);
//! ```

pub mod ast;
pub mod build;
pub mod hir;
pub mod lexer;
pub mod lower;
pub mod opt;
pub mod parser;
pub mod pretty;
pub mod span;
pub mod token;
pub mod wf;

pub use ast::Program as AstProgram;
pub use hir::{FuncId, GlobalId, LocalId, Program, StructId};
pub use span::{Span, Spanned};

use std::fmt;

/// Any error produced while turning source text into a checked core
/// program: lexing, parsing, lowering/resolution, or well-formedness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LangError {
    /// Which stage rejected the input.
    pub kind: LangErrorKind,
    /// Human-readable description.
    pub message: String,
    /// Source location, when known.
    pub span: Option<Span>,
}

/// The pipeline stage an error originated from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LangErrorKind {
    /// Invalid token stream.
    Lex,
    /// Syntax error.
    Parse,
    /// Name-resolution or desugaring error.
    Lower,
    /// Structural restriction violated (e.g. call inside `atomic`).
    WellFormedness,
}

impl LangError {
    pub(crate) fn new(kind: LangErrorKind, message: impl Into<String>, span: Option<Span>) -> Self {
        LangError { kind, message: message.into(), span }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stage = match self.kind {
            LangErrorKind::Lex => "lex error",
            LangErrorKind::Parse => "parse error",
            LangErrorKind::Lower => "lowering error",
            LangErrorKind::WellFormedness => "well-formedness error",
        };
        match self.span {
            Some(sp) => write!(f, "{stage} at {}:{}: {}", sp.line, sp.col, self.message),
            None => write!(f, "{stage}: {}", self.message),
        }
    }
}

impl std::error::Error for LangError {}

/// Parses KISS-C source text into the surface AST.
///
/// # Errors
///
/// Returns a [`LangError`] with kind [`LangErrorKind::Lex`] or
/// [`LangErrorKind::Parse`] on malformed input.
pub fn parse_program(src: &str) -> Result<ast::Program, LangError> {
    let tokens = lexer::lex(src)?;
    parser::Parser::new(tokens).parse_program()
}

/// Parses, lowers and well-formedness-checks KISS-C source, producing a
/// core [`hir::Program`] ready for execution or transformation.
///
/// # Errors
///
/// Returns the first error from any pipeline stage.
pub fn parse_and_lower(src: &str) -> Result<hir::Program, LangError> {
    let ast = parse_program(src)?;
    let program = lower::lower(&ast)?;
    wf::check(&program)?;
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_includes_stage_and_location() {
        let e = LangError::new(LangErrorKind::Parse, "unexpected token", Some(Span::new(3, 7)));
        assert_eq!(e.to_string(), "parse error at 3:7: unexpected token");
        let e = LangError::new(LangErrorKind::Lower, "unknown variable", None);
        assert_eq!(e.to_string(), "lowering error: unknown variable");
    }

    #[test]
    fn parse_and_lower_smoke() {
        let p = parse_and_lower("void main() { skip; }").unwrap();
        assert_eq!(p.funcs.len(), 1);
        assert_eq!(p.funcs[p.main.0 as usize].name, "main");
    }

    #[test]
    fn parse_and_lower_rejects_garbage() {
        assert!(parse_and_lower("void main( {").is_err());
        assert!(parse_and_lower("@@@").is_err());
    }
}
