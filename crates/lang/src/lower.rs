//! Lowering from the surface AST to the core IR.
//!
//! This performs name resolution and the desugarings of paper Section 3:
//!
//! * `if (v) s1 else s2`  ⇒  `choice { assume(v); s1 [] assume(!v); s2 }`
//! * `while (v) s`        ⇒  `iter { assume(v); s }; assume(!v)`
//! * decisions on compound expressions are first assigned to fresh
//!   variables ("Decisions on an expression can be modeled by first
//!   assigning the expression to a fresh variable").
//!
//! Two decisions deserve a note:
//!
//! * `&&`/`||` are lowered with **short-circuit** semantics via `choice`
//!   + `assume`, so `p != null && p->f` never dereferences null;
//! * a *blocking* `assume` over a compound expression is wrapped in an
//!   `atomic` block so that the expression is re-evaluated each time the
//!   blocked thread retries — matching the intuitive C semantics of
//!   waiting on a condition over shared memory.

use std::collections::HashMap;

use crate::ast;
use crate::hir::{self, Cond, Const, Operand, Origin, Place, Rvalue, Stmt, StmtKind, VarRef};
use crate::span::Span;
use crate::{LangError, LangErrorKind};

/// Lowers a parsed surface program into the core IR.
///
/// # Errors
///
/// Reports unresolved names, field accesses on non-struct-pointer
/// variables, arity mismatches on direct calls, duplicate definitions,
/// and a missing `main`.
pub fn lower(ast: &ast::Program) -> Result<hir::Program, LangError> {
    let mut program = hir::Program::default();

    // Structs.
    let mut struct_ids: HashMap<String, hir::StructId> = HashMap::new();
    for s in &ast.structs {
        if struct_ids.contains_key(&s.name) {
            return Err(err(format!("duplicate struct `{}`", s.name), s.span));
        }
        let mut fields = Vec::new();
        for f in &s.fields {
            if fields.iter().any(|(n, _): &(String, _)| n == &f.name) {
                return Err(err(format!("duplicate field `{}` in struct `{}`", f.name, s.name), f.span));
            }
            fields.push((f.name.clone(), f.ty.clone()));
        }
        struct_ids.insert(s.name.clone(), hir::StructId(program.structs.len() as u32));
        program.structs.push(hir::StructDef { name: s.name.clone(), fields });
    }

    // Globals.
    let mut global_ids: HashMap<String, hir::GlobalId> = HashMap::new();
    // Function signatures before globals' initializers (a global may be
    // initialized to a function name).
    let mut func_ids: HashMap<String, hir::FuncId> = HashMap::new();
    for g in &ast.globals {
        if global_ids.contains_key(&g.name) {
            return Err(err(format!("duplicate global `{}`", g.name), g.span));
        }
        let id = program.add_global(hir::GlobalDef {
            name: g.name.clone(),
            ty: Some(g.ty.clone()),
            init: None,
        });
        global_ids.insert(g.name.clone(), id);
    }
    for f in &ast.funcs {
        if func_ids.contains_key(&f.name) {
            return Err(err(format!("duplicate function `{}`", f.name), f.span));
        }
        if global_ids.contains_key(&f.name) {
            return Err(err(format!("`{}` is defined as both a global and a function", f.name), f.span));
        }
        func_ids.insert(f.name.clone(), hir::FuncId(func_ids.len() as u32));
    }

    // Global initializers must be constants (possibly negated integers
    // or function names).
    for (idx, g) in ast.globals.iter().enumerate() {
        if let Some(init) = &g.init {
            let c = const_expr(init, &func_ids)
                .ok_or_else(|| err(format!("initializer of `{}` is not a constant", g.name), g.span))?;
            program.globals[idx].init = Some(c);
        }
    }

    let env = Env { struct_ids, global_ids, func_ids, globals: &ast.globals, funcs: &ast.funcs };

    for f in &ast.funcs {
        let lowered = FnCx::new(&env, &program, f)?.lower_func(f)?;
        program.funcs.push(lowered);
    }

    match program.func_by_name("main") {
        Some(id) if program.func(id).param_count == 0 => program.main = id,
        Some(_) => return Err(err("`main` must take no parameters", Span::synthetic())),
        None => return Err(err("program has no `main` function", Span::synthetic())),
    }
    Ok(program)
}

/// Evaluates an initializer expression to a constant, if it is one.
fn const_expr(e: &ast::Expr, func_ids: &HashMap<String, hir::FuncId>) -> Option<Const> {
    match e {
        ast::Expr::Int(n) => Some(Const::Int(*n)),
        ast::Expr::Bool(b) => Some(Const::Bool(*b)),
        ast::Expr::Null => Some(Const::Null),
        ast::Expr::Var(name) => func_ids.get(name).map(|&f| Const::Fn(f)),
        ast::Expr::Un(ast::UnOp::Neg, inner) => match const_expr(inner, func_ids)? {
            Const::Int(n) => Some(Const::Int(-n)),
            _ => None,
        },
        _ => None,
    }
}

fn err(msg: impl Into<String>, span: Span) -> LangError {
    let span = if span.is_synthetic() { None } else { Some(span) };
    LangError::new(LangErrorKind::Lower, msg, span)
}

struct Env<'a> {
    struct_ids: HashMap<String, hir::StructId>,
    global_ids: HashMap<String, hir::GlobalId>,
    func_ids: HashMap<String, hir::FuncId>,
    globals: &'a [ast::VarDecl],
    funcs: &'a [ast::FuncDef],
}

/// Per-function lowering context.
struct FnCx<'a> {
    env: &'a Env<'a>,
    structs: &'a [hir::StructDef],
    local_ids: HashMap<String, hir::LocalId>,
    func: hir::FuncDef,
    /// Are we lowering inside an `atomic` block?
    in_atomic: bool,
}

impl<'a> FnCx<'a> {
    fn new(env: &'a Env<'a>, program: &'a hir::Program, f: &ast::FuncDef) -> Result<Self, LangError> {
        let mut local_ids = HashMap::new();
        let mut locals = Vec::new();
        for decl in f.params.iter().chain(&f.locals) {
            if local_ids.contains_key(&decl.name) {
                return Err(err(format!("duplicate local `{}` in `{}`", decl.name, f.name), decl.span));
            }
            local_ids.insert(decl.name.clone(), hir::LocalId(locals.len() as u32));
            locals.push(hir::LocalDef { name: decl.name.clone(), ty: Some(decl.ty.clone()) });
        }
        Ok(FnCx {
            env,
            structs: &program.structs,
            local_ids,
            func: hir::FuncDef {
                name: f.name.clone(),
                param_count: f.params.len() as u32,
                locals,
                has_ret: f.ret.is_some(),
                body: Stmt::skip(),
            },
            in_atomic: false,
        })
    }

    fn lower_func(mut self, f: &ast::FuncDef) -> Result<hir::FuncDef, LangError> {
        let body = self.lower_stmts(&f.body)?;
        self.func.body = body;
        Ok(self.func)
    }

    // ---- name resolution --------------------------------------------

    fn lookup_var(&self, name: &str, span: Span) -> Result<VarRef, LangError> {
        if let Some(&id) = self.local_ids.get(name) {
            return Ok(VarRef::Local(id));
        }
        if let Some(&id) = self.env.global_ids.get(name) {
            return Ok(VarRef::Global(id));
        }
        Err(err(format!("unknown variable `{name}`"), span))
    }

    /// The declared type of a variable, if it has one.
    fn var_type(&self, var: VarRef) -> Option<&ast::Type> {
        match var {
            VarRef::Local(id) => self.func.locals[id.0 as usize].ty.as_ref(),
            VarRef::Global(id) => {
                // Globals in `env.globals` are in insertion order, which
                // matches their ids.
                self.env.globals.get(id.0 as usize).map(|d| &d.ty)
            }
        }
    }

    /// Resolves `base->field` to the struct and field index, via the
    /// declared type of `base`.
    fn resolve_field(&self, base: &str, field: &str, span: Span) -> Result<(VarRef, hir::StructId, u32), LangError> {
        let var = self.lookup_var(base, span)?;
        let ty = self.var_type(var).ok_or_else(|| {
            err(format!("cannot resolve `{base}->{field}`: `{base}` has no declared type"), span)
        })?;
        let ast::Type::Ptr(inner) = ty else {
            return Err(err(format!("`{base}` is not a pointer, cannot access field `{field}`"), span));
        };
        let ast::Type::Named(sname) = inner.as_ref() else {
            return Err(err(format!("`{base}` does not point to a struct"), span));
        };
        let sid = *self
            .env
            .struct_ids
            .get(sname)
            .ok_or_else(|| err(format!("unknown struct `{sname}`"), span))?;
        let fidx = self.structs[sid.0 as usize]
            .field_index(field)
            .ok_or_else(|| err(format!("struct `{sname}` has no field `{field}`"), span))?;
        Ok((var, sid, fidx))
    }

    fn fresh_temp(&mut self) -> hir::LocalId {
        self.func.fresh_local("__t")
    }

    // ---- statements ---------------------------------------------------

    fn lower_stmts(&mut self, stmts: &[ast::Stmt]) -> Result<Stmt, LangError> {
        let mut out = Vec::new();
        for s in stmts {
            self.lower_stmt(s, &mut out)?;
        }
        Ok(seq(out))
    }

    fn lower_stmt(&mut self, s: &ast::Stmt, out: &mut Vec<Stmt>) -> Result<(), LangError> {
        let span = s.span;
        match &s.kind {
            ast::StmtKind::Skip => out.push(Stmt::user(StmtKind::Skip, span)),
            ast::StmtKind::Block(body) => {
                let lowered = self.lower_stmts(body)?;
                out.push(lowered);
            }
            ast::StmtKind::Assign(lv, e) => {
                let place = self.lower_lvalue(lv, span)?;
                // Fast path: expressions that map onto a single core
                // assignment keep reads and writes in one statement, so
                // race instrumentation sees them exactly as written.
                if let Some(rv) = self.expr_as_rvalue(e, span)? {
                    out.push(Stmt::user(StmtKind::Assign(place, rv), span));
                } else {
                    let op = self.lower_expr(e, span, out)?;
                    out.push(Stmt::user(StmtKind::Assign(place, Rvalue::Operand(op)), span));
                }
            }
            ast::StmtKind::Malloc(lv, sname) => {
                let place = self.lower_lvalue(lv, span)?;
                let sid = *self
                    .env
                    .struct_ids
                    .get(sname)
                    .ok_or_else(|| err(format!("unknown struct `{sname}` in malloc"), span))?;
                out.push(Stmt::user(StmtKind::Assign(place, Rvalue::Malloc(sid)), span));
            }
            ast::StmtKind::Call { dest, callee, args } => {
                let target = self.lower_callee(callee, args.len(), span)?;
                let args = self.lower_args(args, span, out)?;
                let dest = dest.as_ref().map(|lv| self.lower_lvalue(lv, span)).transpose()?;
                out.push(Stmt::user(StmtKind::Call { dest, target, args }, span));
            }
            ast::StmtKind::Async { callee, args } => {
                let target = self.lower_callee(callee, args.len(), span)?;
                let args = self.lower_args(args, span, out)?;
                out.push(Stmt::user(StmtKind::Async { target, args }, span));
            }
            ast::StmtKind::Assert(e) => {
                let cond = self.lower_cond(e, span, out)?;
                out.push(Stmt::user(StmtKind::Assert(cond), span));
            }
            ast::StmtKind::Assume(e) => {
                // A blocking assume over a compound expression must
                // re-evaluate the expression on each retry; wrap it in an
                // atomic block (unless we are already inside one, where
                // the enclosing transaction retries as a whole).
                if let Some(cond) = self.expr_as_cond(e, span)? {
                    out.push(Stmt::user(StmtKind::Assume(cond), span));
                } else if self.in_atomic {
                    let cond = self.lower_cond(e, span, out)?;
                    out.push(Stmt::user(StmtKind::Assume(cond), span));
                } else {
                    let mut inner = Vec::new();
                    let was = std::mem::replace(&mut self.in_atomic, true);
                    let cond = self.lower_cond(e, span, &mut inner)?;
                    self.in_atomic = was;
                    inner.push(Stmt::user(StmtKind::Assume(cond), span));
                    out.push(Stmt::user(StmtKind::Atomic(Box::new(seq(inner))), span));
                }
            }
            ast::StmtKind::Atomic(body) => {
                let was = std::mem::replace(&mut self.in_atomic, true);
                let lowered = self.lower_stmts(body);
                self.in_atomic = was;
                out.push(Stmt::user(StmtKind::Atomic(Box::new(lowered?)), span));
            }
            ast::StmtKind::If(cond, then_b, else_b) => {
                // choice { assume(v); s1 [] assume(!v); s2 }
                let c = self.lower_cond(cond, span, out)?;
                let mut tb = vec![Stmt::user(StmtKind::Assume(c), span)];
                tb.push(self.lower_stmts(then_b)?);
                let mut eb = vec![Stmt::user(StmtKind::Assume(negate(c)), span)];
                eb.push(self.lower_stmts(else_b)?);
                out.push(Stmt::user(StmtKind::Choice(vec![seq(tb), seq(eb)]), span));
            }
            ast::StmtKind::While(cond, body) => {
                // iter { assume(v); s }; assume(!v) — with the condition
                // recomputed at each test, per the paper's note on
                // modeling decisions on expressions.
                let mut iter_body = Vec::new();
                let c = self.lower_cond(cond, span, &mut iter_body)?;
                iter_body.push(Stmt::user(StmtKind::Assume(c), span));
                iter_body.push(self.lower_stmts(body)?);
                out.push(Stmt::user(StmtKind::Iter(Box::new(seq(iter_body))), span));
                let c_exit = self.lower_cond(cond, span, out)?;
                out.push(Stmt::user(StmtKind::Assume(negate(c_exit)), span));
            }
            ast::StmtKind::Choice(branches) => {
                let mut lowered = Vec::new();
                for b in branches {
                    lowered.push(self.lower_stmts(b)?);
                }
                out.push(Stmt::user(StmtKind::Choice(lowered), span));
            }
            ast::StmtKind::Iter(body) => {
                let lowered = self.lower_stmts(body)?;
                out.push(Stmt::user(StmtKind::Iter(Box::new(lowered)), span));
            }
            ast::StmtKind::Benign(inner) => {
                // Lower the inner statement, then retag every
                // user-originated statement as benign.
                let mut tmp = Vec::new();
                self.lower_stmt(inner, &mut tmp)?;
                for s in &mut tmp {
                    retag_benign(s);
                }
                out.extend(tmp);
            }
            ast::StmtKind::Return(e) => {
                let op = match e {
                    None => None,
                    Some(e) => Some(self.lower_expr(e, span, out)?),
                };
                out.push(Stmt::user(StmtKind::Return(op), span));
            }
        }
        Ok(())
    }

    fn lower_lvalue(&mut self, lv: &ast::LValue, span: Span) -> Result<Place, LangError> {
        Ok(match lv {
            ast::LValue::Var(name) => Place::Var(self.lookup_var(name, span)?),
            ast::LValue::Deref(name) => Place::Deref(self.lookup_var(name, span)?),
            ast::LValue::Field(base, field) => {
                let (var, sid, fidx) = self.resolve_field(base, field, span)?;
                Place::Field(var, sid, fidx)
            }
        })
    }

    fn lower_callee(&mut self, callee: &str, argc: usize, span: Span) -> Result<hir::CallTarget, LangError> {
        // A variable holding a function reference shadows a function of
        // the same name (locals are the common case for `v0()`).
        if self.local_ids.contains_key(callee) || self.env.global_ids.contains_key(callee) {
            return Ok(hir::CallTarget::Indirect(self.lookup_var(callee, span)?));
        }
        if let Some(&fid) = self.env.func_ids.get(callee) {
            let def = &self.env.funcs[fid.0 as usize];
            if def.params.len() != argc {
                return Err(err(
                    format!("`{callee}` takes {} argument(s), {argc} supplied", def.params.len()),
                    span,
                ));
            }
            return Ok(hir::CallTarget::Direct(fid));
        }
        Err(err(format!("unknown function or variable `{callee}` in call"), span))
    }

    fn lower_args(&mut self, args: &[ast::Expr], span: Span, out: &mut Vec<Stmt>) -> Result<Vec<Operand>, LangError> {
        args.iter().map(|a| self.lower_expr(a, span, out)).collect()
    }

    // ---- expressions --------------------------------------------------

    /// If `e` maps directly onto a single-core-statement rvalue, return
    /// it (no temporaries needed).
    fn expr_as_rvalue(&mut self, e: &ast::Expr, span: Span) -> Result<Option<Rvalue>, LangError> {
        Ok(Some(match e {
            ast::Expr::Int(n) => Rvalue::Operand(Operand::Const(Const::Int(*n))),
            ast::Expr::Bool(b) => Rvalue::Operand(Operand::Const(Const::Bool(*b))),
            ast::Expr::Null => Rvalue::Operand(Operand::Const(Const::Null)),
            ast::Expr::Var(name) => Rvalue::Operand(self.name_operand(name, span)?),
            ast::Expr::Deref(name) => Rvalue::Load(Place::Deref(self.lookup_var(name, span)?)),
            ast::Expr::Field(base, field) => {
                let (var, sid, fidx) = self.resolve_field(base, field, span)?;
                Rvalue::Load(Place::Field(var, sid, fidx))
            }
            ast::Expr::AddrOf(name) => Rvalue::AddrOf(self.lookup_var(name, span)?),
            ast::Expr::AddrOfField(base, field) => {
                let (var, sid, fidx) = self.resolve_field(base, field, span)?;
                Rvalue::AddrOfField(var, sid, fidx)
            }
            ast::Expr::Bin(op, lhs, rhs) if !matches!(op, ast::BinOp::And | ast::BinOp::Or) => {
                match (self.expr_as_operand(lhs, span)?, self.expr_as_operand(rhs, span)?) {
                    (Some(a), Some(b)) => Rvalue::BinOp(*op, a, b),
                    _ => return Ok(None),
                }
            }
            ast::Expr::Un(op, inner) => match self.expr_as_operand(inner, span)? {
                Some(a) => Rvalue::UnOp(*op, a),
                None => return Ok(None),
            },
            _ => return Ok(None),
        }))
    }

    /// Literals and plain variables are operands without temporaries.
    fn expr_as_operand(&mut self, e: &ast::Expr, span: Span) -> Result<Option<Operand>, LangError> {
        Ok(match e {
            ast::Expr::Int(n) => Some(Operand::Const(Const::Int(*n))),
            ast::Expr::Bool(b) => Some(Operand::Const(Const::Bool(*b))),
            ast::Expr::Null => Some(Operand::Const(Const::Null)),
            ast::Expr::Var(name) => Some(self.name_operand(name, span)?),
            _ => None,
        })
    }

    /// A name in expression position: a variable read, or a function
    /// used as a value.
    fn name_operand(&mut self, name: &str, span: Span) -> Result<Operand, LangError> {
        if self.local_ids.contains_key(name) || self.env.global_ids.contains_key(name) {
            return Ok(Operand::Var(self.lookup_var(name, span)?));
        }
        if let Some(&fid) = self.env.func_ids.get(name) {
            return Ok(Operand::Const(Const::Fn(fid)));
        }
        Err(err(format!("unknown variable `{name}`"), span))
    }

    /// If `e` is `v` or `!v`, produce a core condition directly.
    fn expr_as_cond(&mut self, e: &ast::Expr, span: Span) -> Result<Option<Cond>, LangError> {
        Ok(match e {
            ast::Expr::Var(name)
                if self.local_ids.contains_key(name) || self.env.global_ids.contains_key(name) =>
            {
                Some(Cond::pos(self.lookup_var(name, span)?))
            }
            ast::Expr::Un(ast::UnOp::Not, inner) => match inner.as_ref() {
                ast::Expr::Var(name)
                    if self.local_ids.contains_key(name) || self.env.global_ids.contains_key(name) =>
                {
                    Some(Cond::neg(self.lookup_var(name, span)?))
                }
                _ => None,
            },
            _ => None,
        })
    }

    /// Lowers an arbitrary expression used as a condition, emitting the
    /// statements that compute it and returning the condition.
    fn lower_cond(&mut self, e: &ast::Expr, span: Span, out: &mut Vec<Stmt>) -> Result<Cond, LangError> {
        if let Some(c) = self.expr_as_cond(e, span)? {
            return Ok(c);
        }
        let op = self.lower_expr(e, span, out)?;
        match op {
            Operand::Var(v) => Ok(Cond::pos(v)),
            Operand::Const(_) => {
                let t = self.fresh_temp();
                out.push(Stmt::user(
                    StmtKind::Assign(Place::Var(VarRef::Local(t)), Rvalue::Operand(op)),
                    span,
                ));
                Ok(Cond::pos(VarRef::Local(t)))
            }
        }
    }

    /// Lowers an expression into an operand, emitting temporaries as
    /// needed.
    fn lower_expr(&mut self, e: &ast::Expr, span: Span, out: &mut Vec<Stmt>) -> Result<Operand, LangError> {
        if let Some(op) = self.expr_as_operand(e, span)? {
            return Ok(op);
        }
        match e {
            ast::Expr::Bin(op @ (ast::BinOp::And | ast::BinOp::Or), lhs, rhs) => {
                // Short-circuit lowering:
                //   r = lhs;
                //   choice { assume(r); r = rhs [] assume(!r) }      (&&)
                //   choice { assume(!r); r = rhs [] assume(r) }      (||)
                let r = self.fresh_temp();
                let rv = VarRef::Local(r);
                let lhs_op = self.lower_expr(lhs, span, out)?;
                out.push(Stmt::user(
                    StmtKind::Assign(Place::Var(rv), Rvalue::Operand(lhs_op)),
                    span,
                ));
                let (enter, skip_cond) = match op {
                    ast::BinOp::And => (Cond::pos(rv), Cond::neg(rv)),
                    _ => (Cond::neg(rv), Cond::pos(rv)),
                };
                let mut eval_branch = vec![Stmt::user(StmtKind::Assume(enter), span)];
                let rhs_op = self.lower_expr(rhs, span, &mut eval_branch)?;
                eval_branch.push(Stmt::user(
                    StmtKind::Assign(Place::Var(rv), Rvalue::Operand(rhs_op)),
                    span,
                ));
                let skip_branch = Stmt::user(StmtKind::Assume(skip_cond), span);
                out.push(Stmt::user(StmtKind::Choice(vec![seq(eval_branch), skip_branch]), span));
                Ok(Operand::Var(rv))
            }
            ast::Expr::Bin(op, lhs, rhs) => {
                let a = self.lower_expr(lhs, span, out)?;
                let b = self.lower_expr(rhs, span, out)?;
                let t = self.fresh_temp();
                out.push(Stmt::user(
                    StmtKind::Assign(Place::Var(VarRef::Local(t)), Rvalue::BinOp(*op, a, b)),
                    span,
                ));
                Ok(Operand::Var(VarRef::Local(t)))
            }
            ast::Expr::Un(op, inner) => {
                let a = self.lower_expr(inner, span, out)?;
                let t = self.fresh_temp();
                out.push(Stmt::user(
                    StmtKind::Assign(Place::Var(VarRef::Local(t)), Rvalue::UnOp(*op, a)),
                    span,
                ));
                Ok(Operand::Var(VarRef::Local(t)))
            }
            ast::Expr::Deref(_) | ast::Expr::Field(_, _) | ast::Expr::AddrOf(_) | ast::Expr::AddrOfField(_, _) => {
                let rv = self
                    .expr_as_rvalue(e, span)?
                    .expect("deref/field/addrof always lower to an rvalue");
                let t = self.fresh_temp();
                out.push(Stmt::user(StmtKind::Assign(Place::Var(VarRef::Local(t)), rv), span));
                Ok(Operand::Var(VarRef::Local(t)))
            }
            ast::Expr::Int(_) | ast::Expr::Bool(_) | ast::Expr::Null | ast::Expr::Var(_) => {
                unreachable!("handled by expr_as_operand")
            }
        }
    }
}

/// Marks a lowered statement tree as benign (race checks suppressed).
fn retag_benign(s: &mut Stmt) {
    if s.origin == Origin::User {
        s.origin = Origin::UserBenign;
    }
    match &mut s.kind {
        StmtKind::Seq(ss) | StmtKind::Choice(ss) => ss.iter_mut().for_each(retag_benign),
        StmtKind::Atomic(b) | StmtKind::Iter(b) => retag_benign(b),
        _ => {}
    }
}

fn negate(c: Cond) -> Cond {
    Cond { var: c.var, negated: !c.negated }
}

/// Wraps statements in a `Seq`, avoiding single-element nesting.
fn seq(mut stmts: Vec<Stmt>) -> Stmt {
    match stmts.len() {
        0 => Stmt::skip(),
        1 => stmts.pop().expect("len checked"),
        _ => Stmt::synth(StmtKind::Seq(stmts), Origin::User),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    fn lower_src(src: &str) -> hir::Program {
        lower(&parse_program(src).unwrap()).unwrap()
    }

    fn lower_err(src: &str) -> LangError {
        lower(&parse_program(src).unwrap()).unwrap_err()
    }

    fn body(p: &hir::Program, name: &str) -> Stmt {
        p.func(p.func_by_name(name).unwrap()).body.clone()
    }

    #[test]
    fn simple_assignment_stays_single_statement() {
        let p = lower_src("struct D { int f; } D *e; void main() { int x; x = e->f; e->f = x + 1; }");
        let StmtKind::Seq(ss) = body(&p, "main").kind else { panic!("expected seq") };
        assert!(matches!(ss[0].kind, StmtKind::Assign(Place::Var(_), Rvalue::Load(Place::Field(..)))));
        assert!(matches!(ss[1].kind, StmtKind::Assign(Place::Field(..), Rvalue::BinOp(..))));
    }

    #[test]
    fn if_desugars_to_choice_assume() {
        let p = lower_src("int g; void main() { bool c; if (c) { g = 1; } else { g = 2; } }");
        // The body is the single lowered `choice` (a plain variable
        // condition needs no preamble).
        let StmtKind::Choice(branches) = body(&p, "main").kind else { panic!("expected choice") };
        let branches = &branches;
        assert_eq!(branches.len(), 2);
        let StmtKind::Seq(tb) = &branches[0].kind else { panic!() };
        assert!(matches!(tb[0].kind, StmtKind::Assume(Cond { negated: false, .. })));
        let StmtKind::Seq(eb) = &branches[1].kind else { panic!() };
        assert!(matches!(eb[0].kind, StmtKind::Assume(Cond { negated: true, .. })));
    }

    #[test]
    fn while_desugars_to_iter_then_negated_assume() {
        let p = lower_src("void main() { int x; while (x < 3) { x = x + 1; } }");
        let StmtKind::Seq(ss) = body(&p, "main").kind else { panic!() };
        assert!(ss.iter().any(|s| matches!(s.kind, StmtKind::Iter(_))));
        assert!(matches!(ss.last().unwrap().kind, StmtKind::Assume(Cond { negated: true, .. })));
    }

    #[test]
    fn compound_condition_computed_into_temp() {
        let p = lower_src("int g; void main() { if (g == 0) { g = 1; } }");
        let f = p.func(p.main);
        // One temp introduced for `g == 0`.
        assert!(f.locals.iter().any(|l| l.name.starts_with("__t")));
    }

    #[test]
    fn short_circuit_and_uses_choice() {
        let p = lower_src("struct D { bool f; } D *e; void main() { bool r; r = e != null && e->f; }");
        let StmtKind::Seq(ss) = body(&p, "main").kind else { panic!() };
        // Lowering must contain a Choice implementing the short-circuit.
        fn has_choice(s: &Stmt) -> bool {
            match &s.kind {
                StmtKind::Choice(_) => true,
                StmtKind::Seq(ss) => ss.iter().any(has_choice),
                StmtKind::Iter(b) | StmtKind::Atomic(b) => has_choice(b),
                _ => false,
            }
        }
        assert!(ss.iter().any(has_choice));
    }

    #[test]
    fn blocking_assume_over_field_wrapped_in_atomic() {
        let p = lower_src("struct D { bool ev; } D *e; void main() { assume e->ev; }");
        let b = body(&p, "main");
        assert!(matches!(b.kind, StmtKind::Atomic(_)), "got {:?}", b.kind);
    }

    #[test]
    fn assume_on_plain_variable_not_wrapped() {
        let p = lower_src("bool v; void main() { assume v; assume !v; }");
        let StmtKind::Seq(ss) = body(&p, "main").kind else { panic!() };
        assert!(matches!(ss[0].kind, StmtKind::Assume(Cond { negated: false, .. })));
        assert!(matches!(ss[1].kind, StmtKind::Assume(Cond { negated: true, .. })));
    }

    #[test]
    fn assume_inside_atomic_not_doubly_wrapped() {
        let p = lower_src("int l; void main() { int *p; p = &l; atomic { assume *p == 0; *p = 1; } }");
        let StmtKind::Seq(ss) = body(&p, "main").kind else { panic!() };
        let StmtKind::Atomic(inner) = &ss.last().unwrap().kind else { panic!("expected atomic") };
        fn has_nested_atomic(s: &Stmt) -> bool {
            match &s.kind {
                StmtKind::Atomic(_) => true,
                StmtKind::Seq(ss) | StmtKind::Choice(ss) => ss.iter().any(has_nested_atomic),
                StmtKind::Iter(b) => has_nested_atomic(b),
                _ => false,
            }
        }
        assert!(!has_nested_atomic(inner));
    }

    #[test]
    fn function_name_becomes_fn_constant() {
        let p = lower_src("void work() { skip; } void main() { fn f; f = work; async f(); }");
        let StmtKind::Seq(ss) = body(&p, "main").kind else { panic!() };
        assert!(matches!(
            ss[0].kind,
            StmtKind::Assign(_, Rvalue::Operand(Operand::Const(Const::Fn(_))))
        ));
        assert!(matches!(ss[1].kind, StmtKind::Async { target: hir::CallTarget::Indirect(_), .. }));
    }

    #[test]
    fn direct_call_checks_arity() {
        let e = lower_err("void f(int a) { skip; } void main() { f(); }");
        assert!(e.message.contains("argument"));
    }

    #[test]
    fn unknown_names_are_errors() {
        assert!(lower_err("void main() { x = 1; }").message.contains("unknown variable"));
        assert!(lower_err("void main() { g(); }").message.contains("unknown function"));
        assert!(lower_err("void main() { int x; x = malloc(S); }").message.contains("unknown struct"));
    }

    #[test]
    fn field_access_requires_struct_pointer_type() {
        let e = lower_err("void main() { int x; int y; y = x->f; }");
        assert!(e.message.contains("not a pointer"));
        let e = lower_err("struct D { int f; } D *e; void main() { int y; y = e->g; }");
        assert!(e.message.contains("no field"));
    }

    #[test]
    fn missing_main_is_an_error() {
        assert!(lower_err("void f() { skip; }").message.contains("no `main`"));
        assert!(lower_err("void main(int x) { skip; }").message.contains("no parameters"));
    }

    #[test]
    fn duplicate_definitions_rejected() {
        assert!(lower_err("int g; int g; void main() { skip; }").message.contains("duplicate global"));
        assert!(lower_err("void f() { skip; } void f() { skip; } void main() { skip; }")
            .message
            .contains("duplicate function"));
        assert!(lower_err("void main() { int x; int x; skip; }").message.contains("duplicate local"));
        assert!(lower_err("struct D { int f; int f; } void main() { skip; }")
            .message
            .contains("duplicate field"));
    }

    #[test]
    fn bluetooth_driver_model_lowers() {
        // The paper's Figure 2, transcribed to KISS-C.
        let src = r#"
            struct DEVICE_EXTENSION { int pendingIo; bool stoppingFlag; bool stoppingEvent; }
            bool stopped;
            DEVICE_EXTENSION *e0;

            void main() {
                DEVICE_EXTENSION *e;
                e = malloc(DEVICE_EXTENSION);
                e->pendingIo = 1;
                e->stoppingFlag = false;
                e->stoppingEvent = false;
                stopped = false;
                e0 = e;
                async BCSP_PnpStop(e);
                BCSP_PnpAdd(e);
            }

            void BCSP_PnpAdd(DEVICE_EXTENSION *e) {
                int status;
                status = BCSP_IoIncrement(e);
                if (status == 0) {
                    assert !stopped;
                }
                BCSP_IoDecrement(e);
            }

            void BCSP_PnpStop(DEVICE_EXTENSION *e) {
                e->stoppingFlag = true;
                BCSP_IoDecrement(e);
                assume e->stoppingEvent;
                stopped = true;
            }

            int BCSP_IoIncrement(DEVICE_EXTENSION *e) {
                if (e->stoppingFlag) { return -1; }
                atomic { e->pendingIo = e->pendingIo + 1; }
                return 0;
            }

            void BCSP_IoDecrement(DEVICE_EXTENSION *e) {
                int pendingIo;
                atomic { e->pendingIo = e->pendingIo - 1; pendingIo = e->pendingIo; }
                if (pendingIo == 0) { e->stoppingEvent = true; }
            }
        "#;
        let p = lower_src(src);
        assert_eq!(p.funcs.len(), 5);
        assert!(p.func(p.func_by_name("BCSP_IoIncrement").unwrap()).has_ret);
    }
}
