//! Semantics-preserving simplification of core programs.
//!
//! Lowering and the KISS transformation both generate degenerate
//! structure — nested `Seq`s, `skip`s, single-branch `choice`s,
//! constant subexpressions — and driver-scale programs carry large
//! amounts of code the harness never calls. This module provides:
//!
//! * [`simplify`] — statement-level cleanup: `Seq` flattening, `skip`
//!   elimination, single-branch `choice` inlining, constant folding of
//!   pure operators, `iter`/`atomic` over nothing;
//! * [`prune_unreachable`] — removes functions unreachable from `main`
//!   (via direct calls, address-taken functions and global
//!   initializers), remapping all function ids.
//!
//! Both preserve program behaviour exactly (including spans and
//! origins, so KISS trace back-mapping still works); the checking-cost
//! benefit is measured by the `opt_ablation` benchmark binary.

use std::collections::HashMap;

use crate::ast::{BinOp, UnOp};
use crate::hir::*;

/// Statistics from a simplification run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Statements removed (skips, collapsed sequences).
    pub stmts_removed: usize,
    /// Constant expressions folded.
    pub consts_folded: usize,
    /// Functions removed by reachability pruning.
    pub funcs_pruned: usize,
}

/// Simplifies every function body in place.
pub fn simplify(program: &mut Program) -> OptStats {
    let mut stats = OptStats::default();
    for f in &mut program.funcs {
        let body = std::mem::replace(&mut f.body, Stmt::skip());
        f.body = simplify_stmt(body, &mut stats);
    }
    stats
}

fn is_skip(s: &Stmt) -> bool {
    matches!(s.kind, StmtKind::Skip)
}

fn simplify_stmt(s: Stmt, stats: &mut OptStats) -> Stmt {
    let Stmt { kind, span, origin } = s;
    let kind = match kind {
        StmtKind::Seq(ss) => {
            let mut out: Vec<Stmt> = Vec::with_capacity(ss.len());
            for inner in ss {
                let inner = simplify_stmt(inner, stats);
                match inner.kind {
                    StmtKind::Skip => stats.stmts_removed += 1,
                    StmtKind::Seq(nested) => {
                        stats.stmts_removed += 1;
                        out.extend(nested);
                    }
                    _ => out.push(inner),
                }
            }
            match out.len() {
                0 => StmtKind::Skip,
                1 => return out.pop().expect("len checked"),
                _ => StmtKind::Seq(out),
            }
        }
        StmtKind::Choice(branches) => {
            let branches: Vec<Stmt> =
                branches.into_iter().map(|b| simplify_stmt(b, stats)).collect();
            if branches.len() == 1 {
                stats.stmts_removed += 1;
                return branches.into_iter().next().expect("len checked");
            }
            // choice over all-skip branches is a skip.
            if !branches.is_empty() && branches.iter().all(is_skip) {
                stats.stmts_removed += branches.len();
                StmtKind::Skip
            } else {
                StmtKind::Choice(branches)
            }
        }
        StmtKind::Iter(inner) => {
            let inner = simplify_stmt(*inner, stats);
            if is_skip(&inner) {
                stats.stmts_removed += 1;
                StmtKind::Skip
            } else {
                StmtKind::Iter(Box::new(inner))
            }
        }
        StmtKind::Atomic(inner) => {
            let inner = simplify_stmt(*inner, stats);
            if is_skip(&inner) {
                stats.stmts_removed += 1;
                StmtKind::Skip
            } else {
                StmtKind::Atomic(Box::new(inner))
            }
        }
        StmtKind::Assign(place, rv) => StmtKind::Assign(place, fold_rvalue(rv, stats)),
        other => other,
    };
    Stmt { kind, span, origin }
}

fn fold_rvalue(rv: Rvalue, stats: &mut OptStats) -> Rvalue {
    match rv {
        Rvalue::BinOp(op, Operand::Const(a), Operand::Const(b)) => {
            match fold_binop(op, a, b) {
                Some(c) => {
                    stats.consts_folded += 1;
                    Rvalue::Operand(Operand::Const(c))
                }
                None => rv,
            }
        }
        Rvalue::UnOp(op, Operand::Const(a)) => match fold_unop(op, a) {
            Some(c) => {
                stats.consts_folded += 1;
                Rvalue::Operand(Operand::Const(c))
            }
            None => rv,
        },
        other => other,
    }
}

fn fold_binop(op: BinOp, a: Const, b: Const) -> Option<Const> {
    use Const::*;
    Some(match (op, a, b) {
        (BinOp::Add, Int(x), Int(y)) => Int(x.checked_add(y)?),
        (BinOp::Sub, Int(x), Int(y)) => Int(x.checked_sub(y)?),
        (BinOp::Mul, Int(x), Int(y)) => Int(x.checked_mul(y)?),
        // `%` semantics (rem_euclid, div-by-zero error) stay at runtime.
        (BinOp::Eq, x, y) => Bool(x == y),
        (BinOp::Ne, x, y) => Bool(x != y),
        (BinOp::Lt, Int(x), Int(y)) => Bool(x < y),
        (BinOp::Le, Int(x), Int(y)) => Bool(x <= y),
        (BinOp::Gt, Int(x), Int(y)) => Bool(x > y),
        (BinOp::Ge, Int(x), Int(y)) => Bool(x >= y),
        (BinOp::And, Bool(x), Bool(y)) => Bool(x && y),
        (BinOp::Or, Bool(x), Bool(y)) => Bool(x || y),
        _ => return None,
    })
}

fn fold_unop(op: UnOp, a: Const) -> Option<Const> {
    Some(match (op, a) {
        (UnOp::Not, Const::Bool(b)) => Const::Bool(!b),
        (UnOp::Neg, Const::Int(n)) => Const::Int(n.checked_neg()?),
        _ => return None,
    })
}

/// Removes functions unreachable from `main`, remapping every function
/// id (call targets, function constants in statements and global
/// initializers). Returns updated statistics.
pub fn prune_unreachable(program: &mut Program) -> OptStats {
    let n = program.funcs.len();
    let mut reachable = vec![false; n];
    let mut work = vec![program.main];
    // Functions stored in global initializers may be invoked
    // indirectly.
    for g in &program.globals {
        if let Some(Const::Fn(f)) = g.init {
            work.push(f);
        }
    }
    while let Some(f) = work.pop() {
        if std::mem::replace(&mut reachable[f.0 as usize], true) {
            continue;
        }
        collect_mentions(&program.funcs[f.0 as usize].body, &mut work);
    }

    let mut remap: HashMap<FuncId, FuncId> = HashMap::new();
    let mut kept = Vec::with_capacity(n);
    for (i, f) in std::mem::take(&mut program.funcs).into_iter().enumerate() {
        if reachable[i] {
            remap.insert(FuncId(i as u32), FuncId(kept.len() as u32));
            kept.push(f);
        }
    }
    let pruned = n - kept.len();
    program.funcs = kept;
    program.main = remap[&program.main];
    for g in &mut program.globals {
        if let Some(Const::Fn(f)) = g.init {
            g.init = Some(Const::Fn(remap[&f]));
        }
    }
    for f in &mut program.funcs {
        remap_stmt(&mut f.body, &remap);
    }
    OptStats { funcs_pruned: pruned, ..Default::default() }
}

/// Direct callees and address-taken functions mentioned by a statement.
fn collect_mentions(s: &Stmt, out: &mut Vec<FuncId>) {
    match &s.kind {
        StmtKind::Seq(ss) | StmtKind::Choice(ss) => {
            ss.iter().for_each(|s| collect_mentions(s, out))
        }
        StmtKind::Atomic(b) | StmtKind::Iter(b) => collect_mentions(b, out),
        StmtKind::Assign(_, Rvalue::Operand(Operand::Const(Const::Fn(f)))) => out.push(*f),
        StmtKind::Call { target, args, .. } | StmtKind::Async { target, args, .. } => {
            if let CallTarget::Direct(f) = target {
                out.push(*f);
            }
            for a in args {
                if let Operand::Const(Const::Fn(f)) = a {
                    out.push(*f);
                }
            }
        }
        _ => {}
    }
}

fn remap_operand(op: &mut Operand, remap: &HashMap<FuncId, FuncId>) {
    if let Operand::Const(Const::Fn(f)) = op {
        *f = remap[f];
    }
}

fn remap_stmt(s: &mut Stmt, remap: &HashMap<FuncId, FuncId>) {
    match &mut s.kind {
        StmtKind::Seq(ss) | StmtKind::Choice(ss) => {
            ss.iter_mut().for_each(|s| remap_stmt(s, remap))
        }
        StmtKind::Atomic(b) | StmtKind::Iter(b) => remap_stmt(b, remap),
        StmtKind::Assign(_, Rvalue::Operand(op)) => remap_operand(op, remap),
        StmtKind::Assign(_, Rvalue::BinOp(_, a, b)) => {
            remap_operand(a, remap);
            remap_operand(b, remap);
        }
        StmtKind::Assign(_, Rvalue::UnOp(_, a)) => remap_operand(a, remap),
        StmtKind::Call { target, args, .. } | StmtKind::Async { target, args, .. } => {
            if let CallTarget::Direct(f) = target {
                *f = remap[f];
            }
            args.iter_mut().for_each(|a| remap_operand(a, remap));
        }
        StmtKind::Return(Some(op)) => remap_operand(op, remap),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_and_lower;

    #[test]
    fn flattens_seqs_and_removes_skips() {
        let mut p = parse_and_lower("int g; void main() { skip; { skip; g = 1; } skip; }").unwrap();
        let stats = simplify(&mut p);
        assert!(stats.stmts_removed >= 2);
        let body = &p.func(p.main).body;
        assert!(matches!(body.kind, StmtKind::Assign(..)), "{body:?}");
    }

    #[test]
    fn folds_constants() {
        let mut p = parse_and_lower("int g; bool b; void main() { g = 2 + 3; b = 4 < 2; }").unwrap();
        let stats = simplify(&mut p);
        assert_eq!(stats.consts_folded, 2);
        let StmtKind::Seq(ss) = &p.func(p.main).body.kind else { panic!() };
        assert!(matches!(
            ss[0].kind,
            StmtKind::Assign(_, Rvalue::Operand(Operand::Const(Const::Int(5))))
        ));
        assert!(matches!(
            ss[1].kind,
            StmtKind::Assign(_, Rvalue::Operand(Operand::Const(Const::Bool(false))))
        ));
    }

    #[test]
    fn overflowing_folds_are_left_to_runtime() {
        let max = i64::MAX;
        let mut p =
            parse_and_lower(&format!("int g; void main() {{ g = {max} + 1; }}")).unwrap();
        let stats = simplify(&mut p);
        assert_eq!(stats.consts_folded, 0);
    }

    #[test]
    fn single_branch_choice_inlines() {
        let mut p = parse_and_lower("int g; void main() { choice { g = 1; } }").unwrap();
        simplify(&mut p);
        assert!(matches!(p.func(p.main).body.kind, StmtKind::Assign(..)));
    }

    #[test]
    fn prunes_unreachable_functions_and_remaps_ids() {
        let src = "
            int g;
            void dead1() { g = 9; }
            void used() { g = 1; }
            void dead2() { dead1(); }
            void via_value() { g = 2; }
            void main() { fn f; used(); f = via_value; f(); }
        ";
        let mut p = parse_and_lower(src).unwrap();
        let stats = prune_unreachable(&mut p);
        assert_eq!(stats.funcs_pruned, 2);
        assert!(p.func_by_name("dead1").is_none());
        assert!(p.func_by_name("dead2").is_none());
        assert!(p.func_by_name("used").is_some());
        assert!(p.func_by_name("via_value").is_some());
        // The program still behaves: ids were remapped consistently.
        let text = crate::pretty::print_program(&p);
        let p2 = parse_and_lower(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(p2.funcs.len(), p.funcs.len());
    }

    #[test]
    fn pruning_keeps_functions_reachable_through_global_initializers() {
        let src = "
            void handler() { skip; }
            fn h = handler;
            void main() { h(); }
        ";
        let mut p = parse_and_lower(src).unwrap();
        let stats = prune_unreachable(&mut p);
        assert_eq!(stats.funcs_pruned, 0);
        assert!(p.func_by_name("handler").is_some());
    }

    #[test]
    fn simplify_preserves_verdicts() {
        // Checked behaviourally in kiss-core's opt tests; here just the
        // structural invariant that asserts/assumes survive.
        let src = "int g; void main() { skip; choice { skip; [] skip; } assert g == 0; }";
        let mut p = parse_and_lower(src).unwrap();
        simplify(&mut p);
        fn count_asserts(s: &Stmt) -> usize {
            match &s.kind {
                StmtKind::Assert(_) => 1,
                StmtKind::Seq(ss) | StmtKind::Choice(ss) => ss.iter().map(count_asserts).sum(),
                StmtKind::Atomic(b) | StmtKind::Iter(b) => count_asserts(b),
                _ => 0,
            }
        }
        assert_eq!(count_asserts(&p.func(p.main).body), 1);
    }
}
