//! Recursive-descent parser for KISS-C.

use crate::ast::*;
use crate::span::Span;
use crate::token::{Tok, Token};
use crate::{LangError, LangErrorKind};

/// The parser state: a token stream with one-token lookahead helpers.
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    /// Creates a parser over a lexed token stream (must end in `Eof`).
    pub fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> &Tok {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].tok
    }

    fn peek_at(&self, offset: usize) -> &Tok {
        &self.tokens[(self.pos + offset).min(self.tokens.len() - 1)].tok
    }

    fn span(&self) -> Span {
        self.tokens[self.pos.min(self.tokens.len() - 1)].span
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].tok.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, expected: &Tok) -> Result<(), LangError> {
        if self.peek() == expected {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("expected {}, found {}", expected.describe(), self.peek().describe())))
        }
    }

    fn eat_ident(&mut self) -> Result<String, LangError> {
        match self.peek().clone() {
            Tok::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => Err(self.error(format!("expected identifier, found {}", other.describe()))),
        }
    }

    fn error(&self, msg: impl Into<String>) -> LangError {
        LangError::new(LangErrorKind::Parse, msg, Some(self.span()))
    }

    /// Parses a whole program.
    ///
    /// # Errors
    ///
    /// Returns the first syntax error encountered.
    pub fn parse_program(mut self) -> Result<Program, LangError> {
        let mut program = Program::default();
        while self.peek() != &Tok::Eof {
            if self.peek() == &Tok::KwStruct {
                program.structs.push(self.parse_struct()?);
                continue;
            }
            // A global declaration or a function definition: both start
            // with a type (or `void`), then a name.
            let span = self.span();
            let ret = if self.peek() == &Tok::KwVoid {
                self.bump();
                None
            } else {
                Some(self.parse_type()?)
            };
            let name = self.eat_ident()?;
            if self.peek() == &Tok::LParen {
                program.funcs.push(self.parse_func(ret, name, span)?);
            } else {
                let ty = ret.ok_or_else(|| self.error("global variables cannot have type `void`"))?;
                let init = if self.peek() == &Tok::Assign {
                    self.bump();
                    Some(self.parse_expr()?)
                } else {
                    None
                };
                self.eat(&Tok::Semi)?;
                program.globals.push(VarDecl { name, ty, init, span });
            }
        }
        Ok(program)
    }

    fn parse_struct(&mut self) -> Result<StructDef, LangError> {
        let span = self.span();
        self.eat(&Tok::KwStruct)?;
        let name = self.eat_ident()?;
        self.eat(&Tok::LBrace)?;
        let mut fields = Vec::new();
        while self.peek() != &Tok::RBrace {
            fields.push(self.parse_var_decl()?);
        }
        self.eat(&Tok::RBrace)?;
        // Optional trailing `;` after the struct, C style.
        if self.peek() == &Tok::Semi {
            self.bump();
        }
        Ok(StructDef { name, fields, span })
    }

    fn parse_type(&mut self) -> Result<Type, LangError> {
        let mut ty = match self.peek().clone() {
            Tok::KwInt => {
                self.bump();
                Type::Int
            }
            Tok::KwBool => {
                self.bump();
                Type::Bool
            }
            Tok::KwFn => {
                self.bump();
                Type::Fn
            }
            Tok::Ident(name) => {
                self.bump();
                Type::Named(name)
            }
            other => return Err(self.error(format!("expected a type, found {}", other.describe()))),
        };
        while self.peek() == &Tok::Star {
            self.bump();
            ty = Type::Ptr(Box::new(ty));
        }
        Ok(ty)
    }

    fn parse_var_decl(&mut self) -> Result<VarDecl, LangError> {
        let span = self.span();
        let ty = self.parse_type()?;
        let name = self.eat_ident()?;
        self.eat(&Tok::Semi)?;
        Ok(VarDecl { name, ty, init: None, span })
    }

    fn parse_func(&mut self, ret: Option<Type>, name: String, span: Span) -> Result<FuncDef, LangError> {
        self.eat(&Tok::LParen)?;
        let mut params = Vec::new();
        if self.peek() != &Tok::RParen {
            loop {
                let pspan = self.span();
                let ty = self.parse_type()?;
                let pname = self.eat_ident()?;
                params.push(VarDecl { name: pname, ty, init: None, span: pspan });
                if self.peek() == &Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.eat(&Tok::RParen)?;
        self.eat(&Tok::LBrace)?;
        // Local declarations come first, C89 style.
        let mut locals = Vec::new();
        while self.looks_like_decl() {
            locals.push(self.parse_var_decl()?);
        }
        let body = self.parse_stmts_until_rbrace()?;
        self.eat(&Tok::RBrace)?;
        Ok(FuncDef { name, ret, params, locals, body, span })
    }

    /// Does the upcoming token sequence start a local declaration rather
    /// than a statement? Declarations start with a builtin type keyword,
    /// or with `Ident Ident` / `Ident * Ident` (a struct-typed
    /// declaration), whereas statements starting with an identifier
    /// continue with `=`, `(`, or `->`.
    fn looks_like_decl(&self) -> bool {
        match self.peek() {
            Tok::KwInt | Tok::KwBool | Tok::KwFn => true,
            Tok::Ident(_) => matches!(
                (self.peek_at(1), self.peek_at(2)),
                (Tok::Ident(_), _) | (Tok::Star, Tok::Ident(_))
            ),
            _ => false,
        }
    }

    fn parse_stmts_until_rbrace(&mut self) -> Result<Vec<Stmt>, LangError> {
        let mut out = Vec::new();
        while self.peek() != &Tok::RBrace && self.peek() != &Tok::Eof && self.peek() != &Tok::BranchSep {
            out.push(self.parse_stmt()?);
        }
        Ok(out)
    }

    fn parse_block(&mut self) -> Result<Vec<Stmt>, LangError> {
        self.eat(&Tok::LBrace)?;
        let stmts = self.parse_stmts_until_rbrace()?;
        self.eat(&Tok::RBrace)?;
        Ok(stmts)
    }

    fn parse_stmt(&mut self) -> Result<Stmt, LangError> {
        let span = self.span();
        let kind = match self.peek().clone() {
            Tok::KwSkip => {
                self.bump();
                self.eat(&Tok::Semi)?;
                StmtKind::Skip
            }
            Tok::KwAssert => {
                self.bump();
                let e = self.parse_paren_or_bare_expr()?;
                self.eat(&Tok::Semi)?;
                StmtKind::Assert(e)
            }
            Tok::KwAssume => {
                self.bump();
                let e = self.parse_paren_or_bare_expr()?;
                self.eat(&Tok::Semi)?;
                StmtKind::Assume(e)
            }
            Tok::KwReturn => {
                self.bump();
                let e = if self.peek() == &Tok::Semi { None } else { Some(self.parse_expr()?) };
                self.eat(&Tok::Semi)?;
                StmtKind::Return(e)
            }
            Tok::KwAtomic => {
                self.bump();
                StmtKind::Atomic(self.parse_block()?)
            }
            Tok::KwIter => {
                self.bump();
                StmtKind::Iter(self.parse_block()?)
            }
            Tok::KwChoice => {
                self.bump();
                self.eat(&Tok::LBrace)?;
                let mut branches = vec![self.parse_stmts_until_rbrace()?];
                while self.peek() == &Tok::BranchSep {
                    self.bump();
                    branches.push(self.parse_stmts_until_rbrace()?);
                }
                self.eat(&Tok::RBrace)?;
                StmtKind::Choice(branches)
            }
            Tok::KwIf => {
                self.bump();
                self.eat(&Tok::LParen)?;
                let cond = self.parse_expr()?;
                self.eat(&Tok::RParen)?;
                let then_branch = self.parse_block()?;
                let else_branch = if self.peek() == &Tok::KwElse {
                    self.bump();
                    if self.peek() == &Tok::KwIf {
                        // `else if`: wrap the nested if as a single-statement block.
                        vec![self.parse_stmt()?]
                    } else {
                        self.parse_block()?
                    }
                } else {
                    Vec::new()
                };
                StmtKind::If(cond, then_branch, else_branch)
            }
            Tok::KwWhile => {
                self.bump();
                self.eat(&Tok::LParen)?;
                let cond = self.parse_expr()?;
                self.eat(&Tok::RParen)?;
                StmtKind::While(cond, self.parse_block()?)
            }
            Tok::KwAsync => {
                self.bump();
                let callee = self.eat_ident()?;
                let args = self.parse_call_args()?;
                self.eat(&Tok::Semi)?;
                StmtKind::Async { callee, args }
            }
            Tok::KwBenign => {
                self.bump();
                StmtKind::Benign(Box::new(self.parse_stmt()?))
            }
            Tok::LBrace => StmtKind::Block(self.parse_block()?),
            Tok::Star | Tok::Ident(_) => self.parse_assign_or_call()?,
            other => return Err(self.error(format!("expected a statement, found {}", other.describe()))),
        };
        Ok(Stmt::new(kind, span))
    }

    /// `assert (e);` and `assert e;` are both accepted.
    fn parse_paren_or_bare_expr(&mut self) -> Result<Expr, LangError> {
        self.parse_expr()
    }

    fn parse_call_args(&mut self) -> Result<Vec<Expr>, LangError> {
        self.eat(&Tok::LParen)?;
        let mut args = Vec::new();
        if self.peek() != &Tok::RParen {
            loop {
                args.push(self.parse_expr()?);
                if self.peek() == &Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.eat(&Tok::RParen)?;
        Ok(args)
    }

    fn parse_lvalue(&mut self) -> Result<LValue, LangError> {
        if self.peek() == &Tok::Star {
            self.bump();
            return Ok(LValue::Deref(self.eat_ident()?));
        }
        let name = self.eat_ident()?;
        if self.peek() == &Tok::Arrow {
            self.bump();
            let field = self.eat_ident()?;
            Ok(LValue::Field(name, field))
        } else {
            Ok(LValue::Var(name))
        }
    }

    fn parse_assign_or_call(&mut self) -> Result<StmtKind, LangError> {
        // Call statement without destination: `f(args);`
        if let Tok::Ident(name) = self.peek().clone() {
            if self.peek_at(1) == &Tok::LParen {
                self.bump();
                let args = self.parse_call_args()?;
                self.eat(&Tok::Semi)?;
                return Ok(StmtKind::Call { dest: None, callee: name, args });
            }
        }
        let lv = self.parse_lvalue()?;
        self.eat(&Tok::Assign)?;
        // `lv = malloc(Struct);`
        if self.peek() == &Tok::KwMalloc {
            self.bump();
            self.eat(&Tok::LParen)?;
            let sname = self.eat_ident()?;
            self.eat(&Tok::RParen)?;
            self.eat(&Tok::Semi)?;
            return Ok(StmtKind::Malloc(lv, sname));
        }
        // `lv = f(args);`
        if let Tok::Ident(name) = self.peek().clone() {
            if self.peek_at(1) == &Tok::LParen {
                self.bump();
                let args = self.parse_call_args()?;
                self.eat(&Tok::Semi)?;
                return Ok(StmtKind::Call { dest: Some(lv), callee: name, args });
            }
        }
        let rhs = self.parse_expr()?;
        self.eat(&Tok::Semi)?;
        Ok(StmtKind::Assign(lv, rhs))
    }

    // ---- expressions ------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr, LangError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.parse_and()?;
        while self.peek() == &Tok::OrOr {
            self.bump();
            let rhs = self.parse_and()?;
            lhs = Expr::Bin(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.parse_cmp()?;
        while self.peek() == &Tok::AndAnd {
            self.bump();
            let rhs = self.parse_cmp()?;
            lhs = Expr::Bin(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_cmp(&mut self) -> Result<Expr, LangError> {
        let lhs = self.parse_add()?;
        let op = match self.peek() {
            Tok::EqEq => BinOp::Eq,
            Tok::NotEq => BinOp::Ne,
            Tok::Lt => BinOp::Lt,
            Tok::Le => BinOp::Le,
            Tok::Gt => BinOp::Gt,
            Tok::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.parse_add()?;
        Ok(Expr::Bin(op, Box::new(lhs), Box::new(rhs)))
    }

    fn parse_add(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.parse_mul()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_mul()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_mul(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Percent => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_unary()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, LangError> {
        match self.peek().clone() {
            Tok::Bang => {
                self.bump();
                Ok(Expr::Un(UnOp::Not, Box::new(self.parse_unary()?)))
            }
            Tok::Minus => {
                self.bump();
                Ok(Expr::Un(UnOp::Neg, Box::new(self.parse_unary()?)))
            }
            Tok::Star => {
                self.bump();
                Ok(Expr::Deref(self.eat_ident()?))
            }
            Tok::Amp => {
                self.bump();
                let name = self.eat_ident()?;
                if self.peek() == &Tok::Arrow {
                    self.bump();
                    let field = self.eat_ident()?;
                    Ok(Expr::AddrOfField(name, field))
                } else {
                    Ok(Expr::AddrOf(name))
                }
            }
            _ => self.parse_primary(),
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, LangError> {
        match self.peek().clone() {
            Tok::Int(n) => {
                self.bump();
                Ok(Expr::Int(n))
            }
            Tok::KwTrue => {
                self.bump();
                Ok(Expr::Bool(true))
            }
            Tok::KwFalse => {
                self.bump();
                Ok(Expr::Bool(false))
            }
            Tok::KwNull => {
                self.bump();
                Ok(Expr::Null)
            }
            Tok::Ident(name) => {
                self.bump();
                if self.peek() == &Tok::Arrow {
                    self.bump();
                    let field = self.eat_ident()?;
                    Ok(Expr::Field(name, field))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            Tok::LParen => {
                self.bump();
                let e = self.parse_expr()?;
                self.eat(&Tok::RParen)?;
                Ok(e)
            }
            other => Err(self.error(format!("expected an expression, found {}", other.describe()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    #[test]
    fn parses_struct_globals_and_function() {
        let p = parse_program(
            "struct D { int x; bool b; }
             int g;
             D *e;
             void main() { skip; }",
        )
        .unwrap();
        assert_eq!(p.structs.len(), 1);
        assert_eq!(p.structs[0].fields.len(), 2);
        assert_eq!(p.globals.len(), 2);
        assert!(matches!(p.globals[1].ty, Type::Ptr(_)));
        assert_eq!(p.funcs.len(), 1);
    }

    #[test]
    fn parses_local_decls_then_statements() {
        let p = parse_program(
            "void main() {
                int x;
                D *p;
                x = 1;
             }",
        )
        .unwrap();
        assert_eq!(p.funcs[0].locals.len(), 2);
        assert_eq!(p.funcs[0].body.len(), 1);
    }

    #[test]
    fn parses_calls_async_and_field_assign() {
        let p = parse_program(
            "void main() {
                int s;
                e->pendingIo = 1;
                async BCSP_PnpStop(e);
                s = BCSP_IoIncrement(e);
                BCSP_IoDecrement(e);
             }",
        )
        .unwrap();
        let body = &p.funcs[0].body;
        assert!(matches!(body[0].kind, StmtKind::Assign(LValue::Field(_, _), _)));
        assert!(matches!(body[1].kind, StmtKind::Async { .. }));
        assert!(matches!(body[2].kind, StmtKind::Call { dest: Some(_), .. }));
        assert!(matches!(body[3].kind, StmtKind::Call { dest: None, .. }));
    }

    #[test]
    fn parses_choice_with_branch_separators() {
        let p = parse_program("void main() { choice { skip; [] skip; skip; [] skip; } }").unwrap();
        match &p.funcs[0].body[0].kind {
            StmtKind::Choice(branches) => {
                assert_eq!(branches.len(), 3);
                assert_eq!(branches[1].len(), 2);
            }
            other => panic!("expected choice, got {other:?}"),
        }
    }

    #[test]
    fn parses_if_else_chains_and_while() {
        let p = parse_program(
            "void main() {
                int x;
                if (x == 0) { x = 1; } else if (x == 1) { x = 2; } else { x = 3; }
                while (x < 10) { x = x + 1; }
             }",
        )
        .unwrap();
        assert!(matches!(p.funcs[0].body[0].kind, StmtKind::If(..)));
        assert!(matches!(p.funcs[0].body[1].kind, StmtKind::While(..)));
    }

    #[test]
    fn parses_atomic_iter_assume_assert() {
        let p = parse_program(
            "void main() {
                atomic { assume *l == 0; *l = 1; }
                iter { skip; }
                assert !stopped;
             }",
        )
        .unwrap();
        assert!(matches!(p.funcs[0].body[0].kind, StmtKind::Atomic(_)));
        assert!(matches!(p.funcs[0].body[1].kind, StmtKind::Iter(_)));
        assert!(matches!(p.funcs[0].body[2].kind, StmtKind::Assert(_)));
    }

    #[test]
    fn parses_malloc_and_addressof() {
        let p = parse_program(
            "void main() {
                D *e;
                int *q;
                e = malloc(D);
                q = &g;
                q = &e->f;
             }",
        )
        .unwrap();
        let body = &p.funcs[0].body;
        assert!(matches!(body[0].kind, StmtKind::Malloc(..)));
        assert!(matches!(body[1].kind, StmtKind::Assign(_, Expr::AddrOf(_))));
        assert!(matches!(body[2].kind, StmtKind::Assign(_, Expr::AddrOfField(..))));
    }

    #[test]
    fn expression_precedence_is_conventional() {
        let p = parse_program("void main() { int x; x = 1 + 2 * 3; }").unwrap();
        match &p.funcs[0].body[0].kind {
            StmtKind::Assign(_, Expr::Bin(BinOp::Add, lhs, rhs)) => {
                assert_eq!(**lhs, Expr::Int(1));
                assert!(matches!(**rhs, Expr::Bin(BinOp::Mul, _, _)));
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn comparison_binds_tighter_than_and() {
        let p = parse_program("void main() { bool b; b = x == 0 && y == 1; }").unwrap();
        match &p.funcs[0].body[0].kind {
            StmtKind::Assign(_, Expr::Bin(BinOp::And, _, _)) => {}
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn reports_error_with_location() {
        let err = parse_program("void main() { x = ; }").unwrap_err();
        assert!(err.message.contains("expected an expression"));
        assert!(err.span.is_some());
    }

    #[test]
    fn rejects_void_global() {
        assert!(parse_program("void g;").is_err());
    }

    #[test]
    fn parses_return_with_and_without_value() {
        let p = parse_program("int f() { return -1; } void g() { return; }").unwrap();
        assert!(matches!(p.funcs[0].body[0].kind, StmtKind::Return(Some(_))));
        assert!(matches!(p.funcs[1].body[0].kind, StmtKind::Return(None)));
    }

    #[test]
    fn parses_parenthesised_assert_like_c(){
        let p = parse_program("void main() { assert(x == 0); assume(e->ok); }").unwrap();
        assert!(matches!(p.funcs[0].body[0].kind, StmtKind::Assert(_)));
        assert!(matches!(p.funcs[0].body[1].kind, StmtKind::Assume(Expr::Field(..))));
    }
}

#[cfg(test)]
mod benign_tests {
    use super::*;
    use crate::parse_program;

    #[test]
    fn parses_benign_statement_and_block() {
        let p = parse_program(
            "void main() { int t; benign t = g; benign { g = 1; g = 2; } }",
        )
        .unwrap();
        assert!(matches!(p.funcs[0].body[0].kind, StmtKind::Benign(_)));
        assert!(matches!(p.funcs[0].body[1].kind, StmtKind::Benign(_)));
    }

    #[test]
    fn benign_lowers_to_user_benign_origin() {
        let p = crate::parse_and_lower("int g; void main() { benign g = 1; g = 2; }").unwrap();
        let crate::hir::StmtKind::Seq(ss) = &p.func(p.main).body.kind else { panic!() };
        assert_eq!(ss[0].origin, crate::hir::Origin::UserBenign);
        assert_eq!(ss[1].origin, crate::hir::Origin::User);
    }

    #[test]
    fn benign_round_trips_through_the_printer() {
        let p = crate::parse_and_lower(
            "int g; void main() { int t; benign t = g; benign atomic { g = 1; } g = 3; }",
        )
        .unwrap();
        let text = crate::pretty::print_program(&p);
        assert!(text.contains("benign t = g;"), "{text}");
        let p2 = crate::parse_and_lower(&text).unwrap();
        let text2 = crate::pretty::print_program(&p2);
        assert_eq!(text, text2, "benign must survive a round trip");
    }
}
