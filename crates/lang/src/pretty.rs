//! Pretty-printer: renders a core [`Program`] back to parseable KISS-C.
//!
//! The output of [`print_program`] re-parses and re-lowers to a program
//! with identical behaviour; this is checked by round-trip tests. It is
//! also how transformed (sequentialized) programs are displayed in the
//! examples and documentation.

use std::fmt::Write as _;

use crate::hir::*;

/// Renders a whole program as KISS-C source text.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    for s in &p.structs {
        let _ = write!(out, "struct {} {{ ", s.name);
        for (name, ty) in &s.fields {
            let _ = write!(out, "{} {}; ", print_type(ty), name);
        }
        out.push_str("}\n");
    }
    if !p.structs.is_empty() {
        out.push('\n');
    }
    for g in &p.globals {
        let ty = g.ty.as_ref().map(print_type).unwrap_or_else(|| infer_global_type(g));
        match &g.init {
            Some(c) => {
                let _ = writeln!(out, "{} {} = {};", ty, g.name, print_const(c, p));
            }
            None => {
                let _ = writeln!(out, "{} {};", ty, g.name);
            }
        }
    }
    if !p.globals.is_empty() {
        out.push('\n');
    }
    for f in &p.funcs {
        print_func(&mut out, p, f);
        out.push('\n');
    }
    out
}

/// Renders a single statement (used in error reports and docs).
pub fn print_stmt(p: &Program, f: &FuncDef, s: &Stmt) -> String {
    let mut out = String::new();
    let mut pr = Printer { out: &mut out, p, f, indent: 0 };
    pr.stmt(s);
    out.trim_end().to_string()
}

fn infer_global_type(g: &GlobalDef) -> String {
    match g.init {
        Some(Const::Bool(_)) => "bool".into(),
        Some(Const::Fn(_)) | Some(Const::Null) => "fn".into(),
        _ => "int".into(),
    }
}

fn print_type(ty: &Type) -> String {
    match ty {
        Type::Int => "int".into(),
        Type::Bool => "bool".into(),
        Type::Fn => "fn".into(),
        Type::Named(n) => n.clone(),
        Type::Ptr(inner) => format!("{} *", print_type(inner)).replace("* *", "**"),
    }
}

fn print_const(c: &Const, p: &Program) -> String {
    match c {
        Const::Int(n) => n.to_string(),
        Const::Bool(b) => b.to_string(),
        Const::Null => "null".into(),
        Const::Fn(f) => p.func(*f).name.clone(),
    }
}

fn print_func(out: &mut String, p: &Program, f: &FuncDef) {
    let ret = if f.has_ret { "int" } else { "void" };
    let _ = write!(out, "{ret} {}(", f.name);
    for (i, l) in f.locals.iter().take(f.param_count as usize).enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let ty = l.ty.as_ref().map(print_type).unwrap_or_else(|| "int".into());
        let _ = write!(out, "{ty} {}", l.name);
    }
    out.push_str(") {\n");
    for l in f.locals.iter().skip(f.param_count as usize) {
        let ty = l.ty.as_ref().map(print_type).unwrap_or_else(|| "int".into());
        let _ = writeln!(out, "    {ty} {};", l.name);
    }
    let mut pr = Printer { out, p, f, indent: 1 };
    match &f.body.kind {
        StmtKind::Seq(ss) => {
            for s in ss {
                pr.stmt(s);
            }
        }
        _ => pr.stmt(&f.body),
    }
    out.push_str("}\n");
}

struct Printer<'a> {
    out: &'a mut String,
    p: &'a Program,
    f: &'a FuncDef,
    indent: usize,
}

impl Printer<'_> {
    fn line(&mut self, text: &str) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    fn var(&self, v: VarRef) -> String {
        match v {
            VarRef::Global(g) => self.p.globals[g.0 as usize].name.clone(),
            VarRef::Local(l) => self.f.locals[l.0 as usize].name.clone(),
        }
    }

    fn place(&self, pl: &Place) -> String {
        match pl {
            Place::Var(v) => self.var(*v),
            Place::Deref(v) => format!("*{}", self.var(*v)),
            Place::Field(v, sid, fidx) => {
                let field = &self.p.structs[sid.0 as usize].fields[*fidx as usize].0;
                format!("{}->{}", self.var(*v), field)
            }
        }
    }

    fn operand(&self, op: &Operand) -> String {
        match op {
            Operand::Const(c) => print_const(c, self.p),
            Operand::Var(v) => self.var(*v),
        }
    }

    fn rvalue(&self, rv: &Rvalue) -> String {
        match rv {
            Rvalue::Operand(op) => self.operand(op),
            Rvalue::Load(pl) => self.place(pl),
            Rvalue::AddrOf(v) => format!("&{}", self.var(*v)),
            Rvalue::AddrOfField(v, sid, fidx) => {
                let field = &self.p.structs[sid.0 as usize].fields[*fidx as usize].0;
                format!("&{}->{}", self.var(*v), field)
            }
            Rvalue::BinOp(op, a, b) => {
                format!("{} {} {}", self.operand(a), print_binop(*op), self.operand(b))
            }
            Rvalue::UnOp(UnOp::Not, a) => format!("!{}", self.operand(a)),
            Rvalue::UnOp(UnOp::Neg, a) => format!("-{}", self.operand(a)),
            Rvalue::Malloc(sid) => format!("malloc({})", self.p.structs[sid.0 as usize].name),
        }
    }

    fn cond(&self, c: &Cond) -> String {
        if c.negated {
            format!("!{}", self.var(c.var))
        } else {
            self.var(c.var)
        }
    }

    fn target(&self, t: &CallTarget) -> String {
        match t {
            CallTarget::Direct(f) => self.p.func(*f).name.clone(),
            CallTarget::Indirect(v) => self.var(*v),
        }
    }

    fn args(&self, args: &[Operand]) -> String {
        args.iter().map(|a| self.operand(a)).collect::<Vec<_>>().join(", ")
    }

    fn block(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Seq(ss) => {
                for inner in ss {
                    self.stmt(inner);
                }
            }
            _ => self.stmt(s),
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        // `benign` annotations survive printing; composite statements
        // get the keyword on its own line (the grammar allows both).
        if s.origin == kiss_origin_benign() {
            match &s.kind {
                StmtKind::Seq(_) => {}
                StmtKind::Atomic(_) | StmtKind::Choice(_) | StmtKind::Iter(_) => {
                    self.line("benign");
                }
                _ => {
                    return self.benign_simple(s);
                }
            }
        }
        match &s.kind {
            StmtKind::Skip => self.line("skip;"),
            StmtKind::Seq(ss) => {
                for inner in ss {
                    self.stmt(inner);
                }
            }
            StmtKind::Assign(pl, rv) => {
                let text = format!("{} = {};", self.place(pl), self.rvalue(rv));
                self.line(&text);
            }
            StmtKind::Assert(c) => {
                let text = format!("assert {};", self.cond(c));
                self.line(&text);
            }
            StmtKind::Assume(c) => {
                let text = format!("assume {};", self.cond(c));
                self.line(&text);
            }
            StmtKind::Atomic(inner) => {
                self.line("atomic {");
                self.indent += 1;
                self.block(inner);
                self.indent -= 1;
                self.line("}");
            }
            StmtKind::Call { dest, target, args } => {
                let call = format!("{}({})", self.target(target), self.args(args));
                let text = match dest {
                    Some(pl) => format!("{} = {call};", self.place(pl)),
                    None => format!("{call};"),
                };
                self.line(&text);
            }
            StmtKind::Async { target, args } => {
                let text = format!("async {}({});", self.target(target), self.args(args));
                self.line(&text);
            }
            StmtKind::Return(op) => {
                let text = match op {
                    Some(op) => format!("return {};", self.operand(op)),
                    None => "return;".into(),
                };
                self.line(&text);
            }
            StmtKind::Choice(branches) => {
                self.line("choice {");
                self.indent += 1;
                for (i, b) in branches.iter().enumerate() {
                    if i > 0 {
                        self.indent -= 1;
                        self.line("[]");
                        self.indent += 1;
                    }
                    self.block(b);
                }
                self.indent -= 1;
                self.line("}");
            }
            StmtKind::Iter(inner) => {
                self.line("iter {");
                self.indent += 1;
                self.block(inner);
                self.indent -= 1;
                self.line("}");
            }
        }
    }
}

impl Printer<'_> {
    /// Prints a simple statement with the `benign` keyword prefix.
    fn benign_simple(&mut self, s: &Stmt) {
        let mut tmp = String::new();
        {
            let mut inner = Printer { out: &mut tmp, p: self.p, f: self.f, indent: 0 };
            let mut plain = s.clone();
            plain.origin = kiss_lang_user();
            inner.stmt(&plain);
        }
        let text = format!("benign {}", tmp.trim());
        self.line(&text);
    }
}

fn kiss_origin_benign() -> crate::hir::Origin {
    crate::hir::Origin::UserBenign
}

fn kiss_lang_user() -> crate::hir::Origin {
    crate::hir::Origin::User
}

fn print_binop(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Mod => "%",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::And => "&&",
        BinOp::Or => "||",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_and_lower;

    const BLUETOOTH: &str = r#"
        struct DEVICE_EXTENSION { int pendingIo; bool stoppingFlag; bool stoppingEvent; }
        bool stopped;
        void main() {
            DEVICE_EXTENSION *e;
            e = malloc(DEVICE_EXTENSION);
            e->pendingIo = 1;
            stopped = false;
            async BCSP_PnpStop(e);
            BCSP_PnpAdd(e);
        }
        void BCSP_PnpAdd(DEVICE_EXTENSION *e) {
            int status;
            status = BCSP_IoIncrement(e);
            if (status == 0) { assert !stopped; }
            BCSP_IoDecrement(e);
        }
        void BCSP_PnpStop(DEVICE_EXTENSION *e) {
            e->stoppingFlag = true;
            BCSP_IoDecrement(e);
            assume e->stoppingEvent;
            stopped = true;
        }
        int BCSP_IoIncrement(DEVICE_EXTENSION *e) {
            if (e->stoppingFlag) { return -1; }
            atomic { e->pendingIo = e->pendingIo + 1; }
            return 0;
        }
        void BCSP_IoDecrement(DEVICE_EXTENSION *e) {
            int pendingIo;
            atomic { e->pendingIo = e->pendingIo - 1; pendingIo = e->pendingIo; }
            if (pendingIo == 0) { e->stoppingEvent = true; }
        }
    "#;

    #[test]
    fn printed_program_reparses() {
        let p = parse_and_lower(BLUETOOTH).unwrap();
        let text = print_program(&p);
        let p2 = parse_and_lower(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        assert_eq!(p.funcs.len(), p2.funcs.len());
        assert_eq!(p.globals.len(), p2.globals.len());
        assert_eq!(p.structs, p2.structs);
    }

    #[test]
    fn printing_is_idempotent_after_one_round_trip() {
        let p = parse_and_lower(BLUETOOTH).unwrap();
        let text1 = print_program(&p);
        let p2 = parse_and_lower(&text1).unwrap();
        let text2 = print_program(&p2);
        let p3 = parse_and_lower(&text2).unwrap();
        let text3 = print_program(&p3);
        assert_eq!(text2, text3);
    }

    #[test]
    fn prints_global_initializers() {
        let p = parse_and_lower("int g = 3; bool b = true; fn f = null; void main() { skip; }").unwrap();
        let text = print_program(&p);
        assert!(text.contains("int g = 3;"));
        assert!(text.contains("bool b = true;"));
        assert!(text.contains("fn f = null;"));
        parse_and_lower(&text).unwrap();
    }

    #[test]
    fn prints_choice_with_separators() {
        let p = parse_and_lower("int x; void main() { choice { x = 1; [] x = 2; [] skip; } }").unwrap();
        let text = print_program(&p);
        assert_eq!(text.matches("[]").count(), 2);
        parse_and_lower(&text).unwrap();
    }

    #[test]
    fn print_stmt_renders_single_statement() {
        let p = parse_and_lower("int x; void main() { x = 41 + 1; }").unwrap();
        let f = p.func(p.main);
        let rendered = print_stmt(&p, f, &f.body);
        assert!(rendered.contains("x = 41 + 1;"));
    }
}
