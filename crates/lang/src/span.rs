//! Source locations attached to tokens and AST nodes.

/// A line/column position in the source text (both 1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Span {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl Span {
    /// Creates a span at the given line and column.
    pub fn new(line: u32, col: u32) -> Self {
        Span { line, col }
    }

    /// The placeholder span used for synthesized nodes.
    pub fn synthetic() -> Self {
        Span { line: 0, col: 0 }
    }

    /// Whether this span was synthesized rather than read from source.
    pub fn is_synthetic(&self) -> bool {
        self.line == 0
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A value paired with the source span it came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Spanned<T> {
    /// The wrapped value.
    pub node: T,
    /// Where it appeared.
    pub span: Span,
}

impl<T> Spanned<T> {
    /// Pairs `node` with `span`.
    pub fn new(node: T, span: Span) -> Self {
        Spanned { node, span }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_spans_are_recognised() {
        assert!(Span::synthetic().is_synthetic());
        assert!(!Span::new(1, 1).is_synthetic());
    }

    #[test]
    fn display_is_line_colon_col() {
        assert_eq!(Span::new(12, 5).to_string(), "12:5");
    }

    #[test]
    fn spans_order_by_line_then_col() {
        assert!(Span::new(1, 9) < Span::new(2, 1));
        assert!(Span::new(2, 1) < Span::new(2, 2));
    }
}
