//! Token definitions for the KISS-C lexer.

use crate::span::Span;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    // Literals and identifiers.
    /// Integer literal.
    Int(i64),
    /// Identifier (variable, function, struct or field name).
    Ident(String),

    // Keywords.
    KwStruct,
    KwInt,
    KwBool,
    KwVoid,
    KwFn,
    KwTrue,
    KwFalse,
    KwNull,
    KwIf,
    KwElse,
    KwWhile,
    KwChoice,
    KwIter,
    KwAtomic,
    KwAssert,
    KwAssume,
    KwAsync,
    KwReturn,
    KwSkip,
    KwMalloc,
    KwBenign,

    // Punctuation and operators.
    LParen,
    RParen,
    LBrace,
    RBrace,
    Semi,
    Comma,
    Assign,
    /// `[]` separating `choice` branches (paper notation).
    BranchSep,
    Arrow,
    Amp,
    Star,
    Plus,
    Minus,
    Percent,
    Bang,
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,

    /// End of input sentinel.
    Eof,
}

impl Tok {
    /// A short human-readable rendering used in error messages.
    pub fn describe(&self) -> String {
        match self {
            Tok::Int(n) => format!("integer `{n}`"),
            Tok::Ident(s) => format!("identifier `{s}`"),
            Tok::KwStruct => "`struct`".into(),
            Tok::KwInt => "`int`".into(),
            Tok::KwBool => "`bool`".into(),
            Tok::KwVoid => "`void`".into(),
            Tok::KwFn => "`fn`".into(),
            Tok::KwTrue => "`true`".into(),
            Tok::KwFalse => "`false`".into(),
            Tok::KwNull => "`null`".into(),
            Tok::KwIf => "`if`".into(),
            Tok::KwElse => "`else`".into(),
            Tok::KwWhile => "`while`".into(),
            Tok::KwChoice => "`choice`".into(),
            Tok::KwIter => "`iter`".into(),
            Tok::KwAtomic => "`atomic`".into(),
            Tok::KwAssert => "`assert`".into(),
            Tok::KwAssume => "`assume`".into(),
            Tok::KwAsync => "`async`".into(),
            Tok::KwReturn => "`return`".into(),
            Tok::KwSkip => "`skip`".into(),
            Tok::KwMalloc => "`malloc`".into(),
            Tok::KwBenign => "`benign`".into(),
            Tok::LParen => "`(`".into(),
            Tok::RParen => "`)`".into(),
            Tok::LBrace => "`{`".into(),
            Tok::RBrace => "`}`".into(),
            Tok::Semi => "`;`".into(),
            Tok::Comma => "`,`".into(),
            Tok::Assign => "`=`".into(),
            Tok::BranchSep => "`[]`".into(),
            Tok::Arrow => "`->`".into(),
            Tok::Amp => "`&`".into(),
            Tok::Star => "`*`".into(),
            Tok::Plus => "`+`".into(),
            Tok::Minus => "`-`".into(),
            Tok::Percent => "`%`".into(),
            Tok::Bang => "`!`".into(),
            Tok::EqEq => "`==`".into(),
            Tok::NotEq => "`!=`".into(),
            Tok::Lt => "`<`".into(),
            Tok::Le => "`<=`".into(),
            Tok::Gt => "`>`".into(),
            Tok::Ge => "`>=`".into(),
            Tok::AndAnd => "`&&`".into(),
            Tok::OrOr => "`||`".into(),
            Tok::Eof => "end of input".into(),
        }
    }

    /// Resolves a word to its keyword token, if it is one.
    pub fn keyword(word: &str) -> Option<Tok> {
        Some(match word {
            "struct" => Tok::KwStruct,
            "int" => Tok::KwInt,
            "bool" => Tok::KwBool,
            "void" => Tok::KwVoid,
            "fn" => Tok::KwFn,
            "true" => Tok::KwTrue,
            "false" => Tok::KwFalse,
            "null" => Tok::KwNull,
            "if" => Tok::KwIf,
            "else" => Tok::KwElse,
            "while" => Tok::KwWhile,
            "choice" => Tok::KwChoice,
            "iter" => Tok::KwIter,
            "atomic" => Tok::KwAtomic,
            "assert" => Tok::KwAssert,
            "assume" => Tok::KwAssume,
            "async" => Tok::KwAsync,
            "return" => Tok::KwReturn,
            "skip" => Tok::KwSkip,
            "malloc" => Tok::KwMalloc,
            "benign" => Tok::KwBenign,
            _ => return None,
        })
    }
}

/// A token together with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// Where it starts in the source.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_resolve() {
        assert_eq!(Tok::keyword("choice"), Some(Tok::KwChoice));
        assert_eq!(Tok::keyword("asynchronously"), None);
    }

    #[test]
    fn describe_renders_all_flavours() {
        assert_eq!(Tok::Int(3).describe(), "integer `3`");
        assert_eq!(Tok::Ident("x".into()).describe(), "identifier `x`");
        assert_eq!(Tok::BranchSep.describe(), "`[]`");
        assert_eq!(Tok::Eof.describe(), "end of input");
    }
}
