//! Well-formedness checks over the core IR.
//!
//! The paper requires (Section 3) that the statement `s` in `atomic{s}`
//! is free of function calls (synchronous and asynchronous), `return`
//! statements, and nested `atomic` statements. This module enforces
//! those restrictions plus a few sanity rules used by the engines.

use crate::hir::{Program, Stmt, StmtKind};
use crate::span::Span;
use crate::{LangError, LangErrorKind};

/// Checks a core program for well-formedness.
///
/// # Errors
///
/// Returns the first violation found.
pub fn check(program: &Program) -> Result<(), LangError> {
    for func in &program.funcs {
        check_stmt(&func.body, &func.name, false)?;
    }
    if program.funcs.is_empty() {
        return Err(error("program has no functions"));
    }
    if program.main.0 as usize >= program.funcs.len() {
        return Err(error("main function id out of range"));
    }
    Ok(())
}

fn error(msg: impl Into<String>) -> LangError {
    LangError::new(LangErrorKind::WellFormedness, msg, None)
}

fn error_at(msg: impl Into<String>, span: Span) -> LangError {
    let span = if span.is_synthetic() { None } else { Some(span) };
    LangError::new(LangErrorKind::WellFormedness, msg, span)
}

fn check_stmt(s: &Stmt, func: &str, in_atomic: bool) -> Result<(), LangError> {
    match &s.kind {
        StmtKind::Atomic(inner) => {
            if in_atomic {
                return Err(error_at(format!("nested `atomic` in `{func}`"), s.span));
            }
            check_stmt(inner, func, true)
        }
        StmtKind::Call { .. } if in_atomic => {
            Err(error_at(format!("function call inside `atomic` in `{func}`"), s.span))
        }
        StmtKind::Async { .. } if in_atomic => {
            Err(error_at(format!("asynchronous call inside `atomic` in `{func}`"), s.span))
        }
        StmtKind::Return(_) if in_atomic => {
            Err(error_at(format!("`return` inside `atomic` in `{func}`"), s.span))
        }
        StmtKind::Seq(ss) | StmtKind::Choice(ss) => {
            if matches!(s.kind, StmtKind::Choice(_)) && ss.is_empty() {
                return Err(error_at(format!("empty `choice` in `{func}`"), s.span));
            }
            for inner in ss {
                check_stmt(inner, func, in_atomic)?;
            }
            Ok(())
        }
        StmtKind::Iter(inner) => check_stmt(inner, func, in_atomic),
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use crate::parse_and_lower;

    #[test]
    fn accepts_paper_style_atomic_blocks() {
        assert!(parse_and_lower(
            "int l; void main() { int *p; int v; p = &l; atomic { assume *p == 0; *p = 1; } atomic { *p = 0; } }"
        )
        .is_ok());
    }

    #[test]
    fn rejects_call_in_atomic() {
        let e = parse_and_lower("void f() { skip; } void main() { atomic { f(); } }").unwrap_err();
        assert!(e.message.contains("call inside `atomic`"));
    }

    #[test]
    fn rejects_async_in_atomic() {
        let e = parse_and_lower("void f() { skip; } void main() { atomic { async f(); } }").unwrap_err();
        assert!(e.message.contains("asynchronous call inside `atomic`"));
    }

    #[test]
    fn rejects_return_in_atomic() {
        let e = parse_and_lower("void main() { atomic { return; } }").unwrap_err();
        assert!(e.message.contains("`return` inside `atomic`"));
    }

    #[test]
    fn rejects_nested_atomic() {
        let e = parse_and_lower("void main() { atomic { atomic { skip; } } }").unwrap_err();
        assert!(e.message.contains("nested `atomic`"));
    }

    #[test]
    fn rejects_empty_choice() {
        // The parser can produce a single empty branch: `choice { }`.
        let p = parse_and_lower("void main() { choice { } }");
        // A single empty branch lowers to one Skip branch, which is fine;
        // choice with zero branches can only be built programmatically.
        assert!(p.is_ok());
        let mut prog = p.unwrap();
        let main = prog.main;
        prog.func_mut(main).body =
            crate::hir::Stmt::synth(crate::hir::StmtKind::Choice(vec![]), crate::hir::Origin::User);
        assert!(super::check(&prog).is_err());
    }

    #[test]
    fn atomic_containing_choice_and_iter_is_allowed() {
        assert!(parse_and_lower(
            "int x; void main() { atomic { choice { x = 1; [] x = 2; } iter { x = x + 1; } } }"
        )
        .is_ok());
    }
}
