//! LTL formula AST and pretty-printer.
//!
//! Propositions range over the KISS-C globals of the checked program:
//! a bare name is truthy (`locked` holds when the global is a nonzero
//! int or `true`), and a comparison (`pending == 2`) constrains an int
//! global. The printer emits the minimal parenthesization the parser
//! needs, so `parse(print(f)) == f` structurally — the round-trip
//! property the proptest suite pins down.

/// Comparison operator of an atomic proposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// The surface spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    /// Applies the comparison to concrete ints.
    pub fn eval(self, lhs: i64, rhs: i64) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }
}

/// An atomic proposition: a global name, optionally compared against an
/// integer constant. Without a comparison the atom is the truthiness of
/// the global's value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// Name of the KISS-C global.
    pub name: String,
    /// Optional integer comparison.
    pub cmp: Option<(CmpOp, i64)>,
}

impl std::fmt::Display for Atom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.cmp {
            None => f.write_str(&self.name),
            Some((op, n)) => write!(f, "{} {} {}", self.name, op.symbol(), n),
        }
    }
}

/// An LTL formula over atomic propositions.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Formula {
    /// `true`
    True,
    /// `false`
    False,
    /// An atomic proposition.
    Atom(Atom),
    /// `!f`
    Not(Box<Formula>),
    /// `f & g`
    And(Box<Formula>, Box<Formula>),
    /// `f | g`
    Or(Box<Formula>, Box<Formula>),
    /// `f -> g`
    Implies(Box<Formula>, Box<Formula>),
    /// `X f` — f holds at the next position.
    Next(Box<Formula>),
    /// `F f` — f eventually holds.
    Finally(Box<Formula>),
    /// `G f` — f holds at every position.
    Globally(Box<Formula>),
    /// `f U g` — g eventually holds and f holds until then.
    Until(Box<Formula>, Box<Formula>),
    /// `f R g` — g holds up to and including the first f (or forever).
    Release(Box<Formula>, Box<Formula>),
}

/// Binding strength: `->` < `|` < `&` < `U`/`R` < unary < atoms.
fn prec(f: &Formula) -> u8 {
    match f {
        Formula::Implies(..) => 0,
        Formula::Or(..) => 1,
        Formula::And(..) => 2,
        Formula::Until(..) | Formula::Release(..) => 3,
        Formula::Not(_) | Formula::Next(_) | Formula::Finally(_) | Formula::Globally(_) => 4,
        Formula::True | Formula::False | Formula::Atom(_) => 5,
    }
}

impl Formula {
    fn fmt_prec(&self, out: &mut std::fmt::Formatter<'_>, min: u8) -> std::fmt::Result {
        let p = prec(self);
        if p < min {
            out.write_str("(")?;
        }
        match self {
            Formula::True => out.write_str("true")?,
            Formula::False => out.write_str("false")?,
            Formula::Atom(a) => write!(out, "{a}")?,
            Formula::Not(x) => {
                out.write_str("!")?;
                x.fmt_prec(out, 4)?;
            }
            Formula::Next(x) | Formula::Finally(x) | Formula::Globally(x) => {
                out.write_str(match self {
                    Formula::Next(_) => "X ",
                    Formula::Finally(_) => "F ",
                    _ => "G ",
                })?;
                x.fmt_prec(out, 4)?;
            }
            // Left-associative: the right operand needs parens at the
            // same level, the left does not.
            Formula::And(a, b) => {
                a.fmt_prec(out, 2)?;
                out.write_str(" & ")?;
                b.fmt_prec(out, 3)?;
            }
            Formula::Or(a, b) => {
                a.fmt_prec(out, 1)?;
                out.write_str(" | ")?;
                b.fmt_prec(out, 2)?;
            }
            // Right-associative: mirrored.
            Formula::Implies(a, b) => {
                a.fmt_prec(out, 1)?;
                out.write_str(" -> ")?;
                b.fmt_prec(out, 0)?;
            }
            Formula::Until(a, b) => {
                a.fmt_prec(out, 4)?;
                out.write_str(" U ")?;
                b.fmt_prec(out, 3)?;
            }
            Formula::Release(a, b) => {
                a.fmt_prec(out, 4)?;
                out.write_str(" R ")?;
                b.fmt_prec(out, 3)?;
            }
        }
        if p < min {
            out.write_str(")")?;
        }
        Ok(())
    }

    /// All atoms of the formula, in first-occurrence order, deduplicated.
    pub fn atoms(&self) -> Vec<Atom> {
        let mut out: Vec<Atom> = Vec::new();
        fn walk(f: &Formula, out: &mut Vec<Atom>) {
            match f {
                Formula::True | Formula::False => {}
                Formula::Atom(a) => {
                    if !out.contains(a) {
                        out.push(a.clone());
                    }
                }
                Formula::Not(x) | Formula::Next(x) | Formula::Finally(x) | Formula::Globally(x) => {
                    walk(x, out)
                }
                Formula::And(a, b)
                | Formula::Or(a, b)
                | Formula::Implies(a, b)
                | Formula::Until(a, b)
                | Formula::Release(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
            }
        }
        walk(self, &mut out);
        out
    }
}

impl std::fmt::Display for Formula {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.fmt_prec(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(name: &str) -> Formula {
        Formula::Atom(Atom { name: name.to_string(), cmp: None })
    }

    #[test]
    fn printer_parenthesizes_by_precedence() {
        let f = Formula::Globally(Box::new(Formula::Implies(
            Box::new(atom("locked")),
            Box::new(Formula::Finally(Box::new(Formula::Not(Box::new(atom("locked")))))),
        )));
        assert_eq!(f.to_string(), "G (locked -> F !locked)");
    }

    #[test]
    fn associativity_prints_minimally() {
        let l = Formula::And(
            Box::new(Formula::And(Box::new(atom("a")), Box::new(atom("b")))),
            Box::new(atom("c")),
        );
        assert_eq!(l.to_string(), "a & b & c");
        let r = Formula::And(
            Box::new(atom("a")),
            Box::new(Formula::And(Box::new(atom("b")), Box::new(atom("c")))),
        );
        assert_eq!(r.to_string(), "a & (b & c)");
        let u = Formula::Until(
            Box::new(atom("a")),
            Box::new(Formula::Until(Box::new(atom("b")), Box::new(atom("c")))),
        );
        assert_eq!(u.to_string(), "a U b U c");
    }

    #[test]
    fn comparison_atoms_print_with_operator() {
        let f = Formula::Atom(Atom { name: "pending".into(), cmp: Some((CmpOp::Ge, -3)) });
        assert_eq!(f.to_string(), "pending >= -3");
    }

    #[test]
    fn atoms_dedup_in_first_occurrence_order() {
        let f = Formula::And(
            Box::new(Formula::Or(Box::new(atom("b")), Box::new(atom("a")))),
            Box::new(atom("b")),
        );
        let names: Vec<String> = f.atoms().into_iter().map(|a| a.name).collect();
        assert_eq!(names, vec!["b", "a"]);
    }
}
