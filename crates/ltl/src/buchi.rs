//! LTL → Büchi automaton construction.
//!
//! The classic on-the-fly tableau of Gerth–Peled–Vardi–Wolper (GPVW):
//! the formula is pushed to negation normal form over an interned
//! subformula arena, the tableau expansion builds a generalized Büchi
//! automaton whose states are labeled by literal sets (a state reads
//! the *current* position of the word), and a counter construction
//! degeneralizes the per-`Until` acceptance sets into plain Büchi
//! acceptance. Everything iterates over `BTreeSet`s and sorted ids, so
//! state numbering is deterministic — a requirement inherited by the
//! product engine's byte-identical `--explore-jobs` guarantee.

use std::collections::{BTreeSet, HashMap};

use crate::ast::{Atom, Formula};

/// Negation-normal-form subformulas, interned by id into an arena.
/// Negation appears only on literals; `F`/`G`/`->` are desugared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Nnf {
    Tt,
    Ff,
    Lit { atom: u32, neg: bool },
    And(u32, u32),
    Or(u32, u32),
    Next(u32),
    Until(u32, u32),
    Release(u32, u32),
}

#[derive(Default)]
struct Arena {
    nodes: Vec<Nnf>,
    index: HashMap<Nnf, u32>,
}

impl Arena {
    fn intern(&mut self, n: Nnf) -> u32 {
        if let Some(&id) = self.index.get(&n) {
            return id;
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(n);
        self.index.insert(n, id);
        id
    }
}

fn to_nnf(f: &Formula, neg: bool, atoms: &[Atom], ar: &mut Arena) -> u32 {
    match f {
        Formula::True => ar.intern(if neg { Nnf::Ff } else { Nnf::Tt }),
        Formula::False => ar.intern(if neg { Nnf::Tt } else { Nnf::Ff }),
        Formula::Atom(a) => {
            let atom = atoms.iter().position(|x| x == a).expect("atom collected") as u32;
            ar.intern(Nnf::Lit { atom, neg })
        }
        Formula::Not(x) => to_nnf(x, !neg, atoms, ar),
        Formula::And(a, b) => {
            let (x, y) = (to_nnf(a, neg, atoms, ar), to_nnf(b, neg, atoms, ar));
            ar.intern(if neg { Nnf::Or(x, y) } else { Nnf::And(x, y) })
        }
        Formula::Or(a, b) => {
            let (x, y) = (to_nnf(a, neg, atoms, ar), to_nnf(b, neg, atoms, ar));
            ar.intern(if neg { Nnf::And(x, y) } else { Nnf::Or(x, y) })
        }
        Formula::Implies(a, b) => {
            // a -> b  ≡  !a | b;   !(a -> b)  ≡  a & !b
            let (x, y) = (to_nnf(a, !neg, atoms, ar), to_nnf(b, neg, atoms, ar));
            ar.intern(if neg { Nnf::And(x, y) } else { Nnf::Or(x, y) })
        }
        Formula::Next(x) => {
            let inner = to_nnf(x, neg, atoms, ar);
            ar.intern(Nnf::Next(inner))
        }
        Formula::Finally(x) => {
            // F x ≡ true U x;   !F x ≡ false R !x
            let inner = to_nnf(x, neg, atoms, ar);
            let unit = ar.intern(if neg { Nnf::Ff } else { Nnf::Tt });
            ar.intern(if neg { Nnf::Release(unit, inner) } else { Nnf::Until(unit, inner) })
        }
        Formula::Globally(x) => {
            // G x ≡ false R x;   !G x ≡ true U !x
            let inner = to_nnf(x, neg, atoms, ar);
            let unit = ar.intern(if neg { Nnf::Tt } else { Nnf::Ff });
            ar.intern(if neg { Nnf::Until(unit, inner) } else { Nnf::Release(unit, inner) })
        }
        Formula::Until(a, b) => {
            let (x, y) = (to_nnf(a, neg, atoms, ar), to_nnf(b, neg, atoms, ar));
            ar.intern(if neg { Nnf::Release(x, y) } else { Nnf::Until(x, y) })
        }
        Formula::Release(a, b) => {
            let (x, y) = (to_nnf(a, neg, atoms, ar), to_nnf(b, neg, atoms, ar));
            ar.intern(if neg { Nnf::Until(x, y) } else { Nnf::Release(x, y) })
        }
    }
}

/// The virtual pre-initial node of the tableau.
const INIT: usize = usize::MAX;

/// A finished tableau node.
struct GNode {
    incoming: BTreeSet<usize>,
    old: BTreeSet<u32>,
    next: BTreeSet<u32>,
}

/// A node still being expanded.
#[derive(Clone)]
struct Work {
    incoming: BTreeSet<usize>,
    new: BTreeSet<u32>,
    old: BTreeSet<u32>,
    next: BTreeSet<u32>,
}

struct Tableau<'a> {
    ar: &'a Arena,
    nodes: Vec<GNode>,
}

impl Tableau<'_> {
    fn expand(&mut self, mut w: Work) {
        let Some(&eta) = w.new.iter().next() else {
            // All obligations processed: merge into an equivalent node
            // or commit this one and expand its temporal successor.
            if let Some(idx) =
                self.nodes.iter().position(|n| n.old == w.old && n.next == w.next)
            {
                let incoming = std::mem::take(&mut w.incoming);
                self.nodes[idx].incoming.extend(incoming);
                return;
            }
            let idx = self.nodes.len();
            self.nodes.push(GNode { incoming: w.incoming, old: w.old, next: w.next.clone() });
            self.expand(Work {
                incoming: BTreeSet::from([idx]),
                new: w.next,
                old: BTreeSet::new(),
                next: BTreeSet::new(),
            });
            return;
        };
        w.new.remove(&eta);
        let push_new = |w: &mut Work, x: u32| {
            if !w.old.contains(&x) {
                w.new.insert(x);
            }
        };
        match self.ar.nodes[eta as usize] {
            // `false` is unsatisfiable: the node is discarded.
            Nnf::Ff => {}
            Nnf::Tt => {
                w.old.insert(eta);
                self.expand(w);
            }
            Nnf::Lit { atom, neg } => {
                // A contradictory literal set is discarded.
                let contra = Nnf::Lit { atom, neg: !neg };
                if let Some(nid) = self.ar.index.get(&contra) {
                    if w.old.contains(nid) {
                        return;
                    }
                }
                w.old.insert(eta);
                self.expand(w);
            }
            Nnf::And(a, b) => {
                push_new(&mut w, a);
                push_new(&mut w, b);
                w.old.insert(eta);
                self.expand(w);
            }
            Nnf::Next(x) => {
                w.old.insert(eta);
                w.next.insert(x);
                self.expand(w);
            }
            Nnf::Or(a, b) => {
                let mut w1 = w.clone();
                w1.old.insert(eta);
                push_new(&mut w1, a);
                self.expand(w1);
                w.old.insert(eta);
                push_new(&mut w, b);
                self.expand(w);
            }
            Nnf::Until(a, b) => {
                // a U b  ≡  b ∨ (a ∧ X(a U b))
                let mut w1 = w.clone();
                w1.old.insert(eta);
                push_new(&mut w1, a);
                w1.next.insert(eta);
                self.expand(w1);
                w.old.insert(eta);
                push_new(&mut w, b);
                self.expand(w);
            }
            Nnf::Release(a, b) => {
                // a R b  ≡  (a ∧ b) ∨ (b ∧ X(a R b))
                let mut w1 = w.clone();
                w1.old.insert(eta);
                push_new(&mut w1, b);
                w1.next.insert(eta);
                self.expand(w1);
                w.old.insert(eta);
                push_new(&mut w, a);
                push_new(&mut w, b);
                self.expand(w);
            }
        }
    }
}

/// One state of the (degeneralized) Büchi automaton. The label
/// constrains the word position read *on entry*: every atom in `pos`
/// must hold and every atom in `neg` must not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuchiState {
    /// Atom indices (into [`Buchi::atoms`]) that must hold.
    pub pos: Vec<u32>,
    /// Atom indices that must not hold.
    pub neg: Vec<u32>,
    /// Successor state indices, ascending.
    pub succs: Vec<u32>,
    /// Whether this state is Büchi-accepting.
    pub accepting: bool,
}

/// A Büchi automaton with state labels over atomic propositions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Buchi {
    /// The atomic propositions, indexed by the labels.
    pub atoms: Vec<Atom>,
    /// The states; numbering is deterministic for a given formula.
    pub states: Vec<BuchiState>,
    /// Initial state indices, ascending. A run `q0 q1 …` over a word
    /// `w0 w1 …` needs `q0` initial and `wi` satisfying `label(qi)`.
    pub initial: Vec<u32>,
}

impl Buchi {
    /// Builds the automaton accepting exactly the words satisfying `f`.
    pub fn of_formula(f: &Formula) -> Buchi {
        let atoms = f.atoms();
        let mut ar = Arena::default();
        let root = to_nnf(f, false, &atoms, &mut ar);
        let mut tableau = Tableau { ar: &ar, nodes: Vec::new() };
        tableau.expand(Work {
            incoming: BTreeSet::from([INIT]),
            new: BTreeSet::from([root]),
            old: BTreeSet::new(),
            next: BTreeSet::new(),
        });
        let nodes = tableau.nodes;

        // Per-`Until` generalized acceptance: a node is in F_i when it
        // does not owe `until_i`, or has already discharged it via the
        // right-hand side.
        let untils: Vec<(u32, u32)> = ar
            .nodes
            .iter()
            .enumerate()
            .filter_map(|(id, n)| match n {
                Nnf::Until(_, b) => Some((id as u32, *b)),
                _ => None,
            })
            .collect();
        let in_f = |n: &GNode, i: usize| {
            let (u, rhs) = untils[i];
            !n.old.contains(&u) || n.old.contains(&rhs)
        };

        let label_of = |n: &GNode| {
            let (mut pos, mut neg) = (Vec::new(), Vec::new());
            for &id in &n.old {
                if let Nnf::Lit { atom, neg: is_neg } = ar.nodes[id as usize] {
                    if is_neg {
                        neg.push(atom);
                    } else {
                        pos.push(atom);
                    }
                }
            }
            (pos, neg)
        };
        let node_succs: Vec<Vec<usize>> = (0..nodes.len())
            .map(|i| {
                (0..nodes.len()).filter(|&j| nodes[j].incoming.contains(&i)).collect()
            })
            .collect();
        let node_initial: Vec<usize> =
            (0..nodes.len()).filter(|&j| nodes[j].incoming.contains(&INIT)).collect();

        let k = untils.len();
        if k == 0 {
            // No liveness obligations: every state is accepting.
            let states = nodes
                .iter()
                .enumerate()
                .map(|(i, n)| {
                    let (pos, neg) = label_of(n);
                    BuchiState {
                        pos,
                        neg,
                        succs: node_succs[i].iter().map(|&s| s as u32).collect(),
                        accepting: true,
                    }
                })
                .collect();
            return Buchi {
                atoms,
                states,
                initial: node_initial.iter().map(|&s| s as u32).collect(),
            };
        }

        // Counter degeneralization: state (n, i) waits for acceptance
        // set F_i; the counter advances past i exactly when n ∈ F_i, so
        // wrap points (i = k-1 and n ∈ F_{k-1}) are visited infinitely
        // often iff every F_i is.
        let mut index: HashMap<(usize, usize), u32> = HashMap::new();
        let mut order: Vec<(usize, usize)> = Vec::new();
        let mut queue: std::collections::VecDeque<(usize, usize)> =
            std::collections::VecDeque::new();
        for &n in &node_initial {
            let key = (n, 0);
            if let std::collections::hash_map::Entry::Vacant(e) = index.entry(key) {
                e.insert(order.len() as u32);
                order.push(key);
                queue.push_back(key);
            }
        }
        let mut succs_of: Vec<Vec<u32>> = Vec::new();
        succs_of.resize(order.len(), Vec::new());
        while let Some((n, i)) = queue.pop_front() {
            let i2 = if in_f(&nodes[n], i) { (i + 1) % k } else { i };
            let mut outs = Vec::new();
            for &m in &node_succs[n] {
                let key = (m, i2);
                let id = match index.get(&key) {
                    Some(&id) => id,
                    None => {
                        let id = order.len() as u32;
                        index.insert(key, id);
                        order.push(key);
                        succs_of.push(Vec::new());
                        queue.push_back(key);
                        id
                    }
                };
                outs.push(id);
            }
            let slot = index[&(n, i)] as usize;
            succs_of[slot] = outs;
        }
        let states = order
            .iter()
            .enumerate()
            .map(|(slot, &(n, i))| {
                let (pos, neg) = label_of(&nodes[n]);
                BuchiState {
                    pos,
                    neg,
                    succs: succs_of[slot].clone(),
                    accepting: i == k - 1 && in_f(&nodes[n], k - 1),
                }
            })
            .collect();
        let initial = node_initial.iter().map(|&n| index[&(n, 0)]).collect();
        Buchi { atoms, states, initial }
    }

    /// Builds the automaton for the *negation* of `f` — the one the
    /// product engine explores: an accepting lasso in the product is a
    /// program run violating `f`.
    pub fn for_negation(f: &Formula) -> Buchi {
        let negated = Formula::Not(Box::new(f.clone()));
        let mut b = Buchi::of_formula(&negated);
        // Report atoms in the original formula's order (identical set).
        b.atoms = f.atoms();
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    /// Simulates the automaton on a finite stem + infinite cycle over
    /// explicit truth assignments (one bool per atom), checking for an
    /// accepting lasso — a tiny oracle for the construction itself.
    fn accepts(b: &Buchi, stem: &[Vec<bool>], cycle: &[Vec<bool>]) -> bool {
        assert!(!cycle.is_empty());
        let holds = |s: &BuchiState, w: &Vec<bool>| {
            s.pos.iter().all(|&a| w[a as usize]) && s.neg.iter().all(|&a| !w[a as usize])
        };
        // Position index: 0..stem.len() are stem, then cycle repeats.
        // (state, cycle_pos, seen_accepting_since) would be needed for
        // exact acceptance; instead track (state, pos-in-lasso) pairs
        // and look for a reachable cycle through an accepting state,
        // which is exact for lasso words.
        let lasso_len = stem.len() + cycle.len();
        let word = |i: usize| -> &Vec<bool> {
            if i < stem.len() {
                &stem[i]
            } else {
                &cycle[(i - stem.len()) % cycle.len()]
            }
        };
        let norm = |i: usize| -> usize {
            if i < lasso_len {
                i
            } else {
                stem.len() + (i - stem.len()) % cycle.len()
            }
        };
        // Product of automaton states with lasso positions; search for
        // a cycle containing an accepting automaton state.
        let mut nodes: Vec<(u32, usize)> = Vec::new();
        let mut index = std::collections::HashMap::new();
        let mut edges: Vec<Vec<usize>> = Vec::new();
        let mut queue = std::collections::VecDeque::new();
        for &q in &b.initial {
            if holds(&b.states[q as usize], word(0)) {
                let key = (q, 0);
                if let std::collections::hash_map::Entry::Vacant(e) = index.entry(key) {
                    e.insert(nodes.len());
                    nodes.push(key);
                    edges.push(Vec::new());
                    queue.push_back(key);
                }
            }
        }
        while let Some((q, i)) = queue.pop_front() {
            let j = norm(i + 1);
            let mut outs = Vec::new();
            for &q2 in &b.states[q as usize].succs {
                if holds(&b.states[q2 as usize], word(j)) {
                    let key = (q2, j);
                    let id = *index.entry(key).or_insert_with(|| {
                        nodes.push(key);
                        edges.push(Vec::new());
                        queue.push_back(key);
                        nodes.len() - 1
                    });
                    outs.push(id);
                }
            }
            edges[index[&(q, i)]] = outs;
        }
        // For each accepting node, is it on a cycle?
        for (id, &(q, _)) in nodes.iter().enumerate() {
            if !b.states[q as usize].accepting {
                continue;
            }
            // BFS from id's successors back to id.
            let mut seen = vec![false; nodes.len()];
            let mut bfs: std::collections::VecDeque<usize> = edges[id].iter().copied().collect();
            while let Some(v) = bfs.pop_front() {
                if v == id {
                    return true;
                }
                if std::mem::replace(&mut seen[v], true) {
                    continue;
                }
                bfs.extend(edges[v].iter().copied());
            }
        }
        false
    }

    fn b(formula: &str) -> Buchi {
        Buchi::of_formula(&parse(formula).unwrap())
    }

    const T: bool = true;
    const N: bool = false;

    #[test]
    fn eventually_accepts_iff_atom_appears() {
        let a = b("F p");
        assert!(accepts(&a, &[], &[vec![N], vec![T]]));
        assert!(accepts(&a, &[vec![T]], &[vec![N]]));
        assert!(!accepts(&a, &[], &[vec![N]]));
    }

    #[test]
    fn globally_rejects_any_violation() {
        let a = b("G p");
        assert!(accepts(&a, &[], &[vec![T]]));
        assert!(!accepts(&a, &[vec![T], vec![N]], &[vec![T]]));
        assert!(!accepts(&a, &[], &[vec![T], vec![N]]));
    }

    #[test]
    fn until_requires_the_promise_kept() {
        let a = b("p U q");
        // p=atom0, q=atom1 in first-occurrence order.
        assert!(accepts(&a, &[vec![T, N], vec![T, N]], &[vec![N, T]]));
        assert!(!accepts(&a, &[], &[vec![T, N]])); // q never holds
        assert!(!accepts(&a, &[vec![N, N]], &[vec![N, T]])); // p broken first
    }

    #[test]
    fn next_looks_one_step_ahead() {
        let a = b("X p");
        assert!(accepts(&a, &[vec![N]], &[vec![T]]));
        assert!(!accepts(&a, &[vec![T]], &[vec![N]]));
    }

    #[test]
    fn response_property_on_lassos() {
        let a = b("G (p -> F q)");
        // p then q forever: every p is answered.
        assert!(accepts(&a, &[vec![T, N]], &[vec![N, T]]));
        // p forever with no q: violated.
        assert!(!accepts(&a, &[], &[vec![T, N]]));
        // The negation accepts exactly the violating lasso.
        let neg = Buchi::for_negation(&parse("G (p -> F q)").unwrap());
        assert!(accepts(&neg, &[], &[vec![T, N]]));
        assert!(!accepts(&neg, &[vec![T, N]], &[vec![N, T]]));
    }

    #[test]
    fn contradiction_has_no_states_reachable() {
        let a = b("p & !p");
        assert!(a.initial.is_empty());
        assert!(!accepts(&a, &[], &[vec![T]]));
        assert!(!accepts(&a, &[], &[vec![N]]));
    }

    #[test]
    fn negation_automaton_keeps_original_atom_order() {
        let f = parse("G (locked -> F !locked)").unwrap();
        let neg = Buchi::for_negation(&f);
        assert_eq!(neg.atoms.len(), 1);
        assert_eq!(neg.atoms[0].name, "locked");
        assert!(!neg.states.is_empty());
        assert!(!neg.initial.is_empty());
    }

    #[test]
    fn release_is_dual_to_until() {
        let a = b("p R q");
        // q forever without p: accepted.
        assert!(accepts(&a, &[], &[vec![N, T]]));
        // q until p&q, then anything: accepted.
        assert!(accepts(&a, &[vec![N, T], vec![T, T]], &[vec![N, N]]));
        // q dropped before any p: rejected.
        assert!(!accepts(&a, &[vec![N, T]], &[vec![N, N]]));
    }

    #[test]
    fn true_accepts_everything_and_false_nothing() {
        let t = b("true");
        assert!(accepts(&t, &[], &[vec![]]));
        let f = b("false");
        assert!(!accepts(&f, &[], &[vec![]]));
    }
}
