//! kiss-ltl: liveness checking for KISS-sequentialized programs.
//!
//! The crate turns an LTL formula over KISS-C globals into a Büchi
//! automaton for its negation (on-the-fly GPVW tableau + counter
//! degeneralization) and explores the product of the sequentialized
//! program with that automaton. An accepting lasso in the product is a
//! concrete infinite run violating the formula; the engine reconstructs
//! it as a finite stem plus a repeating cycle using the same interned
//! segment store the safety BFS engine uses.
//!
//! Pipeline: [`parse`] → [`Buchi::for_negation`] → [`resolve_atoms`] →
//! [`ProductChecker`] → [`LtlVerdict`].

pub mod ast;
pub mod buchi;
pub mod parse;
pub mod product;

pub use ast::{Atom, CmpOp, Formula};
pub use buchi::{Buchi, BuchiState};
pub use parse::{parse, ParseError};
pub use product::{resolve_atoms, Lasso, LtlVerdict, ProductChecker, ResolvedAtom};
