//! LTL formula parser.
//!
//! Grammar (loosest to tightest): `->` (right-assoc), `|`, `&`,
//! `U`/`R` (right-assoc), unary `! X F G`, then atoms and parens.
//! `G`, `F`, `X`, `U`, `R`, `true`, and `false` are reserved words;
//! every other identifier names a KISS-C global. Errors name the
//! offending token, matching the CLI's `expected X, found Y` style.

use crate::ast::{Atom, CmpOp, Formula};

/// A parse error: what was expected and which token was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable message, `expected <what>, found <token>`.
    pub message: String,
    /// Byte offset of the offending token in the input.
    pub at: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (at byte {})", self.message, self.at)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    True,
    False,
    GOp,
    FOp,
    XOp,
    UOp,
    ROp,
    Not,
    And,
    Or,
    Implies,
    Cmp(CmpOp),
    LParen,
    RParen,
    Eof,
}

impl Tok {
    fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("identifier `{s}`"),
            Tok::Int(n) => format!("integer `{n}`"),
            Tok::True => "`true`".into(),
            Tok::False => "`false`".into(),
            Tok::GOp => "`G`".into(),
            Tok::FOp => "`F`".into(),
            Tok::XOp => "`X`".into(),
            Tok::UOp => "`U`".into(),
            Tok::ROp => "`R`".into(),
            Tok::Not => "`!`".into(),
            Tok::And => "`&`".into(),
            Tok::Or => "`|`".into(),
            Tok::Implies => "`->`".into(),
            Tok::Cmp(op) => format!("`{}`", op.symbol()),
            Tok::LParen => "`(`".into(),
            Tok::RParen => "`)`".into(),
            Tok::Eof => "end of formula".into(),
        }
    }
}

fn lex(src: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b'(' => {
                toks.push((Tok::LParen, i));
                i += 1;
            }
            b')' => {
                toks.push((Tok::RParen, i));
                i += 1;
            }
            b'&' => {
                // `&&` is accepted as an alias for `&`.
                i += if bytes.get(i + 1) == Some(&b'&') { 2 } else { 1 };
                toks.push((Tok::And, i - 1));
            }
            b'|' => {
                i += if bytes.get(i + 1) == Some(&b'|') { 2 } else { 1 };
                toks.push((Tok::Or, i - 1));
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push((Tok::Cmp(CmpOp::Ne), i));
                    i += 2;
                } else {
                    toks.push((Tok::Not, i));
                    i += 1;
                }
            }
            b'=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push((Tok::Cmp(CmpOp::Eq), i));
                    i += 2;
                } else {
                    return Err(ParseError {
                        message: "expected `==`, found lone `=`".into(),
                        at: i,
                    });
                }
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push((Tok::Cmp(CmpOp::Le), i));
                    i += 2;
                } else {
                    toks.push((Tok::Cmp(CmpOp::Lt), i));
                    i += 1;
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push((Tok::Cmp(CmpOp::Ge), i));
                    i += 2;
                } else {
                    toks.push((Tok::Cmp(CmpOp::Gt), i));
                    i += 1;
                }
            }
            b'-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    toks.push((Tok::Implies, i));
                    i += 2;
                } else if bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
                    let start = i;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let text = &src[start..i];
                    let n: i64 = text.parse().map_err(|_| ParseError {
                        message: format!("integer `{text}` is out of range"),
                        at: start,
                    })?;
                    toks.push((Tok::Int(n), start));
                } else {
                    return Err(ParseError {
                        message: "expected `->` or a negative integer after `-`".into(),
                        at: i,
                    });
                }
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                let n: i64 = text.parse().map_err(|_| ParseError {
                    message: format!("integer `{text}` is out of range"),
                    at: start,
                })?;
                toks.push((Tok::Int(n), start));
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &src[start..i];
                let tok = match word {
                    "G" => Tok::GOp,
                    "F" => Tok::FOp,
                    "X" => Tok::XOp,
                    "U" => Tok::UOp,
                    "R" => Tok::ROp,
                    "true" => Tok::True,
                    "false" => Tok::False,
                    _ => Tok::Ident(word.to_string()),
                };
                toks.push((tok, start));
            }
            _ => {
                return Err(ParseError {
                    message: format!("unexpected character `{}`", &src[i..].chars().next().unwrap()),
                    at: i,
                })
            }
        }
    }
    toks.push((Tok::Eof, src.len()));
    Ok(toks)
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }

    fn at(&self) -> usize {
        self.toks[self.pos].1
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].0.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, expected: &str) -> ParseError {
        ParseError {
            message: format!("expected {expected}, found {}", self.peek().describe()),
            at: self.at(),
        }
    }

    fn implies(&mut self) -> Result<Formula, ParseError> {
        let lhs = self.or()?;
        if *self.peek() == Tok::Implies {
            self.bump();
            let rhs = self.implies()?;
            return Ok(Formula::Implies(Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn or(&mut self) -> Result<Formula, ParseError> {
        let mut lhs = self.and()?;
        while *self.peek() == Tok::Or {
            self.bump();
            let rhs = self.and()?;
            lhs = Formula::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and(&mut self) -> Result<Formula, ParseError> {
        let mut lhs = self.until()?;
        while *self.peek() == Tok::And {
            self.bump();
            let rhs = self.until()?;
            lhs = Formula::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn until(&mut self) -> Result<Formula, ParseError> {
        let lhs = self.unary()?;
        match self.peek() {
            Tok::UOp => {
                self.bump();
                let rhs = self.until()?;
                Ok(Formula::Until(Box::new(lhs), Box::new(rhs)))
            }
            Tok::ROp => {
                self.bump();
                let rhs = self.until()?;
                Ok(Formula::Release(Box::new(lhs), Box::new(rhs)))
            }
            _ => Ok(lhs),
        }
    }

    fn unary(&mut self) -> Result<Formula, ParseError> {
        match self.peek() {
            Tok::Not => {
                self.bump();
                Ok(Formula::Not(Box::new(self.unary()?)))
            }
            Tok::XOp => {
                self.bump();
                Ok(Formula::Next(Box::new(self.unary()?)))
            }
            Tok::FOp => {
                self.bump();
                Ok(Formula::Finally(Box::new(self.unary()?)))
            }
            Tok::GOp => {
                self.bump();
                Ok(Formula::Globally(Box::new(self.unary()?)))
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Formula, ParseError> {
        match self.peek().clone() {
            Tok::True => {
                self.bump();
                Ok(Formula::True)
            }
            Tok::False => {
                self.bump();
                Ok(Formula::False)
            }
            Tok::LParen => {
                self.bump();
                let inner = self.implies()?;
                if *self.peek() != Tok::RParen {
                    return Err(self.err("`)`"));
                }
                self.bump();
                Ok(inner)
            }
            Tok::Ident(name) => {
                self.bump();
                if let Tok::Cmp(op) = *self.peek() {
                    self.bump();
                    let Tok::Int(n) = *self.peek() else {
                        return Err(self.err(&format!("integer after `{}`", op.symbol())));
                    };
                    self.bump();
                    return Ok(Formula::Atom(Atom { name, cmp: Some((op, n)) }));
                }
                Ok(Formula::Atom(Atom { name, cmp: None }))
            }
            _ => Err(self.err("a formula")),
        }
    }
}

/// Parses an LTL formula from its surface syntax.
pub fn parse(src: &str) -> Result<Formula, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let f = p.implies()?;
    if *p.peek() != Tok::Eof {
        return Err(p.err("end of formula"));
    }
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_headline_formula() {
        let f = parse("G(locked -> F !locked)").unwrap();
        assert_eq!(f.to_string(), "G (locked -> F !locked)");
    }

    #[test]
    fn precedence_binds_until_tighter_than_and() {
        let f = parse("a U b & c").unwrap();
        // (a U b) & c
        assert!(matches!(f, Formula::And(..)), "{f:?}");
        let g = parse("a & b U c").unwrap();
        assert!(matches!(g, Formula::And(..)), "{g:?}");
        let Formula::And(_, rhs) = g else { unreachable!() };
        assert!(matches!(*rhs, Formula::Until(..)));
    }

    #[test]
    fn implies_is_right_associative() {
        let f = parse("a -> b -> c").unwrap();
        let Formula::Implies(_, rhs) = f else { panic!("expected implies") };
        assert!(matches!(*rhs, Formula::Implies(..)));
    }

    #[test]
    fn comparison_atoms_parse() {
        let f = parse("pending >= -3 & done == 1").unwrap();
        assert_eq!(f.to_string(), "pending >= -3 & done == 1");
    }

    #[test]
    fn double_ampersand_is_accepted() {
        assert_eq!(parse("a && b").unwrap(), parse("a & b").unwrap());
        assert_eq!(parse("a || b").unwrap(), parse("a | b").unwrap());
    }

    #[test]
    fn errors_name_the_offending_token() {
        let e = parse("G (locked -> )").unwrap_err();
        assert!(e.message.contains("expected a formula, found `)`"), "{e}");
        let e = parse("locked F").unwrap_err();
        assert!(e.message.contains("expected end of formula, found `F`"), "{e}");
        let e = parse("(a").unwrap_err();
        assert!(e.message.contains("expected `)`, found end of formula"), "{e}");
        let e = parse("x == y").unwrap_err();
        assert!(e.message.contains("expected integer after `==`, found identifier `y`"), "{e}");
        let e = parse("a # b").unwrap_err();
        assert!(e.message.contains("unexpected character `#`"), "{e}");
    }

    #[test]
    fn empty_input_is_an_error() {
        let e = parse("").unwrap_err();
        assert!(e.message.contains("found end of formula"), "{e}");
    }
}
