//! Product exploration: sequentialized program × Büchi automaton.
//!
//! The engine explores product states `(config, büchi-state)` with the
//! same layered BFS + interned-store machinery as the sequential BFS
//! engine: configurations fingerprint through [`Config::fingerprint`],
//! product fingerprints fold in the automaton state, and parent edges
//! hold [`SegId`]s so a counterexample reconstructs lazily. Liveness
//! run semantics over the KISS-transformed program:
//!
//! * a *terminated* configuration (empty stack) stutters — the final
//!   state repeats forever, so `G`-type obligations keep being judged
//!   against it;
//! * a false `assume` (or `assert`) **prunes** the path: the
//!   sequentialization uses complementary-arm assumes for every
//!   deterministic branch, so pruned arms are infeasible paths, not
//!   blocked executions — they contribute no infinite run;
//! * the transformation's RAISE truncation arms are **excluded**: they
//!   give safety checking its prefix coverage, but a truncated thread
//!   is an unfinished schedule, not an infinite behavior — keeping them
//!   would refute every eventuality vacuously.
//!
//! A violation is an accepting lasso: a nontrivial SCC of the product
//! graph containing an accepting state. Selection is deterministic
//! (smallest accepting [`StateId`], then shortest cycle by BFS), and
//! the layer-synchronous parallel mode (`--explore-jobs`) speculates
//! per-node successor computation — a pure function of the node — and
//! commits serially in rank order, so verdict, trace, and state counts
//! are byte-identical at any worker count.

use std::collections::{HashMap, VecDeque};

use kiss_exec::{eval, Env as _, ExecError, Instr, Module};
use kiss_obs::{Obs, Span, TraceId};
use kiss_seq::config::{fingerprint_of, Config, Frame, SeqEnv};
use kiss_seq::explicit::resolve_target;
use kiss_seq::store::{SegId, SegmentInterner, StateId, VisitedTable};
use kiss_seq::{
    BoundReason, Budget, CancelToken, EngineStats, ErrorTrace, Meter, TraceStep,
};
use kiss_lang::hir::Origin;
use kiss_lang::Program;

use crate::ast::{Atom, CmpOp};
use crate::buchi::{Buchi, BuchiState};

/// An atom resolved against a program: the global's index and the
/// optional comparison.
pub type ResolvedAtom = (u32, Option<(CmpOp, i64)>);

/// Resolves formula atoms against a program's globals by name.
/// Unknown names are an error carrying the offending proposition.
pub fn resolve_atoms(program: &Program, atoms: &[Atom]) -> Result<Vec<ResolvedAtom>, String> {
    atoms
        .iter()
        .map(|a| match program.global_by_name(&a.name) {
            Some(g) => Ok((g.0, a.cmp)),
            None => Err(a.name.clone()),
        })
        .collect()
}

/// A concrete liveness counterexample: a finite stem into a cycle that
/// repeats forever. An empty `cycle` means the program *terminated* and
/// its final state stutters (the cycle is the state repeating, with no
/// program steps in it).
#[derive(Debug, Clone, PartialEq)]
pub struct Lasso {
    /// Steps from the initial state to the cycle entry.
    pub stem: Vec<TraceStep>,
    /// Steps around the cycle (empty for a terminal stutter).
    pub cycle: Vec<TraceStep>,
}

/// Outcome of a product exploration.
#[derive(Debug, Clone, PartialEq)]
pub enum LtlVerdict {
    /// No accepting lasso: the formula holds on every (balanced,
    /// budget-permitting) run of the sequentialized program.
    Holds,
    /// An accepting lasso exists; the formula is violated.
    Violated(Lasso),
    /// The search exceeded its budget before completing.
    ResourceBound {
        /// Expansions performed when the budget tripped.
        steps: u64,
        /// Distinct product states recorded.
        states: usize,
        /// Which budget axis tripped.
        reason: BoundReason,
    },
    /// The program performed an operation with undefined semantics.
    RuntimeError(ExecError, ErrorTrace),
}

/// Program-level successors of one configuration: each successor with
/// the step that produced it (`None` marks a terminal stutter).
type ProgStep = Result<Vec<(Config, Option<TraceStep>)>, (ExecError, TraceStep)>;

/// Product-level successors of one node.
type Expanded = Result<Vec<(Config, u32, Option<TraceStep>)>, (ExecError, TraceStep)>;

/// The product-exploration checker.
pub struct ProductChecker<'a> {
    module: &'a Module,
    buchi: &'a Buchi,
    atoms: Vec<ResolvedAtom>,
    budget: Budget,
    cancel: CancelToken,
    obs: Obs,
    jobs: usize,
    trace: TraceId,
    trace_parent: u64,
}

impl<'a> ProductChecker<'a> {
    /// A checker over `module` and the (negated-formula) automaton,
    /// with atoms already resolved against the module's program.
    pub fn new(module: &'a Module, buchi: &'a Buchi, atoms: Vec<ResolvedAtom>) -> Self {
        ProductChecker {
            module,
            buchi,
            atoms,
            budget: Budget::default(),
            cancel: CancelToken::default(),
            obs: Obs::off(),
            jobs: 1,
            trace: TraceId::NONE,
            trace_parent: 0,
        }
    }

    /// Sets the exploration budget.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Installs a cooperative cancellation token.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Attaches an observer for progress/budget events and the SCC
    /// phase span.
    pub fn with_observer(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Explores with `jobs` worker threads; results are byte-identical
    /// to a serial run at any worker count.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Parents the internal `scc` span under `parent` in `trace`.
    pub fn with_trace(mut self, trace: TraceId, parent: u64) -> Self {
        self.trace = trace;
        self.trace_parent = parent;
        self
    }

    fn label_holds(&self, state: &BuchiState, config: &Config) -> bool {
        let truth = |atom: u32| -> bool {
            let (global, cmp) = self.atoms[atom as usize];
            match config.mem.globals.get(global as usize) {
                None => false,
                Some(v) => match cmp {
                    None => v.truthy(),
                    Some((op, n)) => v.as_int().is_some_and(|i| op.eval(i, n)),
                },
            }
        };
        state.pos.iter().all(|&a| truth(a)) && state.neg.iter().all(|&a| !truth(a))
    }

    /// Executes the single instruction at `config`'s top frame,
    /// returning every program successor. Mirrors the BFS engine's
    /// segment semantics at per-instruction granularity (the Büchi
    /// automaton may branch at every step).
    fn step_config(&self, config: &Config) -> ProgStep {
        let module = self.module;
        let Some(frame) = config.stack.last() else {
            // Terminated: the final state repeats forever.
            return Ok(vec![(config.clone(), None)]);
        };
        let (func, pc) = (frame.func, frame.pc);
        let body = module.body(func);
        let meta = body.meta[pc];
        let step = TraceStep { func, pc, origin: meta.origin, span: meta.span };
        let mut config = config.clone();
        match &body.instrs[pc] {
            Instr::Assign(place, rv) => {
                let mut env = SeqEnv { module, config: &mut config };
                if let Err(e) = eval::exec_assign(&mut env, place, rv) {
                    return Err((e, step));
                }
                config.stack.last_mut().expect("nonempty").pc += 1;
                Ok(vec![(config, Some(step))])
            }
            // In LTL mode a false assert prunes like a false assume:
            // assertion failures are the safety checker's verdict, and
            // a failed path has no infinite continuation.
            Instr::Assert(cond) | Instr::Assume(cond) => {
                let env = SeqEnv { module, config: &mut config };
                match eval::eval_cond(&env, cond) {
                    Ok(false) => Ok(Vec::new()),
                    Ok(true) => {
                        config.stack.last_mut().expect("nonempty").pc += 1;
                        Ok(vec![(config, Some(step))])
                    }
                    Err(e) => Err((e, step)),
                }
            }
            Instr::Call { dest, target, args } => {
                let resolved = {
                    let env = SeqEnv { module, config: &mut config };
                    resolve_target(&env, *target).map(|callee| {
                        let arg_vals: Vec<_> =
                            args.iter().map(|a| eval::eval_operand(&env, a)).collect();
                        (callee, arg_vals)
                    })
                };
                match resolved {
                    Ok((callee, arg_vals)) => {
                        config.stack.last_mut().expect("nonempty").pc += 1;
                        config.stack.push(Frame::enter(module, callee, &arg_vals, *dest));
                        Ok(vec![(config, Some(step))])
                    }
                    Err(e) => Err((e, step)),
                }
            }
            Instr::Async { .. } => Err((ExecError::AsyncInSequential, step)),
            Instr::Return(op) => {
                let ret = {
                    let env = SeqEnv { module, config: &mut config };
                    op.map(|o| eval::eval_operand(&env, &o))
                        .unwrap_or(kiss_exec::Value::Null)
                };
                let finished = config.stack.pop().expect("nonempty");
                if !config.stack.is_empty() {
                    if let Some(dest) = finished.dest {
                        let mut env = SeqEnv { module, config: &mut config };
                        if let Err(e) =
                            eval::place_addr(&env, &dest).and_then(|a| env.write_addr(a, ret))
                        {
                            return Err((e, step));
                        }
                    }
                }
                Ok(vec![(config, Some(step))])
            }
            Instr::Jump(t) => {
                config.stack.last_mut().expect("nonempty").pc = *t;
                Ok(vec![(config, Some(step))])
            }
            Instr::NondetJump(targets) => {
                let mut out = Vec::with_capacity(targets.len());
                for &t in targets {
                    // The transformation's RAISE arms truncate a thread
                    // mid-run — prefix coverage for safety checking. A
                    // truncated thread models an unfinished schedule,
                    // not an infinite behavior, so liveness excludes
                    // those arms: every started thread runs to
                    // completion, and F-obligations are judged only
                    // against complete balanced runs.
                    if body.meta[t].origin == Origin::Raise {
                        continue;
                    }
                    let mut c = config.clone();
                    c.stack.last_mut().expect("nonempty").pc = t;
                    out.push((c, Some(step)));
                }
                Ok(out)
            }
            Instr::AtomicBegin | Instr::AtomicEnd => {
                config.stack.last_mut().expect("nonempty").pc += 1;
                Ok(vec![(config, Some(step))])
            }
        }
    }

    /// Expands one product node — a pure function of the node, which is
    /// what makes parallel speculation byte-identical by construction.
    fn expand(&self, config: &Config, q: u32) -> Expanded {
        let succs = self.step_config(config)?;
        let mut out = Vec::new();
        for (c2, step) in &succs {
            for &q2 in &self.buchi.states[q as usize].succs {
                if self.label_holds(&self.buchi.states[q2 as usize], c2) {
                    out.push((c2.clone(), q2, *step));
                }
            }
        }
        Ok(out)
    }

    /// Speculatively expands a whole frontier layer across worker
    /// threads. Only node-local computation happens here; all store
    /// mutation is the serial commit walk's.
    fn speculate(&self, frontier: &[(StateId, u32, Config)]) -> Vec<Option<Expanded>> {
        let jobs = self.jobs.min(frontier.len()).max(1);
        let chunk = frontier.len().div_ceil(jobs);
        let mut results: Vec<Option<Expanded>> = Vec::new();
        results.resize_with(frontier.len(), || None);
        std::thread::scope(|scope| {
            let mut rest: &mut [Option<Expanded>] = &mut results;
            let mut start = 0usize;
            while !rest.is_empty() {
                let take = chunk.min(rest.len());
                let (mine, tail) = rest.split_at_mut(take);
                rest = tail;
                let nodes = &frontier[start..start + take];
                start += take;
                scope.spawn(move || {
                    for (slot, (_, q, config)) in mine.iter_mut().zip(nodes) {
                        *slot = Some(self.expand(config, *q));
                    }
                });
            }
        });
        results
    }

    /// Runs the product exploration to a verdict plus engine stats.
    pub fn check_with_stats(&self) -> (LtlVerdict, EngineStats) {
        let mut meter = Meter::new(self.budget, self.cancel.clone())
            .with_observer(self.obs.clone(), "ltl")
            .with_state_size(96);
        let mut visited = VisitedTable::new();
        let mut interner = SegmentInterner::new();
        // Parent edge per product state (roots are self-parented) and
        // the full adjacency — lasso detection needs every edge, not
        // just the BFS tree.
        let mut parents: Vec<(StateId, SegId)> = Vec::new();
        let mut adj: Vec<Vec<(u32, SegId)>> = Vec::new();
        let mut accepting: Vec<bool> = Vec::new();
        let mut frontier: Vec<(StateId, u32, Config)> = Vec::new();
        let mut speculated: u64 = 0;

        let root = Config::initial(self.module);
        let root_fp = root.fingerprint();
        for &q in &self.buchi.initial {
            if self.label_holds(&self.buchi.states[q as usize], &root) {
                let fp = fingerprint_of(&(root_fp.0, root_fp.1, q));
                let (id, fresh) = visited.insert(fp).expect("empty table has capacity");
                if fresh {
                    debug_assert_eq!(id.0 as usize, parents.len());
                    parents.push((id, SegId::EMPTY));
                    adj.push(Vec::new());
                    accepting.push(self.buchi.states[q as usize].accepting);
                    frontier.push((id, q, root.clone()));
                }
            }
        }
        let mut frontier_peak = frontier.len();

        macro_rules! stats {
            () => {
                EngineStats {
                    steps: meter.usage.steps,
                    states: visited.len(),
                    frontier_peak,
                    states_stored: visited.len(),
                    store_bytes: visited.bytes()
                        + interner.bytes()
                        + parents.len() * std::mem::size_of::<(StateId, SegId)>()
                        + adj.iter().map(|v| v.len()).sum::<usize>()
                            * std::mem::size_of::<(u32, SegId)>(),
                    speculative_steps: speculated.max(meter.usage.steps),
                    product_states: visited.len(),
                    buchi_states: self.buchi.states.len(),
                    ..EngineStats::default()
                }
            };
        }
        macro_rules! bound {
            ($reason:expr) => {{
                let reason = $reason;
                return (
                    LtlVerdict::ResourceBound {
                        steps: meter.usage.steps,
                        states: meter.usage.states,
                        reason,
                    },
                    stats!(),
                );
            }};
        }

        while !frontier.is_empty() {
            frontier_peak = frontier_peak.max(frontier.len());
            let spec = if self.jobs > 1 && frontier.len() > 1 {
                speculated += frontier.len() as u64;
                self.speculate(&frontier)
            } else {
                let mut v: Vec<Option<Expanded>> = Vec::new();
                v.resize_with(frontier.len(), || None);
                v
            };
            let mut next: Vec<(StateId, u32, Config)> = Vec::new();
            for ((id, q, config), pre) in frontier.iter().zip(spec) {
                if let Err(reason) = meter.advance(1) {
                    bound!(reason);
                }
                if self.jobs <= 1 {
                    speculated += 1;
                }
                let expanded = pre.unwrap_or_else(|| self.expand(config, *q));
                match expanded {
                    Err((e, step)) => {
                        let mut steps = Self::reconstruct(&parents, &interner, *id);
                        steps.push(step);
                        let trace =
                            ErrorTrace { steps, globals: config.mem.globals.to_vec() };
                        return (LtlVerdict::RuntimeError(e, trace), stats!());
                    }
                    Ok(succs) => {
                        for (c2, q2, step) in succs {
                            let cfp = c2.fingerprint();
                            let fp = fingerprint_of(&(cfp.0, cfp.1, q2));
                            let (sid, fresh) = match visited.insert(fp) {
                                Ok(x) => x,
                                Err(_) => bound!(BoundReason::StateCap),
                            };
                            let seg = match &step {
                                Some(s) => interner.intern(std::slice::from_ref(s)),
                                None => SegId::EMPTY,
                            };
                            adj[id.0 as usize].push((sid.0, seg));
                            if fresh {
                                debug_assert_eq!(sid.0 as usize, parents.len());
                                parents.push((*id, seg));
                                adj.push(Vec::new());
                                accepting.push(self.buchi.states[q2 as usize].accepting);
                                next.push((sid, q2, c2));
                            }
                        }
                    }
                }
            }
            meter.note_states(visited.len());
            if let Err(reason) = meter.poll() {
                bound!(reason);
            }
            frontier = next;
        }

        // Exploration complete: find an accepting lasso. The span
        // carries the SCC/lasso wall time into the trace stream without
        // touching the deterministic stdout.
        let span = Span::open(&self.obs, self.trace, self.trace_parent, "scc");
        let lasso = Self::find_lasso(&adj, &accepting, &parents, &interner);
        span.close();
        match lasso {
            Some(l) => (LtlVerdict::Violated(l), stats!()),
            None => (LtlVerdict::Holds, stats!()),
        }
    }

    fn reconstruct(
        parents: &[(StateId, SegId)],
        interner: &SegmentInterner,
        mut id: StateId,
    ) -> Vec<TraceStep> {
        let mut segs: Vec<SegId> = Vec::new();
        loop {
            let (p, s) = parents[id.0 as usize];
            if p == id {
                break;
            }
            segs.push(s);
            id = p;
        }
        let mut steps = Vec::new();
        for &s in segs.iter().rev() {
            steps.extend_from_slice(interner.get(s));
        }
        steps
    }

    /// Iterative Tarjan SCC + deterministic counterexample selection:
    /// the smallest accepting state inside a nontrivial SCC anchors the
    /// lasso; its cycle is the shortest path back to it within the SCC.
    fn find_lasso(
        adj: &[Vec<(u32, SegId)>],
        accepting: &[bool],
        parents: &[(StateId, SegId)],
        interner: &SegmentInterner,
    ) -> Option<Lasso> {
        let n = adj.len();
        const UNSET: u32 = u32::MAX;
        let mut index = vec![UNSET; n];
        let mut low = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut comp = vec![UNSET; n];
        let mut ncomp: u32 = 0;
        let mut counter: u32 = 0;
        let mut call: Vec<(u32, usize)> = Vec::new();
        for root in 0..n as u32 {
            if index[root as usize] != UNSET {
                continue;
            }
            index[root as usize] = counter;
            low[root as usize] = counter;
            counter += 1;
            stack.push(root);
            on_stack[root as usize] = true;
            call.push((root, 0));
            while let Some((v, ei)) = call.last_mut() {
                let v = *v;
                if *ei < adj[v as usize].len() {
                    let w = adj[v as usize][*ei].0;
                    *ei += 1;
                    if index[w as usize] == UNSET {
                        index[w as usize] = counter;
                        low[w as usize] = counter;
                        counter += 1;
                        stack.push(w);
                        on_stack[w as usize] = true;
                        call.push((w, 0));
                    } else if on_stack[w as usize] {
                        low[v as usize] = low[v as usize].min(index[w as usize]);
                    }
                } else {
                    call.pop();
                    if let Some((p, _)) = call.last() {
                        let p = *p as usize;
                        low[p] = low[p].min(low[v as usize]);
                    }
                    if low[v as usize] == index[v as usize] {
                        loop {
                            let w = stack.pop().expect("scc stack nonempty");
                            on_stack[w as usize] = false;
                            comp[w as usize] = ncomp;
                            if w == v {
                                break;
                            }
                        }
                        ncomp += 1;
                    }
                }
            }
        }
        let mut size = vec![0u32; ncomp as usize];
        for v in 0..n {
            size[comp[v] as usize] += 1;
        }
        let mut nontrivial: Vec<bool> = size.iter().map(|&s| s >= 2).collect();
        for v in 0..n {
            if adj[v].iter().any(|&(w, _)| w as usize == v) {
                nontrivial[comp[v] as usize] = true;
            }
        }
        let anchor =
            (0..n).find(|&v| accepting[v] && nontrivial[comp[v] as usize])? as u32;

        // Shortest cycle through the anchor, inside its SCC.
        let scc = comp[anchor as usize];
        let mut pred: HashMap<u32, (u32, SegId)> = HashMap::new();
        let mut queue: VecDeque<u32> = VecDeque::new();
        let mut cycle_segs: Option<Vec<SegId>> = None;
        'search: for &(w, seg) in &adj[anchor as usize] {
            if comp[w as usize] != scc {
                continue;
            }
            if w == anchor {
                cycle_segs = Some(vec![seg]);
                break 'search;
            }
            if let std::collections::hash_map::Entry::Vacant(e) = pred.entry(w) {
                e.insert((anchor, seg));
                queue.push_back(w);
            }
        }
        while cycle_segs.is_none() {
            let u = queue.pop_front().expect("anchor SCC is nontrivial, a cycle exists");
            for &(w, seg) in &adj[u as usize] {
                if comp[w as usize] != scc {
                    continue;
                }
                if w == anchor {
                    let mut segs = vec![seg];
                    let mut cur = u;
                    while cur != anchor {
                        let (p, s) = pred[&cur];
                        segs.push(s);
                        cur = p;
                    }
                    segs.reverse();
                    cycle_segs = Some(segs);
                    break;
                }
                if let std::collections::hash_map::Entry::Vacant(e) = pred.entry(w) {
                    e.insert((u, seg));
                    queue.push_back(w);
                }
            }
        }
        let stem = Self::reconstruct(parents, interner, StateId(anchor));
        let mut cycle = Vec::new();
        for &s in &cycle_segs.expect("set above") {
            cycle.extend_from_slice(interner.get(s));
        }
        Some(Lasso { stem, cycle })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buchi::Buchi;
    use crate::parse::parse;

    fn module(src: &str) -> Module {
        Module::lower(kiss_lang::parse_and_lower(src).expect("sample parses"))
    }

    fn check(src: &str, formula: &str, jobs: usize) -> (LtlVerdict, EngineStats) {
        let m = module(src);
        let f = parse(formula).expect("formula parses");
        let b = Buchi::for_negation(&f);
        let atoms = resolve_atoms(&m.program, &b.atoms).expect("atoms resolve");
        ProductChecker::new(&m, &b, atoms).with_jobs(jobs).check_with_stats()
    }

    const TERMINATING: &str = "int x; void main() { x = 1; }";
    const SPIN: &str = "int x; void main() { while (x == 0) { skip; } x = 2; }";

    #[test]
    fn eventually_holds_on_a_terminating_run() {
        let (v, stats) = check(TERMINATING, "F (x == 1)", 1);
        assert_eq!(v, LtlVerdict::Holds);
        assert!(stats.product_states > 0 && stats.buchi_states > 0, "{stats:?}");
    }

    #[test]
    fn terminal_state_stutters_into_a_globally_violation() {
        // x becomes 1 and the final state repeats forever, so G (x == 0)
        // is violated by a lasso whose cycle is the empty stutter.
        let (v, _) = check(TERMINATING, "G (x == 0)", 1);
        let LtlVerdict::Violated(lasso) = v else { panic!("expected violation, got {v:?}") };
        assert!(!lasso.stem.is_empty());
        assert!(lasso.cycle.is_empty(), "terminal stutter has no steps: {:?}", lasso.cycle);
    }

    #[test]
    fn spin_loop_violates_eventually_with_a_real_cycle() {
        // The loop never exits (x stays 0), so F (x == 2) fails and the
        // counterexample cycle contains actual loop instructions.
        let (v, _) = check(SPIN, "F (x == 2)", 1);
        let LtlVerdict::Violated(lasso) = v else { panic!("expected violation, got {v:?}") };
        assert!(!lasso.cycle.is_empty(), "spin loop must yield a non-stutter cycle");
    }

    #[test]
    fn spin_loop_satisfies_its_invariant() {
        let (v, _) = check(SPIN, "G (x == 0)", 1);
        assert_eq!(v, LtlVerdict::Holds);
    }

    #[test]
    fn response_property_distinguishes_release_from_deadlock() {
        let releases = "int locked; void main() { locked = 1; locked = 0; }";
        let (v, _) = check(releases, "G (locked -> F !locked)", 1);
        assert_eq!(v, LtlVerdict::Holds);

        let stuck = "int locked; void main() { locked = 1; while (locked == 1) { skip; } }";
        let (v, _) = check(stuck, "G (locked -> F !locked)", 1);
        assert!(matches!(v, LtlVerdict::Violated(_)), "{v:?}");
    }

    #[test]
    fn parallel_exploration_matches_serial_exactly() {
        for (src, formula) in [
            (TERMINATING, "G (x == 0)"),
            (SPIN, "F (x == 2)"),
            (SPIN, "G (x == 0)"),
            (TERMINATING, "F (x == 1)"),
        ] {
            let (v1, mut s1) = check(src, formula, 1);
            let (v4, mut s4) = check(src, formula, 4);
            assert_eq!(v1, v4, "{src} {formula}");
            // A completed exploration speculates exactly what it
            // commits; equality covers the speculative axis too.
            assert_eq!(s1.speculative_steps, s1.steps, "{src} {formula}");
            assert_eq!(s4.speculative_steps, s4.steps, "{src} {formula}");
            s1.speculative_steps = 0;
            s4.speculative_steps = 0;
            assert_eq!(s1, s4, "{src} {formula}");
        }
    }

    #[test]
    fn step_budget_trips_on_the_spin_loop() {
        let m = module(SPIN);
        let f = parse("F (x == 2)").expect("formula");
        let b = Buchi::for_negation(&f);
        let atoms = resolve_atoms(&m.program, &b.atoms).expect("atoms");
        let (v, _) = ProductChecker::new(&m, &b, atoms)
            .with_budget(Budget::steps_states(5, 1_000_000))
            .check_with_stats();
        assert!(
            matches!(v, LtlVerdict::ResourceBound { reason: BoundReason::Steps, .. }),
            "{v:?}"
        );
    }

    #[test]
    fn cancellation_surfaces_as_a_resource_bound() {
        let m = module(SPIN);
        let f = parse("F (x == 2)").expect("formula");
        let b = Buchi::for_negation(&f);
        let atoms = resolve_atoms(&m.program, &b.atoms).expect("atoms");
        let cancel = CancelToken::new();
        cancel.cancel();
        let (v, _) = ProductChecker::new(&m, &b, atoms).with_cancel(cancel).check_with_stats();
        assert!(
            matches!(v, LtlVerdict::ResourceBound { reason: BoundReason::Cancelled, .. }),
            "{v:?}"
        );
    }

    #[test]
    fn unknown_proposition_is_reported_by_name() {
        let m = module(TERMINATING);
        let f = parse("F nope").expect("formula");
        let b = Buchi::for_negation(&f);
        assert_eq!(resolve_atoms(&m.program, &b.atoms), Err("nope".to_string()));
    }
}
