//! Property tests of the LTL surface syntax: the pretty-printer emits
//! exactly the parenthesization the parser needs, so printing any
//! formula and parsing it back reproduces the same tree — and printing
//! that parse is a fixed point.

use kiss_ltl::{parse, Atom, CmpOp, Formula};
use proptest::prelude::*;
use proptest::{BoxedStrategy, TestRng};

fn gen_atom(rng: &mut TestRng) -> Formula {
    let names = ["locked", "turn", "flag0", "in_critical", "pending", "x"];
    let name = names[rng.below(names.len())].to_string();
    let cmp = if rng.below(2) == 0 {
        None
    } else {
        let op = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge]
            [rng.below(6)];
        let n = rng.next_u64() as i64 % 1_000;
        Some((op, n))
    };
    Formula::Atom(Atom { name, cmp })
}

fn gen_formula(rng: &mut TestRng, depth: u32) -> Formula {
    let leaf_odds = if depth == 0 { 1 } else { 4 };
    if rng.below(leaf_odds) == 0 {
        return match rng.below(4) {
            0 => Formula::True,
            1 => Formula::False,
            _ => gen_atom(rng),
        };
    }
    match rng.below(9) {
        0 => Formula::Not(Box::new(gen_formula(rng, depth - 1))),
        1 => Formula::Next(Box::new(gen_formula(rng, depth - 1))),
        2 => Formula::Finally(Box::new(gen_formula(rng, depth - 1))),
        3 => Formula::Globally(Box::new(gen_formula(rng, depth - 1))),
        4 => {
            let l = gen_formula(rng, depth - 1);
            Formula::And(Box::new(l), Box::new(gen_formula(rng, depth - 1)))
        }
        5 => {
            let l = gen_formula(rng, depth - 1);
            Formula::Or(Box::new(l), Box::new(gen_formula(rng, depth - 1)))
        }
        6 => {
            let l = gen_formula(rng, depth - 1);
            Formula::Implies(Box::new(l), Box::new(gen_formula(rng, depth - 1)))
        }
        7 => {
            let l = gen_formula(rng, depth - 1);
            Formula::Until(Box::new(l), Box::new(gen_formula(rng, depth - 1)))
        }
        _ => {
            let l = gen_formula(rng, depth - 1);
            Formula::Release(Box::new(l), Box::new(gen_formula(rng, depth - 1)))
        }
    }
}

fn formula_strategy() -> BoxedStrategy<Formula> {
    BoxedStrategy::new(|rng| gen_formula(rng, 5))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    #[test]
    fn printing_then_parsing_is_identity(f in formula_strategy()) {
        let printed = f.to_string();
        let reparsed = parse(&printed);
        prop_assert_eq!(reparsed.as_ref(), Ok(&f), "printed as {}", printed);
    }

    #[test]
    fn printing_is_a_fixed_point_of_the_round_trip(f in formula_strategy()) {
        let printed = f.to_string();
        let reparsed = parse(&printed).expect("printer output parses");
        prop_assert_eq!(reparsed.to_string(), printed);
    }

    #[test]
    fn atom_order_survives_the_round_trip(f in formula_strategy()) {
        let reparsed = parse(&f.to_string()).expect("printer output parses");
        prop_assert_eq!(reparsed.atoms(), f.atoms());
    }
}
