//! Structured events and per-check metrics.

use crate::json::quoted;
use crate::report::RunReport;

/// Everything measured about one supervised check, attached to
/// [`Event::CheckFinished`] and aggregated into a
/// [`RunReport`].
///
/// `steps`/`states` describe the *final* attempt; retried attempts'
/// partial work is visible through [`Event::EngineTick`] and
/// [`Event::BudgetViolated`] but is not double-counted here.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CheckMetrics {
    /// Check label, e.g. `diskperf/3` for field 3 of driver diskperf.
    pub check: String,
    /// Engine kind (`explicit`, `summary`, `bfs`; `none` when a check
    /// was decided without a search; empty when unknown, e.g. crashes).
    pub engine: String,
    /// Final verdict: `pass`, `assertion`, `race`, `inconclusive`,
    /// `runtime_error`, `transform_failed`, or `crashed`.
    pub verdict: String,
    /// Instructions executed by the final attempt.
    pub steps: u64,
    /// Distinct states recorded by the final attempt.
    pub states: u64,
    /// Peak frontier/pending size (DFS stack or BFS queue).
    pub frontier_peak: u64,
    /// Entries held by the state store (visited fingerprints).
    pub states_stored: u64,
    /// Bytes held by the state store (visited table, parent arenas,
    /// interned trace segments).
    pub store_bytes: u64,
    /// Function summaries computed (summary engine only).
    pub summaries: u64,
    /// Fixpoint rounds taken (summary engine only).
    pub rounds: u64,
    /// Wall-clock time for the whole supervised run, all attempts.
    pub wall_ms: u64,
    /// Which budget axis ended an inconclusive check.
    pub bound_reason: Option<String>,
    /// Retries the escalation ladder spent (attempts - 1).
    pub retries: u64,
    /// Instructions actually executed by the final attempt, including
    /// speculation a parallel exploration ran past the serial stopping
    /// point. Equals `steps` for serial runs.
    pub speculative_steps: u64,
    /// Distinct `(configuration, Büchi state)` product states explored
    /// (LTL liveness checks only).
    pub product_states: u64,
    /// States of the negated-formula Büchi automaton (LTL liveness
    /// checks only).
    pub buchi_states: u64,
}

impl CheckMetrics {
    /// Serializes the fields *without* surrounding braces, so callers
    /// can splice them into an enclosing object.
    fn json_fields(&self, out: &mut String) {
        out.push_str(&format!(
            "\"check\":{},\"engine\":{},\"verdict\":{},\"steps\":{},\"states\":{},\
             \"frontier_peak\":{},\"states_stored\":{},\"store_bytes\":{},\
             \"summaries\":{},\"rounds\":{},\"wall_ms\":{},\
             \"bound_reason\":{},\"retries\":{},\"speculative_steps\":{},\
             \"product_states\":{},\"buchi_states\":{}",
            quoted(&self.check),
            quoted(&self.engine),
            quoted(&self.verdict),
            self.steps,
            self.states,
            self.frontier_peak,
            self.states_stored,
            self.store_bytes,
            self.summaries,
            self.rounds,
            self.wall_ms,
            match &self.bound_reason {
                Some(r) => quoted(r),
                None => "null".to_string(),
            },
            self.retries,
            self.speculative_steps,
            self.product_states,
            self.buchi_states,
        ));
    }
}

/// One structured observation, emitted through
/// [`crate::Obs::emit`] and consumed by [`crate::Observer`] sinks.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A supervised check is starting (attempt 1).
    CheckStarted {
        /// Check label.
        check: String,
    },
    /// Periodic engine progress (throttled inside the engines' meters,
    /// roughly every 2^18 steps).
    EngineTick {
        /// Check label.
        check: String,
        /// Engine kind.
        engine: &'static str,
        /// Steps so far in the current attempt.
        steps: u64,
        /// Distinct states so far in the current attempt.
        states: u64,
    },
    /// The supervisor is re-running an inconclusive check with an
    /// escalated budget.
    RetryEscalated {
        /// Check label.
        check: String,
        /// The attempt about to start (2 = first retry).
        attempt: u64,
        /// The bound that tripped the previous attempt.
        reason: String,
    },
    /// A budget axis tripped inside an engine.
    BudgetViolated {
        /// Check label.
        check: String,
        /// Engine kind.
        engine: &'static str,
        /// The axis that tripped.
        reason: String,
        /// Steps at the trip point.
        steps: u64,
        /// Distinct states at the trip point.
        states: u64,
    },
    /// A supervised check ended (all attempts done).
    CheckFinished {
        /// The full metrics record; its `check` field is the label.
        metrics: CheckMetrics,
    },
    /// A serve-mode request was accepted off a client connection
    /// (emitted after the frame parsed, before the cache lookup).
    RequestReceived {
        /// Request id, as sent by the client.
        request: String,
        /// Jobs waiting in the server queue at acceptance time.
        queue_depth: u64,
    },
    /// A request was answered from the content-addressed result cache.
    CacheHit {
        /// Request id.
        request: String,
    },
    /// A request missed the cache (or bypassed it with `no_cache`) and
    /// was scheduled for execution.
    CacheMiss {
        /// Request id.
        request: String,
    },
    /// A request was answered — from the cache or after execution.
    /// Every received request produces exactly one of these.
    RequestDone {
        /// Request id.
        request: String,
        /// The verdict sent back to the client.
        verdict: String,
        /// Receive-to-answer latency, queueing included.
        wall_ms: u64,
        /// Jobs waiting in the server queue at completion time.
        queue_depth: u64,
    },
    /// A request was rejected because the server queue stayed full for
    /// the whole admission wait. The client got a typed `overloaded`
    /// response; the request counts in `requests_shed`, not in the
    /// hit/miss split.
    RequestShed {
        /// Request id.
        request: String,
        /// Jobs waiting in the server queue at rejection time.
        queue_depth: u64,
    },
    /// A named failpoint fired (kiss-fault). Emitted by the component
    /// that owns the site, not by kiss-fault itself.
    FaultInjected {
        /// Failpoint site, e.g. `serve.journal.append`.
        point: String,
        /// The action taken: `error`, `panic`, `delay`, `truncate`.
        action: String,
    },
    /// The client is about to retry after a connection failure or an
    /// `overloaded` response.
    ClientRetry {
        /// The attempt about to start (2 = first retry).
        attempt: u64,
        /// Backoff slept before this attempt.
        wait_ms: u64,
        /// Why the previous attempt failed, e.g. `connect`, `overloaded`.
        reason: String,
    },
    /// A tracing span opened (see [`crate::span`]). Together with its
    /// matching [`Event::SpanClose`], one stage of a request's life.
    SpanOpen {
        /// Owning trace id, fixed-width hex (see
        /// [`crate::span::TraceId::to_hex`]).
        trace: String,
        /// Process-unique span id.
        span: u64,
        /// Parent span id; 0 = root of its trace.
        parent: u64,
        /// Stage name: `recv`, `queued`, `check`, `reply`,
        /// `transform`, `lower`, `explore`.
        name: String,
        /// The request this root span covers, when known — the anchor
        /// tying a trace id to a request id.
        request: Option<String>,
    },
    /// A tracing span closed. Every `span_open` has exactly one.
    SpanClose {
        /// Owning trace id, fixed-width hex.
        trace: String,
        /// The span id from the matching [`Event::SpanOpen`].
        span: u64,
        /// Stage name, repeated for grep-ability.
        name: String,
        /// Wall time the span covered.
        wall_ms: u64,
    },
    /// End-of-run summary.
    RunSummary {
        /// The aggregated report.
        report: RunReport,
    },
}

impl Event {
    /// Stable event-kind name, matching the `"event"` field of
    /// [`Event::to_json`].
    pub fn kind(&self) -> &'static str {
        match self {
            Event::CheckStarted { .. } => "check_started",
            Event::EngineTick { .. } => "engine_tick",
            Event::RetryEscalated { .. } => "retry_escalated",
            Event::BudgetViolated { .. } => "budget_violated",
            Event::CheckFinished { .. } => "check_finished",
            Event::RequestReceived { .. } => "request_received",
            Event::CacheHit { .. } => "cache_hit",
            Event::CacheMiss { .. } => "cache_miss",
            Event::RequestDone { .. } => "request_done",
            Event::RequestShed { .. } => "request_shed",
            Event::FaultInjected { .. } => "fault_injected",
            Event::ClientRetry { .. } => "client_retry",
            Event::SpanOpen { .. } => "span_open",
            Event::SpanClose { .. } => "span_close",
            Event::RunSummary { .. } => "run_summary",
        }
    }

    /// The check label, for every per-check event kind.
    pub fn check(&self) -> Option<&str> {
        match self {
            Event::CheckStarted { check }
            | Event::EngineTick { check, .. }
            | Event::RetryEscalated { check, .. }
            | Event::BudgetViolated { check, .. } => Some(check),
            Event::CheckFinished { metrics } => Some(&metrics.check),
            Event::RequestReceived { .. }
            | Event::CacheHit { .. }
            | Event::CacheMiss { .. }
            | Event::RequestDone { .. }
            | Event::RequestShed { .. }
            | Event::FaultInjected { .. }
            | Event::ClientRetry { .. }
            | Event::SpanOpen { .. }
            | Event::SpanClose { .. }
            | Event::RunSummary { .. } => None,
        }
    }

    /// The request id, for every serve-mode event kind.
    pub fn request(&self) -> Option<&str> {
        match self {
            Event::RequestReceived { request, .. }
            | Event::CacheHit { request }
            | Event::CacheMiss { request }
            | Event::RequestDone { request, .. }
            | Event::RequestShed { request, .. } => Some(request),
            _ => None,
        }
    }

    /// One-line JSON encoding (no trailing newline) — the JSONL trace
    /// format.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"event\":");
        out.push_str(&quoted(self.kind()));
        match self {
            Event::CheckStarted { check } => {
                out.push_str(&format!(",\"check\":{}", quoted(check)));
            }
            Event::EngineTick { check, engine, steps, states } => {
                out.push_str(&format!(
                    ",\"check\":{},\"engine\":{},\"steps\":{steps},\"states\":{states}",
                    quoted(check),
                    quoted(engine),
                ));
            }
            Event::RetryEscalated { check, attempt, reason } => {
                out.push_str(&format!(
                    ",\"check\":{},\"attempt\":{attempt},\"reason\":{}",
                    quoted(check),
                    quoted(reason),
                ));
            }
            Event::BudgetViolated { check, engine, reason, steps, states } => {
                out.push_str(&format!(
                    ",\"check\":{},\"engine\":{},\"reason\":{},\"steps\":{steps},\"states\":{states}",
                    quoted(check),
                    quoted(engine),
                    quoted(reason),
                ));
            }
            Event::CheckFinished { metrics } => {
                out.push(',');
                metrics.json_fields(&mut out);
            }
            Event::RequestReceived { request, queue_depth } => {
                out.push_str(&format!(
                    ",\"request\":{},\"queue_depth\":{queue_depth}",
                    quoted(request),
                ));
            }
            Event::CacheHit { request } | Event::CacheMiss { request } => {
                out.push_str(&format!(",\"request\":{}", quoted(request)));
            }
            Event::RequestDone { request, verdict, wall_ms, queue_depth } => {
                out.push_str(&format!(
                    ",\"request\":{},\"verdict\":{},\"wall_ms\":{wall_ms},\
                     \"queue_depth\":{queue_depth}",
                    quoted(request),
                    quoted(verdict),
                ));
            }
            Event::RequestShed { request, queue_depth } => {
                out.push_str(&format!(
                    ",\"request\":{},\"queue_depth\":{queue_depth}",
                    quoted(request),
                ));
            }
            Event::FaultInjected { point, action } => {
                out.push_str(&format!(
                    ",\"point\":{},\"action\":{}",
                    quoted(point),
                    quoted(action),
                ));
            }
            Event::ClientRetry { attempt, wait_ms, reason } => {
                out.push_str(&format!(
                    ",\"attempt\":{attempt},\"wait_ms\":{wait_ms},\"reason\":{}",
                    quoted(reason),
                ));
            }
            Event::SpanOpen { trace, span, parent, name, request } => {
                out.push_str(&format!(
                    ",\"trace\":{},\"span\":{span},\"parent\":{parent},\"name\":{}",
                    quoted(trace),
                    quoted(name),
                ));
                if let Some(request) = request {
                    out.push_str(&format!(",\"request\":{}", quoted(request)));
                }
            }
            Event::SpanClose { trace, span, name, wall_ms } => {
                out.push_str(&format!(
                    ",\"trace\":{},\"span\":{span},\"name\":{},\"wall_ms\":{wall_ms}",
                    quoted(trace),
                    quoted(name),
                ));
            }
            Event::RunSummary { report } => {
                out.push_str(",\"report\":");
                out.push_str(&report.to_json());
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn events_serialize_to_parseable_json_with_matching_kind() {
        let events = [
            Event::CheckStarted { check: "drv/0".into() },
            Event::EngineTick { check: "drv/0".into(), engine: "explicit", steps: 5, states: 2 },
            Event::RetryEscalated { check: "drv/0".into(), attempt: 2, reason: "steps".into() },
            Event::BudgetViolated {
                check: "drv/0".into(),
                engine: "bfs",
                reason: "memory".into(),
                steps: 10,
                states: 4,
            },
            Event::CheckFinished {
                metrics: CheckMetrics {
                    check: "drv/0".into(),
                    engine: "explicit".into(),
                    verdict: "pass".into(),
                    steps: 100,
                    ..CheckMetrics::default()
                },
            },
            Event::RunSummary { report: RunReport::default() },
        ];
        for e in events {
            let parsed = Json::parse(&e.to_json()).expect("event must be valid JSON");
            assert_eq!(parsed.get("event").and_then(Json::as_str), Some(e.kind()));
            assert_eq!(parsed.get("check").and_then(Json::as_str), e.check());
        }
    }

    #[test]
    fn serve_events_serialize_with_request_ids() {
        let events = [
            Event::RequestReceived { request: "q0".into(), queue_depth: 3 },
            Event::CacheHit { request: "q0".into() },
            Event::CacheMiss { request: "q1".into() },
            Event::RequestDone {
                request: "q1".into(),
                verdict: "pass".into(),
                wall_ms: 7,
                queue_depth: 2,
            },
        ];
        for e in &events {
            let parsed = Json::parse(&e.to_json()).expect("serve event must be valid JSON");
            assert_eq!(parsed.get("event").and_then(Json::as_str), Some(e.kind()));
            assert_eq!(parsed.get("request").and_then(Json::as_str), e.request());
            assert_eq!(e.check(), None);
        }
        let done = Json::parse(&events[3].to_json()).unwrap();
        assert_eq!(done.get("verdict").and_then(Json::as_str), Some("pass"));
        assert_eq!(done.get("wall_ms").and_then(Json::as_u64), Some(7));
        assert_eq!(done.get("queue_depth").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn robustness_events_serialize_with_their_payloads() {
        let shed = Event::RequestShed { request: "q7".into(), queue_depth: 64 };
        let parsed = Json::parse(&shed.to_json()).unwrap();
        assert_eq!(parsed.get("event").and_then(Json::as_str), Some("request_shed"));
        assert_eq!(parsed.get("request").and_then(Json::as_str), Some("q7"));
        assert_eq!(parsed.get("queue_depth").and_then(Json::as_u64), Some(64));
        assert_eq!(shed.request(), Some("q7"));

        let fault = Event::FaultInjected {
            point: "serve.journal.append".into(),
            action: "truncate".into(),
        };
        let parsed = Json::parse(&fault.to_json()).unwrap();
        assert_eq!(parsed.get("event").and_then(Json::as_str), Some("fault_injected"));
        assert_eq!(parsed.get("point").and_then(Json::as_str), Some("serve.journal.append"));
        assert_eq!(parsed.get("action").and_then(Json::as_str), Some("truncate"));
        assert_eq!(fault.request(), None);
        assert_eq!(fault.check(), None);

        let retry = Event::ClientRetry { attempt: 2, wait_ms: 40, reason: "overloaded".into() };
        let parsed = Json::parse(&retry.to_json()).unwrap();
        assert_eq!(parsed.get("event").and_then(Json::as_str), Some("client_retry"));
        assert_eq!(parsed.get("attempt").and_then(Json::as_u64), Some(2));
        assert_eq!(parsed.get("wait_ms").and_then(Json::as_u64), Some(40));
        assert_eq!(parsed.get("reason").and_then(Json::as_str), Some("overloaded"));
    }

    #[test]
    fn span_events_serialize_with_trace_hex_and_ids() {
        let open = Event::SpanOpen {
            trace: "0123456789abcdef".into(),
            span: 7,
            parent: 3,
            name: "check".into(),
            request: None,
        };
        let parsed = Json::parse(&open.to_json()).unwrap();
        assert_eq!(parsed.get("event").and_then(Json::as_str), Some("span_open"));
        assert_eq!(parsed.get("trace").and_then(Json::as_str), Some("0123456789abcdef"));
        assert_eq!(parsed.get("span").and_then(Json::as_u64), Some(7));
        assert_eq!(parsed.get("parent").and_then(Json::as_u64), Some(3));
        assert_eq!(parsed.get("name").and_then(Json::as_str), Some("check"));
        assert!(parsed.get("request").is_none(), "absent request must be omitted");
        assert_eq!(open.check(), None);
        assert_eq!(open.request(), None, "spans are keyed by trace, not request");

        let root = Event::SpanOpen {
            trace: "00000000000000ff".into(),
            span: 1,
            parent: 0,
            name: "recv".into(),
            request: Some("q0".into()),
        };
        let parsed = Json::parse(&root.to_json()).unwrap();
        assert_eq!(parsed.get("request").and_then(Json::as_str), Some("q0"));
        assert_eq!(parsed.get("parent").and_then(Json::as_u64), Some(0));

        let close = Event::SpanClose {
            trace: "0123456789abcdef".into(),
            span: 7,
            name: "check".into(),
            wall_ms: 12,
        };
        let parsed = Json::parse(&close.to_json()).unwrap();
        assert_eq!(parsed.get("event").and_then(Json::as_str), Some("span_close"));
        assert_eq!(parsed.get("span").and_then(Json::as_u64), Some(7));
        assert_eq!(parsed.get("wall_ms").and_then(Json::as_u64), Some(12));
    }

    #[test]
    fn finished_event_carries_all_metric_fields() {
        let m = CheckMetrics {
            check: "d\"x/1".into(),
            engine: "summary".into(),
            verdict: "inconclusive".into(),
            steps: 7,
            states: 3,
            frontier_peak: 2,
            states_stored: 3,
            store_bytes: 144,
            summaries: 5,
            rounds: 2,
            wall_ms: 12,
            bound_reason: Some("deadline".into()),
            retries: 1,
            speculative_steps: 9,
            product_states: 21,
            buchi_states: 4,
        };
        let parsed = Json::parse(&Event::CheckFinished { metrics: m }.to_json()).unwrap();
        assert_eq!(parsed.get("check").and_then(Json::as_str), Some("d\"x/1"));
        assert_eq!(parsed.get("summaries").and_then(Json::as_u64), Some(5));
        assert_eq!(parsed.get("states_stored").and_then(Json::as_u64), Some(3));
        assert_eq!(parsed.get("store_bytes").and_then(Json::as_u64), Some(144));
        assert_eq!(parsed.get("bound_reason").and_then(Json::as_str), Some("deadline"));
        assert_eq!(parsed.get("retries").and_then(Json::as_u64), Some(1));
        assert_eq!(parsed.get("speculative_steps").and_then(Json::as_u64), Some(9));
        assert_eq!(parsed.get("product_states").and_then(Json::as_u64), Some(21));
        assert_eq!(parsed.get("buchi_states").and_then(Json::as_u64), Some(4));
    }
}
