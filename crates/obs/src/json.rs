//! Minimal JSON support for the observability layer.
//!
//! The build environment has no serde; events and reports encode
//! themselves by hand and are parsed back with a small
//! recursive-descent parser. The parser serves the *consumers* of the
//! emitted data — [`crate::report::RunReport::from_json`] (merging
//! reports out of journals), the `obs_verify` consistency checker, and
//! tests — so it favors clarity over speed.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish int from float).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` keeps iteration deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses one JSON value; `None` on any syntax error or trailing
    /// garbage.
    pub fn parse(text: &str) -> Option<Json> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos == p.bytes.len() {
            Some(value)
        } else {
            None
        }
    }

    /// The value as a non-negative integer (rounds through `f64`, which
    /// is exact up to 2^53 — far beyond any counter this crate emits).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj()?.get(key)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, b: u8) -> Option<()> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Some(())
        } else {
            None
        }
    }

    fn literal(&mut self, lit: &str) -> Option<()> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Some(())
        } else {
            None
        }
    }

    fn value(&mut self) -> Option<Json> {
        match self.bytes.get(self.pos)? {
            b'n' => self.literal("null").map(|_| Json::Null),
            b't' => self.literal("true").map(|_| Json::Bool(true)),
            b'f' => self.literal("false").map(|_| Json::Bool(false)),
            b'"' => self.string().map(Json::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            _ => self.number(),
        }
    }

    fn number(&mut self) -> Option<Json> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut saw_digit = false;
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                saw_digit |= b.is_ascii_digit();
                self.pos += 1;
            } else {
                break;
            }
        }
        if !saw_digit {
            return None;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()?
            .parse::<f64>()
            .ok()
            .map(Json::Num)
    }

    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos)? {
                b'"' => {
                    self.pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.bytes.get(self.pos)? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos + 1..self.pos + 5)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return None,
                    }
                    self.pos += 1;
                }
                &b if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                _ => {
                    // Multi-byte UTF-8: copy the whole scalar.
                    let s = std::str::from_utf8(&self.bytes[self.pos..]).ok()?;
                    let c = s.chars().next()?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Option<Json> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']').is_some() {
            return Some(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b',').is_some() {
                continue;
            }
            self.eat(b']')?;
            return Some(Json::Arr(items));
        }
    }

    fn object(&mut self) -> Option<Json> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.eat(b'}').is_some() {
            return Some(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            if self.eat(b',').is_some() {
                continue;
            }
            self.eat(b'}')?;
            return Some(Json::Obj(map));
        }
    }
}

/// Appends `s` to `out` with JSON string escaping (no surrounding
/// quotes).
pub fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// `"s"` with escaping — the common case.
pub fn quoted(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape(s, &mut out);
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null"), Some(Json::Null));
        assert_eq!(Json::parse("true"), Some(Json::Bool(true)));
        assert_eq!(Json::parse("-12.5e1"), Some(Json::Num(-125.0)));
        assert_eq!(Json::parse("\"a\\nb\""), Some(Json::Str("a\nb".into())));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, 2, {"b": "x"}], "c": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("c"), Some(&Json::Null));
    }

    #[test]
    fn rejects_garbage_and_trailing_input() {
        assert_eq!(Json::parse(""), None);
        assert_eq!(Json::parse("{"), None);
        assert_eq!(Json::parse("[1,]"), None);
        assert_eq!(Json::parse("1 2"), None);
        assert_eq!(Json::parse("nul"), None);
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "tab\t newline\n quote\" backslash\\ unicode\u{1} ok";
        let parsed = Json::parse(&quoted(nasty)).unwrap();
        assert_eq!(parsed.as_str(), Some(nasty));
    }

    #[test]
    fn unicode_strings_survive() {
        let v = Json::parse("\"caf\u{e9} \\u00e9\"").unwrap();
        assert_eq!(v.as_str(), Some("café é"));
    }
}
