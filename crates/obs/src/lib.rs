//! # kiss-obs
//!
//! Structured observability for the KISS checker: events, per-check
//! metrics, and sinks that turn a corpus run into a JSONL trace, an
//! aggregated [`RunReport`], or a throttled progress heartbeat.
//!
//! The paper's evaluation (§6) is an accounting exercise — 481
//! per-field checks under a resource bound, with per-driver outcome
//! counts. This crate is the measurement substrate for that
//! accounting: engines, the supervisor, and the corpus driver all
//! emit [`Event`]s through an [`Obs`] handle, and sinks aggregate
//! them without the emitters knowing who is listening.
//!
//! ## Zero cost when disabled
//!
//! [`Obs::emit`] takes a *closure* that builds the event. A disabled
//! handle (the default) never calls it, so hot loops pay one `Option`
//! check — no allocation, no formatting, no locking.

pub mod event;
pub mod json;
pub mod metrics;
pub mod report;
pub mod sinks;
pub mod span;

pub use event::{CheckMetrics, Event};
pub use metrics::{AtomicHistogram, Counter, Gauge, Histogram, MetricsSnapshot, Registry};
pub use report::{EngineTotals, RunReport};
pub use sinks::{Aggregator, ChannelSink, Fanout, Heartbeat, JsonlSink, Observer};
pub use span::{Span, TraceId};

use std::sync::{Arc, Mutex};

/// A cheap, clonable handle through which instrumented code emits
/// events. Carries a label (the current check's name) so emitters
/// deep in an engine do not need to thread identity around.
#[derive(Clone)]
pub struct Obs {
    sink: Option<Arc<Mutex<dyn Observer>>>,
    label: Arc<str>,
}

impl Default for Obs {
    fn default() -> Self {
        Obs::off()
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.is_enabled())
            .field("label", &self.label)
            .finish()
    }
}

impl Obs {
    /// The disabled handle: every [`Obs::emit`] is a no-op.
    pub fn off() -> Self {
        Obs { sink: None, label: Arc::from("") }
    }

    /// A handle feeding one observer.
    pub fn new(observer: impl Observer + 'static) -> Self {
        Obs { sink: Some(Arc::new(Mutex::new(observer))), label: Arc::from("") }
    }

    /// A handle fanning out to several observers; an empty list is the
    /// disabled handle.
    pub fn multi(observers: Vec<Box<dyn Observer>>) -> Self {
        if observers.is_empty() {
            Obs::off()
        } else {
            Obs::new(Fanout(observers))
        }
    }

    /// This handle relabeled (same sinks). Use one label per check,
    /// e.g. `diskperf/3`.
    pub fn with_label(&self, label: impl AsRef<str>) -> Self {
        Obs { sink: self.sink.clone(), label: Arc::from(label.as_ref()) }
    }

    /// The current label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Whether any sink is attached.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Emits the event built by `make` (which receives the label).
    /// When disabled, `make` is never called.
    #[inline]
    pub fn emit(&self, make: impl FnOnce(&str) -> Event) {
        if let Some(sink) = &self.sink {
            let event = make(&self.label);
            sink.lock().expect("observer lock").on_event(&event);
        }
    }

    /// Forwards an already-built event to the sink, ignoring this
    /// handle's label (events carry their own check identity). This is
    /// the re-emission half of a channel funnel: worker threads emit
    /// into a [`sinks::ChannelSink`], and the draining thread forwards
    /// each received event into the real sink through this method.
    #[inline]
    pub fn forward(&self, event: &Event) {
        if let Some(sink) = &self.sink {
            sink.lock().expect("observer lock").on_event(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_never_builds_the_event() {
        let obs = Obs::off();
        assert!(!obs.is_enabled());
        obs.emit(|_| unreachable!("disabled handle must not build events"));
    }

    #[test]
    fn labels_flow_into_emitted_events() {
        let agg = Aggregator::new();
        let obs = Obs::new(agg.clone()).with_label("diskperf/3");
        assert_eq!(obs.label(), "diskperf/3");
        obs.emit(|check| Event::CheckStarted { check: check.to_string() });
        // Relabeled clones share the sink.
        obs.with_label("diskperf/4")
            .emit(|check| Event::CheckStarted { check: check.to_string() });
        assert_eq!(agg.event_counts()["check_started"], 2);
    }

    #[test]
    fn multi_with_no_observers_is_disabled() {
        assert!(!Obs::multi(Vec::new()).is_enabled());
        assert!(Obs::multi(vec![Box::new(Aggregator::new())]).is_enabled());
    }
}
