//! The metrics registry: counters, gauges, and log-bucket histograms,
//! all atomics-only so hot paths record without locks.
//!
//! Two layers:
//!
//! - [`Histogram`] is a plain, mergeable value type with fixed
//!   power-of-two buckets. It replaces stored-sample percentile
//!   vectors (which grow without bound) in [`crate::RunReport`]:
//!   recording is O(1), merging is per-bucket addition, and memory is
//!   a constant 65 words no matter how many samples arrive.
//! - [`AtomicHistogram`], [`Counter`], and [`Gauge`] are the live,
//!   shared counterparts handed out by a [`Registry`]. Histograms are
//!   sharded across [`SHARDS`] bucket arrays (one picked per thread)
//!   so concurrent recorders do not contend on a cache line; a
//!   snapshot merges the shards back into a [`Histogram`].
//!
//! The cost discipline matches `kiss-fault`'s idle failpoint: one
//! recording is a relaxed `fetch_add` on a thread-local shard — no
//! locks, no allocation, no ordering stronger than `Relaxed`.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::Json;

/// Bucket count: bucket 0 holds the value 0, bucket `i` (1..=64) holds
/// values whose bit width is `i`, i.e. the range `[2^(i-1), 2^i - 1]`.
pub const BUCKETS: usize = 65;

/// Shard count for [`AtomicHistogram`] (threads spread across these).
pub const SHARDS: usize = 8;

/// The bucket index a value lands in.
#[inline]
pub fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The largest value bucket `i` can hold (its representative for
/// quantile estimation). Bucket 0 represents exactly 0.
pub fn bucket_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A fixed log-bucket histogram of `u64` samples.
///
/// Quantile estimates return the containing bucket's upper bound, so
/// an estimate is never below the exact nearest-rank value and never
/// more than one bucket (a factor of two) above it.
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    // Boxed so the values embedding a histogram (reports, events)
    // stay pointer-sized rather than carrying 520 bytes inline.
    buckets: Box<[u64; BUCKETS]>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: Box::new([0; BUCKETS]) }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("p50", &self.quantile(50))
            .field("p99", &self.quantile(99))
            .finish()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// A histogram over the given samples.
    pub fn from_samples(samples: impl IntoIterator<Item = u64>) -> Histogram {
        let mut h = Histogram::new();
        for s in samples {
            h.record(s);
        }
        h
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_of(value)] += 1;
    }

    /// Adds `other`'s buckets into `self`. Merging is associative and
    /// commutative: any grouping of partial histograms yields the same
    /// result as recording every sample into one.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(|&c| c == 0)
    }

    /// Nearest-rank quantile estimate (`p` in 0..=100): the upper
    /// bound of the bucket holding the rank-`p` sample. `None` when
    /// empty. The estimate is >= the exact nearest-rank percentile and
    /// < twice it (same bucket).
    pub fn quantile(&self, p: u32) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((p.min(100) as u64 * total).div_ceil(100)).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_bound(i));
            }
        }
        None
    }

    /// The non-empty buckets as `(index, count)` pairs.
    pub fn nonzero(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c != 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }

    /// One-line JSON encoding: `{"count":N,"buckets":[[i,c],...]}`
    /// (sparse — only non-empty buckets appear).
    pub fn to_json(&self) -> String {
        let pairs: Vec<String> =
            self.nonzero().iter().map(|(i, c)| format!("[{i},{c}]")).collect();
        format!("{{\"count\":{},\"buckets\":[{}]}}", self.count(), pairs.join(","))
    }

    /// Parses [`Histogram::to_json`] output; `None` on malformed input
    /// or out-of-range bucket indices.
    pub fn from_value(v: &Json) -> Option<Histogram> {
        let mut h = Histogram::new();
        for pair in v.get("buckets")?.as_arr()? {
            let pair = pair.as_arr()?;
            if pair.len() != 2 {
                return None;
            }
            let i = pair[0].as_u64()? as usize;
            if i >= BUCKETS {
                return None;
            }
            h.buckets[i] = h.buckets[i].checked_add(pair[1].as_u64()?)?;
        }
        Some(h)
    }
}

/// A monotonically increasing counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An up/down gauge that also remembers its high-water mark.
#[derive(Default)]
pub struct Gauge {
    value: AtomicU64,
    peak: AtomicU64,
}

impl Gauge {
    /// Sets the current value (peak tracks the maximum ever set).
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
        self.peak.fetch_max(v, Ordering::Relaxed);
    }

    /// Adds one and updates the peak.
    #[inline]
    pub fn inc(&self) {
        let now = self.value.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Subtracts one (saturating at zero).
    #[inline]
    pub fn dec(&self) {
        let _ = self.value.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_sub(1))
        });
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// The high-water mark.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }
}

/// Picks this thread's shard once and caches it.
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    SHARD.with(|s| *s)
}

/// A sharded, lock-free histogram: each thread records into its own
/// bucket array (relaxed `fetch_add`), and [`AtomicHistogram::snapshot`]
/// merges the shards.
pub struct AtomicHistogram {
    shards: Box<[[AtomicU64; BUCKETS]]>,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram {
            shards: (0..SHARDS)
                .map(|_| std::array::from_fn(|_| AtomicU64::new(0)))
                .collect(),
        }
    }
}

impl AtomicHistogram {
    /// An empty histogram.
    pub fn new() -> AtomicHistogram {
        AtomicHistogram::default()
    }

    /// Records one sample: one relaxed `fetch_add` on this thread's
    /// shard.
    #[inline]
    pub fn record(&self, value: u64) {
        self.shards[shard_index()][bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Merges every shard into a plain [`Histogram`].
    pub fn snapshot(&self) -> Histogram {
        let mut h = Histogram::new();
        for shard in self.shards.iter() {
            for (i, c) in shard.iter().enumerate() {
                h.buckets[i] += c.load(Ordering::Relaxed);
            }
        }
        h
    }
}

/// Named-metric storage inside a [`Registry`].
#[derive(Default)]
struct RegistryInner {
    counters: Vec<(String, Arc<Counter>)>,
    gauges: Vec<(String, Arc<Gauge>)>,
    histograms: Vec<(String, Arc<AtomicHistogram>)>,
}

fn get_or_insert<T: Default>(list: &mut Vec<(String, Arc<T>)>, name: &str) -> Arc<T> {
    if let Some((_, v)) = list.iter().find(|(n, _)| n == name) {
        return v.clone();
    }
    let v = Arc::new(T::default());
    list.push((name.to_string(), v.clone()));
    v
}

/// A registry of named metrics. Registration takes a lock (it happens
/// once, at setup); the returned handles are plain atomics, so the
/// recording paths never touch the registry again.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

/// Everything a [`Registry`] held at one instant.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter totals, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge `(name, value, peak)` triples, sorted by name.
    pub gauges: Vec<(String, u64, u64)>,
    /// Histogram snapshots, sorted by name.
    pub histograms: Vec<(String, Histogram)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_insert(&mut self.inner.lock().expect("registry lock").counters, name)
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_insert(&mut self.inner.lock().expect("registry lock").gauges, name)
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<AtomicHistogram> {
        get_or_insert(&mut self.inner.lock().expect("registry lock").histograms, name)
    }

    /// A point-in-time snapshot of every registered metric, sorted by
    /// name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("registry lock");
        let mut snap = MetricsSnapshot {
            counters: inner.counters.iter().map(|(n, c)| (n.clone(), c.get())).collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(n, g)| (n.clone(), g.get(), g.peak()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(n, h)| (n.clone(), h.snapshot()))
                .collect(),
        };
        snap.counters.sort_by(|a, b| a.0.cmp(&b.0));
        snap.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        snap.histograms.sort_by(|a, b| a.0.cmp(&b.0));
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_value_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_bound(0), 0);
        assert_eq!(bucket_bound(1), 1);
        assert_eq!(bucket_bound(2), 3);
        assert_eq!(bucket_bound(64), u64::MAX);
        // Every value's bucket bound is >= the value and < 2x it.
        for v in [1u64, 2, 3, 5, 17, 1000, 1 << 40] {
            let bound = bucket_bound(bucket_of(v));
            assert!(bound >= v);
            assert!(bound / 2 < v, "{v} -> {bound}");
        }
    }

    #[test]
    fn quantiles_track_nearest_rank_within_one_bucket() {
        let samples = [1u64, 2, 3, 40];
        let h = Histogram::from_samples(samples);
        assert_eq!(h.count(), 4);
        // Exact nearest-rank p50 is 2; the estimate is 2's bucket bound.
        assert_eq!(h.quantile(50), Some(bucket_bound(bucket_of(2))));
        assert_eq!(h.quantile(100), Some(bucket_bound(bucket_of(40))));
        assert_eq!(h.quantile(0), Some(bucket_bound(bucket_of(1))));
        assert_eq!(Histogram::new().quantile(50), None);
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let mut a = Histogram::from_samples([0u64, 1, 7]);
        let b = Histogram::from_samples([7u64, 900, u64::MAX]);
        let whole = Histogram::from_samples([0u64, 1, 7, 7, 900, u64::MAX]);
        a.merge(&b);
        assert_eq!(a, whole);
        assert_eq!(a.count(), 6);
    }

    #[test]
    fn json_round_trips_and_rejects_garbage() {
        let h = Histogram::from_samples([0u64, 1, 1, 63, 64, 1 << 50]);
        let text = h.to_json();
        let back = Histogram::from_value(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, h);
        assert!(text.contains("\"count\":6"));
        for bad in [
            "{}",
            "{\"buckets\":[[65,1]]}",
            "{\"buckets\":[[1]]}",
            "{\"buckets\":[1,2]}",
        ] {
            assert_eq!(Histogram::from_value(&Json::parse(bad).unwrap()), None, "{bad}");
        }
        assert!(Histogram::new().to_json().contains("\"count\":0"));
    }

    #[test]
    fn atomic_histogram_merges_across_threads() {
        let h = AtomicHistogram::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..100u64 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(h.snapshot().count(), 400);
    }

    #[test]
    fn gauge_tracks_value_and_peak() {
        let g = Gauge::default();
        g.inc();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 2);
        assert_eq!(g.peak(), 3);
        g.set(10);
        assert_eq!(g.peak(), 10);
        g.set(1);
        assert_eq!(g.get(), 1);
        assert_eq!(g.peak(), 10);
        g.dec();
        g.dec(); // saturates at zero
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn registry_hands_out_shared_handles_and_snapshots() {
        let reg = Registry::new();
        let a = reg.counter("requests");
        let b = reg.counter("requests");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "same name, same counter");
        reg.gauge("in_flight").set(5);
        reg.histogram("latency").record(9);
        let snap = reg.snapshot();
        assert_eq!(snap.counters, vec![("requests".to_string(), 3)]);
        assert_eq!(snap.gauges, vec![("in_flight".to_string(), 5, 5)]);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].1.count(), 1);
    }
}
