//! The aggregated run report: what a whole corpus run (or a single
//! `kissc` invocation) did, in numbers.

use std::collections::BTreeMap;

use crate::event::CheckMetrics;
use crate::json::{quoted, Json};
use crate::metrics::Histogram;

/// Nearest-rank percentile over an unsorted sample; `None` when empty.
fn nearest_rank(xs: &[u64], p: u32) -> Option<u64> {
    if xs.is_empty() {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_unstable();
    let rank = (p.min(100) as usize * sorted.len()).div_ceil(100);
    Some(sorted[rank.saturating_sub(1)])
}

/// Per-engine totals inside a [`RunReport`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineTotals {
    /// Checks whose final attempt ran on this engine.
    pub checks: u64,
    /// Steps executed (final attempts).
    pub steps: u64,
    /// Distinct states recorded (final attempts).
    pub states: u64,
    /// Bytes held by the engines' state stores (final attempts,
    /// summed). Parses as 0 from reports written before the gauge
    /// existed.
    pub store_bytes: u64,
    /// Instructions actually executed including parallel speculation
    /// (final attempts, summed; equals `steps` for serial runs).
    /// Parses as 0 from reports written before the gauge existed.
    pub speculative_steps: u64,
    /// Wall-clock milliseconds spent.
    pub wall_ms: u64,
}

/// Aggregated metrics over many checks. Built incrementally by
/// [`RunReport::observe`], merged across resumed sessions by
/// [`RunReport::merge`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunReport {
    /// Checks finished.
    pub checks: u64,
    /// Total escalation retries spent.
    pub retries: u64,
    /// Verdict histogram (`pass`, `race`, `inconclusive`, ...).
    pub outcomes: BTreeMap<String, u64>,
    /// Which budget axis ended each inconclusive check.
    pub bound_reasons: BTreeMap<String, u64>,
    /// Totals per engine kind.
    pub engines: BTreeMap<String, EngineTotals>,
    /// Summed per-check wall time in milliseconds. (Not elapsed run
    /// time: checks may overlap in a future parallel executor.)
    pub wall_ms: u64,
    /// Every check's wall time, for percentiles. Unsorted.
    pub durations_ms: Vec<u64>,
    /// Serve-mode requests received (cache hits + cache misses +
    /// requests shed).
    pub requests: u64,
    /// Requests answered straight from the result cache.
    pub cache_hits: u64,
    /// Requests that missed (or bypassed) the cache and ran a check.
    pub cache_misses: u64,
    /// Receive-to-answer request latencies, as a constant-memory
    /// log-bucket histogram (millisecond samples). Replaces the old
    /// per-sample `request_ms` vector, which grew without bound under
    /// sustained serve traffic; old reports carrying that vector still
    /// parse (the samples fold into the histogram).
    pub request_latency: Histogram,
    /// Requests rejected with a typed `overloaded` response because the
    /// queue stayed full for the whole admission wait. Counted in
    /// `requests` but in neither cache bucket.
    pub requests_shed: u64,
    /// Failpoints fired (kiss-fault injections observed).
    pub faults_injected: u64,
    /// Client-side reconnect/resubmit attempts after failures.
    pub client_retries: u64,
}

impl RunReport {
    /// Folds one finished check into the report.
    pub fn observe(&mut self, m: &CheckMetrics) {
        self.checks += 1;
        self.retries += m.retries;
        *self.outcomes.entry(m.verdict.clone()).or_default() += 1;
        if let Some(reason) = &m.bound_reason {
            *self.bound_reasons.entry(reason.clone()).or_default() += 1;
        }
        let engine = self.engines.entry(m.engine.clone()).or_default();
        engine.checks += 1;
        engine.steps += m.steps;
        engine.states += m.states;
        engine.store_bytes += m.store_bytes;
        engine.speculative_steps += m.speculative_steps;
        engine.wall_ms += m.wall_ms;
        self.wall_ms += m.wall_ms;
        self.durations_ms.push(m.wall_ms);
    }

    /// Adds `other`'s totals into `self` — used by `--resume` to
    /// combine the reports of earlier sessions with the current one.
    pub fn merge(&mut self, other: &RunReport) {
        self.checks += other.checks;
        self.retries += other.retries;
        for (k, v) in &other.outcomes {
            *self.outcomes.entry(k.clone()).or_default() += v;
        }
        for (k, v) in &other.bound_reasons {
            *self.bound_reasons.entry(k.clone()).or_default() += v;
        }
        for (k, v) in &other.engines {
            let e = self.engines.entry(k.clone()).or_default();
            e.checks += v.checks;
            e.steps += v.steps;
            e.states += v.states;
            e.store_bytes += v.store_bytes;
            e.speculative_steps += v.speculative_steps;
            e.wall_ms += v.wall_ms;
        }
        self.wall_ms += other.wall_ms;
        self.durations_ms.extend_from_slice(&other.durations_ms);
        self.requests += other.requests;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.request_latency.merge(&other.request_latency);
        self.requests_shed += other.requests_shed;
        self.faults_injected += other.faults_injected;
        self.client_retries += other.client_retries;
    }

    /// Steps summed across engines.
    pub fn total_steps(&self) -> u64 {
        self.engines.values().map(|e| e.steps).sum()
    }

    /// States summed across engines.
    pub fn total_states(&self) -> u64 {
        self.engines.values().map(|e| e.states).sum()
    }

    /// Aggregate search throughput in states per second; `None` when no
    /// measurable time was spent.
    pub fn states_per_sec(&self) -> Option<f64> {
        if self.wall_ms == 0 {
            return None;
        }
        Some(self.total_states() as f64 * 1000.0 / self.wall_ms as f64)
    }

    /// Nearest-rank duration percentile (`p` in 0..=100) in
    /// milliseconds; `None` when no checks were recorded.
    pub fn percentile_ms(&self, p: u32) -> Option<u64> {
        nearest_rank(&self.durations_ms, p)
    }

    /// Request-latency percentile estimate (`p` in 0..=100) in
    /// milliseconds, from the log-bucket histogram — within one bucket
    /// of the exact nearest-rank value. `None` when no requests were
    /// recorded.
    pub fn request_percentile_ms(&self, p: u32) -> Option<u64> {
        self.request_latency.quantile(p)
    }

    /// Whether two runs did the same *deterministic* work: identical
    /// check counts, retry counts, outcome histograms, bound reasons,
    /// and per-engine step/state totals. Timing fields (wall clock,
    /// durations, throughput) are deliberately excluded.
    pub fn counts_match(&self, other: &RunReport) -> bool {
        self.checks == other.checks
            && self.retries == other.retries
            && self.outcomes == other.outcomes
            && self.bound_reasons == other.bound_reasons
            && self.engines.len() == other.engines.len()
            && self.engines.iter().all(|(k, e)| {
                other.engines.get(k).is_some_and(|o| {
                    e.checks == o.checks && e.steps == o.steps && e.states == o.states
                })
            })
    }

    /// JSON encoding, parseable by [`RunReport::from_json`].
    pub fn to_json(&self) -> String {
        let map = |m: &BTreeMap<String, u64>| {
            let fields: Vec<String> =
                m.iter().map(|(k, v)| format!("{}:{v}", quoted(k))).collect();
            format!("{{{}}}", fields.join(","))
        };
        let engines: Vec<String> = self
            .engines
            .iter()
            .map(|(k, e)| {
                format!(
                    "{}:{{\"checks\":{},\"steps\":{},\"states\":{},\
                     \"store_bytes\":{},\"speculative_steps\":{},\"wall_ms\":{}}}",
                    quoted(k),
                    e.checks,
                    e.steps,
                    e.states,
                    e.store_bytes,
                    e.speculative_steps,
                    e.wall_ms,
                )
            })
            .collect();
        let durations: Vec<String> = self.durations_ms.iter().map(u64::to_string).collect();
        format!(
            "{{\"checks\":{},\"retries\":{},\"outcomes\":{},\"bound_reasons\":{},\
             \"engines\":{{{}}},\"wall_ms\":{},\"durations_ms\":[{}],\
             \"requests\":{},\"cache_hits\":{},\"cache_misses\":{},\"request_latency\":{},\
             \"requests_shed\":{},\"faults_injected\":{},\"client_retries\":{}}}",
            self.checks,
            self.retries,
            map(&self.outcomes),
            map(&self.bound_reasons),
            engines.join(","),
            self.wall_ms,
            durations.join(","),
            self.requests,
            self.cache_hits,
            self.cache_misses,
            self.request_latency.to_json(),
            self.requests_shed,
            self.faults_injected,
            self.client_retries,
        )
    }

    /// Parses [`RunReport::to_json`] output; `None` on malformed input.
    pub fn from_json(text: &str) -> Option<RunReport> {
        let v = Json::parse(text)?;
        Self::from_value(&v)
    }

    /// Builds a report from an already-parsed JSON value (e.g. the
    /// `report` member of a `run_summary` trace event).
    pub fn from_value(v: &Json) -> Option<RunReport> {
        let counts = |key: &str| -> Option<BTreeMap<String, u64>> {
            v.get(key)?
                .as_obj()?
                .iter()
                .map(|(k, n)| Some((k.clone(), n.as_u64()?)))
                .collect()
        };
        let engines = v
            .get("engines")?
            .as_obj()?
            .iter()
            .map(|(k, e)| {
                Some((
                    k.clone(),
                    EngineTotals {
                        checks: e.get("checks")?.as_u64()?,
                        steps: e.get("steps")?.as_u64()?,
                        states: e.get("states")?.as_u64()?,
                        // Tolerate reports from before the store gauge
                        // existed (resumed journals, old traces).
                        store_bytes: e
                            .get("store_bytes")
                            .and_then(Json::as_u64)
                            .unwrap_or(0),
                        // Likewise for the speculation gauge, which
                        // postdates the store one.
                        speculative_steps: e
                            .get("speculative_steps")
                            .and_then(Json::as_u64)
                            .unwrap_or(0),
                        wall_ms: e.get("wall_ms")?.as_u64()?,
                    },
                ))
            })
            .collect::<Option<BTreeMap<_, _>>>()?;
        Some(RunReport {
            checks: v.get("checks")?.as_u64()?,
            retries: v.get("retries")?.as_u64()?,
            outcomes: counts("outcomes")?,
            bound_reasons: counts("bound_reasons")?,
            engines,
            wall_ms: v.get("wall_ms")?.as_u64()?,
            durations_ms: v
                .get("durations_ms")?
                .as_arr()?
                .iter()
                .map(Json::as_u64)
                .collect::<Option<Vec<_>>>()?,
            // The serving fields postdate the format; reports written
            // before kiss-serve existed parse with zero requests.
            requests: v.get("requests").and_then(Json::as_u64).unwrap_or(0),
            cache_hits: v.get("cache_hits").and_then(Json::as_u64).unwrap_or(0),
            cache_misses: v.get("cache_misses").and_then(Json::as_u64).unwrap_or(0),
            // Current reports carry the histogram; reports written when
            // latencies were stored per-sample carry a `request_ms`
            // array instead, which folds into an equivalent histogram.
            request_latency: match v.get("request_latency") {
                Some(h) => Histogram::from_value(h)?,
                None => Histogram::from_samples(
                    v.get("request_ms")
                        .and_then(Json::as_arr)
                        .map(|xs| xs.iter().map(Json::as_u64).collect::<Option<Vec<_>>>())
                        .unwrap_or_else(|| Some(Vec::new()))?,
                ),
            },
            // Robustness counters postdate the serving fields; older
            // reports parse with zeros.
            requests_shed: v.get("requests_shed").and_then(Json::as_u64).unwrap_or(0),
            faults_injected: v.get("faults_injected").and_then(Json::as_u64).unwrap_or(0),
            client_retries: v.get("client_retries").and_then(Json::as_u64).unwrap_or(0),
        })
    }

    /// Multi-line human rendering for end-of-run output.
    pub fn render(&self) -> String {
        let hist = |m: &BTreeMap<String, u64>| {
            m.iter().map(|(k, v)| format!("{k}={v}")).collect::<Vec<_>>().join(" ")
        };
        let mut out = format!(
            "run report: {} checks, {} retries, {} ms checking time\n",
            self.checks, self.retries, self.wall_ms
        );
        out.push_str(&format!("  outcomes  : {}\n", hist(&self.outcomes)));
        if !self.bound_reasons.is_empty() {
            out.push_str(&format!("  bounds    : {}\n", hist(&self.bound_reasons)));
        }
        for (name, e) in &self.engines {
            out.push_str(&format!(
                "  engine    : {name}: {} checks, {} steps, {} states, \
                 {} store bytes, {} ms\n",
                e.checks, e.steps, e.states, e.store_bytes, e.wall_ms
            ));
            if e.speculative_steps > e.steps {
                out.push_str(&format!(
                    "              {name}: {} speculative steps ({} wasted)\n",
                    e.speculative_steps,
                    e.speculative_steps - e.steps
                ));
            }
        }
        if let Some(sps) = self.states_per_sec() {
            out.push_str(&format!("  throughput: {sps:.0} states/s\n"));
        }
        if let (Some(p50), Some(p90), Some(p99)) =
            (self.percentile_ms(50), self.percentile_ms(90), self.percentile_ms(99))
        {
            out.push_str(&format!("  durations : p50={p50}ms p90={p90}ms p99={p99}ms\n"));
        }
        if self.requests > 0 || self.requests_shed > 0 {
            let rate = if self.requests > 0 {
                self.cache_hits as f64 * 100.0 / self.requests as f64
            } else {
                0.0
            };
            let shed = if self.requests_shed > 0 {
                format!(", {} shed", self.requests_shed)
            } else {
                String::new()
            };
            out.push_str(&format!(
                "  serving   : {} requests, {} cache hits, {} misses ({rate:.0}% hit-rate){shed}\n",
                self.requests, self.cache_hits, self.cache_misses
            ));
            if let (Some(p50), Some(p90), Some(p99)) = (
                self.request_percentile_ms(50),
                self.request_percentile_ms(90),
                self.request_percentile_ms(99),
            ) {
                out.push_str(&format!("  latency   : p50={p50}ms p90={p90}ms p99={p99}ms\n"));
            }
        }
        if self.faults_injected > 0 || self.client_retries > 0 {
            out.push_str(&format!(
                "  faults    : {} injected, {} client retries\n",
                self.faults_injected, self.client_retries
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metric(verdict: &str, engine: &str, steps: u64, wall_ms: u64) -> CheckMetrics {
        CheckMetrics {
            check: "drv/0".into(),
            engine: engine.into(),
            verdict: verdict.into(),
            steps,
            states: steps / 2,
            wall_ms,
            bound_reason: (verdict == "inconclusive").then(|| "steps".to_string()),
            ..CheckMetrics::default()
        }
    }

    #[test]
    fn observe_accumulates_histograms_and_engine_totals() {
        let mut r = RunReport::default();
        r.observe(&metric("pass", "explicit", 100, 4));
        r.observe(&metric("race", "explicit", 50, 2));
        r.observe(&metric("inconclusive", "summary", 10, 1));
        assert_eq!(r.checks, 3);
        assert_eq!(r.outcomes["pass"], 1);
        assert_eq!(r.outcomes["race"], 1);
        assert_eq!(r.bound_reasons["steps"], 1);
        assert_eq!(r.engines["explicit"].checks, 2);
        assert_eq!(r.engines["explicit"].steps, 150);
        assert_eq!(r.total_steps(), 160);
        assert_eq!(r.wall_ms, 7);
    }

    #[test]
    fn merge_equals_observing_everything_in_one_report() {
        let ms = [
            metric("pass", "explicit", 100, 4),
            metric("race", "bfs", 30, 9),
            metric("inconclusive", "summary", 7, 1),
        ];
        let mut whole = RunReport::default();
        ms.iter().for_each(|m| whole.observe(m));
        let mut first = RunReport::default();
        first.observe(&ms[0]);
        let mut rest = RunReport::default();
        rest.observe(&ms[1]);
        rest.observe(&ms[2]);
        first.merge(&rest);
        assert_eq!(first, whole);
        assert!(first.counts_match(&whole));
    }

    #[test]
    fn counts_match_ignores_timing_but_not_work() {
        let mut a = RunReport::default();
        a.observe(&metric("pass", "explicit", 100, 4));
        let mut b = RunReport::default();
        b.observe(&metric("pass", "explicit", 100, 900)); // same work, slower
        assert!(a.counts_match(&b));
        let mut c = RunReport::default();
        c.observe(&metric("pass", "explicit", 101, 4)); // different work
        assert!(!a.counts_match(&c));
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let mut r = RunReport::default();
        r.observe(&metric("pass", "explicit", 100, 4));
        r.observe(&metric("inconclusive", "summary", 10, 11));
        let back = RunReport::from_json(&r.to_json()).expect("round trip");
        assert_eq!(back, r);
        assert_eq!(RunReport::from_json("not json"), None);
        assert_eq!(RunReport::from_json("{\"checks\":1}"), None);
    }

    #[test]
    fn reports_without_store_bytes_still_parse() {
        // Journals written before the store gauge existed lack the
        // field; resumed runs must still merge them.
        let old = "{\"checks\":1,\"retries\":0,\"outcomes\":{\"pass\":1},\
                   \"bound_reasons\":{},\"engines\":{\"explicit\":{\"checks\":1,\
                   \"steps\":7,\"states\":3,\"wall_ms\":2}},\"wall_ms\":2,\
                   \"durations_ms\":[2]}";
        let r = RunReport::from_json(old).expect("old report must parse");
        assert_eq!(r.engines["explicit"].store_bytes, 0);
        assert_eq!(r.engines["explicit"].steps, 7);
    }

    #[test]
    fn store_bytes_accumulate_per_engine() {
        let mut r = RunReport::default();
        let mut m = metric("pass", "bfs", 100, 4);
        m.store_bytes = 1024;
        r.observe(&m);
        r.observe(&m);
        assert_eq!(r.engines["bfs"].store_bytes, 2048);
        assert!(r.render().contains("store bytes"));
        let back = RunReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back.engines["bfs"].store_bytes, 2048);
    }

    #[test]
    fn speculative_steps_accumulate_and_tolerate_old_reports() {
        let mut r = RunReport::default();
        let mut m = metric("pass", "bfs", 100, 4);
        m.speculative_steps = 130;
        r.observe(&m);
        r.observe(&m);
        assert_eq!(r.engines["bfs"].speculative_steps, 260);
        assert!(r.render().contains("260 speculative steps (60 wasted)"), "{}", r.render());
        let back = RunReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back.engines["bfs"].speculative_steps, 260);
        // Reports written before the gauge existed parse with zero and
        // render without the speculation line.
        let old = "{\"checks\":1,\"retries\":0,\"outcomes\":{\"pass\":1},\
                   \"bound_reasons\":{},\"engines\":{\"bfs\":{\"checks\":1,\
                   \"steps\":7,\"states\":3,\"wall_ms\":2}},\"wall_ms\":2,\
                   \"durations_ms\":[2]}";
        let r = RunReport::from_json(old).expect("old report must parse");
        assert_eq!(r.engines["bfs"].speculative_steps, 0);
        assert!(!r.render().contains("speculative"));
    }

    #[test]
    fn serving_fields_round_trip_merge_and_render() {
        let r = RunReport {
            requests: 4,
            cache_hits: 3,
            cache_misses: 1,
            request_latency: Histogram::from_samples([1, 2, 3, 40]),
            ..RunReport::default()
        };
        let back = RunReport::from_json(&r.to_json()).expect("round trip");
        assert_eq!(back, r);
        // Exact nearest-rank p50 is 2; the histogram answers with 2's
        // bucket bound (within one bucket).
        assert_eq!(back.request_percentile_ms(50), Some(3));
        let mut merged = RunReport::default();
        merged.merge(&r);
        merged.merge(&r);
        assert_eq!(merged.requests, 8);
        assert_eq!(merged.cache_hits, 6);
        assert_eq!(merged.request_latency.count(), 8);
        let text = r.render();
        assert!(text.contains("4 requests"));
        assert!(text.contains("75% hit-rate"));
        assert!(text.contains("latency"));
        // Reports predating kiss-serve lack the fields entirely.
        let old = "{\"checks\":0,\"retries\":0,\"outcomes\":{},\"bound_reasons\":{},\
                   \"engines\":{},\"wall_ms\":0,\"durations_ms\":[]}";
        let parsed = RunReport::from_json(old).expect("old report must parse");
        assert_eq!(parsed.requests, 0);
        assert!(parsed.request_latency.is_empty());
        assert!(!parsed.render().contains("serving"));
        // Reports from the per-sample era carry a `request_ms` array;
        // the samples fold into an equivalent histogram.
        let sampled = "{\"checks\":0,\"retries\":0,\"outcomes\":{},\"bound_reasons\":{},\
                       \"engines\":{},\"wall_ms\":0,\"durations_ms\":[],\
                       \"requests\":4,\"cache_hits\":3,\"cache_misses\":1,\
                       \"request_ms\":[1,2,3,40]}";
        let parsed = RunReport::from_json(sampled).expect("per-sample report must parse");
        assert_eq!(parsed.request_latency, r.request_latency);
    }

    #[test]
    fn robustness_fields_round_trip_merge_and_render() {
        let r = RunReport {
            requests: 9,
            cache_hits: 4,
            cache_misses: 2,
            requests_shed: 3,
            faults_injected: 5,
            client_retries: 2,
            ..RunReport::default()
        };
        let back = RunReport::from_json(&r.to_json()).expect("round trip");
        assert_eq!(back, r);
        let mut merged = RunReport::default();
        merged.merge(&r);
        merged.merge(&r);
        assert_eq!(merged.requests_shed, 6);
        assert_eq!(merged.faults_injected, 10);
        assert_eq!(merged.client_retries, 4);
        let text = r.render();
        assert!(text.contains("3 shed"));
        assert!(text.contains("5 injected, 2 client retries"));
        // Reports written before the robustness counters parse as zero.
        let old = "{\"checks\":0,\"retries\":0,\"outcomes\":{},\"bound_reasons\":{},\
                   \"engines\":{},\"wall_ms\":0,\"durations_ms\":[],\
                   \"requests\":1,\"cache_hits\":1,\"cache_misses\":0,\"request_ms\":[1]}";
        let parsed = RunReport::from_json(old).expect("pre-robustness report must parse");
        assert_eq!(parsed.requests_shed, 0);
        assert_eq!(parsed.faults_injected, 0);
        assert_eq!(parsed.client_retries, 0);
        assert!(!parsed.render().contains("faults"));
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let mut r = RunReport::default();
        for ms in [10u64, 20, 30, 40] {
            r.observe(&metric("pass", "explicit", 1, ms));
        }
        assert_eq!(r.percentile_ms(50), Some(20));
        assert_eq!(r.percentile_ms(100), Some(40));
        assert_eq!(r.percentile_ms(0), Some(10));
        assert_eq!(RunReport::default().percentile_ms(50), None);
    }

    #[test]
    fn throughput_needs_measurable_time() {
        let mut r = RunReport::default();
        r.observe(&metric("pass", "explicit", 100, 0));
        assert_eq!(r.states_per_sec(), None);
        r.observe(&metric("pass", "explicit", 100, 100));
        assert_eq!(r.states_per_sec(), Some(1000.0));
        assert!(r.render().contains("throughput"));
    }
}
