//! Event consumers: JSONL trace writer, in-memory aggregator, and the
//! throttled human heartbeat.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::event::{CheckMetrics, Event};
use crate::metrics::Histogram;
use crate::report::RunReport;

/// An event consumer. Implementations must tolerate any event order —
/// sinks are decoupled from emitters, and a crash can cut a stream
/// short.
pub trait Observer: Send {
    /// Consumes one event.
    fn on_event(&mut self, event: &Event);
}

/// Forwards every event into an [`std::sync::mpsc`] channel. This is
/// the thread-safe funnel for parallel runs: each worker thread gets an
/// [`crate::Obs`] wrapping its own `ChannelSink` clone of the sender,
/// and a single draining thread receives the merged stream and replays
/// it into the real (single-threaded) sink via [`crate::Obs::forward`].
///
/// Generic over the channel's message type so callers can multiplex
/// events with their own messages on one channel (no `select` in std's
/// mpsc); `ChannelSink<Event>` is the plain case. A closed channel
/// drops events silently — the run outlives its observers, never the
/// other way around.
pub struct ChannelSink<T: From<Event> + Send = Event>(pub std::sync::mpsc::Sender<T>);

impl<T: From<Event> + Send> Observer for ChannelSink<T> {
    fn on_event(&mut self, event: &Event) {
        let _ = self.0.send(T::from(event.clone()));
    }
}

/// Broadcasts each event to several observers in order.
pub struct Fanout(pub Vec<Box<dyn Observer>>);

impl Observer for Fanout {
    fn on_event(&mut self, event: &Event) {
        for obs in &mut self.0 {
            obs.on_event(event);
        }
    }
}

/// Writes each event as one JSON line. Buffered; flushed on the events
/// that matter for crash forensics (check finished, run summary) so a
/// killed run's trace still ends on a record boundary.
pub struct JsonlSink<W: Write + Send> {
    out: W,
}

impl JsonlSink<BufWriter<File>> {
    /// Creates (truncating) a trace file at `path`.
    pub fn create(path: &str) -> io::Result<Self> {
        Ok(JsonlSink { out: BufWriter::new(File::create(path)?) })
    }
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps any writer.
    pub fn new(out: W) -> Self {
        JsonlSink { out }
    }
}

impl<W: Write + Send> Observer for JsonlSink<W> {
    fn on_event(&mut self, event: &Event) {
        // A full disk must not kill the run the trace is describing.
        let _ = writeln!(self.out, "{}", event.to_json());
        if matches!(event, Event::CheckFinished { .. } | Event::RunSummary { .. }) {
            let _ = self.out.flush();
        }
    }
}

#[derive(Default)]
struct AggState {
    metrics: Vec<CheckMetrics>,
    event_counts: BTreeMap<&'static str, u64>,
    requests: u64,
    cache_hits: u64,
    cache_misses: u64,
    request_latency: Histogram,
    requests_shed: u64,
    faults_injected: u64,
    client_retries: u64,
}

impl AggState {
    fn serving_into(&self, report: &mut RunReport) {
        report.requests = self.requests;
        report.cache_hits = self.cache_hits;
        report.cache_misses = self.cache_misses;
        report.request_latency = self.request_latency.clone();
        report.requests_shed = self.requests_shed;
        report.faults_injected = self.faults_injected;
        report.client_retries = self.client_retries;
    }
}

/// In-memory aggregation. Clonable handle: register one clone as a
/// sink, keep another to extract the [`RunReport`] afterwards.
#[derive(Clone, Default)]
pub struct Aggregator {
    state: Arc<Mutex<AggState>>,
}

impl Aggregator {
    /// A fresh, empty aggregator.
    pub fn new() -> Self {
        Aggregator::default()
    }

    /// The report over every finished check seen so far, plus the
    /// serve-mode request/cache counters.
    pub fn report(&self) -> RunReport {
        let mut report = RunReport::default();
        let state = self.state.lock().expect("aggregator lock");
        for m in &state.metrics {
            report.observe(m);
        }
        state.serving_into(&mut report);
        report
    }

    /// Like [`Aggregator::report`], excluding checks that ended in
    /// cancellation. A resumed run re-checks those fields, so storing
    /// them in a journal's report record would double-count them.
    pub fn resumable_report(&self) -> RunReport {
        let mut report = RunReport::default();
        for m in &self.state.lock().expect("aggregator lock").metrics {
            if m.bound_reason.as_deref() != Some("cancelled") {
                report.observe(m);
            }
        }
        report
    }

    /// How many of each event kind were observed.
    pub fn event_counts(&self) -> BTreeMap<&'static str, u64> {
        self.state.lock().expect("aggregator lock").event_counts.clone()
    }
}

impl Observer for Aggregator {
    fn on_event(&mut self, event: &Event) {
        let mut state = self.state.lock().expect("aggregator lock");
        *state.event_counts.entry(event.kind()).or_default() += 1;
        match event {
            Event::CheckFinished { metrics } => state.metrics.push(metrics.clone()),
            Event::RequestReceived { .. } => state.requests += 1,
            Event::CacheHit { .. } => state.cache_hits += 1,
            Event::CacheMiss { .. } => state.cache_misses += 1,
            Event::RequestDone { wall_ms, .. } => state.request_latency.record(*wall_ms),
            Event::RequestShed { .. } => state.requests_shed += 1,
            Event::FaultInjected { .. } => state.faults_injected += 1,
            Event::ClientRetry { .. } => state.client_retries += 1,
            _ => {}
        }
    }
}

/// Throttled single-line progress renderer for humans watching a long
/// corpus run. Renders at most once per `interval` (plus once at the
/// final summary), so hot engine loops can emit ticks freely.
pub struct Heartbeat<W: Write + Send> {
    out: W,
    interval: Duration,
    started: Instant,
    last_render: Option<Instant>,
    finished: u64,
    outcomes: BTreeMap<String, u64>,
    /// Steps/states of finished checks, so live tick deltas stack on a
    /// stable base.
    base_steps: u64,
    base_states: u64,
    live_steps: u64,
    live_states: u64,
    current: String,
}

impl Heartbeat<io::Stderr> {
    /// A heartbeat on stderr, rendering at most once a second.
    pub fn stderr() -> Self {
        Heartbeat::new(io::stderr(), Duration::from_secs(1))
    }
}

impl<W: Write + Send> Heartbeat<W> {
    /// A heartbeat on any writer with an explicit interval
    /// (`Duration::ZERO` renders every event — useful in tests).
    pub fn new(out: W, interval: Duration) -> Self {
        Heartbeat {
            out,
            interval,
            started: Instant::now(),
            last_render: None,
            finished: 0,
            outcomes: BTreeMap::new(),
            base_steps: 0,
            base_states: 0,
            live_steps: 0,
            live_states: 0,
            current: String::new(),
        }
    }

    fn due(&self) -> bool {
        match self.last_render {
            None => true,
            Some(at) => at.elapsed() >= self.interval,
        }
    }

    fn render(&mut self, done: bool) {
        self.last_render = Some(Instant::now());
        let outcomes = self
            .outcomes
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(" ");
        let steps = self.base_steps + self.live_steps;
        let states = self.base_states + self.live_states;
        let elapsed = self.started.elapsed().as_secs_f64();
        let rate = if elapsed > 0.0 { steps as f64 / elapsed } else { 0.0 };
        let tail = if done {
            "done".to_string()
        } else if self.current.is_empty() {
            "starting".to_string()
        } else {
            format!("now: {}", self.current)
        };
        let _ = writeln!(
            self.out,
            "[kiss] {} checks ({outcomes}) · {steps} steps · {states} states · {rate:.0} steps/s · {tail}",
            self.finished,
        );
    }
}

impl<W: Write + Send> Observer for Heartbeat<W> {
    fn on_event(&mut self, event: &Event) {
        match event {
            Event::CheckStarted { check } => {
                self.current = check.clone();
                self.live_steps = 0;
                self.live_states = 0;
            }
            Event::EngineTick { steps, states, .. } => {
                self.live_steps = *steps;
                self.live_states = *states;
                if self.due() {
                    self.render(false);
                }
            }
            Event::RetryEscalated { .. }
            | Event::BudgetViolated { .. }
            | Event::RequestReceived { .. }
            | Event::CacheHit { .. }
            | Event::CacheMiss { .. }
            | Event::RequestDone { .. }
            | Event::RequestShed { .. }
            | Event::FaultInjected { .. }
            | Event::ClientRetry { .. }
            | Event::SpanOpen { .. }
            | Event::SpanClose { .. } => {}
            Event::CheckFinished { metrics } => {
                self.finished += 1;
                *self.outcomes.entry(metrics.verdict.clone()).or_default() += 1;
                self.base_steps += metrics.steps;
                self.base_states += metrics.states;
                self.live_steps = 0;
                self.live_states = 0;
                if self.due() {
                    self.render(false);
                }
            }
            Event::RunSummary { .. } => self.render(true),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A clonable in-memory writer so tests can read back what a sink
    /// wrote after handing it ownership.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl SharedBuf {
        fn contents(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn finished(check: &str, verdict: &str) -> Event {
        Event::CheckFinished {
            metrics: CheckMetrics {
                check: check.into(),
                engine: "explicit".into(),
                verdict: verdict.into(),
                steps: 10,
                bound_reason: (verdict == "inconclusive").then(|| "cancelled".to_string()),
                ..CheckMetrics::default()
            },
        }
    }

    #[test]
    fn jsonl_sink_writes_one_parseable_line_per_event() {
        let buf = SharedBuf::default();
        let mut sink = JsonlSink::new(buf.clone());
        sink.on_event(&Event::CheckStarted { check: "a/0".into() });
        sink.on_event(&finished("a/0", "pass"));
        let text = buf.contents();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            assert!(crate::json::Json::parse(line).is_some(), "{line}");
        }
    }

    #[test]
    fn aggregator_counts_events_and_builds_reports() {
        let agg = Aggregator::new();
        let mut sink: Box<dyn Observer> = Box::new(agg.clone());
        sink.on_event(&Event::CheckStarted { check: "a/0".into() });
        sink.on_event(&finished("a/0", "pass"));
        sink.on_event(&finished("a/1", "race"));
        sink.on_event(&finished("a/2", "inconclusive")); // cancelled
        let counts = agg.event_counts();
        assert_eq!(counts["check_started"], 1);
        assert_eq!(counts["check_finished"], 3);
        assert_eq!(agg.report().checks, 3);
        // The cancelled check drops out of the resumable view.
        let resumable = agg.resumable_report();
        assert_eq!(resumable.checks, 2);
        assert!(!resumable.outcomes.contains_key("inconclusive"));
    }

    #[test]
    fn aggregator_folds_serve_events_into_the_report() {
        let agg = Aggregator::new();
        let mut sink: Box<dyn Observer> = Box::new(agg.clone());
        for (id, hit, ms) in [("q0", false, 9u64), ("q1", true, 1), ("q2", true, 2)] {
            sink.on_event(&Event::RequestReceived { request: id.into(), queue_depth: 0 });
            if hit {
                sink.on_event(&Event::CacheHit { request: id.into() });
            } else {
                sink.on_event(&Event::CacheMiss { request: id.into() });
            }
            sink.on_event(&Event::RequestDone {
                request: id.into(),
                verdict: "pass".into(),
                wall_ms: ms,
                queue_depth: 0,
            });
        }
        let report = agg.report();
        assert_eq!(report.requests, 3);
        assert_eq!(report.cache_hits, 2);
        assert_eq!(report.cache_misses, 1);
        assert_eq!(report.requests, report.cache_hits + report.cache_misses);
        assert_eq!(report.request_latency, Histogram::from_samples([9, 1, 2]));
        assert_eq!(report.request_latency.count(), 3);
        assert_eq!(agg.event_counts()["request_done"], 3);
    }

    #[test]
    fn aggregator_folds_robustness_events_into_the_report() {
        let agg = Aggregator::new();
        let mut sink: Box<dyn Observer> = Box::new(agg.clone());
        sink.on_event(&Event::RequestShed { request: "q0".into(), queue_depth: 8 });
        sink.on_event(&Event::RequestShed { request: "q1".into(), queue_depth: 8 });
        sink.on_event(&Event::FaultInjected {
            point: "serve.worker".into(),
            action: "panic".into(),
        });
        sink.on_event(&Event::ClientRetry { attempt: 2, wait_ms: 10, reason: "connect".into() });
        let report = agg.report();
        assert_eq!(report.requests_shed, 2);
        assert_eq!(report.faults_injected, 1);
        assert_eq!(report.client_retries, 1);
        assert_eq!(agg.event_counts()["request_shed"], 2);
        assert_eq!(agg.event_counts()["fault_injected"], 1);
        assert_eq!(agg.event_counts()["client_retry"], 1);
    }

    #[test]
    fn heartbeat_throttles_and_always_renders_the_summary() {
        let buf = SharedBuf::default();
        // Infinite interval: only the RunSummary may render.
        let mut hb = Heartbeat::new(buf.clone(), Duration::from_secs(3600));
        hb.on_event(&Event::CheckStarted { check: "a/0".into() });
        hb.on_event(&finished("a/0", "pass"));
        hb.on_event(&finished("a/1", "pass"));
        let first_render = buf.contents();
        // The first event rendered once (no prior render), then the
        // throttle held.
        assert_eq!(first_render.lines().count(), 1);
        hb.on_event(&Event::RunSummary { report: RunReport::default() });
        let text = buf.contents();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("pass=2"), "{text}");
        assert!(text.ends_with("done\n"), "{text}");
    }

    #[test]
    fn heartbeat_with_zero_interval_tracks_live_ticks() {
        let buf = SharedBuf::default();
        let mut hb = Heartbeat::new(buf.clone(), Duration::ZERO);
        hb.on_event(&Event::CheckStarted { check: "a/0".into() });
        hb.on_event(&Event::EngineTick {
            check: "a/0".into(),
            engine: "explicit",
            steps: 500,
            states: 9,
        });
        let text = buf.contents();
        assert!(text.contains("500 steps"), "{text}");
        assert!(text.contains("now: a/0"), "{text}");
    }

    #[test]
    fn channel_sink_funnels_worker_events_into_one_sink() {
        use crate::Obs;
        let (tx, rx) = std::sync::mpsc::channel::<Event>();
        // Two "workers", each with its own handle on the same channel.
        let worker_a = Obs::new(ChannelSink(tx.clone())).with_label("drv/0");
        let worker_b = Obs::new(ChannelSink(tx.clone())).with_label("drv/1");
        std::thread::scope(|s| {
            s.spawn(move || worker_a.emit(|c| Event::CheckStarted { check: c.to_string() }));
            s.spawn(move || worker_b.emit(|c| Event::CheckStarted { check: c.to_string() }));
        });
        drop(tx);
        // The draining side forwards into the real sink.
        let agg = Aggregator::new();
        let main_obs = Obs::new(agg.clone());
        let mut checks: Vec<String> = Vec::new();
        for event in rx {
            if let Event::CheckStarted { check } = &event {
                checks.push(check.clone());
            }
            main_obs.forward(&event);
        }
        checks.sort();
        assert_eq!(checks, vec!["drv/0".to_string(), "drv/1".to_string()]);
        assert_eq!(agg.event_counts()["check_started"], 2);
    }

    #[test]
    fn closed_channel_drops_events_without_panicking() {
        let (tx, rx) = std::sync::mpsc::channel::<Event>();
        drop(rx);
        let mut sink = ChannelSink(tx);
        sink.on_event(&Event::CheckStarted { check: "a/0".into() });
    }

    #[test]
    fn fanout_reaches_every_sink() {
        let a = Aggregator::new();
        let b = Aggregator::new();
        let mut fan = Fanout(vec![Box::new(a.clone()), Box::new(b.clone())]);
        fan.on_event(&finished("x/0", "pass"));
        assert_eq!(a.report().checks, 1);
        assert_eq!(b.report().checks, 1);
    }
}
