//! Tracing spans: reconstructing one request's life from the trace.
//!
//! A [`TraceId`] is minted once per request (by the client, or by the
//! server for clients that did not send one) and rides along every
//! stage: protocol frame, queue admission, worker, supervisor, engine.
//! Each stage brackets its work in a [`Span`], which emits a
//! `span_open` event on creation and a `span_close` (with wall time)
//! when dropped or explicitly closed. Span ids are process-unique and
//! each open names its parent, so the JSONL trace reconstructs into a
//! tree per trace id: `recv → queued → check → reply` for a served
//! request, with `transform`/`lower`/`explore` engine phases hanging
//! off `check`.
//!
//! Cost discipline: opening a span against a disabled [`Obs`] handle
//! is one branch — no id allocation, no clock read, no event.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::event::Event;
use crate::Obs;

/// SplitMix64: a tiny, high-quality 64-bit mixer. Public so trace-id
/// minting everywhere (client slots, server fallbacks) shares one
/// deterministic scheme.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A 64-bit request trace identifier. Zero means "no trace" — requests
/// without one are assigned a fresh id at the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The absent trace id.
    pub const NONE: TraceId = TraceId(0);

    /// Whether this is the absent id.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// Fixed-width lowercase hex, the wire/trace encoding (64-bit ids
    /// do not survive a JSON number's f64 mantissa).
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parses [`TraceId::to_hex`] output.
    pub fn from_hex(s: &str) -> Option<TraceId> {
        if s.len() != 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(TraceId)
    }

    /// A deterministic id derived from a seed and an index (the
    /// client-side scheme: one per submitted slot). Never `NONE`.
    pub fn derive(seed: u64, index: u64) -> TraceId {
        let mixed = splitmix64(seed ^ splitmix64(index));
        TraceId(if mixed == 0 { 1 } else { mixed })
    }

    /// A process-fresh id (the server-side fallback for requests that
    /// arrive without one). Never `NONE`.
    pub fn fresh() -> TraceId {
        static NEXT: AtomicU64 = AtomicU64::new(1);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        TraceId::derive(u64::from(std::process::id()) << 32, n)
    }
}

/// Process-unique span ids start at 1; 0 means "no parent" in
/// `span_open` events.
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);

/// Reserves a span id without opening a span. Used when the open and
/// close happen on different threads (e.g. the serve queue: admission
/// opens `queued`, a worker closes it) and a guard cannot travel.
pub fn next_span_id() -> u64 {
    NEXT_SPAN.fetch_add(1, Ordering::Relaxed)
}

/// An open span. Emits `span_open` on creation and `span_close` (with
/// elapsed wall time) when dropped or [`Span::close`]d. Inert — id 0,
/// no events, no clock reads — when the handle is disabled.
pub struct Span {
    obs: Obs,
    trace: TraceId,
    id: u64,
    name: &'static str,
    started: Option<Instant>,
}

impl Span {
    /// Opens a span (`parent` 0 = root). Emits nothing and reads no
    /// clock when `obs` is disabled.
    pub fn open(obs: &Obs, trace: TraceId, parent: u64, name: &'static str) -> Span {
        Span::open_impl(obs, trace, parent, name, None)
    }

    /// Opens a root span that names the request it covers — the anchor
    /// tying a trace id to a request id in the trace.
    pub fn open_for_request(
        obs: &Obs,
        trace: TraceId,
        name: &'static str,
        request: &str,
    ) -> Span {
        Span::open_impl(obs, trace, 0, name, Some(request.to_string()))
    }

    fn open_impl(
        obs: &Obs,
        trace: TraceId,
        parent: u64,
        name: &'static str,
        request: Option<String>,
    ) -> Span {
        if !obs.is_enabled() {
            return Span { obs: Obs::off(), trace, id: 0, name, started: None };
        }
        let id = next_span_id();
        obs.emit(|_| Event::SpanOpen {
            trace: trace.to_hex(),
            span: id,
            parent,
            name: name.to_string(),
            request,
        });
        Span { obs: obs.clone(), trace, id, name, started: Some(Instant::now()) }
    }

    /// This span's id (0 when inert), for parenting children.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The trace this span belongs to.
    pub fn trace(&self) -> TraceId {
        self.trace
    }

    /// Closes the span now (dropping does the same).
    pub fn close(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        if let Some(started) = self.started.take() {
            let wall_ms = started.elapsed().as_millis() as u64;
            self.obs.emit(|_| Event::SpanClose {
                trace: self.trace.to_hex(),
                span: self.id,
                name: self.name.to_string(),
                wall_ms,
            });
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Aggregator;

    #[test]
    fn trace_ids_round_trip_hex_and_derive_deterministically() {
        let t = TraceId(0x0123_4567_89ab_cdef);
        assert_eq!(t.to_hex(), "0123456789abcdef");
        assert_eq!(TraceId::from_hex(&t.to_hex()), Some(t));
        assert_eq!(TraceId::from_hex("xyz"), None);
        assert_eq!(TraceId::from_hex("123"), None, "hex must be fixed-width");
        assert_eq!(TraceId::derive(7, 0), TraceId::derive(7, 0));
        assert_ne!(TraceId::derive(7, 0), TraceId::derive(7, 1));
        assert!(!TraceId::derive(0, 0).is_none());
        assert!(TraceId::NONE.is_none());
        assert_ne!(TraceId::fresh(), TraceId::fresh());
    }

    #[test]
    fn spans_emit_balanced_open_close_pairs() {
        let agg = Aggregator::new();
        let obs = Obs::new(agg.clone());
        let trace = TraceId::derive(1, 1);
        let root = Span::open_for_request(&obs, trace, "recv", "q0");
        assert_ne!(root.id(), 0);
        let child = Span::open(&obs, trace, root.id(), "check");
        child.close();
        drop(root);
        let counts = agg.event_counts();
        assert_eq!(counts["span_open"], 2);
        assert_eq!(counts["span_close"], 2);
    }

    #[test]
    fn disabled_spans_are_inert() {
        let span = Span::open(&Obs::off(), TraceId::derive(1, 1), 0, "recv");
        assert_eq!(span.id(), 0);
        span.close(); // must not emit or panic
    }

    #[test]
    fn span_close_carries_the_same_trace_and_id() {
        let (tx, rx) = std::sync::mpsc::channel::<Event>();
        let obs = Obs::new(crate::ChannelSink(tx));
        let trace = TraceId::derive(2, 2);
        let span = Span::open(&obs, trace, 0, "explore");
        let id = span.id();
        span.close();
        drop(obs);
        let events: Vec<Event> = rx.iter().collect();
        assert_eq!(events.len(), 2);
        let Event::SpanOpen { trace: t_open, span: s_open, parent, name, request } = &events[0]
        else {
            panic!("first event must be span_open")
        };
        assert_eq!(t_open, &trace.to_hex());
        assert_eq!(*s_open, id);
        assert_eq!(*parent, 0);
        assert_eq!(name, "explore");
        assert_eq!(request, &None);
        let Event::SpanClose { trace: t_close, span: s_close, name, .. } = &events[1] else {
            panic!("second event must be span_close")
        };
        assert_eq!(t_close, &trace.to_hex());
        assert_eq!(*s_close, id);
        assert_eq!(name, "explore");
    }
}
