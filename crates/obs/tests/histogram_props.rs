//! Property tests of the log-bucket histogram: merging is associative
//! (any grouping of partial histograms equals recording everything in
//! one), quantile estimates stay within one bucket of the exact
//! nearest-rank percentile, and the JSON encoding round-trips.

use kiss_obs::metrics::{bucket_bound, bucket_of};
use kiss_obs::Histogram;
use proptest::collection::vec;
use proptest::prelude::*;
use proptest::BoxedStrategy;

/// Exact nearest-rank percentile (the scheme the stored-sample report
/// used before the histogram replaced it).
fn nearest_rank(xs: &[u64], p: u32) -> Option<u64> {
    if xs.is_empty() {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_unstable();
    let rank = (p.min(100) as usize * sorted.len()).div_ceil(100);
    Some(sorted[rank.saturating_sub(1)])
}

/// Latency-shaped samples: mostly small, with heavy-tail outliers.
fn samples() -> BoxedStrategy<Vec<u64>> {
    vec(prop_oneof![0u64..50, 0u64..5_000, 0u64..u64::MAX], 0..200).boxed()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn merge_is_associative_and_order_independent(
        a in samples(), b in samples(), c in samples()
    ) {
        // (a + b) + c
        let mut left = Histogram::from_samples(a.iter().copied());
        left.merge(&Histogram::from_samples(b.iter().copied()));
        left.merge(&Histogram::from_samples(c.iter().copied()));
        // a + (b + c)
        let mut right_tail = Histogram::from_samples(b.iter().copied());
        right_tail.merge(&Histogram::from_samples(c.iter().copied()));
        let mut right = Histogram::from_samples(a.iter().copied());
        right.merge(&right_tail);
        prop_assert_eq!(&left, &right);
        // Both equal recording every sample into one histogram.
        let whole = Histogram::from_samples(
            a.iter().chain(&b).chain(&c).copied(),
        );
        prop_assert_eq!(&left, &whole);
        prop_assert_eq!(left.count() as usize, a.len() + b.len() + c.len());
    }

    #[test]
    fn quantiles_stay_within_one_bucket_of_exact(
        xs in samples(), p in 0u32..101
    ) {
        let h = Histogram::from_samples(xs.iter().copied());
        let estimate = h.quantile(p);
        let exact = nearest_rank(&xs, p);
        match (estimate, exact) {
            (None, None) => {}
            (Some(est), Some(exact)) => {
                // The estimate is the exact value's bucket bound: never
                // below it, never past the next power of two.
                prop_assert_eq!(est, bucket_bound(bucket_of(exact)));
                prop_assert!(est >= exact);
                if exact > 0 {
                    prop_assert!(est / 2 < exact, "est={est} exact={exact}");
                }
            }
            (est, exact) => prop_assert!(false, "est={est:?} exact={exact:?}"),
        }
    }

    #[test]
    fn json_round_trips(xs in samples()) {
        let h = Histogram::from_samples(xs.iter().copied());
        let text = h.to_json();
        let v = kiss_obs::json::Json::parse(&text).expect("histogram JSON parses");
        let back = Histogram::from_value(&v).expect("histogram JSON decodes");
        prop_assert_eq!(back, h);
    }
}
